"""Table I, row 6: QUBE(TO) vs QUBE(PO) on the DIA (diameter) suite.

Paper shape: QUBE(TO) is never faster by more than the margin on the
aggregate; QUBE(PO) is at least an order of magnitude faster on a sizable
fraction of instances.
"""

from common import DIA_BUDGET, save
from repro.evalx.runner import solve_po
from repro.evalx.table1 import build_row, render_table
from repro.smv.diameter import diameter_qbf
from repro.smv.models import CounterModel

TIE_MARGIN = 50


def test_table1_dia(benchmark, dia_results):
    tree = diameter_qbf(CounterModel(3), 4, "tree")
    flat = diameter_qbf(CounterModel(3), 4, "prenex")

    def representative_pair():
        po = solve_po(tree, budget=DIA_BUDGET)
        to = solve_po(flat, budget=DIA_BUDGET)
        return to, po

    benchmark.pedantic(representative_pair, rounds=1, iterations=1)

    pairs = [(r.to_run("eu_au"), r.po_run) for r in dia_results]
    row = build_row("DIA", "eq16", pairs, tie_margin=TIE_MARGIN)
    save("table1_row6_dia.txt", render_table([row]))

    # Shape: PO ahead (or at par) in aggregate, with no PO-only timeouts
    # beyond TO's.
    to_total = sum(r.to_run("eu_au").cost for r in dia_results)
    po_total = sum(r.po_run.cost for r in dia_results)
    assert po_total <= to_total * 1.1, (po_total, to_total)
    assert row.po_timeout_only <= row.to_timeout_only, row
