"""Ablation: how much of the PO advantage comes from learning?

Section V argues prenexing hurts both the branching heuristic *and* the
learning mechanism. This ablation runs TO/PO with learning enabled and
disabled on a DIA + NCF sample. Expected shape:

* with learning, the PO advantage includes the shorter-goods effect
  (Section VII-C): learned cubes are shorter under the tree prefix;
* without learning both solvers degrade, and the gap narrows to the
  branching effect alone.
"""

from common import save
from repro.evalx.runner import Budget, solve_po, solve_to
from repro.evalx.report import render_kv
from repro.generators.ncf import NcfParams, generate_ncf
from repro.smv.diameter import diameter_qbf
from repro.smv.models import DmeModel, SemaphoreModel

BUDGET = Budget(decisions=5000, seconds=15.0)


def _sample():
    instances = []
    for seed in range(4):
        instances.append(
            ("ncf-%d" % seed, generate_ncf(NcfParams(dep=6, var=4, cls=12, lpc=5, seed=seed)))
        )
    instances.append(("sem2-n2", diameter_qbf(SemaphoreModel(2), 2, "tree")))
    instances.append(("dme4-n3", diameter_qbf(DmeModel(4), 3, "tree")))
    return instances


def test_ablation_learning(benchmark):
    sample = _sample()
    benchmark.pedantic(
        lambda: solve_po(sample[0][1], budget=BUDGET), rounds=1, iterations=1
    )

    totals = {}
    cube_sizes = {}
    for learning in (True, False):
        po_cost = to_cost = 0
        po_cube_lits = po_cubes = 0
        for label, phi in sample:
            po = solve_po(
                phi, label, budget=BUDGET, learn_clauses=learning, learn_cubes=learning
            )
            to = solve_to(
                phi, label, budget=BUDGET, learn_clauses=learning, learn_cubes=learning
            )
            po_cost += po.cost
            to_cost += to.cost
            po_cube_lits += po.learned_cubes
        tag = "learning" if learning else "no-learning"
        totals["PO-decisions (%s)" % tag] = po_cost
        totals["TO-decisions (%s)" % tag] = to_cost

    save("ablation_learning.txt", render_kv("Learning ablation (total decisions)", totals))

    # Learning must help both variants on this sample.
    assert totals["PO-decisions (learning)"] <= totals["PO-decisions (no-learning)"]
    assert totals["TO-decisions (learning)"] <= totals["TO-decisions (no-learning)"]
    # And PO stays ahead of TO with learning enabled.
    assert totals["PO-decisions (learning)"] <= totals["TO-decisions (learning)"] * 1.2


def test_cube_lengths_shorter_under_tree(benchmark):
    """The Section VII-C effect: goods are shorter under the tree prefix."""
    tree = diameter_qbf(SemaphoreModel(2), 2, "tree")
    flat = diameter_qbf(SemaphoreModel(2), 2, "prenex")

    def run_pair():
        po = solve_po(tree, budget=BUDGET)
        to = solve_po(flat, budget=BUDGET)
        return po, to

    po, to = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    from repro.core.solver import QdpllSolver, SolverConfig

    po_solver = QdpllSolver(tree, SolverConfig(max_decisions=BUDGET.decisions))
    po_solver.solve()
    to_solver = QdpllSolver(flat, SolverConfig(max_decisions=BUDGET.decisions))
    to_solver.solve()
    po_avg = po_solver.stats.learned_cube_lits / max(1, po_solver.stats.learned_cubes)
    to_avg = to_solver.stats.learned_cube_lits / max(1, to_solver.stats.learned_cubes)
    save(
        "ablation_cube_lengths.txt",
        render_kv(
            "Average learned good length (Section VII-C effect)",
            {"tree prefix (PO)": "%.1f literals" % po_avg,
             "total order (TO)": "%.1f literals" % to_avg},
        ),
    )
    assert po_avg < to_avg
