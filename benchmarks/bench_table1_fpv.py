"""Table I, row 5: QUBE(TO) vs QUBE(PO) on the FPV suite (∃↑∀↑).

Paper shape: the odds are on QUBE(PO)'s side, but less impressively than
on NCF — QUBE(TO) wins some instances because the two engines branch on
different literals.
"""

from common import FPV_BUDGET, save
from repro.evalx.runner import solve_po, solve_to
from repro.evalx.table1 import build_row, render_table
from repro.generators.fpv import FpvParams, generate_fpv

TIE_MARGIN = 50


def test_table1_fpv(benchmark, fpv_results):
    phi = generate_fpv(FpvParams(seed=1))

    def representative_pair():
        to = solve_to(phi, strategy="eu_au", budget=FPV_BUDGET)
        po = solve_po(phi, budget=FPV_BUDGET)
        return to, po

    benchmark.pedantic(representative_pair, rounds=1, iterations=1)

    pairs = [(r.to_run("eu_au"), r.po_run) for r in fpv_results]
    row = build_row("FPV", "eu_au", pairs, tie_margin=TIE_MARGIN)
    save("table1_row5_fpv.txt", render_table([row]))

    # Shape: PO ahead (or at par) in aggregate; TO wins some instances.
    to_total = sum(r.to_run("eu_au").cost for r in fpv_results)
    po_total = sum(r.po_run.cost for r in fpv_results)
    assert po_total <= to_total * 1.1, (po_total, to_total)
    assert row.po_timeout_only <= row.to_timeout_only, row
