"""Figure 3: QUBE(TO)* vs QUBE(PO) on NCF, median cost per setting.

QUBE(TO)* is the virtual-best solver over the four prenexing strategies.
Paper shape: even against the virtual best, QUBE(PO) stays competitive and
never exhibits a timed-out median where QUBE(TO)* does.
"""

from common import NCF_BUDGET, save
from repro.evalx.runner import solve_po
from repro.evalx.scatter import setting_medians, summarize_scatter
from repro.evalx.report import render_scatter
from repro.generators.ncf import NcfParams, generate_ncf


def test_fig3_ncf_scatter(benchmark, ncf_results):
    phi = generate_ncf(NcfParams(dep=5, var=5, cls=15, lpc=5, seed=2))
    benchmark.pedantic(lambda: solve_po(phi, budget=NCF_BUDGET), rounds=1, iterations=1)

    runs = [(r.setting, r.to_best, r.po_run) for r in ncf_results]
    points = setting_medians(runs)
    save(
        "fig3_ncf_scatter.txt",
        render_scatter(points, title="Figure 3: QUBE(TO)* (y) vs QUBE(PO) (x), NCF medians"),
    )

    stats = summarize_scatter(points)
    # Shape: QUBE(PO) competitive with the virtual best — no PO-median
    # timeout without a TO*-median timeout (the paper's Figure-3 claim).
    assert stats["po_timeouts"] <= stats["to_timeouts"]
