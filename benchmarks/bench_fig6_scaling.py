"""Figure 6: scaling on counter<N> (growing diameter) and semaphore<N>
(growing model at constant diameter).

Paper shape: QUBE(PO) solves larger instances than QUBE(TO) before the
budget bites, and its cost curve grows more slowly with the tested length.
"""

import time

from common import save
from repro.evalx.runner import Budget, solve_po
from repro.evalx.suites import run_dia_scaling
from repro.evalx.report import render_scaling
from repro.smv.diameter import diameter_qbf
from repro.smv.models import CounterModel

# Decision-only, like the common.py budgets: the Figure-6 series stay
# serial (each point decides whether the series stops), so keeping the
# wall-clock cap off is what makes the curves machine-independent.
SCALING_BUDGET = Budget(decisions=8000)


def test_fig6_counter_scaling(benchmark):
    phi = diameter_qbf(CounterModel(3), 5, "tree")
    benchmark.pedantic(lambda: solve_po(phi, budget=SCALING_BUDGET), rounds=1, iterations=1)

    po_series, to_series = run_dia_scaling(
        "counter", sizes=(2, 3), budget=SCALING_BUDGET, max_n_cap=8
    )
    text = render_scaling(
        po_series + to_series,
        title="Figure 6 (left): diameter-test cost vs length, counter<N>",
    )
    save("fig6_counter_scaling.txt", text)

    for po_s, to_s in zip(po_series, to_series):
        po_total = sum(c for _, c, _ in po_s.points)
        to_total = sum(c for _, c, _ in to_s.points)
        # Shape: PO at least as cheap in total and never solving fewer
        # lengths than TO.
        assert po_total <= to_total * 1.3, (po_s.model_name, po_total, to_total)
        assert (po_s.largest_solved or -1) >= (to_s.largest_solved or -1)


def test_fig6_engine_comparison(benchmark):
    """Counters vs watched on the Figure-6 counter series.

    The two propagation backends are decision-for-decision identical, so
    every point of every series must carry the same cost under both; the
    comparison is pure wall-clock, recorded alongside the figure artefacts.
    """
    phi = diameter_qbf(CounterModel(3), 5, "tree")
    benchmark.pedantic(
        lambda: solve_po(phi, budget=SCALING_BUDGET, engine="watched"),
        rounds=1,
        iterations=1,
    )

    lines = [
        "Propagation backends on the Figure-6 counter series",
        "(identical decision counts at every point, by the engine contract)",
    ]
    for pure in (True, False):
        runs = {}
        for engine in ("counters", "watched"):
            start = time.monotonic()
            po_series, to_series = run_dia_scaling(
                "counter", sizes=(2, 3), budget=SCALING_BUDGET, max_n_cap=8,
                engine=engine, pure_literals=pure,
            )
            elapsed = time.monotonic() - start
            runs[engine] = (po_series, to_series, elapsed)

        ref_po, ref_to, ref_secs = runs["counters"]
        new_po, new_to, new_secs = runs["watched"]
        for ref_s, new_s in zip(ref_po + ref_to, new_po + new_to):
            assert [(n, c) for n, c, _ in ref_s.points] == [
                (n, c) for n, c, _ in new_s.points
            ], (ref_s.model_name, pure)

        lines += [
            "",
            "pure literals %s" % ("on (default config)" if pure else "off (certified-run config)"),
            "  engine     wall-clock   speedup",
            "  counters   %8.2fs      1.00x" % ref_secs,
            "  watched    %8.2fs    %6.2fx" % (new_secs, ref_secs / new_secs),
        ]
    save("fig6_engine_comparison.txt", "\n".join(lines))


def test_fig6_semaphore_scaling(benchmark):
    phi = diameter_qbf(CounterModel(2), 2, "tree")
    benchmark.pedantic(lambda: solve_po(phi, budget=SCALING_BUDGET), rounds=1, iterations=1)

    po_series, to_series = run_dia_scaling(
        "semaphore", sizes=(1, 2, 3), budget=SCALING_BUDGET, max_n_cap=4
    )
    text = render_scaling(
        po_series + to_series,
        title="Figure 6 (right): diameter-test cost vs length, semaphore<N>",
    )
    save("fig6_semaphore_scaling.txt", text)

    po_total = sum(c for s in po_series for _, c, _ in s.points)
    to_total = sum(c for s in to_series for _, c, _ in s.points)
    assert po_total <= to_total * 1.3, (po_total, to_total)
