"""Kernel throughput on the pinned Figure-6 counter series.

The pytest face of ``repro bench`` (see :mod:`repro.bench`): runs the full
series under both propagation backends with the pure-literal rule on and
off, asserts the decision-for-decision engine contract, pins the series'
decision counts to the PR-3 anchor, and leaves the schema-versioned
``BENCH_kernels.json`` report in ``benchmarks/results/`` next to the other
reproduction artefacts. Wall-clock and throughput are recorded, never
asserted — only the platform-independent decision columns gate.
"""

import json
import os

from common import RESULTS_DIR, save
from repro.bench import FULL_SERIES, render_report, run_bench, run_series, write_report

#: Decision totals of the full series, fixed since the PR-3 layered engine
#: (pre-kernel) and reproduced literally by the flat-array kernels. The
#: series is pinned-seed and decision-budgeted, so these are exact on every
#: host. Update them *deliberately* when a PR intends to change the search
#: (heuristic or propagation-order changes) — never to quiet a failure.
PINNED_DECISIONS = {True: 13103, False: 35669}


def test_kernel_bench(benchmark):
    kwargs = dict(engine="counters", pure=True, **FULL_SERIES)
    benchmark.pedantic(lambda: run_series(**kwargs), rounds=1, iterations=1)

    report = run_bench()  # raises EngineDivergence on any identity break
    assert report["decision_identity_ok"]
    for config in report["configs"]:
        pure = config["pure_literals"]
        assert config["decisions"] == PINNED_DECISIONS[pure], (
            config["key"], config["decisions"], PINNED_DECISIONS[pure],
        )

    write_report(report, os.path.join(RESULTS_DIR, "BENCH_kernels.json"))
    save("BENCH_kernels.txt", render_report(report))
    # round-trip: the artefact must parse and carry its schema tag
    with open(os.path.join(RESULTS_DIR, "BENCH_kernels.json")) as handle:
        assert json.load(handle)["schema"] == "repro-bench/1"
