"""Figure 4: QUBE(TO) vs QUBE(PO) scatter on the FPV suite.

Paper shape: bullets mostly above the diagonal (PO wins), but with a
visible population below it — TO is sometimes faster on FPV.
"""

from common import FPV_BUDGET, save
from repro.evalx.runner import solve_po
from repro.evalx.scatter import pair_point, summarize_scatter
from repro.evalx.report import render_scatter
from repro.generators.fpv import FpvParams, generate_fpv


def test_fig4_fpv_scatter(benchmark, fpv_results):
    phi = generate_fpv(FpvParams(seed=3))
    benchmark.pedantic(lambda: solve_po(phi, budget=FPV_BUDGET), rounds=1, iterations=1)

    points = [pair_point(r.instance, r.to_run("eu_au"), r.po_run) for r in fpv_results]
    save(
        "fig4_fpv_scatter.txt",
        render_scatter(points, title="Figure 4: QUBE(TO) (y) vs QUBE(PO) (x), FPV"),
    )

    # Shape: near-parity with the odds on PO's side in aggregate (the paper
    # notes TO is "sometimes faster" on FPV; at our scales the margin is
    # small, see EXPERIMENTS.md).
    to_total = sum(p.to_cost for p in points)
    po_total = sum(p.po_cost for p in points)
    assert po_total <= to_total * 1.1, (po_total, to_total)
