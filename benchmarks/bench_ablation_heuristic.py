"""Ablation: the Section VI branching score variants on tree inputs.

Compares the reproduction's default QUBE(PO) policy (``levelsub``: prefix
position first, then the subtree score) against the pure Section VI score
(``subtree``), the tree-blind counter ranking (``counter``) and the naive
static order — on the same non-prenex instances. Expected shape: the two
prefix-aware policies dominate the tree-blind ones on the DIA sample, and
``levelsub`` is the best overall (the reason it is the default; see the
heuristics module docstring).
"""

from common import save
from repro.evalx.runner import Budget, solve_po
from repro.evalx.report import render_kv
from repro.generators.ncf import NcfParams, generate_ncf
from repro.smv.diameter import diameter_qbf
from repro.smv.models import DmeModel, RingModel, SemaphoreModel

BUDGET = Budget(decisions=6000, seconds=15.0)
POLICIES = ("levelsub", "subtree", "counter", "naive")


def _sample():
    instances = [
        ("sem2-n2", diameter_qbf(SemaphoreModel(2), 2, "tree")),
        ("sem3-n1", diameter_qbf(SemaphoreModel(3), 1, "tree")),
        ("dme4-n3", diameter_qbf(DmeModel(4), 3, "tree")),
        ("ring3-n2", diameter_qbf(RingModel(3), 2, "tree")),
    ]
    for seed in range(3):
        instances.append(
            ("ncf-%d" % seed, generate_ncf(NcfParams(dep=6, var=4, cls=12, lpc=5, seed=seed)))
        )
    return instances


def test_ablation_heuristic(benchmark):
    sample = _sample()
    benchmark.pedantic(
        lambda: solve_po(sample[0][1], budget=BUDGET, policy="levelsub"),
        rounds=1,
        iterations=1,
    )

    totals = {}
    timeouts = {}
    for policy in POLICIES:
        cost = 0
        t_outs = 0
        for label, phi in sample:
            m = solve_po(phi, label, budget=BUDGET, policy=policy)
            cost += m.cost
            t_outs += int(m.timed_out)
        totals[policy] = cost
        timeouts[policy] = t_outs

    save(
        "ablation_heuristic.txt",
        render_kv(
            "Branching-policy ablation (total decisions on tree inputs)",
            {p: "%d decisions, %d timeouts" % (totals[p], timeouts[p]) for p in POLICIES},
        ),
    )

    # Shape: the default prefix-aware policy beats the tree-blind ones.
    assert totals["levelsub"] <= totals["counter"]
    assert timeouts["levelsub"] <= min(timeouts[p] for p in POLICIES)
