"""Table I, rows 1-4: QUBE(TO) vs QUBE(PO) on NCF, one row per strategy.

Paper shape to reproduce: QUBE(PO) outperforms QUBE(TO) under *every*
prenexing strategy, and ∃↑∀↑ is the strategy that hurts QUBE(TO) least.
"""

from common import NCF_BUDGET, save
from repro.evalx.table1 import build_row, render_table
from repro.evalx.runner import solve_po, solve_to
from repro.generators.ncf import NcfParams, generate_ncf
from repro.prenexing.strategies import STRATEGIES

#: tie margin in decisions, the stand-in for the paper's "within 1 s".
TIE_MARGIN = 50


def test_table1_ncf(benchmark, ncf_results):
    phi = generate_ncf(NcfParams(dep=6, var=4, cls=12, lpc=5, seed=0))

    def representative_pair():
        to = solve_to(phi, strategy="eu_au", budget=NCF_BUDGET)
        po = solve_po(phi, budget=NCF_BUDGET)
        return to, po

    benchmark.pedantic(representative_pair, rounds=1, iterations=1)

    rows = []
    for strategy in STRATEGIES:
        pairs = [(r.to_run(strategy), r.po_run) for r in ncf_results]
        rows.append(build_row("NCF", strategy, pairs, tie_margin=TIE_MARGIN))
    save("table1_rows1-4_ncf.txt", render_table(rows))

    # Shape: PO ahead (or at par) in aggregate decisions under every
    # strategy, and never with more one-sided timeouts than TO.
    for strategy in STRATEGIES:
        to_total = sum(r.to_run(strategy).cost for r in ncf_results)
        po_total = sum(r.po_run.cost for r in ncf_results)
        assert po_total <= to_total * 1.1, (strategy, po_total, to_total)
    for row in rows:
        assert row.po_timeout_only <= row.to_timeout_only, row
