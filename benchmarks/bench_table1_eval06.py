"""Table I, rows 7-8: the QBFEVAL'06-style probabilistic and fixed classes.

Paper shape: most instances are filtered out (scope minimization finds no
tangible structure); among the survivors QUBE(PO) is ahead in most cases.
"""

from common import EVAL06_BUDGET, save
from repro.evalx.runner import solve_po, solve_to
from repro.evalx.suites import eval06_instances
from repro.evalx.table1 import build_row, render_table
from repro.prenexing.miniscoping import miniscope

TIE_MARGIN = 50


def test_table1_eval06(benchmark, eval06_results):
    label, phi = eval06_instances("fixed", count=1)[0]
    tree = miniscope(phi)

    def representative_pair():
        to = solve_to(phi, strategy="eu_au", budget=EVAL06_BUDGET)
        po = solve_po(tree, budget=EVAL06_BUDGET)
        return to, po

    benchmark.pedantic(representative_pair, rounds=1, iterations=1)

    rows = []
    for kind in ("prob", "fixed"):
        pairs = [(r.to_run("eu_au"), r.po_run) for r in eval06_results[kind]]
        rows.append(build_row(kind.upper(), "eu_au", pairs, tie_margin=TIE_MARGIN))
    filtered_note = (
        "filter (footnote 9, PO/TO > 20%%): prob kept %d dropped %d; "
        "fixed kept %d dropped %d"
        % (
            len(eval06_results["prob"]),
            eval06_results["prob_filtered"],
            len(eval06_results["fixed"]),
            eval06_results["fixed_filtered"],
        )
    )
    save("table1_rows7-8_eval06.txt", render_table(rows) + "\n" + filtered_note)

    # Shape: PO at par or ahead in aggregate on both survivor pools.
    for kind in ("prob", "fixed"):
        to_total = sum(r.to_run("eu_au").cost for r in eval06_results[kind])
        po_total = sum(r.po_run.cost for r in eval06_results[kind])
        assert po_total <= to_total * 1.1, (kind, po_total, to_total)
    # Some instances must have been dropped by the structure filter.
    assert eval06_results["prob_filtered"] > 0
