"""Figure 5: QUBE(TO) vs QUBE(PO) scatter on the DIA suite.

Paper shape: QUBE(PO) substantially and consistently faster; QUBE(TO) never
ahead by more than noise.
"""

from common import DIA_BUDGET, save
from repro.evalx.runner import solve_po
from repro.evalx.scatter import pair_point, summarize_scatter
from repro.evalx.report import render_scatter
from repro.smv.diameter import diameter_qbf
from repro.smv.models import SemaphoreModel


def test_fig5_dia_scatter(benchmark, dia_results):
    phi = diameter_qbf(SemaphoreModel(3), 2, "tree")
    benchmark.pedantic(lambda: solve_po(phi, budget=DIA_BUDGET), rounds=1, iterations=1)

    points = [pair_point(r.instance, r.to_run("eu_au"), r.po_run) for r in dia_results]
    save(
        "fig5_dia_scatter.txt",
        render_scatter(points, title="Figure 5: QUBE(TO) (y) vs QUBE(PO) (x), DIA"),
    )

    stats = summarize_scatter(points)
    to_total = sum(p.to_cost for p in points)
    po_total = sum(p.po_cost for p in points)
    assert po_total <= to_total * 1.1, (po_total, to_total)
    assert stats["po_timeouts"] <= stats["to_timeouts"]
