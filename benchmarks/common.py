"""Shared helpers for the benchmark harness.

Every benchmark writes its rendered table/figure to ``benchmarks/results/``
and prints it, so a ``pytest benchmarks/ --benchmark-only`` run leaves the
full reproduction record on disk. Budgets here are the reproduction's
"timeouts" (see repro.evalx.runner).
"""

from __future__ import annotations

import os
from typing import List

from repro.evalx.runner import Budget

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: suite budgets (decisions stand in for the paper's 600 s / 3600 s caps).
NCF_BUDGET = Budget(decisions=5000, seconds=12.0)
FPV_BUDGET = Budget(decisions=5000, seconds=12.0)
DIA_BUDGET = Budget(decisions=6000, seconds=20.0)
EVAL06_BUDGET = Budget(decisions=4000, seconds=10.0)

NCF_INSTANCES_PER_SETTING = 3
FPV_COUNT = 20
EVAL06_COUNT = 24
DIA_MAX_N = 6


def save(name: str, text: str) -> None:
    """Write a rendered artefact and echo it to stdout."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print("\n" + "=" * 72)
    print(text)
    print("(saved to %s)" % path)


def po_vs_to_counts(results) -> dict:
    """Quick aggregate used by shape assertions."""
    po_wins = sum(1 for r in results if r.to_best.cost > r.po_run.cost)
    to_wins = sum(1 for r in results if r.po_run.cost > r.to_best.cost)
    to_timeouts = sum(1 for r in results if r.to_best.timed_out)
    po_timeouts = sum(1 for r in results if r.po_run.timed_out)
    return {
        "po_wins": po_wins,
        "to_wins": to_wins,
        "to_timeouts": to_timeouts,
        "po_timeouts": po_timeouts,
        "total": len(results),
    }
