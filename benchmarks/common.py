"""Shared helpers for the benchmark harness.

Every benchmark writes its rendered table/figure to ``benchmarks/results/``
and prints it, so a ``pytest benchmarks/ --benchmark-only`` run leaves the
full reproduction record on disk. Budgets here are the reproduction's
"timeouts" (see repro.evalx.runner).

Environment knobs (all optional):

* ``REPRO_JOBS=N`` — fan the suite sweeps out over N worker processes via
  :mod:`repro.evalx.parallel` (default 1: the serial legacy path).
* ``REPRO_RESULTS_DIR=dir`` — persist every raw measurement as JSONL under
  ``dir`` and make interrupted benchmark sessions resumable (recorded runs
  are skipped on the next invocation). Off by default so a fresh run after
  a solver change can never be contaminated by stale records.
* ``REPRO_HARD_TIMEOUT=seconds`` — hard per-run cap, enforced by killing
  the worker (only effective with ``REPRO_JOBS > 1``).
* ``REPRO_ENGINE=counters|watched`` — propagation backend for every suite
  run. Decision counts are engine-independent by contract, so recorded
  artefacts are comparable across engines; only wall-clock moves.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.core.solver import default_engine
from repro.evalx.runner import Budget

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: suite budgets (decisions stand in for the paper's 600 s / 3600 s caps).
#: The budgets are decision-only on purpose: a cooperative wall-clock cap
#: would censor runs early on slow machines and make the recorded decision
#: counts nondeterministic across hosts. Hard wall-clock protection against
#: pathological instances is the parallel harness's job (worker kills, see
#: HARD_TIMEOUT_SECONDS), which never biases a completed measurement.
NCF_BUDGET = Budget(decisions=5000)
FPV_BUDGET = Budget(decisions=5000)
DIA_BUDGET = Budget(decisions=6000)
EVAL06_BUDGET = Budget(decisions=4000)

NCF_INSTANCES_PER_SETTING = 3
FPV_COUNT = 20
EVAL06_COUNT = 24
DIA_MAX_N = 6

#: parallel-harness knobs threaded into every suite fixture (conftest.py).
JOBS = int(os.environ.get("REPRO_JOBS", "1"))
HARD_TIMEOUT_SECONDS = float(os.environ.get("REPRO_HARD_TIMEOUT", "120"))
RESULTS_JSONL_DIR: Optional[str] = os.environ.get("REPRO_RESULTS_DIR")
ENGINE = default_engine()


def suite_run_options(suite: str) -> dict:
    """jobs/results_path/wall_timeout/engine kwargs for one run_* call."""
    results_path = None
    if RESULTS_JSONL_DIR:
        os.makedirs(RESULTS_JSONL_DIR, exist_ok=True)
        results_path = os.path.join(RESULTS_JSONL_DIR, "%s_runs.jsonl" % suite)
    return {
        "jobs": JOBS,
        "results_path": results_path,
        "wall_timeout": HARD_TIMEOUT_SECONDS if JOBS > 1 else None,
        "engine": ENGINE,
    }


def save(name: str, text: str) -> None:
    """Write a rendered artefact and echo it to stdout."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print("\n" + "=" * 72)
    print(text)
    print("(saved to %s)" % path)


def po_vs_to_counts(results) -> dict:
    """Quick aggregate used by shape assertions."""
    po_wins = sum(1 for r in results if r.to_best.cost > r.po_run.cost)
    to_wins = sum(1 for r in results if r.po_run.cost > r.to_best.cost)
    to_timeouts = sum(1 for r in results if r.to_best.timed_out)
    po_timeouts = sum(1 for r in results if r.po_run.timed_out)
    return {
        "po_wins": po_wins,
        "to_wins": to_wins,
        "to_timeouts": to_timeouts,
        "po_timeouts": po_timeouts,
        "total": len(results),
    }
