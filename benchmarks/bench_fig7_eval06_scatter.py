"""Figure 7: scatter on the scope-minimized probabilistic/fixed instances.

Paper shape: few points (the structure filter drops most instances); the
results favour QUBE(PO) in most cases.
"""

from common import EVAL06_BUDGET, save
from repro.evalx.runner import solve_po
from repro.evalx.scatter import pair_point, summarize_scatter
from repro.evalx.report import render_scatter
from repro.evalx.suites import eval06_instances
from repro.prenexing.miniscoping import miniscope


def test_fig7_eval06_scatter(benchmark, eval06_results):
    _, phi = eval06_instances("prob", count=1)[0]
    tree = miniscope(phi)
    benchmark.pedantic(lambda: solve_po(tree, budget=EVAL06_BUDGET), rounds=1, iterations=1)

    points = []
    for kind in ("prob", "fixed"):
        for r in eval06_results[kind]:
            points.append(pair_point(r.instance, r.to_run("eu_au"), r.po_run))
    save(
        "fig7_eval06_scatter.txt",
        render_scatter(
            points,
            title="Figure 7: QUBE(TO) (y) vs QUBE(PO) (x), PROB+FIXED after miniscoping",
        ),
    )

    to_total = sum(p.to_cost for p in points)
    po_total = sum(p.po_cost for p in points)
    assert po_total <= to_total * 1.1, (po_total, to_total)
