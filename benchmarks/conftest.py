"""Session-scoped suite runs shared by the table and figure benchmarks.

The heavy solving happens once per pytest session; individual benchmarks
time representative solver calls and aggregate/render from these fixtures.
"""

from __future__ import annotations

import sys
import os

sys.path.insert(0, os.path.dirname(__file__))

import pytest

from common import (
    DIA_BUDGET,
    DIA_MAX_N,
    EVAL06_BUDGET,
    EVAL06_COUNT,
    FPV_BUDGET,
    FPV_COUNT,
    NCF_BUDGET,
    NCF_INSTANCES_PER_SETTING,
    suite_run_options,
)
from repro.evalx.suites import run_dia, run_eval06, run_fpv, run_ncf

# The suites run through the fault-isolated batch harness: REPRO_JOBS>1
# parallelizes the sweep, REPRO_RESULTS_DIR makes it resumable (see
# common.py for the knobs). With the defaults this is exactly the legacy
# serial in-process execution.


@pytest.fixture(scope="session")
def ncf_results():
    return run_ncf(
        budget=NCF_BUDGET,
        instances=NCF_INSTANCES_PER_SETTING,
        **suite_run_options("ncf")
    )


@pytest.fixture(scope="session")
def fpv_results():
    return run_fpv(budget=FPV_BUDGET, count=FPV_COUNT, **suite_run_options("fpv"))


@pytest.fixture(scope="session")
def dia_results():
    return run_dia(budget=DIA_BUDGET, max_n_cap=DIA_MAX_N, **suite_run_options("dia"))


@pytest.fixture(scope="session")
def eval06_results():
    prob, prob_filtered = run_eval06(
        "prob", budget=EVAL06_BUDGET, count=EVAL06_COUNT, **suite_run_options("prob")
    )
    fixed, fixed_filtered = run_eval06(
        "fixed", budget=EVAL06_BUDGET, count=EVAL06_COUNT, **suite_run_options("fixed")
    )
    return {
        "prob": prob,
        "prob_filtered": prob_filtered,
        "fixed": fixed,
        "fixed_filtered": fixed_filtered,
    }
