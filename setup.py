"""Legacy setup shim so `pip install -e . --no-use-pep517` works offline
(the sandbox has setuptools but no `wheel` package).

Also declares the optional native propagation kernel (``repro._native``, a
plain C extension over the flat array layout — see DESIGN.md "Native
propagation kernel").  The build is best-effort: on a machine without a C
compiler the extension is skipped with a notice and the package installs
pure-Python, where ``--engine native`` falls back to the watched backend
(loudly — see repro.core.engine.native).  Build it in place for a source
checkout with::

    python setup.py build_ext --inplace
"""

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """Build the native kernel when possible; never fail the install.

    Any compiler/toolchain error degrades to a notice: the pure-Python
    backends are complete and decision-identical, the extension is purely a
    speed layer.  ``REPRO_REQUIRE_NATIVE=1`` (checked at *solve* time, not
    here) is the knob for refusing to run without it.
    """

    def run(self):
        try:
            super().run()
        except Exception as exc:  # toolchain missing entirely
            self._skip(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # compile/link failure for this extension
            self._skip(exc)

    def _skip(self, exc):
        print(
            "warning: building the optional native kernel failed (%s); "
            "installing pure-Python. `--engine native` will fall back to "
            "the watched backend." % (exc,)
        )


setup(
    ext_modules=[
        Extension(
            "repro._native",
            sources=["src/repro/_native.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)
