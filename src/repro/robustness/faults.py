"""Deterministic, seeded fault injection for the parallel harness.

A :class:`FaultPlan` assigns at most one fault to each task label
(``"instance|solver"``). Assignment is either explicit or drawn by a seeded
``random.Random`` over the sorted label set, so a given ``(seed, labels)``
pair always injects the same faults — the chaos tests in CI are exactly
reproducible.

Fault kinds and where they fire:

* ``crash`` — the worker raises :class:`InjectedFault` before solving
  (first attempt only); exercises crash-as-record plus backoff retry.
* ``hang`` — the worker sleeps past any wall timeout (first attempt only);
  exercises the parent's SIGTERM → grace → SIGKILL escalation and the
  hard-timeout retry.
* ``torn-append`` — :class:`repro.evalx.parallel.ResultsLog` writes the
  record's line half-finished, once; exercises torn-line tolerance on load
  and fingerprint-keyed re-running.
* ``torn-checkpoint`` — a garbage checkpoint file is planted where the
  task would resume from (first attempt only); exercises digest detection
  and the fall-back-to-fresh path.
* ``flip-verdict`` — the portfolio racer (:mod:`repro.portfolio.race`)
  inverts the labeled entrant's determinate outcome as it arrives;
  exercises cross-paradigm disagreement detection and certificate triage.
  Unlike the worker-side faults it fires on *every* arrival of the label
  (the triage re-solve bypasses the plan, so it still sees the truth).
* ``worker-oom`` — the worker raises :class:`MemoryError` before solving,
  exactly what an allocation hitting the ``RLIMIT_AS`` ceiling looks like;
  exercises the ``memout`` record classification and — at the serve layer —
  the circuit breaker that trips a repeatedly OOMing key. Unlike ``crash``
  it fires on *every* attempt: real memory blowups are deterministic, so a
  retry at the same ceiling must not quietly make the fault disappear.
* ``stuck-family`` — consulted by the serve daemon before an in-process
  SMV family solve; the solve stalls past the request deadline (one-shot
  per label), exercising stuck-solver detection, the family restart
  backoff, and the fall-back-to-scratch degradation path.

Worker-side faults other than ``worker-oom`` key off ``attempt == 1`` so
recovery, not the fault, decides the final record; the torn append and the
stuck family are one-shot per label within the process that owns the plan
object.
"""

from __future__ import annotations

import random
import time
from typing import Dict, Iterable, List, Optional, Set

CRASH = "crash"
HANG = "hang"
TORN_APPEND = "torn-append"
TORN_CHECKPOINT = "torn-checkpoint"
FLIP_VERDICT = "flip-verdict"
WORKER_OOM = "worker-oom"
STUCK_FAMILY = "stuck-family"
KINDS = (
    CRASH, HANG, TORN_APPEND, TORN_CHECKPOINT, FLIP_VERDICT, WORKER_OOM,
    STUCK_FAMILY,
)


class InjectedFault(RuntimeError):
    """Raised by a ``crash`` fault; indistinguishable from a real bug to
    the harness, which is the point."""


class FaultPlan:
    """One sweep's worth of scheduled failures.

    Either pass ``assignments`` (label → kind) directly, or pass counts and
    a seed and let :meth:`bind` draw victims from the task labels once they
    are known.
    """

    def __init__(
        self,
        seed: int = 0,
        crashes: int = 0,
        hangs: int = 0,
        torn_appends: int = 0,
        torn_checkpoints: int = 0,
        flip_verdicts: int = 0,
        worker_ooms: int = 0,
        stuck_families: int = 0,
        hang_seconds: float = 3600.0,
        assignments: Optional[Dict[str, str]] = None,
    ):
        self.seed = seed
        self.crashes = crashes
        self.hangs = hangs
        self.torn_appends = torn_appends
        self.torn_checkpoints = torn_checkpoints
        self.flip_verdicts = flip_verdicts
        self.worker_ooms = worker_ooms
        self.stuck_families = stuck_families
        self.hang_seconds = hang_seconds
        self.assignments: Optional[Dict[str, str]] = (
            dict(assignments) if assignments is not None else None
        )
        if self.assignments is not None:
            for label, kind in self.assignments.items():
                if kind not in KINDS:
                    raise ValueError("unknown fault kind %r for %r" % (kind, label))
        self._torn_done: Set[str] = set()
        self._stuck_done: Set[str] = set()

    @staticmethod
    def label(task) -> str:
        return "%s|%s" % (task.instance, task.solver)

    def bind(self, labels: Iterable[str]) -> None:
        """Draw fault victims from ``labels`` (idempotent once assigned).

        Deterministic: victims are sampled from the *sorted* label set with
        ``random.Random(seed)``, then matched to kinds in declaration
        order. With fewer labels than requested faults, the surplus faults
        are dropped (the plan never doubles up on one task).
        """
        if self.assignments is not None:
            return
        ordered = sorted(set(labels))
        wanted: List[str] = (
            [CRASH] * self.crashes
            + [HANG] * self.hangs
            + [TORN_APPEND] * self.torn_appends
            + [TORN_CHECKPOINT] * self.torn_checkpoints
            + [FLIP_VERDICT] * self.flip_verdicts
            + [WORKER_OOM] * self.worker_ooms
            + [STUCK_FAMILY] * self.stuck_families
        )
        rng = random.Random(self.seed)
        victims = rng.sample(ordered, min(len(wanted), len(ordered)))
        self.assignments = dict(zip(victims, wanted))

    def kind_for(self, label: str) -> Optional[str]:
        if self.assignments is None:
            return None
        return self.assignments.get(label)

    # -- injection points --------------------------------------------------

    def on_worker_start(self, task, attempt: int) -> None:
        """Worker-side faults, fired before the task executes."""
        kind = self.kind_for(self.label(task))
        if kind == WORKER_OOM:
            # Fires on every attempt: a real allocation that breaches the
            # address-space ceiling fails deterministically, retry or not.
            raise MemoryError(
                "injected allocation failure for %s" % self.label(task)
            )
        if attempt != 1:
            return
        if kind == CRASH:
            raise InjectedFault("injected crash for %s" % self.label(task))
        if kind == HANG:
            time.sleep(self.hang_seconds)
        if kind == TORN_CHECKPOINT:
            path = task.checkpoint_path()
            if path is not None:
                with open(path, "w") as fh:
                    fh.write('{"format": "repro-ckpt", "version": 1, "sha2')

    def flips_verdict(self, label: str) -> bool:
        """Should this entrant's determinate race outcome be inverted?

        Consulted by the portfolio racer on each arriving measurement (not
        one-shot: a rerun with the same plan must disagree the same way).
        The certificate-triage re-solve deliberately does not consult the
        plan, so triage always sides with the unflipped truth.
        """
        return self.kind_for(label) == FLIP_VERDICT

    def torn_append(self, label: str) -> bool:
        """Should this record's JSONL line be torn? One-shot per label."""
        if self.kind_for(label) == TORN_APPEND and label not in self._torn_done:
            self._torn_done.add(label)
            return True
        return False

    def stuck_family(self, label: str) -> bool:
        """Should this in-process family solve stall? One-shot per label,
        so the restarted family solver answers the retry honestly."""
        if self.kind_for(label) == STUCK_FAMILY and label not in self._stuck_done:
            self._stuck_done.add(label)
            return True
        return False

    # -- (de)serialization for the CLI -------------------------------------

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seed": self.seed,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "torn_appends": self.torn_appends,
            "torn_checkpoints": self.torn_checkpoints,
            "flip_verdicts": self.flip_verdicts,
            "worker_ooms": self.worker_ooms,
            "stuck_families": self.stuck_families,
            "hang_seconds": self.hang_seconds,
        }
        if self.assignments is not None:
            out["assignments"] = dict(self.assignments)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            crashes=int(data.get("crashes", 0)),
            hangs=int(data.get("hangs", 0)),
            torn_appends=int(data.get("torn_appends", 0)),
            torn_checkpoints=int(data.get("torn_checkpoints", 0)),
            flip_verdicts=int(data.get("flip_verdicts", 0)),
            worker_ooms=int(data.get("worker_ooms", 0)),
            stuck_families=int(data.get("stuck_families", 0)),
            hang_seconds=float(data.get("hang_seconds", 3600.0)),
            assignments=data.get("assignments"),
        )

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        import json

        with open(path, "r") as fh:
            return cls.from_dict(json.load(fh))
