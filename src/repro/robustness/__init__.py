"""Robustness layer: checkpoints, preemption and deterministic fault injection.

Three independent pieces that together make long sweeps preemptible and
recoverable:

* :mod:`repro.robustness.checkpoint` — versioned, digest-protected solver
  snapshots (learned constraints, branching scores, spent budget, and the
  chronological search frontier) that
  :meth:`repro.core.solver.QdpllSolver.solve` can flush on interruption and
  replay deterministically via ``resume_from=``.
* :mod:`repro.robustness.interrupt` — a SIGTERM/SIGINT-safe cooperative
  interrupt flag the engine polls alongside its budget checks, plus a
  context manager that installs and restores the signal handlers.
* :mod:`repro.robustness.faults` — a seeded, deterministic fault-injection
  plan (worker crashes, hangs, torn JSONL appends, truncated checkpoints)
  threaded through the parallel harness so every recovery path is exercised
  end-to-end in tests and CI.
"""

from repro.robustness.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    capture,
    load_checkpoint,
    restore,
    save_checkpoint,
)
from repro.robustness.faults import FaultPlan, InjectedFault
from repro.robustness.interrupt import InterruptFlag, global_flag, handling_signals

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "FaultPlan",
    "InjectedFault",
    "InterruptFlag",
    "capture",
    "global_flag",
    "handling_signals",
    "load_checkpoint",
    "restore",
    "save_checkpoint",
]
