"""Versioned solver checkpoints: serialize and replay a search frontier.

A checkpoint captures everything the engine has *earned* — learned clauses
and cubes, branching scores, spent budget — plus the chronological search
frontier itself: the full trail with per-level decision literals and flip
marks, every assignment's reason, and the propagation queue head. Restoring
rebuilds a fresh engine on the same formula, re-installs the learned
constraints at the empty trail (sound across interruptions for the same
reason incremental QBF solving keeps clauses across related solves), then
replays the trail through the backend's own ``assign``, which reconstructs
the occurrence counters and pure-literal sidecar exactly. The watched
backend's ``w1``/``w2``/``blocker`` memos are self-repairing cost-only
caches, so they need no restoring — the resumed run makes the same
decisions in the same order either way.

On disk a checkpoint is two lines of JSON: a header carrying the format
name, version and a SHA-256 of the payload line, then the payload itself.
Truncation, bit rot or a version bump all fail the header check and raise
:class:`CheckpointError`, which callers treat as "start fresh" — a corrupt
checkpoint can cost the saved work, never correctness.

The header also pins SHA-256 digests of the formula (its qtree
serialization) and of the behaviour-relevant config switches. Resuming
under a different budget or a different propagation backend is legal (both
leave the decision sequence unchanged); resuming a different formula or a
different heuristic/learning configuration is rejected.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.engine.backend import PURE, Rec
from repro.core.engine.config import SolverConfig
from repro.core.formula import QBF
from repro.core.result import SolverStats
from repro.io import qtree

CHECKPOINT_FORMAT = "repro-ckpt"
CHECKPOINT_VERSION = 1

#: reason tags for trail replay: decision/flip, pure literal, clause, cube.
_R_DECISION = "d"
_R_PURE = "p"
_R_CLAUSE = "c"
_R_CUBE = "u"


class CheckpointError(ValueError):
    """The checkpoint is missing, corrupt, or belongs to another run."""


def formula_digest(formula: QBF) -> str:
    return hashlib.sha256(qtree.dumps(formula).encode("utf-8")).hexdigest()


def config_digest(config: SolverConfig) -> str:
    """Digest of the switches that shape the decision sequence.

    ``engine`` is deliberately excluded (backends are decision-identical by
    contract), and so are ``max_decisions``/``max_seconds`` — resuming with
    a larger budget is the whole point.
    """
    payload = {
        "policy": config.policy,
        "learn_clauses": config.learn_clauses,
        "learn_cubes": config.learn_cubes,
        "pure_literals": config.pure_literals,
        "backjump": config.backjump,
        "decay_interval": config.decay_interval,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


@dataclass
class Checkpoint:
    """One serialized search frontier; see the module docstring."""

    formula_digest: str
    config_digest: str
    #: wall-clock seconds already spent across previous attempts.
    seconds: float
    #: every SolverStats counter at capture time.
    stats: Dict[str, int]
    #: ScoreKeeper activity (keys are signed literals) and decay phase.
    scores: Dict[int, float]
    since_decay: int
    #: learned constraints in insertion order (order matters: occurrence
    #: lists are scanned in installation order by the backend contract).
    learned_clauses: List[Tuple[int, ...]]
    learned_cubes: List[Tuple[int, ...]]
    #: the chronological frontier: trail literals, one reason tag per
    #: literal, per-level start positions, and the (literal, flipped)
    #: decision pairs for levels 1..N.
    trail_lits: List[int]
    reasons: List[Any]
    level_start: List[int]
    decisions: List[Tuple[int, bool]]
    queue_head: int
    pure_candidates: List[int]
    #: proof-logger continuation (id map + flags) and its recorded steps,
    #: present only when the interrupted run was certified into a memory
    #: sink; consumed by the evalx runner, ignored by ``restore``.
    proof: Optional[Dict[str, Any]] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "formula_digest": self.formula_digest,
            "config_digest": self.config_digest,
            "seconds": self.seconds,
            "stats": dict(self.stats),
            "scores": {str(lit): score for lit, score in self.scores.items()},
            "since_decay": self.since_decay,
            "learned_clauses": [list(lits) for lits in self.learned_clauses],
            "learned_cubes": [list(lits) for lits in self.learned_cubes],
            "trail_lits": list(self.trail_lits),
            "reasons": list(self.reasons),
            "level_start": list(self.level_start),
            "decisions": [[lit, bool(flip)] for lit, flip in self.decisions],
            "queue_head": self.queue_head,
            "pure_candidates": sorted(self.pure_candidates),
            "proof": self.proof,
            "extra": self.extra,
        }

    @classmethod
    def from_payload(cls, data: Dict[str, Any]) -> "Checkpoint":
        try:
            return cls(
                formula_digest=data["formula_digest"],
                config_digest=data["config_digest"],
                seconds=float(data["seconds"]),
                stats={k: int(v) for k, v in data["stats"].items()},
                scores={int(k): float(v) for k, v in data["scores"].items()},
                since_decay=int(data["since_decay"]),
                learned_clauses=[tuple(l) for l in data["learned_clauses"]],
                learned_cubes=[tuple(l) for l in data["learned_cubes"]],
                trail_lits=[int(l) for l in data["trail_lits"]],
                reasons=list(data["reasons"]),
                level_start=[int(p) for p in data["level_start"]],
                decisions=[(int(l), bool(f)) for l, f in data["decisions"]],
                queue_head=int(data["queue_head"]),
                pure_candidates=[int(v) for v in data["pure_candidates"]],
                proof=data.get("proof"),
                extra=dict(data.get("extra") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError("malformed checkpoint payload: %s" % exc)


# -- file format ------------------------------------------------------------


def save_checkpoint(ckpt: Checkpoint, path: str) -> None:
    """Write atomically: temp file in the same directory, fsync, rename."""
    payload = json.dumps(ckpt.to_payload(), sort_keys=True, separators=(",", ":"))
    header = json.dumps(
        {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "sha256": hashlib.sha256(payload.encode("utf-8")).hexdigest(),
        },
        sort_keys=True,
    )
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(prefix=".ckpt-", dir=directory)
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(header + "\n" + payload + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_checkpoint(path: str) -> Checkpoint:
    """Parse and digest-verify a checkpoint file.

    Raises :class:`CheckpointError` on any defect — missing file, torn
    write, wrong format/version, digest mismatch, malformed payload.
    """
    try:
        with open(path, "r") as fh:
            text = fh.read()
    except OSError as exc:
        raise CheckpointError("cannot read checkpoint %s: %s" % (path, exc))
    head, sep, body = text.partition("\n")
    if not sep:
        raise CheckpointError("truncated checkpoint (no payload line)")
    body = body.rstrip("\n")
    try:
        header = json.loads(head)
    except ValueError:
        raise CheckpointError("unparseable checkpoint header")
    if not isinstance(header, dict) or header.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError("not a %s file" % CHECKPOINT_FORMAT)
    if header.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            "unsupported checkpoint version %r" % (header.get("version"),)
        )
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    if digest != header.get("sha256"):
        raise CheckpointError("checkpoint payload fails its digest (torn write?)")
    try:
        payload = json.loads(body)
    except ValueError:
        raise CheckpointError("unparseable checkpoint payload")
    return Checkpoint.from_payload(payload)


# -- capture ----------------------------------------------------------------


def capture(engine, seconds: float = 0.0, extra: Optional[Dict[str, Any]] = None) -> Checkpoint:
    """Snapshot ``engine`` at a quiescent point (between budget checks).

    The engine must be at one of its ``_should_stop`` sites: either a
    propagation fixpoint before a decision, or just after a backjump — in
    both states the trail plus ``queue_head`` is a complete description of
    where propagation stands.
    """
    trail = engine.trail
    backend = engine.backend
    frontier = trail.snapshot()
    reasons: List[Any] = []
    for lit in frontier["lits"]:
        reason = trail.reason[abs(lit)]
        if reason is None:
            reasons.append(_R_DECISION)
        elif reason is PURE:
            reasons.append(_R_PURE)
        elif isinstance(reason, Rec):
            tag = _R_CUBE if reason.is_cube else _R_CLAUSE
            reasons.append([tag, list(reason.lits)])
        else:  # pragma: no cover - would be an engine invariant violation
            raise CheckpointError("unserializable reason for literal %d" % lit)
    keeper = engine._keeper
    proof_state = None
    extras = dict(extra or {})
    logger = engine._proof
    if logger is not None and hasattr(logger, "export_state"):
        proof_state = logger.export_state()
        steps = getattr(getattr(logger, "_sink", None), "steps", None)
        if steps is not None:
            extras["proof_steps"] = [dict(step) for step in steps]
    return Checkpoint(
        formula_digest=formula_digest(engine.formula),
        config_digest=config_digest(engine.config),
        seconds=seconds,
        stats={
            # Counters only: engine_fallback (a string) describes how *this*
            # run resolved its backend, which the resuming process decides
            # afresh for itself.
            f.name: getattr(engine.stats, f.name)
            for f in dataclasses.fields(SolverStats)
            if isinstance(getattr(engine.stats, f.name), int)
        },
        scores=dict(keeper.score),
        since_decay=keeper._since_decay,
        learned_clauses=list(backend.learned_clauses.keys()),
        learned_cubes=list(backend.learned_cubes.keys()),
        trail_lits=frontier["lits"],
        reasons=reasons,
        level_start=frontier["level_start"],
        decisions=frontier["decision"],
        queue_head=frontier["queue_head"],
        pure_candidates=sorted(backend.pure_candidates),
        proof=proof_state,
        extra=extras,
    )


# -- restore ----------------------------------------------------------------


def restore(engine, ckpt: Checkpoint) -> float:
    """Replay ``ckpt`` into a freshly constructed ``engine``.

    Returns the seconds already spent. Validates the digests *before*
    mutating anything, so a rejected restore leaves the engine untouched
    and callers can rerun it fresh. Proof-logger state is not applied here
    — certified resume composes the logger separately (see
    ``repro.evalx.runner``) because the engine does not own the step sink.
    """
    if engine.trail.lits or engine.stats.decisions:
        raise CheckpointError("restore requires a freshly constructed engine")
    if ckpt.formula_digest != formula_digest(engine.formula):
        raise CheckpointError("checkpoint was taken on a different formula")
    if ckpt.config_digest != config_digest(engine.config):
        raise CheckpointError("checkpoint was taken under a different configuration")

    backend = engine.backend
    trail = engine.trail
    # Learned constraints are re-installed at the empty trail: every counter
    # they contribute (occ_unsat, cube_count) then reflects the unassigned
    # state, and the trail replay below applies the same transitions the
    # original run did, converging on identical bookkeeping.
    for lits in ckpt.learned_clauses:
        backend.add_learned_clause(tuple(lits))
    for lits in ckpt.learned_cubes:
        backend.add_learned_cube(tuple(lits))

    clause_by_lits: Dict[Tuple[int, ...], Rec] = {
        rec.lits: rec for rec in backend.orig_clauses
    }
    clause_by_lits.update(backend.learned_clauses)
    cube_by_lits: Dict[Tuple[int, ...], Rec] = dict(backend.learned_cubes)

    def decode_reason(tagged: Any) -> object:
        if tagged == _R_DECISION:
            return None
        if tagged == _R_PURE:
            return PURE
        tag, lits = tagged
        table = cube_by_lits if tag == _R_CUBE else clause_by_lits
        rec = table.get(tuple(lits))
        if rec is None:
            raise CheckpointError("reason constraint %r is not in the database" % (lits,))
        return rec

    level = 0
    top = len(ckpt.level_start) - 1
    for idx, lit in enumerate(ckpt.trail_lits):
        while level < top and idx == ckpt.level_start[level + 1]:
            level += 1
            dlit, flipped = ckpt.decisions[level - 1]
            trail.open_level(dlit, flipped=flipped)
        backend.assign(lit, decode_reason(ckpt.reasons[idx]))
    while level < top:
        level += 1
        dlit, flipped = ckpt.decisions[level - 1]
        trail.open_level(dlit, flipped=flipped)

    if trail.lits != ckpt.trail_lits or trail.level_start != ckpt.level_start:
        raise CheckpointError("trail replay diverged from the checkpoint")
    trail.queue_head = ckpt.queue_head

    backend.pure_candidates.clear()
    backend.pure_candidates.update(ckpt.pure_candidates)

    # Heuristic scores and decay phase: overwrite in place so the resumed
    # engine ranks exactly as the interrupted one would have.
    keeper = engine._keeper
    keeper.score.update(ckpt.scores)
    keeper._since_decay = ckpt.since_decay
    keeper._dirty = True

    # Stats last: reconstruction above bumped counters (learned_*,
    # propagations, max_trail); the checkpoint values are authoritative.
    # Counters a (pre-upgrade) checkpoint does not carry keep their dataclass
    # default.  Non-counter fields (engine_fallback, a string) are never
    # checkpointed and keep whatever the resuming engine decided for itself.
    for f in dataclasses.fields(SolverStats):
        if isinstance(getattr(engine.stats, f.name), int):
            setattr(engine.stats, f.name, ckpt.stats.get(f.name, f.default))
    return ckpt.seconds
