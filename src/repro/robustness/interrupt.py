"""Cooperative interruption: a signal-safe flag the engine polls.

The engine cannot be preempted asynchronously — an assignment or a
backjump caught halfway would leave the trail and the occurrence counters
inconsistent, and a checkpoint written from that state would be garbage.
Instead, SIGTERM/SIGINT handlers set an :class:`InterruptFlag`, and
:meth:`SearchEngine.solve` polls it at exactly the points where it already
checks the budget — quiescence before a decision, and after every
conflict/solution analysis — where the solver state is a well-defined
search frontier that :mod:`repro.robustness.checkpoint` can serialize.

Setting a ``bool`` attribute is atomic under CPython and async-signal-safe
in the sense that matters here (no allocation, no locks), so the same flag
object can be installed directly as a signal handler.
"""

from __future__ import annotations

import signal
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple


class InterruptFlag:
    """A latching stop request; ``set`` doubles as a signal handler."""

    __slots__ = ("_set", "last_signal")

    def __init__(self) -> None:
        self._set = False
        #: the signal number that set the flag, when one did (diagnostics).
        self.last_signal: Optional[int] = None

    def set(self, signum: Optional[int] = None, frame: object = None) -> None:
        """Request a stop. Callable as ``signal.signal`` handler directly."""
        self._set = True
        if signum is not None:
            self.last_signal = signum

    def clear(self) -> None:
        self._set = False
        self.last_signal = None

    def is_set(self) -> bool:
        return self._set

    def __bool__(self) -> bool:
        return self._set


#: process-wide flag: worker processes and the CLI share one so deeply
#: nested code (runner → solver) needs no plumbing to observe a SIGTERM.
_GLOBAL = InterruptFlag()


def global_flag() -> InterruptFlag:
    """The process-wide interrupt flag (one per OS process; fork resets
    nothing, so pool workers must ``clear()`` it before installing their
    own handler)."""
    return _GLOBAL


@contextmanager
def handling_signals(
    flag: Optional[InterruptFlag] = None,
    signals: Tuple[int, ...] = (signal.SIGTERM, signal.SIGINT),
) -> Iterator[InterruptFlag]:
    """Route ``signals`` to ``flag.set`` for the duration of the block.

    Previous handlers are restored on exit, so the default Ctrl-C
    behaviour returns once the preemptible section is done.
    """
    flag = flag if flag is not None else _GLOBAL
    previous = {}
    for sig in signals:
        previous[sig] = signal.signal(sig, flag.set)
    try:
        yield flag
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
