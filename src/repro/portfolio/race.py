"""The portfolio racer: run several paradigms, keep the first verdict.

One :func:`race` call solves one instance with every entrant of the
portfolio concurrently (default: QUBE(TO) search, QUBE(PO) search, and the
expansion engine) and returns as soon as any entrant reports a determinate
TRUE/FALSE — the siblings are cancelled with the same SIGTERM → grace →
SIGKILL escalation the batch pool uses, so a cooperative entrant still
reports its partial (interrupted) measurement.

Entrants are ordinary :class:`repro.evalx.parallel.Task` objects executed
by :func:`repro.evalx.parallel.execute_task` in forked workers
(:func:`_worker_main`), which is what makes the race fault-isolated: a
crashing paradigm loses the race instead of taking the process down.
``jobs=1`` is the deterministic degenerate case — entrants run serially
in-process, in declaration order, stopping at the first verdict — so a
portfolio result is reproducible bit-for-bit when needed.

**Disagreement triage.** When two entrants both finish and claim opposite
verdicts (possible in the race window, and forced in CI by the
``flip-verdict`` fault), the racer re-solves the instance with the
proof-capable search paradigm under ``certify=True`` and sides with the
outcome backed by a VERIFIED certificate — the same rule as
:attr:`repro.evalx.runner.SolverDisagreement.winner`. Expansion cannot log
proofs (honest capability flag), so its claims can never outvote a
verified search certificate; if certification itself fails, the race
reports UNKNOWN with the disagreement attached rather than guessing.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.formula import QBF
from repro.core.result import Outcome
from repro.evalx.parallel import (
    STATUS_OK,
    Task,
    _mp_context,
    _worker_main,
    execute_task,
    measurement_from_dict,
)
from repro.evalx.runner import Budget, Measurement, solve_po
from repro.evalx.suites import paradigm_overrides
from repro.robustness.faults import FaultPlan

__all__ = ["DEFAULT_ENTRANTS", "ENTRANTS", "Entrant", "PortfolioResult", "race"]


@dataclass(frozen=True)
class Entrant:
    """One lane of the portfolio: a pipeline plus a paradigm.

    ``mode`` is the evalx pipeline ("to" prenexes first, "po" solves the
    tree as-is); ``paradigm`` selects the registered solving algorithm.
    """

    name: str
    mode: str
    paradigm: str = "search"

    def task(
        self, formula: QBF, instance: str, budget: Budget, strategy: str, engine: str
    ) -> Task:
        overrides: Tuple[Tuple[str, object], ...] = paradigm_overrides(self.paradigm)
        if engine != "counters" and self.paradigm == "search":
            overrides += (("engine", engine),)
        return Task(
            instance=instance,
            solver=self.name,
            formula=formula,
            mode=self.mode,
            strategy=strategy,
            budget=budget,
            overrides=overrides,
        )


#: the standard field: partial-order search, total-order search, expansion.
ENTRANTS: Dict[str, Entrant] = {
    "TO": Entrant("TO", "to", "search"),
    "PO": Entrant("PO", "po", "search"),
    "EXP": Entrant("EXP", "po", "expansion"),
}
#: declaration order doubles as the serial-mode priority: PO first (the
#: paper's structure-aware headline procedure, and empirically the best
#: single paradigm on the fig6 families), then TO, then expansion.
DEFAULT_ENTRANTS: Tuple[str, ...] = ("PO", "TO", "EXP")


@dataclass
class PortfolioResult:
    """One race's verdict and its provenance."""

    instance: str
    outcome: Outcome
    #: entrant whose verdict stands (None when every lane came back UNKNOWN
    #: or an unresolved disagreement forced the outcome to UNKNOWN).
    winner: Optional[str]
    #: wall-clock of the whole race, cancellation included.
    seconds: float
    #: concurrency the race actually used (requested jobs clamped to the
    #: machine's cores; 1 means the deterministic serial mode ran).
    jobs: int = 1
    #: measurements that made it back, in completion order (cancelled lanes
    #: that reported an interrupted partial measurement are included).
    measurements: List[Measurement] = field(default_factory=list)
    #: lanes cancelled (or never started) once the verdict was in.
    cancelled: List[str] = field(default_factory=list)
    #: lanes that crashed, with their error text.
    errors: Dict[str, str] = field(default_factory=dict)
    #: human-readable description when determinate lanes disagreed.
    disagreement: Optional[str] = None
    #: certificate-triage verdict for a disagreement (see :func:`race`).
    triage: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        from repro.evalx.parallel import measurement_to_dict

        out: Dict[str, object] = {
            "instance": self.instance,
            "outcome": self.outcome.value,
            "winner": self.winner,
            "seconds": self.seconds,
            "jobs": self.jobs,
            "measurements": [measurement_to_dict(m) for m in self.measurements],
            "cancelled": list(self.cancelled),
        }
        if self.errors:
            out["errors"] = dict(self.errors)
        if self.disagreement is not None:
            out["disagreement"] = self.disagreement
        if self.triage is not None:
            out["triage"] = self.triage
        return out


def _apply_flip(m: Measurement, label: str, faults: Optional[FaultPlan]) -> Measurement:
    """Parent-side flip-verdict injection (UNKNOWN stays UNKNOWN)."""
    if faults is None or not faults.flips_verdict(label) or m.timed_out:
        return m
    m.outcome = Outcome.FALSE if m.outcome is Outcome.TRUE else Outcome.TRUE
    m.certificate_status = None  # a flipped verdict cannot keep its proof
    return m


def _triage(
    formula: QBF,
    instance: str,
    budget: Budget,
    engine: str,
    determinate: Sequence[Measurement],
) -> Tuple[Outcome, Optional[str], Dict[str, object]]:
    """Certificate triage of a cross-paradigm disagreement.

    Re-solves with the proof-capable search paradigm (PO pipeline, the one
    that works on the original formula) under ``certify=True`` — a 4x
    decision budget, since certifying configs disable pure literals — and
    sides with the VERIFIED certificate, exactly as
    ``SolverDisagreement.winner`` does for TO/PO sweeps. Returns
    ``(outcome, winner_label, triage_info)``; outcome is UNKNOWN when the
    certificate could not settle it.
    """
    from repro.certify.checker import VERIFIED

    certified = solve_po(
        formula,
        instance,
        budget=Budget(decisions=budget.decisions * 4, seconds=budget.seconds),
        certify=True,
        engine=engine,
    )
    info: Dict[str, object] = {
        "certified_by": "PO/search",
        "certificate_status": certified.certificate_status,
        "certified_outcome": certified.outcome.value,
    }
    if certified.timed_out or certified.certificate_status != VERIFIED:
        info["resolved"] = False
        return Outcome.UNKNOWN, None, info
    truth = certified.outcome
    info["resolved"] = True
    info["losers"] = [m.solver for m in determinate if m.outcome is not truth]
    for m in determinate:
        if m.outcome is truth:
            return truth, m.solver, info
    # No racer claimed the certified truth (e.g. every determinate lane was
    # flipped); the certified run itself stands as the winner.
    return truth, "PO(certified)", info


def race(
    formula: QBF,
    instance: str = "",
    budget: Budget = Budget(),
    jobs: int = 3,
    entrants: Sequence[str] = DEFAULT_ENTRANTS,
    strategy: str = "eu_au",
    engine: str = "counters",
    run_all: bool = False,
    faults: Optional[FaultPlan] = None,
    wall_timeout: Optional[float] = None,
    term_grace: float = 2.0,
    poll_interval: float = 0.005,
) -> PortfolioResult:
    """Race the portfolio on one instance; first determinate verdict wins.

    Args:
        formula: the instance (prenex or tree; the TO lane prenexes it).
        jobs: requested concurrent lanes, clamped to the machine's cores:
            racing N CPU-bound lanes on fewer cores only adds timeslicing
            overhead to whichever lane would have won, so the racer never
            oversubscribes. ``1`` (requested or clamped) runs entrants
            serially in declaration order and stops at the first verdict —
            fully deterministic.
        entrants: entrant names from :data:`ENTRANTS`, or
            ``name:mode:paradigm`` triples for custom lanes.
        run_all: let every lane finish (no cancellation) and cross-check
            all verdicts — the agreement-audit mode CI's forced-
            disagreement check uses.
        faults: a :class:`FaultPlan`; ``crash``/``hang`` kinds fire in the
            workers as in batch sweeps, ``flip-verdict`` inverts the
            labeled lane's verdict on arrival (label = ``instance|name``).
        wall_timeout: hard per-lane seconds (pool mode only), with the
            usual SIGTERM → ``term_grace`` → SIGKILL escalation.
    """
    field_: List[Entrant] = []
    for name in entrants:
        if name in ENTRANTS:
            field_.append(ENTRANTS[name])
        else:
            parts = name.split(":")
            if len(parts) != 3:
                raise ValueError(
                    "unknown entrant %r (choose from %s or name:mode:paradigm)"
                    % (name, sorted(ENTRANTS))
                )
            field_.append(Entrant(parts[0], parts[1], parts[2]))
    if not field_:
        raise ValueError("empty portfolio")
    tasks = [e.task(formula, instance, budget, strategy, engine) for e in field_]
    if faults is not None:
        faults.bind(FaultPlan.label(t) for t in tasks)

    effective_jobs = max(1, min(jobs, len(tasks), os.cpu_count() or 1))
    start = time.perf_counter()
    if effective_jobs == 1:
        measurements, cancelled, errors = _race_serial(tasks, faults, run_all)
    else:
        measurements, cancelled, errors = _race_pool(
            tasks, effective_jobs, faults, run_all, wall_timeout, term_grace, poll_interval
        )
    seconds = time.perf_counter() - start

    determinate = [m for m in measurements if not m.timed_out]
    result = PortfolioResult(
        instance=instance,
        outcome=Outcome.UNKNOWN,
        winner=None,
        seconds=seconds,
        jobs=effective_jobs,
        measurements=measurements,
        cancelled=cancelled,
        errors=errors,
    )
    if not determinate:
        return result
    outcomes = {m.outcome for m in determinate}
    if len(outcomes) == 1:
        result.outcome = determinate[0].outcome
        result.winner = determinate[0].solver
        return result
    # Cross-paradigm disagreement: describe it, then let the certificate
    # checker arbitrate.
    result.disagreement = "; ".join(
        "%s=%s" % (m.solver, m.outcome.value) for m in determinate
    )
    result.outcome, result.winner, result.triage = _triage(
        formula, instance, budget, engine, determinate
    )
    return result


def _race_serial(
    tasks: Sequence[Task], faults: Optional[FaultPlan], run_all: bool
) -> Tuple[List[Measurement], List[str], Dict[str, str]]:
    """jobs=1: in-process, in order, stop at the first verdict."""
    import traceback

    measurements: List[Measurement] = []
    errors: Dict[str, str] = {}
    for i, task in enumerate(tasks):
        try:
            if faults is not None:
                faults.on_worker_start(task, 1)
            m = execute_task(task)
        except Exception:
            errors[task.solver] = traceback.format_exc()
            continue
        measurements.append(_apply_flip(m, FaultPlan.label(task), faults))
        if not run_all and not measurements[-1].timed_out:
            return measurements, [t.solver for t in tasks[i + 1 :]], errors
    return measurements, [], errors


def _race_pool(
    tasks: Sequence[Task],
    jobs: int,
    faults: Optional[FaultPlan],
    run_all: bool,
    wall_timeout: Optional[float],
    term_grace: float,
    poll_interval: float,
) -> Tuple[List[Measurement], List[str], Dict[str, str]]:
    """Forked lanes; first verdict SIGTERMs the rest (grace, then SIGKILL)."""
    ctx = _mp_context()
    queue = list(tasks)
    running: List[dict] = []
    measurements: List[Measurement] = []
    errors: Dict[str, str] = {}
    cancelled: List[str] = []
    have_verdict = False

    def spawn(task: Task) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker_main, args=(task, execute_task, child_conn, 1, faults), daemon=True
        )
        process.start()
        child_conn.close()
        now = time.monotonic()
        running.append(
            {
                "process": process,
                "conn": parent_conn,
                "task": task,
                "deadline": (now + wall_timeout) if wall_timeout is not None else None,
                "termed_at": None,
            }
        )

    def reap(slot: dict) -> None:
        running.remove(slot)
        slot["conn"].close()
        slot["process"].join(timeout=5.0)
        if slot["process"].is_alive():  # pragma: no cover - stuck worker
            slot["process"].kill()
            slot["process"].join()

    def cancel_siblings() -> None:
        nonlocal have_verdict
        have_verdict = True
        for waiting in queue:
            cancelled.append(waiting.solver)
        queue.clear()
        now = time.monotonic()
        for other in running:
            if other["termed_at"] is None:
                other["process"].terminate()
                other["termed_at"] = now

    try:
        while queue or running:
            while queue and len(running) < jobs and not have_verdict:
                spawn(queue.pop(0))
            progressed = False
            now = time.monotonic()
            for slot in list(running):
                task = slot["task"]
                payload = None
                try:
                    if slot["conn"].poll():
                        payload = slot["conn"].recv()
                except (EOFError, OSError):
                    payload = None
                if payload is not None:
                    reap(slot)
                    status, body = payload
                    if status == STATUS_OK and isinstance(body, dict):
                        m = _apply_flip(
                            measurement_from_dict(body), FaultPlan.label(task), faults
                        )
                        measurements.append(m)
                        if slot["termed_at"] is not None:
                            cancelled.append(task.solver)
                        elif not run_all and not m.timed_out and not have_verdict:
                            cancel_siblings()
                    else:
                        errors[task.solver] = body if isinstance(body, str) else "crash"
                    progressed = True
                elif not slot["process"].is_alive():
                    exitcode = slot["process"].exitcode
                    reap(slot)
                    if slot["termed_at"] is not None:
                        cancelled.append(task.solver)
                    else:
                        errors[task.solver] = (
                            "worker died without reporting (exitcode %s)" % (exitcode,)
                        )
                    progressed = True
                else:
                    termed = slot["termed_at"]
                    if termed is None and slot["deadline"] is not None and now > slot["deadline"]:
                        slot["process"].terminate()
                        slot["termed_at"] = now
                    elif termed is not None and now - termed > term_grace:
                        slot["process"].kill()
                        reap(slot)
                        cancelled.append(task.solver)
                        progressed = True
            if not progressed:
                time.sleep(poll_interval)
    finally:
        for slot in list(running):  # interrupted: leave no orphans behind
            slot["process"].terminate()
            reap(slot)
    return measurements, cancelled, errors
