"""``repro portfolio bench``: portfolio vs best-single on the fig6 series.

Runs the Figure-6 counter and semaphore diameter series twice over:

* each entrant alone — TO-search, PO-search, expansion — timed with the
  same wall-clock protocol the race uses (in-process ``execute_task``),
  which yields the per-family *best single paradigm*;
* the portfolio race per instance (``--jobs 3``, clamped to the machine's
  cores like every race), recording who won each instance.

The emitted ``BENCH_portfolio.json`` is schema-versioned and carries, per
family: the winner breakdown, every entrant's standalone wall-clock, the
portfolio's wall-clock, and the ratio against the best single paradigm —
the number the acceptance bound (≤ ``BOUND``x) is checked against. Like
``BENCH_kernels.json``, the decision counts are machine-independent and
comparable across reports; the seconds are host-specific.

The stopping rule matches ``run_dia_scaling``: a family's series stops at
the first length where the portfolio itself comes back UNKNOWN (every lane
budget-exhausted) — longer lengths only get harder.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.evalx.parallel import execute_task
from repro.evalx.runner import Budget, Measurement
from repro.portfolio.race import DEFAULT_ENTRANTS, ENTRANTS, race

#: bump on any change to the JSON layout so downstream tooling can dispatch.
SCHEMA = "repro-portfolio-bench/1"

#: the acceptance bound: portfolio wall-clock vs best single paradigm.
BOUND = 1.15

#: full mode covers the fig6 counter and semaphore families; quick mode is
#: the CI smoke — one family, one size, short budget, same stopping rule.
FULL_SERIES = dict(
    families=(("counter", (2, 3)), ("semaphore", (1, 2))),
    max_n_cap=4,
    budget_decisions=3000,
)
QUICK_SERIES = dict(
    families=(("counter", (2,)),),
    max_n_cap=2,
    budget_decisions=1500,
)


def _single_run(
    name: str, formula, instance: str, budget: Budget, strategy: str
) -> Tuple[Measurement, float]:
    """One standalone lane, timed like a race (task build + execution)."""
    start = time.perf_counter()
    task = ENTRANTS[name].task(formula, instance, budget, strategy, "counters")
    m = execute_task(task)
    return m, time.perf_counter() - start


def run_family(
    family: str,
    sizes: Sequence[int],
    max_n_cap: int,
    budget_decisions: int,
    jobs: int,
    entrants: Sequence[str] = DEFAULT_ENTRANTS,
    strategy: str = "eu_au",
) -> dict:
    """Bench one model family; returns its report section."""
    from repro.smv.diameter import diameter_qbf
    from repro.smv.models import model_by_name
    from repro.smv.reachability import eccentricity

    budget = Budget(decisions=budget_decisions)
    instances: List[dict] = []
    winners: Dict[str, int] = {}
    single_seconds: Dict[str, float] = {name: 0.0 for name in entrants}
    single_decisions: Dict[str, int] = {name: 0 for name in entrants}
    portfolio_seconds = 0.0
    for size in sizes:
        model = model_by_name(family, size)
        d = eccentricity(model)
        for n in range(min(d, max_n_cap) + 1):
            phi = diameter_qbf(model, n, "tree")
            label = "%s-n%d" % (model.name, n)
            singles: Dict[str, dict] = {}
            for name in entrants:
                m, wall = _single_run(name, phi, label, budget, strategy)
                single_seconds[name] += wall
                single_decisions[name] += m.decisions
                singles[name] = {
                    "outcome": m.outcome.value,
                    "decisions": m.decisions,
                    "seconds": wall,
                }
            result = race(
                phi, label, budget, jobs=jobs, entrants=entrants, strategy=strategy
            )
            portfolio_seconds += result.seconds
            if result.winner is not None:
                winners[result.winner] = winners.get(result.winner, 0) + 1
            instances.append(
                {
                    "instance": label,
                    "outcome": result.outcome.value,
                    "winner": result.winner,
                    "portfolio_seconds": result.seconds,
                    "jobs": result.jobs,
                    "singles": singles,
                }
            )
            if result.outcome.value == "unknown":
                # the series' stopping rule: every lane blew the budget;
                # longer lengths only get harder.
                break
    best_name = min(single_seconds, key=lambda k: single_seconds[k])
    best = single_seconds[best_name]
    ratio = portfolio_seconds / best if best > 0 else float("nan")
    return {
        "family": family,
        "sizes": list(sizes),
        "instances": instances,
        "winners": winners,
        "single_wall_seconds": single_seconds,
        "single_decisions": single_decisions,
        "portfolio_wall_seconds": portfolio_seconds,
        "best_single": {"entrant": best_name, "wall_seconds": best},
        "portfolio_vs_best_single": ratio,
        "within_bound": ratio <= BOUND,
    }


def run_portfolio_bench(
    quick: bool = False,
    jobs: int = 3,
    entrants: Sequence[str] = DEFAULT_ENTRANTS,
) -> dict:
    """Run every family; the full report for ``BENCH_portfolio.json``."""
    series = QUICK_SERIES if quick else FULL_SERIES
    families = [
        run_family(
            family,
            sizes,
            series["max_n_cap"],
            series["budget_decisions"],
            jobs,
            entrants=entrants,
        )
        for family, sizes in series["families"]
    ]
    return {
        "schema": SCHEMA,
        "generated_by": "repro portfolio bench",
        "mode": "quick" if quick else "full",
        "jobs_requested": jobs,
        "budget_decisions": series["budget_decisions"],
        "max_n_cap": series["max_n_cap"],
        "entrants": list(entrants),
        "bound": BOUND,
        "families": families,
        "all_within_bound": all(f["within_bound"] for f in families),
    }


def render_report(report: dict) -> str:
    """Human-readable summary table (stdout companion of the JSON)."""
    lines = [
        "repro portfolio bench — fig6 series, %s mode (jobs=%d requested)"
        % (report["mode"], report["jobs_requested"]),
        "entrants: %s  budget=%d decisions  bound=%.2fx"
        % (", ".join(report["entrants"]), report["budget_decisions"], report["bound"]),
        "",
        "  %-12s %-22s %12s %14s %8s %8s"
        % ("family", "winners", "portfolio", "best single", "ratio", "bound"),
    ]
    for fam in report["families"]:
        winners = ",".join("%s:%d" % kv for kv in sorted(fam["winners"].items())) or "-"
        best = fam["best_single"]
        lines.append(
            "  %-12s %-22s %11.2fs %8s %4.2fs %7.2fx %8s"
            % (
                fam["family"],
                winners,
                fam["portfolio_wall_seconds"],
                best["entrant"],
                best["wall_seconds"],
                fam["portfolio_vs_best_single"],
                "ok" if fam["within_bound"] else "OVER",
            )
        )
    lines.append("")
    lines.append(
        "portfolio within %.2fx of best single paradigm: %s"
        % (report["bound"], "yes" if report["all_within_bound"] else "NO")
    )
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
