"""Portfolio racing: TO-search / PO-search / expansion, first verdict wins.

The paper's structural thesis cuts both ways — some families reward the
partial order, some the total order, and expansion has complementary
strengths on both (Bloem et al., PAPERS.md). The portfolio runs all three
paradigms on one instance under the fault-isolated process pool and takes
the first determinate verdict, cancelling the siblings; cross-paradigm
disagreement is triaged by the certificate checker (see
:mod:`repro.portfolio.race`).
"""

from repro.portfolio.race import (
    DEFAULT_ENTRANTS,
    ENTRANTS,
    Entrant,
    PortfolioResult,
    race,
)

__all__ = [
    "DEFAULT_ENTRANTS",
    "ENTRANTS",
    "Entrant",
    "PortfolioResult",
    "race",
]
