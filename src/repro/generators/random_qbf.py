"""Random QBF generation.

Two families:

* :func:`random_prenex_qbf` — the fixed-clause-length random model the
  QBFEVAL'06 "probabilistic" class generalizes from the SAT literature [35]:
  a prenex prefix of alternating blocks and clauses of ``clause_len``
  distinct variables with random polarities. Clauses with no existential
  literal would be contradictory by Lemma 4 and make instances trivially
  false, so by default each clause is forced to contain at least one
  existential literal (the standard convention for random QBF models).

* :func:`random_tree_qbf` — random *non-prenex* QBFs: a random alternating
  quantifier tree, with every clause attached to a scope (a node of the
  tree) and drawing its variables from the path between the root and that
  scope. The path restriction keeps instances syntactically realizable as
  actual non-prenex formulas: a clause may only mention variables bound at
  the point of the formula where the clause occurs.

Both are deterministic given the :class:`random.Random` instance, which is
how every experiment in the reproduction is seeded.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.core.formula import QBF
from repro.core.literals import EXISTS, FORALL, Quant
from repro.core.prefix import Prefix, Spec


def _random_clause(
    rng: random.Random,
    pool: Sequence[int],
    clause_len: int,
    existential_vars: frozenset,
    ensure_existential: bool,
) -> Tuple[int, ...]:
    """One random clause over ``pool`` with distinct variables."""
    size = min(clause_len, len(pool))
    while True:
        chosen = rng.sample(list(pool), size)
        lits = tuple(v if rng.random() < 0.5 else -v for v in chosen)
        if not ensure_existential:
            return lits
        if any(abs(l) in existential_vars for l in lits):
            return lits
        # Re-roll: an all-universal clause is contradictory (Lemma 4).
        if not any(v in existential_vars for v in pool):
            # No existential variable visible at all; give up on the
            # requirement rather than loop forever.
            return lits


def random_prenex_qbf(
    rng: random.Random,
    num_blocks: int = 3,
    block_size: int = 2,
    num_clauses: int = 10,
    clause_len: int = 3,
    first: Quant = EXISTS,
    ensure_existential: bool = True,
) -> QBF:
    """A random prenex QBF with ``num_blocks`` alternating blocks."""
    blocks: List[Tuple[Quant, Tuple[int, ...]]] = []
    quant = first
    next_var = 1
    for _ in range(num_blocks):
        vs = tuple(range(next_var, next_var + block_size))
        next_var += block_size
        blocks.append((quant, vs))
        quant = quant.dual
    prefix = Prefix.linear(blocks)
    pool = prefix.variables
    existential_vars = frozenset(v for v in pool if prefix.quant(v) is EXISTS)
    clauses = [
        _random_clause(rng, pool, clause_len, existential_vars, ensure_existential)
        for _ in range(num_clauses)
    ]
    return QBF(prefix, clauses)


def random_tree_qbf(
    rng: random.Random,
    depth: int = 3,
    branching: int = 2,
    block_size: int = 2,
    clauses_per_scope: int = 2,
    clause_len: int = 3,
    root_quant: Quant = EXISTS,
    ensure_existential: bool = True,
) -> QBF:
    """A random non-prenex QBF over a random alternating quantifier tree.

    Args:
        rng: seeded random source.
        depth: number of alternation levels (1 = flat existential).
        branching: maximum children per internal node (actual count is
            uniform in ``1..branching``).
        block_size: variables per block.
        clauses_per_scope: clauses attached to every node of the tree.
        clause_len: literals per clause (capped by visible variables).
        root_quant: quantifier of the root block.
        ensure_existential: avoid trivially contradictory clauses.
    """
    next_var = [1]
    clauses: List[Tuple[int, ...]] = []
    existential_vars = set()
    scopes: List[List[int]] = []

    def grow(level: int, quant: Quant, path_vars: List[int]) -> Spec:
        vs = list(range(next_var[0], next_var[0] + block_size))
        next_var[0] += block_size
        if quant is EXISTS:
            existential_vars.update(vs)
        here = path_vars + vs
        scopes.append(here)
        children: List[Spec] = []
        if level < depth:
            for _ in range(rng.randint(1, branching)):
                children.append(grow(level + 1, quant.dual, here))
        return (quant, tuple(vs), tuple(children))

    roots = [grow(1, root_quant, [])]
    prefix = Prefix.tree(roots)
    frozen_exist = frozenset(existential_vars)
    for pool in scopes:
        for _ in range(clauses_per_scope):
            clauses.append(
                _random_clause(rng, pool, clause_len, frozen_exist, ensure_existential)
            )
    return QBF(prefix, clauses)


def random_qbf(rng: random.Random, prenex: Optional[bool] = None, **kwargs) -> QBF:
    """Convenience dispatcher used by the fuzz tests: either family."""
    if prenex is None:
        prenex = rng.random() < 0.5
    if prenex:
        return random_prenex_qbf(rng, **kwargs)
    return random_tree_qbf(rng, **kwargs)


def random_clustered_qbf(
    rng: random.Random,
    clusters: int = 2,
    num_blocks: int = 3,
    block_size: int = 1,
    clauses_per_cluster: int = 8,
    clause_len: int = 3,
    coupling: float = 0.1,
    first: Quant = EXISTS,
) -> QBF:
    """Random prenex QBF with ``clusters`` loosely coupled sub-games.

    This is the "probabilistic class" workload of the Figure-7 experiment:
    a prenex instance whose clauses mostly stay within one variable cluster
    (each cluster also has its own alternating sub-prefix, interleaved into
    the total order), with a ``coupling`` fraction of clauses drawing
    variables across clusters. At ``coupling = 0`` scope minimization
    recovers ``clusters`` independent branches; at high coupling it
    recovers nothing — mirroring the paper's observation that only a
    minority of evaluation instances pass the PO/TO > 20% filter.
    """
    if clusters < 1:
        raise ValueError("need at least one cluster")
    cluster_vars: List[List[Tuple[Quant, Tuple[int, ...]]]] = []
    next_var = 1
    for _ in range(clusters):
        quant = first
        blocks = []
        for _ in range(num_blocks):
            vs = tuple(range(next_var, next_var + block_size))
            next_var += block_size
            blocks.append((quant, vs))
            quant = quant.dual
        cluster_vars.append(blocks)
    # Interleave: block i of every cluster before block i+1 of any cluster.
    prefix_blocks: List[Tuple[Quant, Tuple[int, ...]]] = []
    for i in range(num_blocks):
        for blocks in cluster_vars:
            prefix_blocks.append(blocks[i])
    prefix = Prefix.linear(prefix_blocks)
    all_pool = prefix.variables
    existential_vars = frozenset(v for v in all_pool if prefix.quant(v) is EXISTS)
    clauses = []
    for blocks in cluster_vars:
        pool = tuple(v for _, vs in blocks for v in vs)
        for _ in range(clauses_per_cluster):
            chosen_pool = all_pool if rng.random() < coupling else pool
            clauses.append(
                _random_clause(rng, chosen_pool, clause_len, existential_vars, True)
            )
    return QBF(prefix, clauses)
