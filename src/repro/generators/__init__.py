"""Benchmark instance generators (NCF, FPV, random/fixed suites)."""

from repro.generators.random_qbf import (
    random_prenex_qbf,
    random_qbf,
    random_tree_qbf,
)

__all__ = [
    "random_prenex_qbf",
    "random_qbf",
    "random_tree_qbf",
]
