"""Formal Property Verification (FPV) instances — the Section VII-B suite.

The paper's FPV suite (905 QBFs) encodes model checking of early
requirements on Web-service compositions [9], [29]. The benchmark files are
not public, so this module generates the same *kind* of formula: a
requirements-vs-environment check over a small synthetic composition.

Shape of one instance (matching the published encodings' signature):

* a top existential block of *configuration* variables — the choices the
  composition designer controls;
* per requirement ``j`` (the paper's instances bundle several independent
  checks per model), a branch that alternates ``∀ env ∃ run`` for ``levels``
  rounds — the environment moves, the composition responds, as in a bounded
  unrolling of the service protocol;
* clauses anchored at each response block: every clause forces run
  variables as a function of one adversary-controlled variable of the
  branch (environment input) plus branch/configuration context. Clause
  count per block is ``ratio * run_bits``, the knob that moves instances
  across the easy-true / hard / easy-false spectrum.

Since requirements interact only through the configuration block, the
natural form is a wide quantifier tree of deep branches — the structure
QUBE(PO) exploits and prenexing destroys.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.formula import QBF
from repro.core.literals import EXISTS, FORALL
from repro.core.prefix import Prefix, Spec


@dataclass(frozen=True)
class FpvParams:
    """One FPV instance description."""

    #: shared configuration bits (top existential block).
    config_bits: int = 3
    #: number of independent requirements (branches of the tree).
    requirements: int = 3
    #: ∀env ∃run rounds per requirement.
    levels: int = 3
    #: environment inputs per round (universal block).
    env_bits: int = 2
    #: execution-trace bits per round (inner existential block).
    run_bits: int = 4
    #: clauses per response block, as a multiple of ``run_bits``.
    ratio: float = 2.5
    #: literals per clause.
    clause_len: int = 4
    seed: int = 0

    @property
    def label(self) -> str:
        return "fpv-c%d-r%d-l%d-e%d-x%d-q%.1f-s%d" % (
            self.config_bits,
            self.requirements,
            self.levels,
            self.env_bits,
            self.run_bits,
            self.ratio,
            self.seed,
        )


def generate_fpv(params: FpvParams) -> QBF:
    """Generate one non-prenex FPV instance."""
    rng = random.Random(params.seed)
    next_var = [1]

    def fresh(n: int) -> List[int]:
        vs = list(range(next_var[0], next_var[0] + n))
        next_var[0] += n
        return vs

    config = fresh(params.config_bits)
    clauses: List[Tuple[int, ...]] = []

    def round_spec(level: int, visible: List[int], universals: List[int]) -> Spec:
        env = fresh(params.env_bits)
        run = fresh(params.run_bits)
        here_visible = visible + env + run
        here_universals = universals + env
        for _ in range(int(params.ratio * params.run_bits)):
            # One adversary input + two response bits anchor each clause;
            # context literals come from everything visible on the branch.
            chosen = [rng.choice(here_universals)]
            chosen += rng.sample(run, min(2, len(run)))
            pool = [v for v in here_visible if v not in chosen]
            chosen += rng.sample(pool, min(params.clause_len - len(chosen), len(pool)))
            clauses.append(
                tuple(v if rng.random() < 0.5 else -v for v in dict.fromkeys(chosen))
            )
        children: Tuple[Spec, ...] = ()
        if level < params.levels:
            children = (round_spec(level + 1, here_visible, here_universals),)
        return (FORALL, tuple(env), ((EXISTS, tuple(run), children),))

    branches = [round_spec(1, config, []) for _ in range(params.requirements)]
    prefix = Prefix.tree([(EXISTS, tuple(config), tuple(branches))])
    return QBF(prefix, clauses)


def fpv_sweep(count: int = 30, seed_base: int = 0) -> List[FpvParams]:
    """A spread of FPV instances of growing width and depth."""
    out: List[FpvParams] = []
    rng = random.Random(seed_base)
    for i in range(count):
        out.append(
            FpvParams(
                config_bits=rng.randint(2, 4),
                requirements=rng.randint(2, 3),
                levels=rng.randint(2, 3),
                env_bits=2,
                run_bits=rng.randint(3, 4),
                ratio=rng.choice((2.5, 3.0)),
                clause_len=4,
                seed=seed_base + i,
            )
        )
    return out
