"""QBFEVAL'06-style "fixed" (structured) prenex instances — Section VII-D.

The 2006 evaluation splits instances into a *probabilistic* class (some
generator parameter is a random variable — covered by
:mod:`repro.generators.random_qbf`) and a *fixed* class (fully structured).
Neither archive ships with the paper, so this module generates structured
prenex families with the property the Figure-7 experiment depends on: after
Section VII-D scope minimization, a sizeable fraction of instances exhibits
genuine quantifier-tree structure (footnote 9's PO/TO ratio above 20%),
while others do not — the paper reports that only a minority of the 2887
evaluation instances passed the filter.

Families:

* ``interleaved`` — k independent alternating games over disjoint variables
  whose prefixes are interleaved into one total order (a composition of
  unrelated verification sub-problems; miniscoping recovers the k branches);
* ``chained``    — one global game whose clauses chain all variable groups
  together (miniscoping recovers nothing: the control family).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.formula import QBF
from repro.core.literals import EXISTS, FORALL, Quant
from repro.core.prefix import Prefix
from repro.generators.random_qbf import random_prenex_qbf


@dataclass(frozen=True)
class FixedParams:
    """One structured prenex instance description."""

    family: str = "interleaved"  # "interleaved" or "chained"
    groups: int = 2
    blocks_per_group: int = 3
    block_size: int = 1
    clauses_per_group: int = 8
    clause_len: int = 3
    seed: int = 0

    @property
    def label(self) -> str:
        return "fixed-%s-g%d-b%d-s%d" % (
            self.family,
            self.groups,
            self.blocks_per_group,
            self.seed,
        )


def generate_fixed(params: FixedParams) -> QBF:
    """Generate one structured prenex instance."""
    if params.family == "interleaved":
        return _interleaved(params)
    if params.family == "chained":
        return _chained(params)
    raise ValueError("unknown fixed family %r" % (params.family,))


def _interleaved(params: FixedParams) -> QBF:
    """Independent sub-games with interleaved prenex prefixes."""
    rng = random.Random(params.seed)
    games: List[QBF] = []
    offset = 0
    for _ in range(params.groups):
        game = random_prenex_qbf(
            rng,
            num_blocks=params.blocks_per_group,
            block_size=params.block_size,
            num_clauses=params.clauses_per_group,
            clause_len=params.clause_len,
        )
        games.append(game.renamed({v: v + offset for v in game.prefix.variables}))
        offset += game.num_vars
    # Interleave the prefixes level by level: block i of every game lands in
    # the same slot, which forces a total order across unrelated games —
    # exactly what application pipelines produce when they prenex mindlessly.
    blocks: List[Tuple[Quant, Tuple[int, ...]]] = []
    for i in range(params.blocks_per_group):
        for game in games:
            quant, variables = game.prefix.linear_blocks()[i]
            blocks.append((quant, variables))
    clauses = [c.lits for game in games for c in game.clauses]
    return QBF(Prefix.linear(blocks), clauses)


def _chained(params: FixedParams) -> QBF:
    """One connected game: the control family (no hidden structure)."""
    rng = random.Random(params.seed)
    phi = random_prenex_qbf(
        rng,
        num_blocks=params.blocks_per_group,
        block_size=params.block_size * params.groups,
        num_clauses=params.clauses_per_group * params.groups,
        clause_len=params.clause_len,
    )
    return phi


def fixed_sweep(count: int = 24, seed_base: int = 0) -> List[FixedParams]:
    """A mixed pool of structured instances (both families)."""
    out: List[FixedParams] = []
    rng = random.Random(seed_base)
    for i in range(count):
        family = "interleaved" if i % 3 != 2 else "chained"
        out.append(
            FixedParams(
                family=family,
                groups=rng.randint(2, 3),
                blocks_per_group=3,
                block_size=rng.randint(1, 2),
                clauses_per_group=rng.randint(5, 10),
                clause_len=3,
                seed=seed_base + i,
            )
        )
    return out
