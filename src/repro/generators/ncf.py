"""Nested CounterFactual (NCF) instances — the Section VII-A suite.

The paper uses the generator of Egly, Seidl, Tompits, Woltran and Zolda
[12]: QBF encodings of nested counterfactual reasoning ``c = p > (q > r)``
over a background theory, "automatically generated in non prenex form". The
original tool is not public; this module re-creates the *family*: instances
controlled by the same four parameters

* ``DEP`` — counterfactual nesting depth,
* ``VAR`` — fresh variables introduced per nesting scope,
* ``CLS`` — clauses generated per scope (the paper sweeps CLS/VAR in 1..5),
* ``LPC`` — literals per clause,

and with the same structural signature: a quantifier *tree* in which every
nesting level introduces an alternation (∃ for the hypothetical-change
selection, ∀ for the minimality test of the counterfactual semantics), and
each counterfactual has an antecedent and a consequent sub-scope — hence a
binary tree of scopes. Clauses of a scope mention at least one variable of
that scope plus path-visible variables, which is what a real encoding of a
formula *located at that nesting point* looks like.

Instances are seeded and reproducible; the prenex versions the paper feeds
to QUBE(TO) are produced with :mod:`repro.prenexing.strategies`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.core.formula import QBF
from repro.core.literals import EXISTS, FORALL, Quant
from repro.core.prefix import Prefix, Spec


@dataclass(frozen=True)
class NcfParams:
    """One generator setting ⟨DEP, VAR, CLS, LPC⟩ plus the instance seed."""

    dep: int = 3
    var: int = 4
    cls: int = 8
    lpc: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dep < 1 or self.var < 1 or self.cls < 0 or self.lpc < 1:
            raise ValueError("invalid NCF parameters %r" % (self,))

    @property
    def label(self) -> str:
        return "ncf-d%d-v%d-c%d-l%d-s%d" % (self.dep, self.var, self.cls, self.lpc, self.seed)


def generate_ncf(params: NcfParams) -> QBF:
    """Generate one non-prenex NCF instance."""
    rng = random.Random(params.seed)
    next_var = [1]
    clauses: List[Tuple[int, ...]] = []

    def fresh_block() -> List[int]:
        vs = list(range(next_var[0], next_var[0] + params.var))
        next_var[0] += params.var
        return vs

    def scope_clauses(own: List[int], path_universals: List[int], pool: List[int]) -> None:
        """Clauses of an existential scope.

        Every clause is anchored on a variable of the scope itself (the
        encoding constraint it belongs to) and, when the scope sits under
        universals, couples in one adversary-controlled variable — random
        QBFs whose clauses are anchored at universal scopes are trivially
        false, because the universal player simply falsifies them.
        """
        for _ in range(params.cls):
            size = min(params.lpc, len(pool) + 1)
            chosen = [rng.choice(own)]
            if path_universals and size >= 2:
                chosen.append(rng.choice(path_universals))
            remaining = [v for v in pool if v not in chosen]
            extra = rng.sample(remaining, min(size - len(chosen), len(remaining)))
            chosen = list(dict.fromkeys(chosen + extra))
            clauses.append(tuple(v if rng.random() < 0.5 else -v for v in chosen))

    existential_vars: set = set()

    def grow(level: int, quant: Quant, visible: List[int], universals: List[int]) -> Spec:
        own = fresh_block()
        if quant is EXISTS:
            existential_vars.update(own)
            if universals:
                # Only scopes below an alternation carry constraints: the
                # root block holds the query variables of the counterfactual
                # encoding, which deeper scopes constrain.
                scope_clauses(own, universals, visible + own)
        children: List[Spec] = []
        if level < params.dep:
            new_universals = universals + (own if quant is not EXISTS else [])
            # Antecedent and consequent of the counterfactual at this level.
            for _ in range(2):
                children.append(grow(level + 1, quant.dual, visible + own, new_universals))
        return (quant, tuple(own), tuple(children))

    root = grow(1, EXISTS, [], [])
    return QBF(Prefix.tree([root]), clauses)


def ncf_sweep(
    deps: Tuple[int, ...] = (3,),
    vars_: Tuple[int, ...] = (2, 3, 4),
    ratios: Tuple[int, ...] = (1, 2, 3, 4, 5),
    lpcs: Tuple[int, ...] = (2, 3),
    instances: int = 5,
    seed_base: int = 0,
) -> Iterator[NcfParams]:
    """The Section VII-A parameter sweep, scaled for a Python solver.

    The paper fixes DEP=6, VAR ∈ {4,8,16}, CLS/VAR ∈ {1..5}, LPC ∈ {3..6}
    and draws 100 instances per setting; the defaults here shrink each axis
    so a full sweep stays tractable in pure Python while covering the same
    grid shape. ``CLS`` is derived from the ratio as ``ratio * VAR``.
    """
    seed = seed_base
    for dep in deps:
        for var in vars_:
            for ratio in ratios:
                for lpc in lpcs:
                    for _ in range(instances):
                        yield NcfParams(dep=dep, var=var, cls=ratio * var, lpc=lpc, seed=seed)
                        seed += 1


def scope_clauses_check(formula: QBF) -> bool:
    """Sanity predicate: every clause fits on one root-to-node path."""
    prefix = formula.prefix
    for clause in formula.clauses:
        variables = [abs(l) for l in clause.lits]
        deepest = max(variables, key=lambda v: prefix.level(v))
        for v in variables:
            if v == deepest:
                continue
            if not prefix.prec(v, deepest) and not prefix.same_block(v, deepest):
                ancestor_ok = prefix.block_of(v).is_ancestor_of(prefix.block_of(deepest))
                if not ancestor_ok:
                    return False
    return True
