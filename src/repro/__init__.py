"""repro — search-based QBF solving with quantifier trees.

A production-quality reproduction of E. Giunchiglia, M. Narizzano and
A. Tacchella, *Quantifier structure in search based procedures for QBFs*
(DATE 2006, extended IEEE version): a QDPLL solver that handles non-prenex
QBFs natively (the paper's QUBE(PO)), the classical prenex solver it is
compared against (QUBE(TO)), the four prenexing strategies of Egly et al.,
scope minimization for prenex inputs, the benchmark generators of the
paper's evaluation (NCF, FPV, DIA via a NuSMV-like model-checking substrate,
and QBFEVAL'06-style probabilistic/fixed suites) and the experiment harness
that regenerates every table and figure.

Quickstart::

    from repro import QBF, Prefix, EXISTS, FORALL, solve

    # ∃x1 ∀y2 ∃x3 . (x1 ∨ y2 ∨ x3) ∧ (¬x1 ∨ ¬y2 ∨ ¬x3)
    phi = QBF.prenex(
        [(EXISTS, [1]), (FORALL, [2]), (EXISTS, [3])],
        [(1, 2, 3), (-1, -2, -3)],
    )
    print(solve(phi).outcome)        # Outcome.TRUE

See ``examples/`` for non-prenex inputs, prenexing studies and the diameter
computation pipeline.
"""

from repro.core import (
    EXISTS,
    FORALL,
    Block,
    BudgetExceeded,
    Clause,
    Constraint,
    Cube,
    Outcome,
    Prefix,
    QBF,
    QdpllSolver,
    Quant,
    SolveResult,
    SolverConfig,
    SolverStats,
    UnknownOutcomeError,
    evaluate,
    paper_example,
    q_dll,
    solve,
)

__version__ = "1.0.0"

__all__ = [
    "Block",
    "BudgetExceeded",
    "Clause",
    "Constraint",
    "Cube",
    "EXISTS",
    "FORALL",
    "Outcome",
    "Prefix",
    "QBF",
    "QdpllSolver",
    "Quant",
    "SolveResult",
    "SolverConfig",
    "SolverStats",
    "UnknownOutcomeError",
    "__version__",
    "evaluate",
    "paper_example",
    "q_dll",
    "solve",
]
