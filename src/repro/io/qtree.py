"""A text format for *non-prenex* QBFs with tree prefixes.

No standard CNF-matrix exchange format supports partial-order prefixes
(QDIMACS is prenex-only; QCIR carries full circuits), so the library defines
"QTREE", a minimal QDIMACS extension::

    c comments, as in DIMACS
    p qtree <num-vars> <num-clauses>
    t (e 1 (a 2 (e 3 4)) (a 5 (e 6)))
    1 -2 3 0
    ...

The single ``t`` line holds the quantifier forest as an s-expression:
``(e v1 v2 ... child child ...)`` — a block's children follow its variable
list. Clauses are plain DIMACS. Variables in clauses but not in the tree
are bound existentially outermost, as in QDIMACS.
"""

from __future__ import annotations

import io
from typing import Iterable, List, TextIO, Tuple, Union

from repro.core.formula import QBF
from repro.core.literals import EXISTS, FORALL
from repro.core.prefix import Block, Prefix, Spec


class QtreeError(ValueError):
    """Raised on malformed QTREE input."""


def _spec_to_sexp(spec: Spec) -> str:
    quant, variables, children = spec[0], spec[1], spec[2] if len(spec) > 2 else ()
    tag = "e" if quant is EXISTS else "a"
    parts = [tag] + [str(v) for v in variables]
    parts.extend(_spec_to_sexp(c) for c in children)
    return "(" + " ".join(parts) + ")"


def dumps(formula: QBF, comments: Iterable[str] = ()) -> str:
    """Serialize any QBF (prenex or not) to QTREE text."""
    out = io.StringIO()
    for comment in comments:
        out.write("c %s\n" % comment)
    num_vars = max(formula.prefix.variables, default=0)
    out.write("p qtree %d %d\n" % (num_vars, formula.num_clauses))
    sexp = " ".join(_spec_to_sexp(s) for s in formula.prefix.to_spec())
    out.write("t %s\n" % sexp)
    for clause in formula.clauses:
        out.write("%s 0\n" % " ".join(map(str, clause.lits)))
    return out.getvalue()


def dump(formula: QBF, fp: Union[str, TextIO], comments: Iterable[str] = ()) -> None:
    text = dumps(formula, comments)
    if isinstance(fp, str):
        with open(fp, "w") as handle:
            handle.write(text)
    else:
        fp.write(text)


def _tokenize(text: str) -> List[str]:
    return text.replace("(", " ( ").replace(")", " ) ").split()


def _parse_forest(tokens: List[str]) -> List[Spec]:
    pos = [0]

    def parse_node() -> Spec:
        if tokens[pos[0]] != "(":
            raise QtreeError("expected '(' at token %d" % pos[0])
        pos[0] += 1
        tag = tokens[pos[0]]
        if tag not in ("e", "a"):
            raise QtreeError("expected quantifier tag 'e' or 'a', got %r" % tag)
        pos[0] += 1
        quant = EXISTS if tag == "e" else FORALL
        variables: List[int] = []
        children: List[Spec] = []
        while pos[0] < len(tokens) and tokens[pos[0]] != ")":
            tok = tokens[pos[0]]
            if tok == "(":
                children.append(parse_node())
            else:
                try:
                    variables.append(int(tok))
                except ValueError as exc:
                    raise QtreeError("bad token %r in tree" % tok) from exc
                pos[0] += 1
        if pos[0] >= len(tokens):
            raise QtreeError("unbalanced parentheses in tree line")
        pos[0] += 1  # consume ')'
        return (quant, tuple(variables), tuple(children))

    forest: List[Spec] = []
    while pos[0] < len(tokens):
        forest.append(parse_node())
    return forest


def loads(text: str) -> QBF:
    """Parse QTREE text into a QBF."""
    tree_line = None
    clauses: List[Tuple[int, ...]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c") or line.startswith("p"):
            continue
        if line.startswith("t"):
            if tree_line is not None:
                raise QtreeError("line %d: second tree line" % lineno)
            tree_line = line[1:].strip()
            continue
        try:
            nums = [int(tok) for tok in line.split()]
        except ValueError as exc:
            raise QtreeError("line %d: %s" % (lineno, exc)) from exc
        if not nums or nums[-1] != 0:
            raise QtreeError("line %d: clause must end with 0" % lineno)
        clauses.append(tuple(nums[:-1]))
    forest = _parse_forest(_tokenize(tree_line)) if tree_line else []
    return QBF.close(Prefix.tree(forest), clauses)


def load(fp: Union[str, TextIO]) -> QBF:
    if isinstance(fp, str):
        with open(fp) as handle:
            return loads(handle.read())
    return loads(fp.read())
