"""QDIMACS reader/writer (the standard prenex QBF exchange format).

Format::

    c optional comments
    p cnf <num-vars> <num-clauses>
    e 1 2 0
    a 3 0
    e 4 0
    1 -3 4 0
    ...

Quantifier lines alternate outermost-to-innermost; adjacent same-quantifier
lines are merged (the format allows them). Variables appearing in clauses
but in no quantifier line are bound existentially at the outermost level,
per the QDIMACS convention (and the paper's Section II point 2).
"""

from __future__ import annotations

import io
import warnings
from typing import Iterable, List, Optional, TextIO, Tuple, Union

from repro.core.constraints import sanitize_lits
from repro.core.formula import QBF
from repro.core.literals import EXISTS, FORALL, Quant
from repro.core.prefix import Prefix


class QdimacsError(ValueError):
    """Raised on malformed QDIMACS input."""


class QdimacsWarning(UserWarning):
    """Recoverable oddities in QDIMACS input (e.g. a lying clause count).

    Benchmark files in the wild routinely declare a clause count that no
    longer matches the body — often because a generator dropped
    tautological clauses after writing the header — so a mismatch warns
    instead of failing the parse."""


def dumps(formula: QBF, comments: Iterable[str] = ()) -> str:
    """Serialize a *prenex* QBF to QDIMACS text."""
    if not formula.is_prenex:
        raise ValueError("QDIMACS requires a prenex QBF; prenex it or use repro.io.qtree")
    out = io.StringIO()
    for comment in comments:
        out.write("c %s\n" % comment)
    num_vars = max(formula.prefix.variables, default=0)
    out.write("p cnf %d %d\n" % (num_vars, formula.num_clauses))
    for quant, variables in formula.prefix.linear_blocks():
        tag = "e" if quant is EXISTS else "a"
        out.write("%s %s 0\n" % (tag, " ".join(map(str, variables))))
    for clause in formula.clauses:
        out.write("%s 0\n" % " ".join(map(str, clause.lits)))
    return out.getvalue()


def dump(formula: QBF, fp: Union[str, TextIO], comments: Iterable[str] = ()) -> None:
    """Write QDIMACS to a path or file object."""
    text = dumps(formula, comments)
    if isinstance(fp, str):
        with open(fp, "w") as handle:
            handle.write(text)
    else:
        fp.write(text)


def loads(text: str) -> QBF:
    """Parse QDIMACS text into a (prenex) QBF."""
    blocks: List[Tuple[Quant, List[int]]] = []
    clauses: List[Tuple[int, ...]] = []
    declared: set = set()
    header_seen = False
    declared_clauses: Optional[int] = None
    raw_clause_lines = 0
    prefix_done = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            if header_seen:
                raise QdimacsError("line %d: duplicate problem line" % lineno)
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise QdimacsError("line %d: bad problem line %r" % (lineno, line))
            try:
                num_vars, num_clauses = int(parts[2]), int(parts[3])
            except ValueError:
                raise QdimacsError(
                    "line %d: problem-line counts must be integers in %r"
                    % (lineno, line)
                ) from None
            if num_vars < 0 or num_clauses < 0:
                raise QdimacsError(
                    "line %d: problem-line counts must be non-negative in %r"
                    % (lineno, line)
                )
            declared_clauses = num_clauses
            header_seen = True
            continue
        if line[0] in "ea":
            if prefix_done:
                raise QdimacsError(
                    "line %d: quantifier line after the first clause" % lineno
                )
            quant = EXISTS if line[0] == "e" else FORALL
            nums = _parse_ints(line[1:], lineno)
            if not nums or nums[-1] != 0:
                raise QdimacsError("line %d: quantifier line must end with 0" % lineno)
            variables = nums[:-1]
            for v in variables:
                if v <= 0:
                    raise QdimacsError("line %d: bad variable %d" % (lineno, v))
                if v in declared:
                    raise QdimacsError("line %d: variable %d bound twice" % (lineno, v))
                declared.add(v)
            if blocks and blocks[-1][0] is quant:
                blocks[-1][1].extend(variables)
            else:
                blocks.append((quant, list(variables)))
            continue
        if not header_seen:
            # Headerless DIMACS fragments parse "successfully" otherwise,
            # hiding truncated or mis-concatenated files.
            raise QdimacsError(
                "line %d: clause before the 'p cnf' problem line" % lineno
            )
        prefix_done = True
        raw_clause_lines += 1
        nums = _parse_ints(line, lineno)
        if not nums or nums[-1] != 0:
            raise QdimacsError("line %d: clause must end with 0" % lineno)
        raw_lits = tuple(nums[:-1])
        if any(l == 0 for l in raw_lits):
            raise QdimacsError("line %d: literal 0 inside clause" % lineno)
        # Benchmark files in the wild repeat literals and even emit
        # tautological clauses; dedup the former and drop the latter here
        # (a tautology is satisfied under every assignment) so downstream
        # code only ever sees clean clauses.
        lits = sanitize_lits(raw_lits)
        if lits is None:
            continue
        clauses.append(lits)
    if not header_seen and not blocks and not clauses:
        raise QdimacsError("empty input")
    if declared_clauses is not None and declared_clauses != raw_clause_lines:
        warnings.warn(
            "problem line declares %d clauses but the body has %d"
            % (declared_clauses, raw_clause_lines),
            QdimacsWarning,
            stacklevel=2,
        )
    prefix = Prefix.linear([(q, tuple(vs)) for q, vs in blocks])
    return QBF.close(prefix, clauses)


def load(fp: Union[str, TextIO]) -> QBF:
    """Read QDIMACS from a path or file object."""
    if isinstance(fp, str):
        with open(fp) as handle:
            return loads(handle.read())
    return loads(fp.read())


def _parse_ints(chunk: str, lineno: int) -> List[int]:
    try:
        return [int(tok) for tok in chunk.split()]
    except ValueError as exc:
        raise QdimacsError("line %d: %s" % (lineno, exc)) from exc
