"""QBF serialization: QDIMACS (prenex) and QTREE (non-prenex)."""

from repro.io import qdimacs, qtree

__all__ = ["qdimacs", "qtree"]
