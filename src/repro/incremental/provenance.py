"""Antecedent-closure tracking for cross-solve constraint retention.

Every learned clause is a Q-resolution consequence of some set of (reduced)
input clauses; every learned cube a term-resolution consequence of some set
of initial cubes (models of the matrix). The :class:`ClosureSink` recovers
that *axiom closure* passively from the certificate step stream the engine
already produces through :class:`repro.certify.proof.ProofLogger`: input
and initial-cube steps are their own singleton closures, resolution unions
its two antecedents' closures, reduction inherits its antecedent's.

Because resolution never introduces literals and reduction only removes
them, every variable of every intermediate constraint of a derivation
appears in some closure leaf — which is what lets
:mod:`repro.incremental.solver` decide replayability under a *new* prefix
by looking at leaf variables alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.certify.store import INITIAL_CUBE, INPUT_CLAUSE, REDUCTION, RESOLUTION

#: closure-leaf tags: a reduced input clause, or an initial (model) cube.
CLAUSE_LEAF = "c"
CUBE_LEAF = "i"

#: a leaf is (tag, canonical literal tuple).
Leaf = Tuple[str, Tuple[int, ...]]


@dataclass(frozen=True)
class Retained:
    """A learned constraint carried across solves, with its axiom closure."""

    is_cube: bool
    lits: Tuple[int, ...]
    leaves: FrozenSet[Leaf]


class ClosureSink:
    """A certificate sink that computes axiom closures per step id.

    Wraps an optional inner sink (``MemorySink``/``JsonlSink``) so a
    certifying run records its proof unchanged while closures accumulate on
    the side. Steps whose antecedents have no known closure (possible only
    when a retained constraint was injected without :meth:`preset`, i.e.
    in certifying mode) simply get none — the retention layer then drops
    the affected constraints, which is the conservative direction.
    """

    def __init__(self, inner=None):
        self._inner = inner
        self.closure: Dict[int, FrozenSet[Leaf]] = {}

    def preset(self, step_id: int, leaves: FrozenSet[Leaf]) -> None:
        """Seed the closure of a pre-bound (retained) constraint id."""
        self.closure[step_id] = frozenset(leaves)

    def lookup(self, step_id: Optional[int]) -> Optional[FrozenSet[Leaf]]:
        if step_id is None:
            return None
        return self.closure.get(step_id)

    def emit(self, step: Dict[str, object]) -> None:
        kind = step.get("type")
        if kind == INPUT_CLAUSE:
            lits = tuple(step["lits"])  # type: ignore[arg-type]
            self.closure[step["id"]] = frozenset({(CLAUSE_LEAF, lits)})
        elif kind == INITIAL_CUBE:
            lits = tuple(step["lits"])  # type: ignore[arg-type]
            self.closure[step["id"]] = frozenset({(CUBE_LEAF, lits)})
        elif kind in (RESOLUTION, REDUCTION):
            acc: FrozenSet[Leaf] = frozenset()
            known = True
            for ant in step["ant"]:  # type: ignore[union-attr]
                part = self.closure.get(ant)
                if part is None:
                    known = False
                    break
                acc |= part
            if known:
                self.closure[step["id"]] = acc
        if self._inner is not None:
            self._inner.emit(step)

    def close(self) -> None:
        if self._inner is not None and hasattr(self._inner, "close"):
            self._inner.close()
