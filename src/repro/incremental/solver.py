"""The incremental solving API: push/pop assumptions + constraint retention.

An :class:`IncrementalSolver` owns a base formula (:meth:`load`) and a stack
of assumption scopes (:meth:`push`/:meth:`pop`). Each :meth:`solve` builds
the *effective* formula — base clauses plus one unit clause per active
assumption — and runs a fresh engine over it, seeded with every previously
learned clause/cube that is still sound.

Retention rule
--------------

A learned constraint is a resolution consequence of its *axiom closure*
(:mod:`repro.incremental.provenance`): reduced input clauses for learned
clauses, initial (model) cubes for learned cubes. It is retained for the
next effective formula iff its derivation would replay there verbatim:

* every variable of the closure (and of the constraint itself) is still
  bound, with the same quantifier;
* the prefix order ``≺`` agrees with the old prefix on every pair of those
  variables, in both directions — reduction legality and resolution
  soundness depend only on that pairwise relation;
* every input-clause leaf is (still) a reduced clause of the new matrix;
* every initial-cube leaf still satisfies every clause of the new matrix
  (i.e. remains an implicant).

Assumption soundness falls out for free: assuming ``l`` adds the unit
clause ``(l,)``, so constraints derived *from* an assumption carry it as a
closure leaf and are dropped the moment the assumption is popped.

Because the leaves pin the whole derivation, the quantifier-prefix
compatibility demanded by the retention contract ("a learned constraint
survives only if its literals' prefix positions are unchanged") is checked
over the closure, not just the constraint's own literals — strictly
stronger, and what soundness actually requires.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.certify import MemorySink, ProofLogger, certifying_config, check_certificate
from repro.core.constraints import universal_reduce
from repro.core.formula import QBF
from repro.core.literals import EXISTS
from repro.core.result import SolveResult
from repro.core.solver import QdpllSolver, SolverConfig
from repro.incremental.provenance import (
    CLAUSE_LEAF,
    CUBE_LEAF,
    ClosureSink,
    Retained,
)


class _PrefixCompat:
    """Memoized old-vs-new prefix agreement over variables and pairs."""

    def __init__(self, old_prefix, new_prefix):
        self._old = old_prefix
        self._new = new_prefix
        self._new_vars: Set[int] = set(new_prefix.variables)
        self._var_ok: Dict[int, bool] = {}
        self._pair_ok: Dict[Tuple[int, int], bool] = {}

    def var_ok(self, v: int) -> bool:
        out = self._var_ok.get(v)
        if out is None:
            out = v in self._new_vars and self._new.quant(v) is self._old.quant(v)
            self._var_ok[v] = out
        return out

    def pair_ok(self, a: int, b: int) -> bool:
        if a > b:
            a, b = b, a
        out = self._pair_ok.get((a, b))
        if out is None:
            out = self._new.prec(a, b) == self._old.prec(a, b) and self._new.prec(
                b, a
            ) == self._old.prec(b, a)
            self._pair_ok[(a, b)] = out
        return out

    def constraint_ok(self, variables: Sequence[int]) -> bool:
        if not all(self.var_ok(v) for v in variables):
            return False
        return all(self.pair_ok(a, b) for a, b in itertools.combinations(variables, 2))


class IncrementalSolver:
    """Solve a sequence of related QBFs, retaining sound learned constraints.

    ``certify=True`` runs every solve through :func:`repro.certify.
    certifying_config` with an in-memory certificate (see
    :meth:`check_last_certificate`). Certificates stay honest: retained
    constraints are *not* re-axiomatized in the new proof, so any analysis
    that touches one marks the certificate incomplete rather than fabricate
    a derivation — and such constraints lose their provenance and drop out
    of the retained set, the conservative direction.
    """

    def __init__(
        self,
        config: Optional[SolverConfig] = None,
        certify: bool = False,
        retain: bool = True,
    ):
        self.config = config or SolverConfig()
        self.certify = certify
        #: ``retain=False`` turns off cross-solve constraint retention and
        #: with it the proof-closure bookkeeping every solve otherwise pays
        #: (a ProofLogger feeding a ClosureSink). Callers that use this
        #: solver purely for its assumption scopes — one-shot cube jobs,
        #: throwaway probes — get a measurably leaner solve; ``certify=True``
        #: still logs, since the certificate needs the derivation.
        self.retain = retain
        self._formula: Optional[QBF] = None
        self._scopes: List[List[int]] = []
        self._retained: List[Retained] = []
        self._last_prefix = None
        #: aggregate counters across the solver's lifetime.
        self.solves = 0
        self.total_decisions = 0
        #: constraints injected into / harvested from the most recent solve.
        self.last_retained_clauses = 0
        self.last_retained_cubes = 0
        self.last_result: Optional[SolveResult] = None
        self.last_certificate: Optional[MemorySink] = None
        self._last_formula: Optional[QBF] = None

    # -- formula and assumption management ---------------------------------

    def load(self, formula: QBF) -> None:
        """Set (or replace) the base formula; the retained database is kept
        and re-validated against the new formula at the next solve."""
        self._formula = formula

    def push(self, *assumptions: int) -> None:
        """Open a scope assuming each literal (outermost existential vars)."""
        if self._formula is None:
            raise ValueError("push() before load()")
        prefix = self._formula.prefix
        # top_variables() = bound, outermost (nothing precedes them); a
        # single membership probe replaces the per-literal O(vars) scans.
        top = set(prefix.top_variables())
        bound = set(prefix.variables)
        active = {abs(l) for scope in self._scopes for l in scope}
        scope: List[int] = []
        for lit in assumptions:
            var = abs(lit)
            if var not in bound:
                raise ValueError("assumption variable %d is not bound" % var)
            if prefix.quant(var) is not EXISTS:
                raise ValueError("assumption variable %d is universal" % var)
            if var not in top:
                raise ValueError(
                    "assumption variable %d is not in an outermost block" % var
                )
            if var in active or var in {abs(l) for l in scope}:
                raise ValueError("variable %d already assumed" % var)
            scope.append(lit)
        self._scopes.append(scope)

    def pop(self) -> None:
        """Close the innermost assumption scope."""
        if not self._scopes:
            raise ValueError("pop() with no open scope")
        self._scopes.pop()

    @property
    def depth(self) -> int:
        return len(self._scopes)

    @property
    def assumptions(self) -> Tuple[int, ...]:
        return tuple(l for scope in self._scopes for l in scope)

    def effective_formula(self) -> QBF:
        """The formula the next :meth:`solve` actually runs on."""
        if self._formula is None:
            raise ValueError("no formula loaded")
        lits = self.assumptions
        if not lits:
            return self._formula
        clauses = [c.lits for c in self._formula.clauses] + [(l,) for l in lits]
        return QBF(self._formula.prefix, clauses)

    # -- retention ---------------------------------------------------------

    def _survivors(self, formula: QBF) -> List[Retained]:
        if not self._retained or self._last_prefix is None:
            return []
        prefix = formula.prefix
        reduced = [universal_reduce(c.lits, prefix) for c in formula.clauses]
        reduced_set = set(reduced)
        clause_sets = [frozenset(lits) for lits in reduced]
        compat = _PrefixCompat(self._last_prefix, prefix)
        implicant_cache: Dict[Tuple[int, ...], bool] = {}

        def cube_leaf_ok(lits: Tuple[int, ...]) -> bool:
            out = implicant_cache.get(lits)
            if out is None:
                model = frozenset(lits)
                out = all(not model.isdisjoint(c) for c in clause_sets)
                implicant_cache[lits] = out
            return out

        survivors: List[Retained] = []
        for r in self._retained:
            if not r.lits:
                continue
            involved = {abs(l) for l in r.lits}
            for _, leaf_lits in r.leaves:
                involved.update(abs(l) for l in leaf_lits)
            if not compat.constraint_ok(sorted(involved)):
                continue
            ok = True
            for tag, leaf_lits in r.leaves:
                if tag == CLAUSE_LEAF:
                    ok = leaf_lits in reduced_set
                else:
                    ok = cube_leaf_ok(leaf_lits)
                if not ok:
                    break
            if ok:
                survivors.append(r)
        return survivors

    def _harvest(
        self, engine: QdpllSolver, logger: ProofLogger, sink: ClosureSink
    ) -> List[Retained]:
        previous = {(r.is_cube, r.lits): r for r in self._retained}
        out: List[Retained] = []
        for is_cube, table in (
            (False, engine.backend.learned_clauses),
            (True, engine.backend.learned_cubes),
        ):
            for lits in table:
                leaves = sink.lookup(logger.lookup(is_cube, lits))
                if leaves is not None:
                    out.append(Retained(is_cube, lits, leaves))
                else:
                    # No provenance on record (certifying mode re-injection,
                    # or a poisoned trace): keep the previous entry if this
                    # constraint had one — it was re-validated this solve.
                    old = previous.get((is_cube, lits))
                    if old is not None:
                        out.append(old)
        return out

    # -- solving -----------------------------------------------------------

    def solve(
        self,
        interrupt: Optional[object] = None,
        checkpoint_to: Optional[str] = None,
        resume_from: Optional[object] = None,
        exchange: Optional[object] = None,
    ) -> SolveResult:
        """Solve the current effective formula, reusing what can be reused.

        ``exchange`` is the cube-and-conquer constraint-sharing hook (see
        :mod:`repro.cube.sharing`); constraints imported through it carry no
        proof provenance, so they are never retained across ``load()``s —
        the harvest only keeps constraints whose axiom closure is on record.
        """
        formula = self.effective_formula()
        retaining = self.retain or self.certify
        if retaining:
            inner = MemorySink() if self.certify else None
            sink = ClosureSink(inner)
            logger = ProofLogger(sink)
        else:
            inner = sink = logger = None
        config = certifying_config(self.config) if self.certify else self.config
        engine = QdpllSolver(
            formula, config, proof=logger, interrupt=interrupt, exchange=exchange
        )

        survivors = self._survivors(formula) if retaining else []
        clauses = cubes = 0
        pre_bound = -1
        for r in survivors:
            if r.is_cube:
                engine.backend.add_learned_cube(r.lits)
                cubes += 1
            else:
                engine.backend.add_learned_clause(r.lits)
                clauses += 1
            if not self.certify:
                # Negative ids never collide with the logger's own sequence;
                # pre-binding lets new derivations chain through retained
                # constraints with their closures intact.
                logger.bind(r.is_cube, r.lits, pre_bound)
                sink.preset(pre_bound, r.leaves)
                pre_bound -= 1
        self.last_retained_clauses = clauses
        self.last_retained_cubes = cubes
        # Make sure the survivors stay retained even if this solve never
        # re-derives them (harvest falls back to these entries by literals).
        self._retained = survivors

        result = engine.solve(resume_from=resume_from, checkpoint_to=checkpoint_to)

        self._retained = self._harvest(engine, logger, sink) if retaining else []
        self._last_prefix = formula.prefix
        self._last_formula = formula
        self.last_certificate = inner
        self.last_result = result
        self.solves += 1
        self.total_decisions += result.stats.decisions
        return result

    @property
    def retained_clauses(self) -> int:
        return sum(1 for r in self._retained if not r.is_cube)

    @property
    def retained_cubes(self) -> int:
        return sum(1 for r in self._retained if r.is_cube)

    def check_last_certificate(self):
        """Independently check the last solve's certificate (certify mode)."""
        if not self.certify or self.last_certificate is None:
            raise ValueError("no certificate: construct with certify=True and solve")
        return check_certificate(self._last_formula, self.last_certificate)
