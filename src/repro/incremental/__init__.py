"""Incremental QBF solving: assumption scopes + learned-constraint retention.

The SMV sweeps of Section VII-C re-solve closely related formulas — φ_n and
φ_{n+1} differ only in the bound — yet a one-shot :func:`repro.core.solver.
solve` discards everything between calls. :class:`IncrementalSolver` keeps a
learned clause/cube database alive across solves and re-installs the subset
that remains *sound* for the next formula, following the clause/term
resolution semantics of Giunchiglia, Narizzano & Tacchella: a learned
constraint is a resolution consequence of its axiom leaves, so it may be
retained exactly when those leaves still exist and the quantifier prefix
still orders the derivation's variables the same way.
"""

from repro.incremental.provenance import ClosureSink, Retained
from repro.incremental.solver import IncrementalSolver

__all__ = ["ClosureSink", "IncrementalSolver", "Retained"]
