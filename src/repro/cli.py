"""Command-line interface: solve, convert, prenex, miniscope, generate.

Usage examples::

    python -m repro.cli solve instance.qdimacs
    python -m repro.cli solve instance.qtree --po --max-decisions 10000
    python -m repro.cli prenex instance.qtree --strategy eu_au -o flat.qdimacs
    python -m repro.cli miniscope flat.qdimacs -o tree.qtree
    python -m repro.cli generate ncf --dep 6 --var 4 --cls 12 --lpc 5 -o x.qtree
    python -m repro.cli stats instance.qtree

Formats are picked by extension: ``.qdimacs``/``.cnf`` (prenex) or
``.qtree`` (tree prefixes). ``-`` reads from stdin in QTREE format.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.formula import QBF
from repro.core.result import Outcome
from repro.core.solver import SolverConfig, solve
from repro.generators.fpv import FpvParams, generate_fpv
from repro.generators.ncf import NcfParams, generate_ncf
from repro.io import qdimacs, qtree
from repro.prenexing.miniscoping import miniscope, structure_ratio
from repro.prenexing.strategies import STRATEGIES, prenex


def _read(path: str) -> QBF:
    if path == "-":
        return qtree.loads(sys.stdin.read())
    if path.endswith((".qdimacs", ".cnf", ".dimacs")):
        return qdimacs.load(path)
    return qtree.load(path)


def _write(formula: QBF, path: Optional[str]) -> None:
    if path is None or path == "-":
        sys.stdout.write(qtree.dumps(formula))
        return
    if path.endswith((".qdimacs", ".cnf", ".dimacs")):
        qdimacs.dump(formula, path)
    else:
        qtree.dump(formula, path)


def cmd_solve(args: argparse.Namespace) -> int:
    phi = _read(args.input)
    if args.to:
        phi = prenex(phi, args.strategy)
    config = SolverConfig(
        policy=args.policy,
        learn_clauses=not args.no_learning,
        learn_cubes=not args.no_learning,
        pure_literals=not args.no_pure,
        max_decisions=args.max_decisions,
        max_seconds=args.max_seconds,
    )
    result = solve(phi, config)
    stats = result.stats
    print("result      %s" % result.outcome.value.upper())
    print("decisions   %d" % stats.decisions)
    print("conflicts   %d" % stats.conflicts)
    print("solutions   %d" % stats.solutions)
    print("learned     %d nogoods, %d goods" % (stats.learned_clauses, stats.learned_cubes))
    print("time        %.3fs" % result.seconds)
    if result.outcome is Outcome.UNKNOWN:
        return 2
    return 10 if result.value else 20  # SAT-solver-style exit codes


def cmd_prenex(args: argparse.Namespace) -> int:
    phi = _read(args.input)
    _write(prenex(phi, args.strategy), args.output)
    return 0


def cmd_miniscope(args: argparse.Namespace) -> int:
    phi = _read(args.input)
    tree = miniscope(phi)
    print(
        "structure ratio: %.0f%% of (existential, universal) pairs freed"
        % (100 * structure_ratio(phi, tree)),
        file=sys.stderr,
    )
    _write(tree, args.output)
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    if args.family == "ncf":
        phi = generate_ncf(
            NcfParams(dep=args.dep, var=args.var, cls=args.cls, lpc=args.lpc, seed=args.seed)
        )
    elif args.family == "fpv":
        phi = generate_fpv(FpvParams(seed=args.seed))
    else:
        raise AssertionError(args.family)
    _write(phi, args.output)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    phi = _read(args.input)
    prefix = phi.prefix
    print("variables     %d" % phi.num_vars)
    print("clauses       %d" % phi.num_clauses)
    print("prenex        %s" % ("yes" if phi.is_prenex else "no"))
    print("prefix level  %d" % prefix.prefix_level)
    print("blocks        %d" % len(prefix.blocks))
    print("top variables %d" % len(prefix.top_variables()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve a QBF (exit 10=true, 20=false, 2=unknown)")
    p_solve.add_argument("input")
    p_solve.add_argument("--to", action="store_true", help="prenex first (QUBE(TO) pipeline)")
    p_solve.add_argument("--po", action="store_true", help="solve the tree directly (default)")
    p_solve.add_argument("--strategy", default="eu_au", choices=STRATEGIES)
    p_solve.add_argument("--policy", default="levelsub")
    p_solve.add_argument("--no-learning", action="store_true")
    p_solve.add_argument("--no-pure", action="store_true")
    p_solve.add_argument("--max-decisions", type=int, default=None)
    p_solve.add_argument("--max-seconds", type=float, default=None)
    p_solve.set_defaults(func=cmd_solve)

    p_prenex = sub.add_parser("prenex", help="convert to prenex form")
    p_prenex.add_argument("input")
    p_prenex.add_argument("-o", "--output", default=None)
    p_prenex.add_argument("--strategy", default="eu_au", choices=STRATEGIES)
    p_prenex.set_defaults(func=cmd_prenex)

    p_mini = sub.add_parser("miniscope", help="minimize quantifier scopes")
    p_mini.add_argument("input")
    p_mini.add_argument("-o", "--output", default=None)
    p_mini.set_defaults(func=cmd_miniscope)

    p_gen = sub.add_parser("generate", help="generate a benchmark instance")
    p_gen.add_argument("family", choices=("ncf", "fpv"))
    p_gen.add_argument("--dep", type=int, default=5)
    p_gen.add_argument("--var", type=int, default=4)
    p_gen.add_argument("--cls", type=int, default=12)
    p_gen.add_argument("--lpc", type=int, default=4)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("-o", "--output", default=None)
    p_gen.set_defaults(func=cmd_generate)

    p_stats = sub.add_parser("stats", help="describe an instance")
    p_stats.add_argument("input")
    p_stats.set_defaults(func=cmd_stats)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
