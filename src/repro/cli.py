"""Command-line interface: solve, convert, prenex, miniscope, generate.

Usage examples::

    python -m repro.cli solve instance.qdimacs
    python -m repro.cli solve instance.qtree --po --max-decisions 10000
    python -m repro.cli prenex instance.qtree --strategy eu_au -o flat.qdimacs
    python -m repro.cli miniscope flat.qdimacs -o tree.qtree
    python -m repro.cli generate ncf --dep 6 --var 4 --cls 12 --lpc 5 -o x.qtree
    python -m repro.cli stats instance.qtree
    python -m repro.cli evalx run ncf --jobs 4 --results ncf.jsonl
    python -m repro.cli bench --quick -o BENCH_kernels.json
    python -m repro.cli certify emit instance.qtree -o proof.jsonl
    python -m repro.cli certify check instance.qtree proof.jsonl
    python -m repro.cli certify stats proof.jsonl
    python -m repro.cli cube run instance.qtree --jobs 4 --certify
    python -m repro.cli cube bench --quick -o BENCH_cube.json
    python -m repro.cli solve instance.qtree --paradigm expansion
    python -m repro.cli portfolio run instance.qtree --jobs 3
    python -m repro.cli portfolio bench --quick -o BENCH_portfolio.json

``cube run`` solves ONE instance cube-and-conquer style: the splitter cuts
the quantifier tree's branchable frontier into cubes, ``--jobs N`` worker
processes solve them with learned-constraint sharing (``--no-share`` to
disable), verdicts fold back up the split tree, and with ``--certify`` the
per-cube proof fragments are merged into one certificate that must check
against the original formula.

``evalx run`` drives a whole TO-vs-PO suite sweep through the
fault-isolated parallel harness: ``--jobs N`` fans runs out over worker
processes (with hard per-run ``--wall-timeout`` kills and crash isolation),
``--results out.jsonl`` persists every measurement and makes an interrupted
sweep resumable (recorded runs are skipped on the next invocation); with
``--certify`` every run also records its clause/term resolution proof,
self-checks it against the original formula and stamps the verdict on the
results row.

``certify`` works with proofs directly: ``emit`` solves while logging the
resolution derivation to a JSONL certificate, ``check`` replays a
certificate against a formula with the independent checker (exit 0 only
when it verifies), ``stats`` summarizes a certificate file.

``solve --paradigm`` picks the solving algorithm behind the shared Solver
protocol: ``search`` (the QDPLL engine, default), ``expansion`` (iterative
quantifier expansion), or ``qdll`` (the recursive Figure-1 reference).
``portfolio run`` races several paradigms on one instance and keeps the
first determinate verdict; ``portfolio bench`` measures the portfolio
against the best single paradigm on the Figure-6 series and emits
``BENCH_portfolio.json``.

Formats are picked by extension: ``.qdimacs``/``.cnf`` (prenex) or
``.qtree`` (tree prefixes). ``-`` reads from stdin in QTREE format.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.formula import QBF
from repro.core.result import Outcome
from repro.core.engine.config import PARADIGMS, default_paradigm
from repro.core.solver import ENGINES, SolverConfig, default_engine, solve
from repro.generators.fpv import FpvParams, generate_fpv
from repro.generators.ncf import NcfParams, generate_ncf
from repro.io import qdimacs, qtree
from repro.prenexing.miniscoping import miniscope, structure_ratio
from repro.prenexing.strategies import STRATEGIES, prenex

#: stable exit-code contract for ``solve`` (SAT-solver convention). A budget
#: that ran dry and a preemption are different events: the former means the
#: instance is too hard at this budget, the latter that a checkpoint likely
#: exists and a rerun with ``--checkpoint`` will pick up where this left off.
EXIT_TRUE = 10
EXIT_FALSE = 20
EXIT_UNKNOWN = 2
EXIT_INTERRUPTED = 3


def _read(path: str) -> QBF:
    if path == "-":
        return qtree.loads(sys.stdin.read())
    if path.endswith((".qdimacs", ".cnf", ".dimacs")):
        return qdimacs.load(path)
    return qtree.load(path)


def _write(formula: QBF, path: Optional[str]) -> None:
    if path is None or path == "-":
        sys.stdout.write(qtree.dumps(formula))
        return
    if path.endswith((".qdimacs", ".cnf", ".dimacs")):
        qdimacs.dump(formula, path)
    else:
        qtree.dump(formula, path)


def cmd_solve(args: argparse.Namespace) -> int:
    import os

    phi = _read(args.input)
    if args.to:
        phi = prenex(phi, args.strategy)
    config = SolverConfig(
        policy=args.policy,
        learn_clauses=not args.no_learning,
        learn_cubes=not args.no_learning,
        pure_literals=not args.no_pure,
        max_decisions=args.max_decisions,
        max_seconds=args.max_seconds,
        engine=args.engine,
        paradigm=args.paradigm,
    )
    checkpoint = getattr(args, "checkpoint", None)
    if checkpoint is not None and args.paradigm != "search":
        # Fail before solving: the registry knows which paradigms can
        # checkpoint, and a clear refusal beats a CapabilityError mid-run.
        from repro.core.paradigm import get_paradigm

        if not get_paradigm(args.paradigm).capabilities.checkpoint:
            print(
                "error: paradigm %r does not support checkpoint/resume; "
                "drop --checkpoint or use --paradigm search" % args.paradigm,
                file=sys.stderr,
            )
            return 2
    if checkpoint is None:
        result = solve(phi, config)
    else:
        from repro.robustness import (
            CheckpointError,
            global_flag,
            handling_signals,
            load_checkpoint,
        )

        resume = None
        if os.path.exists(checkpoint):
            try:
                resume = load_checkpoint(checkpoint)
            except CheckpointError as exc:
                print("warning: ignoring unusable checkpoint %s: %s"
                      % (checkpoint, exc), file=sys.stderr)
        flag = global_flag()
        flag.clear()
        with handling_signals(flag):
            try:
                result = solve(
                    phi,
                    config,
                    interrupt=flag,
                    resume_from=resume,
                    checkpoint_to=checkpoint,
                )
            except CheckpointError as exc:
                # The snapshot loaded but belongs to another formula/config.
                print("warning: checkpoint %s does not match this run: %s"
                      % (checkpoint, exc), file=sys.stderr)
                result = solve(
                    phi, config, interrupt=flag, checkpoint_to=checkpoint
                )
    stats = result.stats
    print("result      %s" % result.outcome.value.upper())
    print("paradigm    %s" % config.paradigm)
    if config.paradigm == "search":
        if stats.engine_fallback:
            print("engine      %s (FELL BACK to %s: compiled kernel unavailable)"
                  % (config.engine, stats.engine_fallback))
        else:
            print("engine      %s" % config.engine)
    print("decisions   %d" % stats.decisions)
    print("conflicts   %d" % stats.conflicts)
    print("solutions   %d" % stats.solutions)
    print("learned     %d nogoods, %d goods" % (stats.learned_clauses, stats.learned_cubes))
    print("visits      %d clause, %d cube (%d watcher swaps)"
          % (stats.clause_visits, stats.cube_visits, stats.watcher_swaps))
    print("time        %.3fs" % result.seconds)
    if result.outcome is Outcome.UNKNOWN:
        if result.interrupted:
            if checkpoint is not None and os.path.exists(checkpoint):
                print("interrupted (checkpoint saved to %s; rerun with "
                      "--checkpoint to resume)" % checkpoint)
            else:
                print("interrupted")
            return EXIT_INTERRUPTED
        if checkpoint is not None and os.path.exists(checkpoint):
            print("budget exhausted (checkpoint saved to %s; rerun with a "
                  "larger budget to resume)" % checkpoint)
        return EXIT_UNKNOWN
    return EXIT_TRUE if result.value else EXIT_FALSE


def cmd_prenex(args: argparse.Namespace) -> int:
    phi = _read(args.input)
    _write(prenex(phi, args.strategy), args.output)
    return 0


def cmd_miniscope(args: argparse.Namespace) -> int:
    phi = _read(args.input)
    tree = miniscope(phi)
    print(
        "structure ratio: %.0f%% of (existential, universal) pairs freed"
        % (100 * structure_ratio(phi, tree)),
        file=sys.stderr,
    )
    _write(tree, args.output)
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    if args.family == "ncf":
        phi = generate_ncf(
            NcfParams(dep=args.dep, var=args.var, cls=args.cls, lpc=args.lpc, seed=args.seed)
        )
    elif args.family == "fpv":
        phi = generate_fpv(FpvParams(seed=args.seed))
    else:
        raise AssertionError(args.family)
    _write(phi, args.output)
    return 0


def cmd_evalx_run(args: argparse.Namespace) -> int:
    """Run one Section-VII suite through the parallel batch harness."""
    from repro.evalx.runner import Budget
    from repro.evalx.report import render_scatter
    from repro.evalx.scatter import pair_points
    from repro.evalx.suites import run_dia, run_eval06, run_fpv, run_ncf
    from repro.evalx.table1 import build_row, render_table

    if args.paradigm != "search":
        # Refuse capability mismatches before launching the sweep: the
        # registry's flags say what each paradigm can honestly deliver.
        from repro.core.paradigm import get_paradigm

        caps = get_paradigm(args.paradigm).capabilities
        if args.certify and not caps.proof:
            print("error: paradigm %r cannot log proofs; drop --certify"
                  % args.paradigm, file=sys.stderr)
            return 2
        if args.checkpoint_dir and not caps.checkpoint:
            print("error: paradigm %r cannot checkpoint; drop --checkpoint-dir"
                  % args.paradigm, file=sys.stderr)
            return 2
    faults = None
    if args.fault_plan:
        from repro.robustness.faults import FaultPlan

        faults = FaultPlan.from_file(args.fault_plan)
    budget = Budget(decisions=args.decisions, seconds=args.seconds)
    common = dict(
        budget=budget,
        jobs=args.jobs,
        results_path=args.results,
        wall_timeout=args.wall_timeout,
        certify=args.certify,
        engine=args.engine,
        paradigm=args.paradigm,
        checkpoint_dir=args.checkpoint_dir,
        faults=faults,
        durable=not args.no_fsync,
        mem_limit_mb=args.mem_limit,
    )
    filtered_out = None
    if args.suite == "ncf":
        results = run_ncf(instances=args.instances, **common)
        strategies = sorted({s for r in results for s in r.to_runs})
        rows = [
            build_row(
                "NCF",
                s,
                [(r.to_run(s), r.po_run) for r in results],
                tie_margin=args.tie_margin,
            )
            for s in strategies
        ]
    elif args.suite == "fpv":
        results = run_fpv(count=args.instances, **common)
        rows = [
            build_row(
                "FPV",
                "eu_au",
                [(r.to_run("eu_au"), r.po_run) for r in results],
                tie_margin=args.tie_margin,
            )
        ]
    elif args.suite == "dia":
        results = run_dia(**common)
        rows = [
            build_row(
                "DIA",
                "eq16",
                [(r.to_best, r.po_run) for r in results],
                tie_margin=args.tie_margin,
            )
        ]
    else:  # prob / fixed
        results, filtered_out = run_eval06(args.suite, count=args.instances, **common)
        rows = [
            build_row(
                args.suite.upper(),
                "eu_au",
                [(r.to_run("eu_au"), r.po_run) for r in results],
                tie_margin=args.tie_margin,
            )
        ]
    print(render_table(rows))
    if filtered_out is not None:
        print("structure filter dropped %d instance(s)" % filtered_out)
    if args.scatter:
        triples = [(r.instance, r.to_best, r.po_run) for r in results]
        print()
        print(render_scatter(pair_points(triples), title="QUBE(TO) (y) vs QUBE(PO) (x)"))
    if args.results:
        print("measurements recorded in %s (rerun with the same path to resume)"
              % args.results)
    if args.certify:
        runs = [m for r in results for m in list(r.to_runs.values()) + [r.po_run]]
        bad = [m for m in runs if m.certificate_ok is False]
        certified = [m for m in runs if m.certificate_status is not None]
        print(
            "certificates: %d/%d checked, %d invalid"
            % (len(certified), len(runs), len(bad))
        )
        for m in bad:
            print("  INVALID certificate: %s %s" % (m.instance, m.solver))
        if bad:
            return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the kernel benchmark harness; emit BENCH_kernels.json."""
    from repro.bench import EngineDivergence, render_report, run_bench, write_report

    try:
        report = run_bench(quick=args.quick, profile=args.profile)
    except EngineDivergence as exc:
        # persist the divergent report for triage, then fail loudly
        write_report(exc.report, args.output)
        print(render_report(exc.report))
        print("FAILED: %s (report in %s)" % (exc, args.output), file=sys.stderr)
        return 1
    write_report(report, args.output)
    print(render_report(report))
    print("report written to %s" % args.output)
    return 0


def cmd_cube_run(args: argparse.Namespace) -> int:
    """Cube-and-conquer solve: split, fan out over N processes, fold."""
    from repro.cube import run_cube
    from repro.robustness import global_flag, handling_signals

    from repro.core.paradigm import CapabilityError

    phi = _read(args.input)
    flag = global_flag()
    flag.clear()
    with handling_signals(flag):
        try:
            report = run_cube(
                phi,
                jobs=args.jobs,
                leaf_decisions=args.leaf_decisions,
                certify=args.certify,
                share=args.share,
                seed=args.seed,
                engine=args.engine,
                paradigm=args.paradigm,
                max_depth=args.max_depth,
                initial_cubes=args.initial_cubes,
                total_decisions=args.max_decisions,
                wall_timeout=args.wall_timeout,
                interrupt=flag,
                max_shared_lits=args.max_shared_lits,
            )
        except CapabilityError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
    print("result      %s" % report.outcome.value.upper())
    print("jobs        %d (%d worker processes launched)"
          % (report.jobs, report.workers_launched))
    print("cubes       %d leaves, %d re-splits, %d budget escalations, "
          "%d cancelled" % (report.leaves, report.resplits,
                            report.escalations, report.cancelled))
    print("decisions   %d (across all workers)" % report.total_decisions)
    if report.share:
        print("shared      %d exported, %d imported, %d rejected"
              % (report.share.get("exported", 0),
                 report.share.get("imported", 0),
                 sum(report.share.get("import_rejected", {}).values())))
    print("time        %.3fs" % report.seconds)
    if args.certify:
        print("certificate %s (%s)"
              % (report.certificate_status,
                 "complete" if report.certificate.complete
                 else "incomplete: %s" % report.certificate.reason))
        if args.cert_out:
            import json

            with open(args.cert_out, "w") as handle:
                for step in report.certificate.steps:
                    handle.write(json.dumps(step) + "\n")
            print("written to  %s" % args.cert_out)
        if report.certificate_status != "verified":
            return 1
    if report.outcome is Outcome.UNKNOWN:
        return EXIT_INTERRUPTED if report.interrupted else EXIT_UNKNOWN
    return EXIT_TRUE if report.outcome is Outcome.TRUE else EXIT_FALSE


def cmd_cube_bench(args: argparse.Namespace) -> int:
    """Cube-and-conquer speedup benchmark; emits BENCH_cube.json."""
    from repro.cube.bench import (
        CubeDivergence,
        render_report,
        run_cube_bench,
        write_report,
    )

    try:
        report = run_cube_bench(quick=args.quick, seed=args.seed)
    except CubeDivergence as exc:
        write_report(exc.report, args.output)
        print(render_report(exc.report))
        print("FAILED: %s (report in %s)" % (exc, args.output), file=sys.stderr)
        return 1
    write_report(report, args.output)
    print(render_report(report))
    print("report written to %s" % args.output)
    return 0


def cmd_portfolio_run(args: argparse.Namespace) -> int:
    """Race the paradigm portfolio on one instance; first verdict wins."""
    import json

    from repro.evalx.runner import Budget
    from repro.portfolio import race

    faults = None
    if args.fault_plan:
        from repro.robustness.faults import FaultPlan

        faults = FaultPlan.from_file(args.fault_plan)
    phi = _read(args.input)
    entrants = tuple(e.strip() for e in args.entrants.split(",") if e.strip())
    result = race(
        phi,
        instance=args.input,
        budget=Budget(decisions=args.decisions, seconds=args.seconds),
        jobs=args.jobs,
        entrants=entrants,
        strategy=args.strategy,
        engine=args.engine,
        run_all=args.run_all,
        faults=faults,
        wall_timeout=args.wall_timeout,
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print("result      %s" % result.outcome.value.upper())
        print("winner      %s" % (result.winner or "-"))
        print("jobs        %d (of %d requested; clamped to this machine's "
              "cores)" % (result.jobs, args.jobs))
        print("reported    %s" % (", ".join(
            "%s=%s" % (m.solver, m.outcome.value) for m in result.measurements
        ) or "-"))
        if result.cancelled:
            print("cancelled   %s" % ", ".join(result.cancelled))
        for name, err in sorted(result.errors.items()):
            print("crashed     %s: %s" % (name, err.strip().splitlines()[-1]))
        if result.disagreement is not None:
            print("disagreed   %s" % result.disagreement)
            triage = result.triage or {}
            print("triage      %s (certificate %s)"
                  % ("resolved" if triage.get("resolved") else "unresolved",
                     triage.get("certificate_status")))
        print("time        %.3fs" % result.seconds)
    if result.outcome is Outcome.UNKNOWN:
        return EXIT_UNKNOWN
    return EXIT_TRUE if result.outcome is Outcome.TRUE else EXIT_FALSE


def cmd_portfolio_bench(args: argparse.Namespace) -> int:
    """Portfolio-vs-best-single benchmark; emits BENCH_portfolio.json."""
    from repro.portfolio.bench import render_report, run_portfolio_bench, write_report

    report = run_portfolio_bench(quick=args.quick, jobs=args.jobs)
    write_report(report, args.output)
    print(render_report(report))
    print("report written to %s" % args.output)
    return 0 if report["all_within_bound"] else 1


def cmd_certify_emit(args: argparse.Namespace) -> int:
    """Solve while logging the resolution proof; self-check unless asked not to."""
    from repro.certify import (
        JsonlSink,
        ProofLogger,
        certifying_config,
        check_certificate,
    )

    phi = _read(args.input)
    solved = prenex(phi, args.strategy) if args.to else phi
    config = certifying_config(
        SolverConfig(
            max_decisions=args.max_decisions,
            max_seconds=args.max_seconds,
            engine=args.engine,
        )
    )
    with JsonlSink(args.output) as sink:
        logger = ProofLogger(sink)
        from repro.core.solver import QdpllSolver

        result = QdpllSolver(solved, config, proof=logger).solve()
    print("result      %s" % result.outcome.value.upper())
    print("decisions   %d" % result.stats.decisions)
    print("certificate %s" % args.output)
    if args.no_check:
        return 0
    # Always check against the original formula: a TO proof must also be
    # valid under the tree's partial order (prenexing only extends it).
    report = check_certificate(phi, args.output)
    print("check       %s%s" % (report.status, ": %s" % report.error if report.error else ""))
    return 0 if report.ok else 1


def cmd_certify_check(args: argparse.Namespace) -> int:
    """Replay a certificate against a formula; exit 0 only on 'verified'."""
    from repro.certify import check_certificate

    phi = _read(args.input)
    report = check_certificate(phi, args.certificate)
    print("status      %s" % report.status)
    if report.outcome:
        print("outcome     %s" % report.outcome.upper())
    print("steps       %d" % report.steps)
    if report.error:
        print("error       %s" % report.error)
    return 0 if report.ok else 1


def cmd_certify_stats(args: argparse.Namespace) -> int:
    from repro.certify import certificate_stats

    stats = certificate_stats(args.certificate)
    for key, value in stats.to_dict().items():
        print("%-14s%s" % (key, value))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    phi = _read(args.input)
    prefix = phi.prefix
    print("variables     %d" % phi.num_vars)
    print("clauses       %d" % phi.num_clauses)
    print("prenex        %s" % ("yes" if phi.is_prenex else "no"))
    print("prefix level  %d" % prefix.prefix_level)
    print("blocks        %d" % len(prefix.blocks))
    print("top variables %d" % len(prefix.top_variables()))
    return 0


def cmd_serve_run(args: argparse.Namespace) -> int:
    """Run the persistent solver daemon until SIGTERM/SIGINT."""
    from repro.serve import run_daemon

    faults = None
    if args.fault_plan:
        from repro.robustness.faults import FaultPlan

        faults = FaultPlan.from_file(args.fault_plan)
    return run_daemon(
        args.socket,
        jobs=args.jobs,
        cache_path=args.cache,
        wall_timeout=args.wall_timeout,
        checkpoint_dir=args.checkpoint_dir,
        mem_limit_mb=args.mem_limit,
        faults=faults,
        max_inflight=args.max_inflight,
        failure_threshold=args.failure_threshold,
        breaker_cooldown=args.breaker_cooldown,
    )


def cmd_serve_chaos(args: argparse.Namespace) -> int:
    """Chaos smoke: drive a fault-injected daemon, check every invariant."""
    import json

    from repro.serve.chaos import render_report, run_serve_chaos

    report = run_serve_chaos(
        seed=args.seed,
        requests=args.requests,
        mem_limit_mb=args.mem_limit,
        keep_stats=args.stats_out,
    )
    print(render_report(report))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print("report written to %s" % args.output)
    return 0 if report["passed"] else 1


def cmd_serve_request(args: argparse.Namespace) -> int:
    """Send one JSON request (from a file, or stdin with '-') to a daemon."""
    import json

    from repro.serve import request

    if args.request == "-":
        payload = json.load(sys.stdin)
    else:
        with open(args.request) as handle:
            payload = json.load(handle)
    response = request(args.socket, payload, timeout=args.timeout)
    print(json.dumps(response, indent=2, sort_keys=True))
    if not response.get("ok"):
        return 1
    outcome = response.get("outcome")
    if outcome == "true":
        return EXIT_TRUE
    if outcome == "false":
        return EXIT_FALSE
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    """Incremental-vs-scratch sweeps + daemon throughput; BENCH_serve.json."""
    from repro.serve.bench import render_report, run_serve_bench, write_report

    report = run_serve_bench(quick=args.quick)
    write_report(report, args.output)
    print(render_report(report))
    print("report written to %s" % args.output)
    return 0 if report["incremental_strictly_fewer"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve a QBF (exit 10=true, 20=false, 2=unknown)")
    p_solve.add_argument("input")
    p_solve.add_argument("--to", action="store_true", help="prenex first (QUBE(TO) pipeline)")
    p_solve.add_argument("--po", action="store_true", help="solve the tree directly (default)")
    p_solve.add_argument("--strategy", default="eu_au", choices=STRATEGIES)
    p_solve.add_argument("--policy", default="levelsub")
    p_solve.add_argument("--no-learning", action="store_true")
    p_solve.add_argument("--no-pure", action="store_true")
    p_solve.add_argument(
        "--engine", default=default_engine(), choices=ENGINES,
        help="propagation backend; decision-for-decision identical, only "
        "the speed differs (default: $REPRO_ENGINE or counters)",
    )
    p_solve.add_argument(
        "--paradigm", default=default_paradigm(), choices=PARADIGMS,
        help="solving algorithm behind the Solver protocol: QDPLL search "
        "(default), iterative quantifier expansion, or the recursive "
        "Figure-1 reference (default: $REPRO_PARADIGM or search)",
    )
    p_solve.add_argument("--max-decisions", type=int, default=None)
    p_solve.add_argument("--max-seconds", type=float, default=None)
    p_solve.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="resume from this snapshot if it exists, and save one there on "
        "preemption (SIGTERM/SIGINT) or budget exhaustion; exit %d means "
        "interrupted-with-checkpoint, %d plain budget-unknown"
        % (EXIT_INTERRUPTED, EXIT_UNKNOWN),
    )
    p_solve.set_defaults(func=cmd_solve)

    p_prenex = sub.add_parser("prenex", help="convert to prenex form")
    p_prenex.add_argument("input")
    p_prenex.add_argument("-o", "--output", default=None)
    p_prenex.add_argument("--strategy", default="eu_au", choices=STRATEGIES)
    p_prenex.set_defaults(func=cmd_prenex)

    p_mini = sub.add_parser("miniscope", help="minimize quantifier scopes")
    p_mini.add_argument("input")
    p_mini.add_argument("-o", "--output", default=None)
    p_mini.set_defaults(func=cmd_miniscope)

    p_gen = sub.add_parser("generate", help="generate a benchmark instance")
    p_gen.add_argument("family", choices=("ncf", "fpv"))
    p_gen.add_argument("--dep", type=int, default=5)
    p_gen.add_argument("--var", type=int, default=4)
    p_gen.add_argument("--cls", type=int, default=12)
    p_gen.add_argument("--lpc", type=int, default=4)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("-o", "--output", default=None)
    p_gen.set_defaults(func=cmd_generate)

    p_stats = sub.add_parser("stats", help="describe an instance")
    p_stats.add_argument("input")
    p_stats.set_defaults(func=cmd_stats)

    p_bench = sub.add_parser(
        "bench",
        help="kernel benchmark: pinned fig6 series, every available engine "
        "(counters/watched/native), decision-identity check, "
        "schema-versioned JSON report",
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="CI smoke series (one model size, short budget); skips the "
        "baseline comparison, keeps the cross-engine identity check",
    )
    p_bench.add_argument(
        "--profile", action="store_true",
        help="wrap each configuration in cProfile and embed the top "
        "functions by cumulative time in the report",
    )
    p_bench.add_argument(
        "-o", "--output", default="BENCH_kernels.json", metavar="OUT.JSON",
        help="report path (default: %(default)s)",
    )
    p_bench.set_defaults(func=cmd_bench)

    p_serve = sub.add_parser(
        "serve", help="persistent solver daemon over a local socket"
    )
    serve_sub = p_serve.add_subparsers(dest="serve_command", required=True)
    p_srun = serve_sub.add_parser(
        "run",
        help="start the daemon (newline-delimited JSON requests; "
        "SIGTERM shuts it down cleanly)",
    )
    p_srun.add_argument("--socket", required=True, metavar="PATH",
                        help="unix socket path to listen on")
    p_srun.add_argument("--jobs", type=int, default=2,
                        help="concurrent solve slots (default 2)")
    p_srun.add_argument("--cache", default=None, metavar="PATH",
                        help="persistent verdict cache (JSONL results log), "
                        "reloaded on restart")
    p_srun.add_argument("--wall-timeout", type=float, default=None,
                        help="hard per-request seconds for worker-shard solves")
    p_srun.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="directory for preemption checkpoints of "
                        "worker-shard solves")
    p_srun.add_argument("--mem-limit", type=float, default=None, metavar="MB",
                        help="per-worker address-space ceiling (RLIMIT_AS) in "
                        "MiB; a breaching solve returns a structured 'memout' "
                        "instead of a host-level OOM kill")
    p_srun.add_argument("--max-inflight", type=int, default=16,
                        help="admission budget: solve-lane requests in flight "
                        "before new ones are shed with 'overloaded' "
                        "(default 16)")
    p_srun.add_argument("--failure-threshold", type=int, default=3,
                        help="consecutive crash/hang/memout outcomes before a "
                        "task key's circuit breaker trips open (default 3)")
    p_srun.add_argument("--breaker-cooldown", type=float, default=30.0,
                        help="seconds an open breaker waits before letting a "
                        "half-open probe through (default 30)")
    p_srun.add_argument("--fault-plan", default=None, metavar="PLAN.JSON",
                        help="deterministic fault-injection plan for chaos-"
                        "testing the serve path (use explicit 'assignments'; "
                        "see repro.robustness.faults.FaultPlan)")
    p_srun.set_defaults(func=cmd_serve_run)
    p_schaos = serve_sub.add_parser(
        "chaos",
        help="self-contained chaos smoke: boot a fault-injected daemon, "
        "drive a scripted client battery, verify every answer",
    )
    p_schaos.add_argument("--seed", type=int, default=0,
                          help="fault-plan seed (default 0)")
    p_schaos.add_argument("--requests", type=int, default=3,
                          help="rounds of the request battery (default 3)")
    p_schaos.add_argument("--mem-limit", type=float, default=512.0,
                          metavar="MB", help="worker memory ceiling for the "
                          "chaos daemon (default 512)")
    p_schaos.add_argument("-o", "--output", default=None, metavar="OUT.JSON",
                          help="also write the machine-readable report here")
    p_schaos.add_argument("--stats-out", default=None, metavar="STATS.JSON",
                          help="dump the daemon's post-chaos stats response "
                          "here (CI uploads this as an artifact)")
    p_schaos.set_defaults(func=cmd_serve_chaos)
    p_sreq = serve_sub.add_parser(
        "request", help="send one JSON request to a running daemon"
    )
    p_sreq.add_argument("--socket", required=True, metavar="PATH")
    p_sreq.add_argument("request", help="path to a JSON request file, or '-'")
    p_sreq.add_argument("--timeout", type=float, default=300.0)
    p_sreq.set_defaults(func=cmd_serve_request)
    p_sbench = serve_sub.add_parser(
        "bench",
        help="incremental-vs-scratch SMV sweeps + daemon throughput; "
        "emits BENCH_serve.json",
    )
    p_sbench.add_argument("--quick", action="store_true",
                          help="bench the small model set only")
    p_sbench.add_argument("-o", "--output", default="BENCH_serve.json")
    p_sbench.set_defaults(func=cmd_serve_bench)

    p_cube = sub.add_parser(
        "cube",
        help="cube-and-conquer: parallel search inside one instance "
        "(run, bench)",
    )
    cube_sub = p_cube.add_subparsers(dest="cube_command", required=True)
    p_crun = cube_sub.add_parser(
        "run",
        help="split one instance over the quantifier tree's branchable "
        "frontier and solve the cubes across N processes "
        "(exit 10=true, 20=false, 2=unknown, 3=interrupted)",
    )
    p_crun.add_argument("input")
    p_crun.add_argument("--jobs", type=int, default=2,
                        help="worker processes; 1 = the sequential baseline "
                        "(no splitting, no fork, no sharing)")
    p_crun.add_argument(
        "--certify", action="store_true",
        help="every worker logs its proof fragment; the fragments are "
        "merged into one certificate and checked against the original "
        "formula (exit 1 unless it verifies; disables constraint imports)",
    )
    p_crun.add_argument("--cert-out", default=None, metavar="CERT.JSONL",
                        help="also write the merged certificate here")
    share = p_crun.add_mutually_exclusive_group()
    share.add_argument("--share", dest="share", action="store_true",
                       default=True,
                       help="share learned constraints between workers "
                       "(default)")
    share.add_argument("--no-share", dest="share", action="store_false",
                       help="solve the cubes fully independently")
    p_crun.add_argument(
        "--seed", type=int, default=0,
        help="split-tree tie-breaking seed; the folded verdict is "
        "deterministic per seed, wall-clock and per-worker statistics "
        "are not (see DESIGN.md §12)",
    )
    p_crun.add_argument("--engine", default=None, choices=ENGINES,
                        help="propagation backend for every worker")
    p_crun.add_argument(
        "--paradigm", default=None, choices=PARADIGMS,
        help="worker solving paradigm; must be checkpoint-capable (workers "
        "snapshot their leaves), so incapable paradigms are refused with "
        "a clear error (default: $REPRO_PARADIGM or search)",
    )
    p_crun.add_argument("--leaf-decisions", type=int, default=500,
                        help="per-cube decision budget before the "
                        "coordinator re-splits or escalates (default 500)")
    p_crun.add_argument("--initial-cubes", type=int, default=None,
                        help="initial split-tree leaves (default 16*jobs)")
    p_crun.add_argument("--max-depth", type=int, default=12,
                        help="cube length cap for dynamic re-splitting")
    p_crun.add_argument("--max-shared-lits", type=int, default=8,
                        help="admission cap on shared-constraint width")
    p_crun.add_argument("--max-decisions", type=int, default=None,
                        help="total decision budget (jobs=1 baseline only)")
    p_crun.add_argument("--wall-timeout", type=float, default=None,
                        help="overall wall-clock cap in seconds")
    p_crun.set_defaults(func=cmd_cube_run)
    p_cbench = cube_sub.add_parser(
        "bench",
        help="speedup vs the sequential baseline on the Figure-6 series; "
        "emits BENCH_cube.json, exits nonzero on any verdict disagreement",
    )
    p_cbench.add_argument("--quick", action="store_true",
                          help="CI smoke series (small instances, jobs 1-2)")
    p_cbench.add_argument("--seed", type=int, default=0)
    p_cbench.add_argument("-o", "--output", default="BENCH_cube.json")
    p_cbench.set_defaults(func=cmd_cube_bench)

    p_port = sub.add_parser(
        "portfolio",
        help="paradigm portfolio: race TO-search/PO-search/expansion on one "
        "instance (run, bench)",
    )
    port_sub = p_port.add_subparsers(dest="portfolio_command", required=True)
    p_prun = port_sub.add_parser(
        "run",
        help="race the portfolio on one instance; first determinate verdict "
        "wins, siblings are cancelled "
        "(exit 10=true, 20=false, 2=unknown)",
    )
    p_prun.add_argument("input")
    p_prun.add_argument("--jobs", type=int, default=3,
                        help="concurrent lanes, clamped to the machine's "
                        "cores; 1 = deterministic serial mode (default 3)")
    p_prun.add_argument(
        "--entrants", default=",".join(("PO", "TO", "EXP")), metavar="LIST",
        help="comma-separated lanes: PO, TO, EXP, or custom "
        "name:mode:paradigm triples (default: %(default)s)",
    )
    p_prun.add_argument("--strategy", default="eu_au", choices=STRATEGIES,
                        help="prenexing strategy for TO lanes")
    p_prun.add_argument("--engine", default=default_engine(), choices=ENGINES,
                        help="propagation backend for search lanes")
    p_prun.add_argument("--decisions", type=int, default=4000,
                        help="per-lane decision budget (default 4000)")
    p_prun.add_argument("--seconds", type=float, default=None,
                        help="cooperative per-lane wall cap")
    p_prun.add_argument("--wall-timeout", type=float, default=None,
                        help="hard per-lane seconds (pool mode only)")
    p_prun.add_argument(
        "--run-all", action="store_true",
        help="let every lane finish and cross-check all verdicts instead "
        "of cancelling at the first one (the agreement-audit mode)",
    )
    p_prun.add_argument(
        "--fault-plan", default=None, metavar="PLAN.JSON",
        help="deterministic fault plan; the flip-verdict kind forces a "
        "cross-paradigm disagreement to exercise certificate triage",
    )
    p_prun.add_argument("--json", action="store_true",
                        help="emit the full race record as JSON")
    p_prun.set_defaults(func=cmd_portfolio_run)
    p_pbench = port_sub.add_parser(
        "bench",
        help="portfolio vs best single paradigm on the fig6 series; emits "
        "BENCH_portfolio.json, exits nonzero if the portfolio exceeds the "
        "wall-clock bound",
    )
    p_pbench.add_argument("--quick", action="store_true",
                          help="CI smoke series (one family, short budget)")
    p_pbench.add_argument("--jobs", type=int, default=3)
    p_pbench.add_argument("-o", "--output", default="BENCH_portfolio.json")
    p_pbench.set_defaults(func=cmd_portfolio_bench)

    p_cert = sub.add_parser(
        "certify", help="clause/term resolution certificates (emit, check, stats)"
    )
    cert_sub = p_cert.add_subparsers(dest="certify_command", required=True)
    p_emit = cert_sub.add_parser(
        "emit", help="solve while logging the resolution proof to a JSONL file"
    )
    p_emit.add_argument("input")
    p_emit.add_argument("-o", "--output", required=True, metavar="CERT.JSONL")
    p_emit.add_argument("--to", action="store_true",
                        help="prenex first (the certificate still checks "
                        "against the original tree)")
    p_emit.add_argument("--strategy", default="eu_au", choices=STRATEGIES)
    p_emit.add_argument("--max-decisions", type=int, default=None)
    p_emit.add_argument("--max-seconds", type=float, default=None)
    p_emit.add_argument("--no-check", action="store_true",
                        help="skip the self-check after emitting")
    p_emit.add_argument("--engine", default=default_engine(), choices=ENGINES,
                        help="propagation backend (certificates are "
                        "engine-independent; both must emit the same proof)")
    p_emit.set_defaults(func=cmd_certify_emit)
    p_check = cert_sub.add_parser(
        "check", help="verify a certificate against a formula, solver not involved"
    )
    p_check.add_argument("input")
    p_check.add_argument("certificate")
    p_check.set_defaults(func=cmd_certify_check)
    p_cstats = cert_sub.add_parser("stats", help="summarize a certificate file")
    p_cstats.add_argument("certificate")
    p_cstats.set_defaults(func=cmd_certify_stats)

    p_evalx = sub.add_parser(
        "evalx", help="batch TO-vs-PO experiment harness (parallel, resumable)"
    )
    evalx_sub = p_evalx.add_subparsers(dest="evalx_command", required=True)
    p_run = evalx_sub.add_parser("run", help="run one Section-VII suite sweep")
    p_run.add_argument("suite", choices=("ncf", "fpv", "dia", "prob", "fixed"))
    p_run.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = serial in-process, the legacy path)",
    )
    p_run.add_argument(
        "--results", default=None, metavar="OUT.JSONL",
        help="append every measurement to this JSONL file; rerunning with "
        "the same file resumes by skipping recorded runs",
    )
    p_run.add_argument(
        "--wall-timeout", type=float, default=None, metavar="SECONDS",
        help="hard per-run cap enforced by killing the worker (jobs > 1)",
    )
    p_run.add_argument(
        "--decisions", type=int, default=4000,
        help="per-run decision budget (the reproduction's timeout analogue)",
    )
    p_run.add_argument(
        "--seconds", type=float, default=None,
        help="cooperative per-run wall cap; off by default so decision "
        "metrics stay machine-independent",
    )
    p_run.add_argument("--instances", type=int, default=8,
                       help="instances per setting (ncf) or instance count")
    p_run.add_argument("--tie-margin", type=int, default=50)
    p_run.add_argument("--scatter", action="store_true",
                       help="also render the ASCII scatter of the sweep")
    p_run.add_argument(
        "--certify", action="store_true",
        help="log and self-check a resolution proof for every run "
        "(pure literals are disabled on certified runs); exits nonzero "
        "if any certificate is invalid",
    )
    p_run.add_argument(
        "--engine", default=default_engine(), choices=ENGINES,
        help="propagation backend for every run in the sweep; a non-default "
        "choice lands in the task fingerprints, so results files keyed on "
        "the default stay resumable (default: $REPRO_ENGINE or counters)",
    )
    p_run.add_argument(
        "--paradigm", default=default_paradigm(), choices=PARADIGMS,
        help="solving algorithm for every run in the sweep; like --engine, "
        "a non-default choice lands in the task fingerprints so existing "
        "results files stay resumable (default: $REPRO_PARADIGM or search)",
    )
    p_run.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="per-task solver snapshots land here; a preempted or "
        "hard-timed-out worker's retry (or a whole rerun) resumes its "
        "search instead of starting over",
    )
    p_run.add_argument(
        "--fault-plan", default=None, metavar="PLAN.JSON",
        help="deterministic fault-injection plan (see repro.robustness."
        "faults.FaultPlan) for chaos-testing the harness itself",
    )
    p_run.add_argument(
        "--no-fsync", action="store_true",
        help="skip fsync after each results row; faster, but a host crash "
        "can lose or tear the final line",
    )
    p_run.add_argument(
        "--mem-limit", type=float, default=None, metavar="MB",
        help="per-worker address-space ceiling (RLIMIT_AS) in MiB (jobs > "
        "1); a breaching run is recorded as status='memout' and never "
        "retried at the same ceiling",
    )
    p_run.set_defaults(func=cmd_evalx_run)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
