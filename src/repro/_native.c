/* repro._native — the compiled propagation kernel behind the "native" backend.
 *
 * One NativeCore object holds the matrix-derived state of a single solving
 * session in flat C arrays: a literal-indexed value array (the mirror of
 * Trail.lit_val), per-record satisfaction counters, occurrence lists as
 * growable int vectors, the occ_unsat / cube_count pure-literal sidecar and
 * the propagation trail itself.  The Python wrapper
 * (repro.core.engine.native.NativeBackend) forwards every assign/backtrack
 * and replays the kernel's push log onto the Python Trail after each
 * propagate() call, so the Python-visible search state stays identical.
 *
 * THE CONTRACT: this file is a line-for-line port of the eager
 * counter-backend semantics (repro/core/engine/counters.py and the shared
 * _examine / apply_pure_literals in backend.py).  It must produce the same
 * events on the same records in the same order — decision-for-decision
 * identity with the counters reference is enforced by the cross-engine
 * property tests and the `repro bench` identity gate.  Any behavioural
 * change here must be mirrored in the pure-Python backends and vice versa.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdlib.h>
#include <string.h>

/* version stamp surfaced as repro._native.KERNEL_VERSION; bump on any
 * change to the kernel semantics or the wrapper-facing API. */
#define KERNEL_VERSION 2

/* propagate() event codes (wrapper maps them to the backend protocol) */
#define EV_NONE 0
#define EV_CONFLICT 1
#define EV_SOLUTION 2
#define EV_MODEL 3

/* push-log reason tags */
#define TAG_REC 0
#define TAG_PURE 1

/* ---------------------------------------------------------------- vectors */

typedef struct {
    int *data;
    Py_ssize_t len;
    Py_ssize_t cap;
} IntVec;

static int
vec_push(IntVec *v, int value)
{
    if (v->len == v->cap) {
        Py_ssize_t cap = v->cap ? v->cap * 2 : 4;
        int *data = (int *)realloc(v->data, (size_t)cap * sizeof(int));
        if (data == NULL)
            return -1;
        v->data = data;
        v->cap = cap;
    }
    v->data[v->len++] = value;
    return 0;
}

static void
vec_free(IntVec *v)
{
    free(v->data);
    v->data = NULL;
    v->len = v->cap = 0;
}

/* ---------------------------------------------------------------- records */

typedef struct {
    int lits_off, lits_len; /* offsets into the shared literal pool */
    int prim_off, prim_len;
    int sec_off, sec_len;
    int n_true;
    int n_false;
    unsigned char is_cube;
    unsigned char original;
} RecC;

/* ------------------------------------------------------------------- core */

typedef struct {
    PyObject_HEAD

    int num_slots; /* nv + 1: arrays indexed by variable */
    int base;      /* literal arrays are indexed by base + lit  */
    int track_pure;

    /* prefix tables (per variable) */
    int *level;
    int *din;
    int *dout;
    unsigned char *is_exist;

    /* assignment mirror: 1 true / -1 false / 0 open, literal-indexed */
    signed char *lit_val;

    /* record store + shared literal pool */
    RecC *recs;
    Py_ssize_t n_recs, cap_recs;
    IntVec pool;

    /* occurrence lists and the pure-literal sidecar, literal-indexed */
    IntVec *clause_occ;
    IntVec *cube_occ;
    int *occ_unsat;
    int *cube_count;
    int n_unsat_orig;

    /* the native trail mirror + per-variable trail positions */
    IntVec trail;
    int *pos;
    long long max_trail;

    /* pure-literal candidate flags (per variable) + iteration scratch */
    unsigned char *pure_cand;
    IntVec scratch_cand;

    /* per-examine scratch: unassigned primaries / secondaries */
    IntVec scratch_p;
    IntVec scratch_s;

    /* reduce() / build_model_cube() scratch */
    IntVec scratch_anchor;
    IntVec scratch_kept;
    unsigned char *chosen; /* literal-indexed, model-cube construction */

    /* push log of one propagate() call: (lit, tag, rec_id) triples */
    IntVec push_log;

    /* per-propagate stat deltas */
    long long d_propagations;
    long long d_pure_literals;
    long long d_clause_visits;
    long long d_cube_visits;
} NativeCore;

/* -------------------------------------------------------- sidecar helpers */

/* CounterBackend._on_clause_sat: first satisfying literal arrived. */
static void
on_clause_sat(NativeCore *c, RecC *rec)
{
    int i;
    const int *lits = c->pool.data + rec->lits_off;
    if (rec->original)
        c->n_unsat_orig -= 1;
    for (i = 0; i < rec->lits_len; i++) {
        int lit = lits[i];
        int n = --c->occ_unsat[c->base + lit];
        if (n == 0)
            c->pure_cand[lit > 0 ? lit : -lit] = 1;
    }
}

/* CounterBackend._on_clause_unsat: the last satisfying literal left. */
static void
on_clause_unsat(NativeCore *c, RecC *rec)
{
    int i;
    const int *lits = c->pool.data + rec->lits_off;
    if (rec->original)
        c->n_unsat_orig += 1;
    for (i = 0; i < rec->lits_len; i++)
        c->occ_unsat[c->base + lits[i]] += 1;
}

/* CounterBackend.assign minus the Python Trail push (the wrapper owns it):
 * set lit_val, append to the native trail, walk all four occurrence lists
 * updating the eager counters.  Returns -1 on allocation failure only. */
static int
core_assign(NativeCore *c, int lit)
{
    Py_ssize_t i;
    IntVec *occ;

    c->lit_val[c->base + lit] = 1;
    c->lit_val[c->base - lit] = -1;
    c->pos[lit > 0 ? lit : -lit] = (int)c->trail.len;
    if (vec_push(&c->trail, lit) < 0)
        return -1;
    if (c->trail.len > c->max_trail)
        c->max_trail = c->trail.len;

    occ = &c->clause_occ[c->base + lit];
    for (i = 0; i < occ->len; i++) {
        RecC *rec = &c->recs[occ->data[i]];
        if (++rec->n_true == 1)
            on_clause_sat(c, rec);
    }
    occ = &c->clause_occ[c->base - lit];
    for (i = 0; i < occ->len; i++)
        c->recs[occ->data[i]].n_false += 1;
    occ = &c->cube_occ[c->base - lit];
    for (i = 0; i < occ->len; i++)
        c->recs[occ->data[i]].n_false += 1;
    occ = &c->cube_occ[c->base + lit];
    for (i = 0; i < occ->len; i++)
        c->recs[occ->data[i]].n_true += 1;
    return 0;
}

/* ---------------------------------------------------------------- examine */

/* PropagationBackend._examine, counter-backend flavour (no watch refresh,
 * no blocker memo: the eager pre-guards make them dead weight here).
 * Returns EV_NONE / EV_CONFLICT / EV_SOLUTION; a unit assignment goes
 * through core_assign and is appended to the push log. */
static int
examine(NativeCore *c, int rid, int is_cube)
{
    RecC *rec = &c->recs[rid];
    const int *pool = c->pool.data;
    const signed char *lit_val = c->lit_val;
    int base = c->base;
    int defused, i;

    if (is_cube) {
        c->d_cube_visits += 1;
        defused = -1; /* a false literal kills a cube */
    }
    else {
        c->d_clause_visits += 1;
        defused = 1; /* a true literal satisfies a clause */
    }

    c->scratch_p.len = 0;
    for (i = 0; i < rec->prim_len; i++) {
        int lit = pool[rec->prim_off + i];
        int val = lit_val[base + lit];
        if (val == 0) {
            if (vec_push(&c->scratch_p, lit) < 0)
                return -1;
        }
        else if (val == defused)
            return EV_NONE;
    }
    c->scratch_s.len = 0;
    for (i = 0; i < rec->sec_len; i++) {
        int lit = pool[rec->sec_off + i];
        int val = lit_val[base + lit];
        if (val == 0) {
            if (vec_push(&c->scratch_s, lit) < 0)
                return -1;
        }
        else if (val == defused)
            return EV_NONE;
    }
    if (c->scratch_p.len == 0)
        return is_cube ? EV_SOLUTION : EV_CONFLICT;
    if (c->scratch_p.len == 1) {
        int p = c->scratch_p.data[0];
        int pv = p > 0 ? p : -p;
        int p_level = c->level[pv];
        int p_din = c->din[pv];
        int blocked = 0;
        for (i = 0; i < c->scratch_s.len; i++) {
            int s = c->scratch_s.data[i];
            int sv = s > 0 ? s : -s;
            if (c->level[sv] < p_level && c->din[sv] <= p_din
                && p_din <= c->dout[sv]) {
                blocked = 1; /* an unassigned secondary precedes p: not unit */
                break;
            }
        }
        if (!blocked) {
            int alit = is_cube ? -p : p;
            c->d_propagations += 1;
            if (core_assign(c, alit) < 0)
                return -1;
            if (vec_push(&c->push_log, alit) < 0
                || vec_push(&c->push_log, TAG_REC) < 0
                || vec_push(&c->push_log, rid) < 0)
                return -1;
        }
    }
    return EV_NONE;
}

/* ------------------------------------------------------------ pure rule */

/* PropagationBackend.apply_pure_literals.  The candidate set is snapshotted
 * and cleared first (Python: sorted(...) + clear()) so candidates flagged
 * by assignments made during this sweep are only seen by the NEXT sweep —
 * processing them early would reorder the trail against the reference.
 * Returns 1 when anything was assigned, 0 otherwise, -1 on error. */
static int
apply_pure(NativeCore *c)
{
    int assigned = 0;
    int v;
    Py_ssize_t i;

    c->scratch_cand.len = 0;
    for (v = 1; v < c->num_slots; v++) {
        if (c->pure_cand[v]) {
            c->pure_cand[v] = 0;
            if (vec_push(&c->scratch_cand, v) < 0)
                return -1;
        }
    }
    for (i = 0; i < c->scratch_cand.len; i++) {
        int cand = c->scratch_cand.data[i];
        int lit, k, pick = 0;
        if (c->lit_val[c->base + cand] != 0)
            continue;
        /* options in (v, -v) order, exactly like the Python comprehension */
        for (k = 0; k < 2 && !pick; k++) {
            lit = k == 0 ? cand : -cand;
            /* existential: opposite literal absent from unsatisfied clauses;
             * universal: the literal itself absent. */
            if (c->is_exist[cand]) {
                if (c->occ_unsat[c->base - lit] != 0)
                    continue;
            }
            else {
                if (c->occ_unsat[c->base + lit] != 0)
                    continue;
            }
            /* the [24] guard: no LIVE learned cube may contain the literal */
            if (c->cube_count[c->base + lit] != 0) {
                IntVec *occ = &c->cube_occ[c->base + lit];
                Py_ssize_t j;
                int all_dead = 1;
                for (j = 0; j < occ->len; j++) {
                    if (c->recs[occ->data[j]].n_false == 0) {
                        all_dead = 0;
                        break;
                    }
                }
                if (!all_dead)
                    continue;
            }
            pick = 1;
        }
        if (pick) {
            c->d_pure_literals += 1;
            if (core_assign(c, lit) < 0)
                return -1;
            if (vec_push(&c->push_log, lit) < 0
                || vec_push(&c->push_log, TAG_PURE) < 0
                || vec_push(&c->push_log, 0) < 0)
                return -1;
            assigned = 1;
        }
    }
    return assigned;
}

/* ---------------------------------------------------------- type plumbing */

static void
NativeCore_dealloc(NativeCore *self)
{
    int i;
    free(self->level);
    free(self->din);
    free(self->dout);
    free(self->is_exist);
    free(self->lit_val);
    free(self->recs);
    vec_free(&self->pool);
    if (self->clause_occ != NULL) {
        for (i = 0; i < 2 * self->num_slots; i++)
            vec_free(&self->clause_occ[i]);
        free(self->clause_occ);
    }
    if (self->cube_occ != NULL) {
        for (i = 0; i < 2 * self->num_slots; i++)
            vec_free(&self->cube_occ[i]);
        free(self->cube_occ);
    }
    free(self->occ_unsat);
    free(self->cube_count);
    vec_free(&self->trail);
    free(self->pure_cand);
    vec_free(&self->scratch_cand);
    vec_free(&self->scratch_p);
    vec_free(&self->scratch_s);
    vec_free(&self->scratch_anchor);
    vec_free(&self->scratch_kept);
    free(self->chosen);
    free(self->pos);
    vec_free(&self->push_log);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* read a Python sequence of ints of exactly `n` entries into a fresh array */
static int *
read_int_array(PyObject *seq, Py_ssize_t n, const char *what)
{
    PyObject *fast = PySequence_Fast(seq, "expected a sequence");
    Py_ssize_t i, len;
    int *out;
    if (fast == NULL)
        return NULL;
    len = PySequence_Fast_GET_SIZE(fast);
    if (len != n) {
        PyErr_Format(PyExc_ValueError, "%s: expected %zd entries, got %zd",
                     what, n, len);
        Py_DECREF(fast);
        return NULL;
    }
    out = (int *)calloc((size_t)(n > 0 ? n : 1), sizeof(int));
    if (out == NULL) {
        Py_DECREF(fast);
        PyErr_NoMemory();
        return NULL;
    }
    for (i = 0; i < len; i++) {
        long v = PyLong_AsLong(PySequence_Fast_GET_ITEM(fast, i));
        if (v == -1 && PyErr_Occurred()) {
            Py_DECREF(fast);
            free(out);
            return NULL;
        }
        out[i] = (int)v;
    }
    Py_DECREF(fast);
    return out;
}

static int
NativeCore_init(NativeCore *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"num_slots", "level", "is_exist",
                             "din",       "dout",  "track_pure", NULL};
    PyObject *level_o, *is_exist_o, *din_o, *dout_o;
    int num_slots, track_pure, i;
    int *is_exist_tmp;

    if (!PyArg_ParseTupleAndKeywords(args, kwds, "iOOOOi", kwlist, &num_slots,
                                     &level_o, &is_exist_o, &din_o, &dout_o,
                                     &track_pure))
        return -1;
    if (num_slots < 1) {
        PyErr_SetString(PyExc_ValueError, "num_slots must be >= 1");
        return -1;
    }
    self->num_slots = num_slots;
    self->base = num_slots;
    self->track_pure = track_pure;

    self->level = read_int_array(level_o, num_slots, "level");
    self->din = read_int_array(din_o, num_slots, "din");
    self->dout = read_int_array(dout_o, num_slots, "dout");
    is_exist_tmp = read_int_array(is_exist_o, num_slots, "is_exist");
    if (self->level == NULL || self->din == NULL || self->dout == NULL
        || is_exist_tmp == NULL) {
        free(is_exist_tmp);
        return -1;
    }
    self->is_exist = (unsigned char *)calloc((size_t)num_slots, 1);
    self->lit_val = (signed char *)calloc((size_t)(2 * num_slots), 1);
    self->clause_occ = (IntVec *)calloc((size_t)(2 * num_slots), sizeof(IntVec));
    self->cube_occ = (IntVec *)calloc((size_t)(2 * num_slots), sizeof(IntVec));
    self->occ_unsat = (int *)calloc((size_t)(2 * num_slots), sizeof(int));
    self->cube_count = (int *)calloc((size_t)(2 * num_slots), sizeof(int));
    self->pure_cand = (unsigned char *)calloc((size_t)num_slots, 1);
    self->pos = (int *)calloc((size_t)num_slots, sizeof(int));
    self->chosen = (unsigned char *)calloc((size_t)(2 * num_slots), 1);
    if (self->is_exist == NULL || self->lit_val == NULL
        || self->clause_occ == NULL || self->cube_occ == NULL
        || self->occ_unsat == NULL || self->cube_count == NULL
        || self->pure_cand == NULL || self->pos == NULL
        || self->chosen == NULL) {
        free(is_exist_tmp);
        PyErr_NoMemory();
        return -1;
    }
    for (i = 0; i < num_slots; i++)
        self->is_exist[i] = is_exist_tmp[i] != 0;
    free(is_exist_tmp);
    return 0;
}

/* -------------------------------------------------------------- methods */

/* append one literal tuple to the pool, returning its offset */
static int
pool_extend(NativeCore *self, PyObject *lits, int *off, int *len)
{
    PyObject *fast = PySequence_Fast(lits, "expected a literal sequence");
    Py_ssize_t i, n;
    if (fast == NULL)
        return -1;
    n = PySequence_Fast_GET_SIZE(fast);
    *off = (int)self->pool.len;
    *len = (int)n;
    for (i = 0; i < n; i++) {
        long v = PyLong_AsLong(PySequence_Fast_GET_ITEM(fast, i));
        if (v == -1 && PyErr_Occurred()) {
            Py_DECREF(fast);
            return -1;
        }
        if (v == 0 || v >= self->num_slots || v <= -self->num_slots) {
            PyErr_Format(PyExc_ValueError, "literal %ld out of range", v);
            Py_DECREF(fast);
            return -1;
        }
        if (vec_push(&self->pool, (int)v) < 0) {
            Py_DECREF(fast);
            PyErr_NoMemory();
            return -1;
        }
    }
    Py_DECREF(fast);
    return 0;
}

/* add_record(is_cube, original, learned, lits, prim, sec) -> rec id
 *
 * learned=0 installs at the empty assignment (matrix setup: occurrence
 * lists + occ_unsat, n_unsat_orig for original clauses).  learned=1 is the
 * trail-aware install of CounterBackend._install_learned_clause/_cube. */
static PyObject *
NativeCore_add_record(NativeCore *self, PyObject *args)
{
    int is_cube, original, learned;
    PyObject *lits, *prim, *sec;
    RecC rec;
    int rid, i, sat;

    if (!PyArg_ParseTuple(args, "iiiOOO", &is_cube, &original, &learned,
                          &lits, &prim, &sec))
        return NULL;
    memset(&rec, 0, sizeof(rec));
    rec.is_cube = (unsigned char)is_cube;
    rec.original = (unsigned char)original;
    if (pool_extend(self, lits, &rec.lits_off, &rec.lits_len) < 0
        || pool_extend(self, prim, &rec.prim_off, &rec.prim_len) < 0
        || pool_extend(self, sec, &rec.sec_off, &rec.sec_len) < 0)
        return NULL;

    if (self->n_recs == self->cap_recs) {
        Py_ssize_t cap = self->cap_recs ? self->cap_recs * 2 : 16;
        RecC *recs = (RecC *)realloc(self->recs, (size_t)cap * sizeof(RecC));
        if (recs == NULL)
            return PyErr_NoMemory();
        self->recs = recs;
        self->cap_recs = cap;
    }
    rid = (int)self->n_recs;

    if (!is_cube) {
        sat = 0;
        for (i = 0; i < rec.lits_len; i++) {
            int lit = self->pool.data[rec.lits_off + i];
            if (vec_push(&self->clause_occ[self->base + lit], rid) < 0)
                return PyErr_NoMemory();
            if (learned) {
                int val = self->lit_val[self->base + lit];
                if (val == 1) {
                    rec.n_true += 1;
                    sat = 1;
                }
                else if (val == -1)
                    rec.n_false += 1;
            }
        }
        if (!learned || !sat) {
            for (i = 0; i < rec.lits_len; i++)
                self->occ_unsat[self->base + self->pool.data[rec.lits_off + i]] += 1;
        }
        if (original)
            self->n_unsat_orig += 1;
    }
    else {
        for (i = 0; i < rec.lits_len; i++) {
            int lit = self->pool.data[rec.lits_off + i];
            if (vec_push(&self->cube_occ[self->base + lit], rid) < 0)
                return PyErr_NoMemory();
            self->cube_count[self->base + lit] += 1;
            if (learned) {
                int val = self->lit_val[self->base + lit];
                if (val == 1)
                    rec.n_true += 1;
                else if (val == -1)
                    rec.n_false += 1;
            }
        }
    }
    self->recs[self->n_recs++] = rec;
    return PyLong_FromLong(rid);
}

static PyObject *
NativeCore_assign(NativeCore *self, PyObject *args)
{
    int lit;
    if (!PyArg_ParseTuple(args, "i", &lit))
        return NULL;
    if (lit == 0 || lit >= self->num_slots || lit <= -self->num_slots) {
        PyErr_Format(PyExc_ValueError, "literal %d out of range", lit);
        return NULL;
    }
    if (core_assign(self, lit) < 0)
        return PyErr_NoMemory();
    Py_RETURN_NONE;
}

/* backtrack(target_len): pop the native trail down to target_len, reversing
 * the eager counters exactly like CounterBackend.backtrack. */
static PyObject *
NativeCore_backtrack(NativeCore *self, PyObject *args)
{
    Py_ssize_t target, i;
    if (!PyArg_ParseTuple(args, "n", &target))
        return NULL;
    if (target < 0 || target > self->trail.len) {
        PyErr_Format(PyExc_ValueError, "backtrack target %zd out of range",
                     target);
        return NULL;
    }
    while (self->trail.len > target) {
        int lit = self->trail.data[--self->trail.len];
        int v = lit > 0 ? lit : -lit;
        IntVec *occ;
        self->pure_cand[v] = 1;
        occ = &self->clause_occ[self->base + lit];
        for (i = 0; i < occ->len; i++) {
            RecC *rec = &self->recs[occ->data[i]];
            if (--rec->n_true == 0)
                on_clause_unsat(self, rec);
        }
        occ = &self->clause_occ[self->base - lit];
        for (i = 0; i < occ->len; i++)
            self->recs[occ->data[i]].n_false -= 1;
        occ = &self->cube_occ[self->base - lit];
        for (i = 0; i < occ->len; i++)
            self->recs[occ->data[i]].n_false -= 1;
        occ = &self->cube_occ[self->base + lit];
        for (i = 0; i < occ->len; i++)
            self->recs[occ->data[i]].n_true -= 1;
        self->lit_val[self->base + lit] = 0;
        self->lit_val[self->base - lit] = 0;
    }
    Py_RETURN_NONE;
}

/* propagate(queue_head)
 *   -> (event, rec_id, pushes, new_queue_head,
 *       max_trail, propagations, pure_literals, clause_visits, cube_visits)
 *
 * The dequeue loop of CounterBackend.propagate.  `pushes` lists every
 * assignment made inside this call as (lit, tag, rec_id) triples, in
 * chronological order, for the wrapper to replay onto the Python Trail.
 * Stats are deltas for this call; max_trail is the running peak. */
static PyObject *
NativeCore_propagate(NativeCore *self, PyObject *args)
{
    Py_ssize_t qh, i;
    int event = EV_NONE;
    int event_rid = -1;
    PyObject *pushes, *result;

    if (!PyArg_ParseTuple(args, "n", &qh))
        return NULL;
    if (qh < 0 || qh > self->trail.len) {
        PyErr_Format(PyExc_ValueError, "queue head %zd out of range", qh);
        return NULL;
    }
    self->push_log.len = 0;
    self->d_propagations = 0;
    self->d_pure_literals = 0;
    self->d_clause_visits = 0;
    self->d_cube_visits = 0;

    for (;;) {
        while (qh < self->trail.len) {
            int lit = self->trail.data[qh++];
            IntVec *occ = &self->clause_occ[self->base - lit];
            for (i = 0; i < occ->len; i++) {
                int rid = occ->data[i];
                if (self->recs[rid].n_true == 0) {
                    event = examine(self, rid, 0);
                    if (event < 0)
                        return PyErr_NoMemory();
                    if (event != EV_NONE) {
                        event_rid = rid;
                        goto done;
                    }
                }
            }
            occ = &self->cube_occ[self->base + lit];
            for (i = 0; i < occ->len; i++) {
                int rid = occ->data[i];
                if (self->recs[rid].n_false == 0) {
                    event = examine(self, rid, 1);
                    if (event < 0)
                        return PyErr_NoMemory();
                    if (event != EV_NONE) {
                        event_rid = rid;
                        goto done;
                    }
                }
            }
        }
        if (self->n_unsat_orig == 0) {
            event = EV_MODEL;
            goto done;
        }
        if (self->track_pure) {
            int assigned = apply_pure(self);
            if (assigned < 0)
                return PyErr_NoMemory();
            if (assigned)
                continue;
        }
        event = EV_NONE;
        goto done;
    }

done:
    pushes = PyList_New(self->push_log.len / 3);
    if (pushes == NULL)
        return NULL;
    for (i = 0; i < self->push_log.len / 3; i++) {
        PyObject *t = Py_BuildValue("(iii)", self->push_log.data[3 * i],
                                    self->push_log.data[3 * i + 1],
                                    self->push_log.data[3 * i + 2]);
        if (t == NULL) {
            Py_DECREF(pushes);
            return NULL;
        }
        PyList_SET_ITEM(pushes, i, t);
    }
    result = Py_BuildValue("(iiNnLLLLL)", event, event_rid, pushes, qh,
                           self->max_trail, self->d_propagations,
                           self->d_pure_literals, self->d_clause_visits,
                           self->d_cube_visits);
    return result;
}

/* propagate_into(queue_head, value, lit_val, level, pos, reason, lits,
 *                level_no, block_index, block_unassigned, block_blockers,
 *                deeper_desc, recs, pure_sentinel)
 *   -> (event, rec_id, new_queue_head,
 *       max_trail, propagations, pure_literals, clause_visits, cube_visits)
 *
 * propagate() with the push replay fused in: instead of returning the push
 * log for the wrapper to walk, the kernel performs Trail._push_fast itself
 * on the engine's own Python lists — values, levels, positions, reasons,
 * the literal stack and the incremental frontier counters.  All pushes of
 * one propagate call share the current decision level (propagation never
 * opens levels), passed in as `level_no`.  `recs` maps the kernel's record
 * ids back to the wrapper's Rec objects for the reason column;
 * `pure_sentinel` is the PURE reason marker. */
static int
replay_push(NativeCore *self, int lit, PyObject *reason_obj, PyObject *value,
            PyObject *lit_val, PyObject *level, PyObject *pos,
            PyObject *reason, PyObject *lits, long level_no, PyObject *bidx,
            PyObject *bun, PyObject *bblk, PyObject *ddesc)
{
    long v = lit > 0 ? lit : -lit;
    long bi, n;
    PyObject *num;

    if (PyList_SetItem(value, v, PyLong_FromLong(lit > 0 ? 1 : -1)) < 0)
        return -1;
    if (PyList_SetItem(lit_val, self->base + lit, PyLong_FromLong(1)) < 0)
        return -1;
    if (PyList_SetItem(lit_val, self->base - lit, PyLong_FromLong(-1)) < 0)
        return -1;
    if (PyList_SetItem(level, v, PyLong_FromLong(level_no)) < 0)
        return -1;
    if (PyList_SetItem(pos, v, PyLong_FromSsize_t(PyList_GET_SIZE(lits))) < 0)
        return -1;
    Py_INCREF(reason_obj);
    if (PyList_SetItem(reason, v, reason_obj) < 0)
        return -1;
    num = PyLong_FromLong(lit);
    if (num == NULL || PyList_Append(lits, num) < 0) {
        Py_XDECREF(num);
        return -1;
    }
    Py_DECREF(num);

    bi = PyLong_AsLong(PyList_GET_ITEM(bidx, v));
    if (bi == -1 && PyErr_Occurred())
        return -1;
    n = PyLong_AsLong(PyList_GET_ITEM(bun, bi)) - 1;
    if (PyList_SetItem(bun, bi, PyLong_FromLong(n)) < 0)
        return -1;
    if (n == 0) {
        PyObject *ds = PySequence_Fast(PySequence_Fast_GET_ITEM(ddesc, bi),
                                       "deeper_desc entry");
        Py_ssize_t k, nd;
        if (ds == NULL)
            return -1;
        nd = PySequence_Fast_GET_SIZE(ds);
        for (k = 0; k < nd; k++) {
            long d = PyLong_AsLong(PySequence_Fast_GET_ITEM(ds, k));
            long b = PyLong_AsLong(PyList_GET_ITEM(bblk, d)) - 1;
            if (PyErr_Occurred()
                || PyList_SetItem(bblk, d, PyLong_FromLong(b)) < 0) {
                Py_DECREF(ds);
                return -1;
            }
        }
        Py_DECREF(ds);
    }
    return 0;
}

static PyObject *
NativeCore_propagate_into(NativeCore *self, PyObject *args)
{
    Py_ssize_t qh, i;
    long level_no;
    int event = EV_NONE;
    int event_rid = -1;
    PyObject *value, *lit_val, *level, *pos, *reason, *lits;
    PyObject *bidx, *bun, *bblk, *ddesc, *recs, *pure_sentinel;

    if (!PyArg_ParseTuple(args, "nO!O!O!O!O!O!lO!O!O!OO!O", &qh,
                          &PyList_Type, &value, &PyList_Type, &lit_val,
                          &PyList_Type, &level, &PyList_Type, &pos,
                          &PyList_Type, &reason, &PyList_Type, &lits,
                          &level_no, &PyList_Type, &bidx, &PyList_Type, &bun,
                          &PyList_Type, &bblk, &ddesc, &PyList_Type, &recs,
                          &pure_sentinel))
        return NULL;
    if (qh < 0 || qh > self->trail.len) {
        PyErr_Format(PyExc_ValueError, "queue head %zd out of range", qh);
        return NULL;
    }
    self->push_log.len = 0;
    self->d_propagations = 0;
    self->d_pure_literals = 0;
    self->d_clause_visits = 0;
    self->d_cube_visits = 0;

    for (;;) {
        /* same dequeue loop as propagate(); the replay onto the Python
         * lists is deferred to the end — nothing below reads them */
        while (qh < self->trail.len) {
            int lit = self->trail.data[qh++];
            IntVec *occ = &self->clause_occ[self->base - lit];
            for (i = 0; i < occ->len; i++) {
                int rid = occ->data[i];
                if (self->recs[rid].n_true == 0) {
                    event = examine(self, rid, 0);
                    if (event < 0)
                        return PyErr_NoMemory();
                    if (event != EV_NONE) {
                        event_rid = rid;
                        goto done;
                    }
                }
            }
            occ = &self->cube_occ[self->base + lit];
            for (i = 0; i < occ->len; i++) {
                int rid = occ->data[i];
                if (self->recs[rid].n_false == 0) {
                    event = examine(self, rid, 1);
                    if (event < 0)
                        return PyErr_NoMemory();
                    if (event != EV_NONE) {
                        event_rid = rid;
                        goto done;
                    }
                }
            }
        }
        if (self->n_unsat_orig == 0) {
            event = EV_MODEL;
            goto done;
        }
        if (self->track_pure) {
            int assigned = apply_pure(self);
            if (assigned < 0)
                return PyErr_NoMemory();
            if (assigned)
                continue;
        }
        event = EV_NONE;
        goto done;
    }

done:
    for (i = 0; i < self->push_log.len / 3; i++) {
        int lit = self->push_log.data[3 * i];
        int tag = self->push_log.data[3 * i + 1];
        int rid = self->push_log.data[3 * i + 2];
        PyObject *reason_obj;
        if (tag == TAG_PURE)
            reason_obj = pure_sentinel;
        else {
            if (rid < 0 || rid >= PyList_GET_SIZE(recs)) {
                PyErr_Format(PyExc_ValueError, "record id %d out of range",
                             rid);
                return NULL;
            }
            reason_obj = PyList_GET_ITEM(recs, rid);
        }
        if (replay_push(self, lit, reason_obj, value, lit_val, level, pos,
                        reason, lits, level_no, bidx, bun, bblk, ddesc) < 0)
            return NULL;
    }
    return Py_BuildValue("(iinLLLLL)", event, event_rid, qh, self->max_trail,
                         self->d_propagations, self->d_pure_literals,
                         self->d_clause_visits, self->d_cube_visits);
}

/* ---- pure-candidate set plumbing (backs the Python set facade) --------- */

static PyObject *
NativeCore_set_candidates(NativeCore *self, PyObject *arg)
{
    PyObject *fast;
    Py_ssize_t i, n;
    memset(self->pure_cand, 0, (size_t)self->num_slots);
    fast = PySequence_Fast(arg, "expected a sequence of variables");
    if (fast == NULL)
        return NULL;
    n = PySequence_Fast_GET_SIZE(fast);
    for (i = 0; i < n; i++) {
        long v = PyLong_AsLong(PySequence_Fast_GET_ITEM(fast, i));
        if (v == -1 && PyErr_Occurred()) {
            Py_DECREF(fast);
            return NULL;
        }
        if (v <= 0 || v >= self->num_slots) {
            PyErr_Format(PyExc_ValueError, "variable %ld out of range", v);
            Py_DECREF(fast);
            return NULL;
        }
        self->pure_cand[v] = 1;
    }
    Py_DECREF(fast);
    Py_RETURN_NONE;
}

static PyObject *
NativeCore_get_candidates(NativeCore *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *out = PyList_New(0);
    int v;
    if (out == NULL)
        return NULL;
    for (v = 1; v < self->num_slots; v++) {
        if (self->pure_cand[v]) {
            PyObject *num = PyLong_FromLong(v);
            if (num == NULL || PyList_Append(out, num) < 0) {
                Py_XDECREF(num);
                Py_DECREF(out);
                return NULL;
            }
            Py_DECREF(num);
        }
    }
    return out;
}

static PyObject *
NativeCore_add_candidate(NativeCore *self, PyObject *args)
{
    int v;
    if (!PyArg_ParseTuple(args, "i", &v))
        return NULL;
    if (v <= 0 || v >= self->num_slots) {
        PyErr_Format(PyExc_ValueError, "variable %d out of range", v);
        return NULL;
    }
    self->pure_cand[v] = 1;
    Py_RETURN_NONE;
}

static PyObject *
NativeCore_trail_len(NativeCore *self, PyObject *Py_UNUSED(ignored))
{
    return PyLong_FromSsize_t(self->trail.len);
}

/* ------------------------------------------ learning-layer fast paths */

/* reduce(lits, is_cube) -> tuple
 *
 * Exact port of constraints.universal_reduce (is_cube=0) and
 * constraints.existential_reduce (is_cube=1) over the core's prefix
 * tables.  A droppable literal (universal in a clause, existential in a
 * cube) survives only if some anchor literal of the other kind lies in
 * its scope: level[v] < level[a] and din[v] <= din[a] <= dout[v]. */
static PyObject *
NativeCore_reduce(NativeCore *self, PyObject *args)
{
    PyObject *lits_o, *fast, *out;
    int is_cube, anchor_exist;
    Py_ssize_t i, j, n;
    IntVec *anchors = &self->scratch_anchor;
    IntVec *kept = &self->scratch_kept;
    int has_droppable = 0;

    if (!PyArg_ParseTuple(args, "Oi", &lits_o, &is_cube))
        return NULL;
    fast = PySequence_Fast(lits_o, "expected a literal sequence");
    if (fast == NULL)
        return NULL;
    n = PySequence_Fast_GET_SIZE(fast);
    anchor_exist = is_cube ? 0 : 1; /* clause: ∃ anchors; cube: ∀ anchors */

    anchors->len = 0;
    for (i = 0; i < n; i++) {
        long lit = PyLong_AsLong(PySequence_Fast_GET_ITEM(fast, i));
        long v = lit > 0 ? lit : -lit;
        if (lit == 0 || v >= self->num_slots) {
            if (!PyErr_Occurred())
                PyErr_Format(PyExc_ValueError, "literal %ld out of range", lit);
            Py_DECREF(fast);
            return NULL;
        }
        if (self->is_exist[v] == anchor_exist) {
            if (vec_push(anchors, (int)v) < 0) {
                Py_DECREF(fast);
                return PyErr_NoMemory();
            }
        }
        else
            has_droppable = 1;
    }
    if (!has_droppable) {
        /* Python returns tuple(lits) unchanged */
        out = PySequence_Tuple(fast);
        Py_DECREF(fast);
        return out;
    }
    kept->len = 0;
    for (i = 0; i < n; i++) {
        long lit = PyLong_AsLong(PySequence_Fast_GET_ITEM(fast, i));
        long v = lit > 0 ? lit : -lit;
        int keep = 0;
        if (self->is_exist[v] == anchor_exist)
            keep = 1;
        else {
            int v_level = self->level[v];
            int v_din = self->din[v];
            int v_dout = self->dout[v];
            for (j = 0; j < anchors->len; j++) {
                int a = anchors->data[j];
                if (v_level < self->level[a] && v_din <= self->din[a]
                    && self->din[a] <= v_dout) {
                    keep = 1;
                    break;
                }
            }
        }
        if (keep && vec_push(kept, (int)lit) < 0) {
            Py_DECREF(fast);
            return PyErr_NoMemory();
        }
    }
    Py_DECREF(fast);
    out = PyTuple_New(kept->len);
    if (out == NULL)
        return NULL;
    for (i = 0; i < kept->len; i++) {
        PyObject *num = PyLong_FromLong(kept->data[i]);
        if (num == NULL) {
            Py_DECREF(out);
            return NULL;
        }
        PyTuple_SET_ITEM(out, i, num);
    }
    return out;
}

/* (var, lit) ordering for the model-cube result */
static int
cmp_var_lit(const void *pa, const void *pb)
{
    int a = *(const int *)pa, b = *(const int *)pb;
    int av = a > 0 ? a : -a, bv = b > 0 ? b : -b;
    if (av != bv)
        return av < bv ? -1 : 1;
    return a < b ? -1 : (a > b ? 1 : 0);
}

/* build_model_cube() -> tuple
 *
 * Exact port of learning.build_model_cube's flat-array path over the
 * original matrix clauses: for every clause, in installation order, pick
 * one satisfying literal — skip the clause if an already-chosen literal
 * satisfies it (first such hit in literal order wins), else take the
 * earliest-assigned satisfying literal; the result is sorted by
 * (variable, literal).  Raises ValueError when some original clause is
 * not satisfied by the current assignment (an engine bug). */
static PyObject *
NativeCore_build_model_cube(NativeCore *self, PyObject *Py_UNUSED(ignored))
{
    IntVec *out = &self->scratch_kept;
    Py_ssize_t r, i;
    PyObject *result;

    memset(self->chosen, 0, (size_t)(2 * self->num_slots));
    out->len = 0;
    for (r = 0; r < self->n_recs; r++) {
        RecC *rec = &self->recs[r];
        const int *lits;
        int best = 0, best_pos = -1, already = 0;
        if (rec->is_cube || !rec->original)
            continue;
        lits = self->pool.data + rec->lits_off;
        for (i = 0; i < rec->lits_len; i++) {
            int l = lits[i];
            if (self->lit_val[self->base + l] == 1) {
                if (self->chosen[self->base + l]) {
                    already = 1;
                    break;
                }
                else {
                    int p = self->pos[l > 0 ? l : -l];
                    if (best_pos < 0 || p < best_pos) {
                        best = l;
                        best_pos = p;
                    }
                }
            }
        }
        if (already)
            continue;
        if (best_pos < 0) {
            PyErr_Format(PyExc_ValueError,
                         "matrix clause not satisfied (record %zd)", r);
            return NULL;
        }
        self->chosen[self->base + best] = 1;
        if (vec_push(out, best) < 0)
            return PyErr_NoMemory();
    }
    qsort(out->data, (size_t)out->len, sizeof(int), cmp_var_lit);
    result = PyTuple_New(out->len);
    if (result == NULL)
        return NULL;
    for (i = 0; i < out->len; i++) {
        PyObject *num = PyLong_FromLong(out->data[i]);
        if (num == NULL) {
            Py_DECREF(result);
            return NULL;
        }
        PyTuple_SET_ITEM(result, i, num);
    }
    return result;
}

/* ------------------------------------------------- branching fast path */

/* pick_levelsub(available, level, score_pos, score_neg, child_max,
 *               block_index) -> literal | None
 *
 * Exact port of heuristics.make_picker's "levelsub" closure: rank
 * available variables by the key (-level[v], max(eff(v), eff(-v)), -v)
 * where eff(±v) = score_±[v] + child_max[block_index[v]], keeping the
 * first maximal entry (max() semantics; the -v component makes ties
 * impossible anyway), then phase by score_pos[v] >= score_neg[v].
 * The caller must run the keeper's dirty recompute first.  All six
 * arguments are the keeper's/trail's own Python lists, read in place. */
static PyObject *
native_pick_levelsub(PyObject *Py_UNUSED(mod), PyObject *args)
{
    PyObject *avail_o, *level_o, *spos_o, *sneg_o, *cmax_o, *bidx_o;
    PyObject *avail, *level, *spos, *sneg, *cmax, *bidx;
    Py_ssize_t i, n, nvars, nblocks;
    long best_v = 0, best_lv = 0;
    double best_m = 0.0, sp, sn;
    int have = 0;

    if (!PyArg_ParseTuple(args, "OOOOOO", &avail_o, &level_o, &spos_o,
                          &sneg_o, &cmax_o, &bidx_o))
        return NULL;
    avail = PySequence_Fast(avail_o, "available: expected a sequence");
    level = PySequence_Fast(level_o, "level: expected a sequence");
    spos = PySequence_Fast(spos_o, "score_pos: expected a sequence");
    sneg = PySequence_Fast(sneg_o, "score_neg: expected a sequence");
    cmax = PySequence_Fast(cmax_o, "child_max: expected a sequence");
    bidx = PySequence_Fast(bidx_o, "block_index: expected a sequence");
    if (avail == NULL || level == NULL || spos == NULL || sneg == NULL
        || cmax == NULL || bidx == NULL)
        goto fail;

    n = PySequence_Fast_GET_SIZE(avail);
    if (n == 0) {
        Py_DECREF(avail); Py_DECREF(level); Py_DECREF(spos);
        Py_DECREF(sneg); Py_DECREF(cmax); Py_DECREF(bidx);
        Py_RETURN_NONE;
    }
    nvars = PySequence_Fast_GET_SIZE(level);
    nblocks = PySequence_Fast_GET_SIZE(cmax);
    for (i = 0; i < n; i++) {
        long v = PyLong_AsLong(PySequence_Fast_GET_ITEM(avail, i));
        long lv, bi;
        double cm, a, b, m;
        int better;
        if (v <= 0 || v >= nvars
            || v >= PySequence_Fast_GET_SIZE(bidx)
            || v >= PySequence_Fast_GET_SIZE(spos)
            || v >= PySequence_Fast_GET_SIZE(sneg)) {
            if (!PyErr_Occurred())
                PyErr_Format(PyExc_ValueError, "variable %ld out of range", v);
            goto fail;
        }
        lv = PyLong_AsLong(PySequence_Fast_GET_ITEM(level, v));
        bi = PyLong_AsLong(PySequence_Fast_GET_ITEM(bidx, v));
        if (bi < 0 || bi >= nblocks) {
            if (!PyErr_Occurred())
                PyErr_Format(PyExc_ValueError, "block index %ld out of range", bi);
            goto fail;
        }
        cm = PyFloat_AsDouble(PySequence_Fast_GET_ITEM(cmax, bi));
        a = PyFloat_AsDouble(PySequence_Fast_GET_ITEM(spos, v)) + cm;
        b = PyFloat_AsDouble(PySequence_Fast_GET_ITEM(sneg, v)) + cm;
        if (PyErr_Occurred())
            goto fail;
        m = a >= b ? a : b;
        if (!have)
            better = 1;
        else if (lv != best_lv)
            better = lv < best_lv; /* key starts with -level */
        else if (m != best_m)
            better = m > best_m;
        else
            better = v < best_v; /* trailing -v tiebreak */
        if (better) {
            best_v = v;
            best_lv = lv;
            best_m = m;
            have = 1;
        }
    }
    sp = PyFloat_AsDouble(PySequence_Fast_GET_ITEM(spos, best_v));
    sn = PyFloat_AsDouble(PySequence_Fast_GET_ITEM(sneg, best_v));
    if (PyErr_Occurred())
        goto fail;
    Py_DECREF(avail); Py_DECREF(level); Py_DECREF(spos);
    Py_DECREF(sneg); Py_DECREF(cmax); Py_DECREF(bidx);
    return PyLong_FromLong(sp >= sn ? best_v : -best_v);

fail:
    Py_XDECREF(avail); Py_XDECREF(level); Py_XDECREF(spos);
    Py_XDECREF(sneg); Py_XDECREF(cmax); Py_XDECREF(bidx);
    return NULL;
}

static PyMethodDef NativeCore_methods[] = {
    {"add_record", (PyCFunction)NativeCore_add_record, METH_VARARGS,
     "add_record(is_cube, original, learned, lits, prim, sec) -> rec id"},
    {"assign", (PyCFunction)NativeCore_assign, METH_VARARGS,
     "assign(lit): push a literal, updating the eager counters"},
    {"backtrack", (PyCFunction)NativeCore_backtrack, METH_VARARGS,
     "backtrack(target_len): pop the trail to target_len, reversing counters"},
    {"propagate", (PyCFunction)NativeCore_propagate, METH_VARARGS,
     "propagate(queue_head) -> (event, rid, pushes, qh, max_trail, stats...)"},
    {"propagate_into", (PyCFunction)NativeCore_propagate_into, METH_VARARGS,
     "propagate(queue_head, <trail lists>, recs, PURE) with the push "
     "replay fused in; returns (event, rid, qh, max_trail, stats...)"},
    {"set_candidates", (PyCFunction)NativeCore_set_candidates, METH_O,
     "replace the pure-literal candidate set"},
    {"get_candidates", (PyCFunction)NativeCore_get_candidates, METH_NOARGS,
     "current pure-literal candidates, ascending"},
    {"add_candidate", (PyCFunction)NativeCore_add_candidate, METH_VARARGS,
     "flag one variable as a pure-literal candidate"},
    {"trail_len", (PyCFunction)NativeCore_trail_len, METH_NOARGS,
     "length of the native trail mirror (debugging aid)"},
    {"reduce", (PyCFunction)NativeCore_reduce, METH_VARARGS,
     "reduce(lits, is_cube) -> tuple: universal/existential reduction"},
    {"build_model_cube", (PyCFunction)NativeCore_build_model_cube, METH_NOARGS,
     "build_model_cube() -> tuple: one satisfying literal per matrix clause"},
    {NULL, NULL, 0, NULL},
};

/* pick_frontier_levelsub(block_vars, block_unassigned, block_blockers,
 *                        value, level, score_pos, score_neg, child_max,
 *                        block_index) -> literal | None
 *
 * Trail.available_vars fused with the levelsub ranking: walk the trail's
 * incremental frontier counters (a block is open when it still has
 * unassigned variables and no unassigned ≺-predecessor block) and rank
 * its unassigned variables without materializing the candidate list.
 * Safe fusion: the ranking's trailing -v component is a strict tiebreak,
 * so the result is independent of enumeration order — and the scan runs
 * in the exact block/variable order available_vars() produces anyway. */
static PyObject *
native_pick_frontier_levelsub(PyObject *Py_UNUSED(mod), PyObject *args)
{
    PyObject *bvars_o, *bun_o, *bblk_o, *value_o, *level_o, *spos_o,
        *sneg_o, *cmax_o, *bidx_o;
    PyObject *bvars, *bun, *bblk, *value, *level, *spos, *sneg, *cmax, *bidx;
    Py_ssize_t bi, nb, nvars, nblocks;
    long best_v = 0, best_lv = 0;
    double best_m = 0.0, sp, sn;
    int have = 0;

    if (!PyArg_ParseTuple(args, "OOOOOOOOO", &bvars_o, &bun_o, &bblk_o,
                          &value_o, &level_o, &spos_o, &sneg_o, &cmax_o,
                          &bidx_o))
        return NULL;
    bvars = PySequence_Fast(bvars_o, "block_vars: expected a sequence");
    bun = PySequence_Fast(bun_o, "block_unassigned: expected a sequence");
    bblk = PySequence_Fast(bblk_o, "block_blockers: expected a sequence");
    value = PySequence_Fast(value_o, "value: expected a sequence");
    level = PySequence_Fast(level_o, "level: expected a sequence");
    spos = PySequence_Fast(spos_o, "score_pos: expected a sequence");
    sneg = PySequence_Fast(sneg_o, "score_neg: expected a sequence");
    cmax = PySequence_Fast(cmax_o, "child_max: expected a sequence");
    bidx = PySequence_Fast(bidx_o, "block_index: expected a sequence");
    if (bvars == NULL || bun == NULL || bblk == NULL || value == NULL
        || level == NULL || spos == NULL || sneg == NULL || cmax == NULL
        || bidx == NULL)
        goto fail;

    nb = PySequence_Fast_GET_SIZE(bvars);
    nvars = PySequence_Fast_GET_SIZE(value);
    nblocks = PySequence_Fast_GET_SIZE(cmax);
    if (PySequence_Fast_GET_SIZE(bun) < nb || PySequence_Fast_GET_SIZE(bblk) < nb) {
        PyErr_SetString(PyExc_ValueError, "frontier counter arrays too short");
        goto fail;
    }
    for (bi = 0; bi < nb; bi++) {
        long un = PyLong_AsLong(PySequence_Fast_GET_ITEM(bun, bi));
        long bl = PyLong_AsLong(PySequence_Fast_GET_ITEM(bblk, bi));
        PyObject *vs;
        Py_ssize_t j, nv;
        if (PyErr_Occurred())
            goto fail;
        if (!un || bl)
            continue;
        vs = PySequence_Fast(PySequence_Fast_GET_ITEM(bvars, bi),
                             "block_vars entry: expected a sequence");
        if (vs == NULL)
            goto fail;
        nv = PySequence_Fast_GET_SIZE(vs);
        for (j = 0; j < nv; j++) {
            long v = PyLong_AsLong(PySequence_Fast_GET_ITEM(vs, j));
            long val, lv, bix;
            double cm, a, b, m;
            int better;
            if (v <= 0 || v >= nvars || v >= PySequence_Fast_GET_SIZE(level)
                || v >= PySequence_Fast_GET_SIZE(bidx)
                || v >= PySequence_Fast_GET_SIZE(spos)
                || v >= PySequence_Fast_GET_SIZE(sneg)) {
                if (!PyErr_Occurred())
                    PyErr_Format(PyExc_ValueError, "variable %ld out of range",
                                 v);
                Py_DECREF(vs);
                goto fail;
            }
            val = PyLong_AsLong(PySequence_Fast_GET_ITEM(value, v));
            if (val != 0)
                continue;
            lv = PyLong_AsLong(PySequence_Fast_GET_ITEM(level, v));
            bix = PyLong_AsLong(PySequence_Fast_GET_ITEM(bidx, v));
            if (bix < 0 || bix >= nblocks) {
                if (!PyErr_Occurred())
                    PyErr_Format(PyExc_ValueError,
                                 "block index %ld out of range", bix);
                Py_DECREF(vs);
                goto fail;
            }
            cm = PyFloat_AsDouble(PySequence_Fast_GET_ITEM(cmax, bix));
            a = PyFloat_AsDouble(PySequence_Fast_GET_ITEM(spos, v)) + cm;
            b = PyFloat_AsDouble(PySequence_Fast_GET_ITEM(sneg, v)) + cm;
            if (PyErr_Occurred()) {
                Py_DECREF(vs);
                goto fail;
            }
            m = a >= b ? a : b;
            if (!have)
                better = 1;
            else if (lv != best_lv)
                better = lv < best_lv;
            else if (m != best_m)
                better = m > best_m;
            else
                better = v < best_v;
            if (better) {
                best_v = v;
                best_lv = lv;
                best_m = m;
                have = 1;
            }
        }
        Py_DECREF(vs);
    }
    if (!have) {
        Py_DECREF(bvars); Py_DECREF(bun); Py_DECREF(bblk); Py_DECREF(value);
        Py_DECREF(level); Py_DECREF(spos); Py_DECREF(sneg); Py_DECREF(cmax);
        Py_DECREF(bidx);
        Py_RETURN_NONE;
    }
    sp = PyFloat_AsDouble(PySequence_Fast_GET_ITEM(spos, best_v));
    sn = PyFloat_AsDouble(PySequence_Fast_GET_ITEM(sneg, best_v));
    if (PyErr_Occurred())
        goto fail;
    Py_DECREF(bvars); Py_DECREF(bun); Py_DECREF(bblk); Py_DECREF(value);
    Py_DECREF(level); Py_DECREF(spos); Py_DECREF(sneg); Py_DECREF(cmax);
    Py_DECREF(bidx);
    return PyLong_FromLong(sp >= sn ? best_v : -best_v);

fail:
    Py_XDECREF(bvars); Py_XDECREF(bun); Py_XDECREF(bblk); Py_XDECREF(value);
    Py_XDECREF(level); Py_XDECREF(spos); Py_XDECREF(sneg); Py_XDECREF(cmax);
    Py_XDECREF(bidx);
    return NULL;
}

static PyMethodDef native_module_methods[] = {
    {"pick_levelsub", (PyCFunction)native_pick_levelsub, METH_VARARGS,
     "pick_levelsub(available, level, score_pos, score_neg, child_max, "
     "block_index) -> literal | None"},
    {"pick_frontier_levelsub", (PyCFunction)native_pick_frontier_levelsub,
     METH_VARARGS,
     "pick_frontier_levelsub(block_vars, block_unassigned, block_blockers, "
     "value, level, score_pos, score_neg, child_max, block_index) "
     "-> literal | None"},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject NativeCoreType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native.NativeCore",
    .tp_basicsize = sizeof(NativeCore),
    .tp_itemsize = 0,
    .tp_dealloc = (destructor)NativeCore_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Compiled propagation kernel (eager-counter semantics)",
    .tp_methods = NativeCore_methods,
    .tp_init = (initproc)NativeCore_init,
    .tp_new = PyType_GenericNew,
};

static struct PyModuleDef nativemodule = {
    PyModuleDef_HEAD_INIT,
    "repro._native",
    "Compiled propagation kernel behind SolverConfig.engine == 'native'.",
    -1,
    native_module_methods,
};

PyMODINIT_FUNC
PyInit__native(void)
{
    PyObject *m;
    if (PyType_Ready(&NativeCoreType) < 0)
        return NULL;
    m = PyModule_Create(&nativemodule);
    if (m == NULL)
        return NULL;
    Py_INCREF(&NativeCoreType);
    if (PyModule_AddObject(m, "NativeCore", (PyObject *)&NativeCoreType) < 0) {
        Py_DECREF(&NativeCoreType);
        Py_DECREF(m);
        return NULL;
    }
    if (PyModule_AddIntConstant(m, "KERNEL_VERSION", KERNEL_VERSION) < 0) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
