"""``repro bench``: the kernel benchmark harness and the perf trajectory.

Runs the pinned Figure-6 counter series (the same instances, budget and
double-timeout stopping rule as ``repro.evalx.suites.run_dia_scaling``)
under every propagation backend this build can run — counters, watched,
and the compiled native kernel when built — with the pure-literal rule
both on and off, and emits a schema-versioned ``BENCH_kernels.json``:

* throughput per configuration — decisions/sec, propagations/sec,
  clause_visits/sec — plus wall-clock for the whole series;
* a per-run decision log, verified decision-for-decision against the
  counter backend (the eager reference engine);
* the recorded pre-kernel baseline (PR 3's layered engine, measured on
  the identical series) with the wall-clock speedup next to it, and the
  native kernel's decisions/sec speedup over the same-run watched rows;
* a ``kernel`` block recording whether the compiled extension was
  importable — a missing kernel is reported as an explicit fallback to
  the watched rows, never silently.

The series is fully deterministic — pinned models, decision-only budgets —
so the *decision* columns of two reports are comparable across machines
and across solver versions; only the wall/throughput columns are
host-dependent. That is what makes the file a trajectory: each perf PR
re-runs the harness and appends its report next to the previous one.

``--profile`` wraps each configuration in :mod:`cProfile` and embeds the
top functions by cumulative time in the report, which is how the hot
paths flattened by the kernel work were found in the first place.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine.native import (
    kernel_version,
    native_available,
    native_import_error,
)
from repro.evalx.runner import Budget, Measurement, solve_po

#: bump on any change to the JSON layout so downstream tooling can dispatch.
SCHEMA = "repro-bench/1"

#: The pre-kernel engine (PR 3, commit 1f10356) on this exact series —
#: ``family="counter"``, sizes (2, 3), Budget(decisions=8000), max_n_cap=8 —
#: measured with the same wall-clock protocol as :func:`run_series`. The
#: decision counts are part of the engine contract (the kernels must
#: reproduce them literally); the seconds are the reference machine's and
#: only the *ratio* against a same-machine rerun is meaningful.
PR3_BASELINE: Dict[str, Dict[str, float]] = {
    "counters/pure=on": {"wall_seconds": 35.09, "decisions": 13103},
    "watched/pure=on": {"wall_seconds": 34.39, "decisions": 13103},
    "counters/pure=off": {"wall_seconds": 3.52, "decisions": 35669},
    "watched/pure=off": {"wall_seconds": 4.20, "decisions": 35669},
}
PR3_BASELINE_LABEL = "PR-3 layered engine (pre-kernel), same series and budget"

#: full mode reproduces the fig6 engine-comparison series exactly; quick
#: mode is the CI smoke: one model size, short budget, same stopping rule.
FULL_SERIES = dict(sizes=(2, 3), max_n_cap=8, budget_decisions=8000)
QUICK_SERIES = dict(sizes=(2,), max_n_cap=4, budget_decisions=2000)


def config_key(engine: str, pure: bool) -> str:
    return "%s/pure=%s" % (engine, "on" if pure else "off")


def run_series(
    engine: str,
    pure: bool,
    sizes: Sequence[int],
    max_n_cap: int,
    budget_decisions: int,
) -> Tuple[List[dict], float, float]:
    """One configuration over the Figure-6 counter series.

    Returns ``(runs, wall_seconds, solve_seconds)``: a per-run record list,
    the wall-clock of the whole series (instance construction and
    prenexing included — the number the baseline was measured with), and
    the summed in-solver seconds (what the throughput rates divide by).
    """
    from repro.smv.diameter import diameter_qbf
    from repro.smv.models import model_by_name
    from repro.smv.reachability import eccentricity

    budget = Budget(decisions=budget_decisions)
    runs: List[dict] = []
    solve_seconds = 0.0
    start = time.perf_counter()
    for size in sizes:
        model = model_by_name("counter", size)
        d = eccentricity(model)
        for n in range(min(d, max_n_cap) + 1):
            po = solve_po(
                diameter_qbf(model, n, "tree"),
                budget=budget, engine=engine, pure_literals=pure,
            )
            to = solve_po(
                diameter_qbf(model, n, "prenex"),
                budget=budget, engine=engine, pure_literals=pure,
            )
            for pipeline, m in (("PO", po), ("TO", to)):
                runs.append(_run_record(model.name, n, pipeline, m))
                solve_seconds += m.seconds
            # the series' stopping rule, same as run_dia_scaling: once both
            # pipelines blow the budget, longer lengths only get harder.
            if po.timed_out and to.timed_out:
                break
    wall = time.perf_counter() - start
    return runs, wall, solve_seconds


def _run_record(model_name: str, n: int, pipeline: str, m: Measurement) -> dict:
    stats = m.stats
    return {
        "instance": "%s/n=%d/%s" % (model_name, n, pipeline),
        "outcome": m.outcome.value,
        "timed_out": m.timed_out,
        "decisions": m.decisions,
        "propagations": stats.propagations,
        "clause_visits": stats.clause_visits,
        "cube_visits": stats.cube_visits,
        "seconds": m.seconds,
    }


def _aggregate(runs: List[dict], wall: float, solve_seconds: float) -> dict:
    totals = {
        key: sum(r[key] for r in runs)
        for key in ("decisions", "propagations", "clause_visits", "cube_visits")
    }
    # rates over in-solver time: instance construction does not dilute them
    denom = solve_seconds if solve_seconds > 0 else float("nan")
    return {
        "wall_seconds": wall,
        "solve_seconds": solve_seconds,
        **totals,
        "decisions_per_second": totals["decisions"] / denom,
        "propagations_per_second": totals["propagations"] / denom,
        "clause_visits_per_second": totals["clause_visits"] / denom,
    }


def _profile_series(kwargs: dict, top: int = 15) -> Tuple[Tuple[List[dict], float, float], str]:
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    out = run_series(**kwargs)
    profiler.disable()
    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).sort_stats("cumulative").print_stats(top)
    return out, buf.getvalue()


def run_bench(
    quick: bool = False,
    profile: bool = False,
    engines: Optional[Sequence[str]] = None,
    pure_modes: Sequence[bool] = (True, False),
) -> dict:
    """Run every (engine, pure) configuration; verify decision identity.

    The counter backend is always run (prepended if missing): it is the
    eager reference every other backend's decision counts are checked
    against, run by run. A mismatch is a broken engine contract and raises
    immediately — a benchmark that silently timed different search trees
    would be meaningless.

    ``engines`` defaults to every backend this build can run: counters,
    watched, and native when the compiled kernel is importable. A missing
    kernel is never silent: the report's ``kernel`` block records the
    import error and that the native rows fell back to ``watched`` (i.e.
    are absent — the watched rows ARE the fallback measurement).
    """
    series = dict(QUICK_SERIES if quick else FULL_SERIES)
    if engines is None:
        # Ask for all three; the fallback branch below records (never
        # hides) a native row that this build cannot produce.
        engines = ["counters", "watched", "native"]
    engines = list(engines)
    kernel = {
        "available": native_available(),
        "version": kernel_version(),
        "import_error": native_import_error(),
    }
    if "native" in engines and not native_available():
        # loud skip, mirroring SolverStats.engine_fallback: the watched rows
        # stand in for native, and the report says so explicitly.
        engines = [e for e in engines if e != "native"]
        if "watched" not in engines:
            engines.append("watched")
        kernel["fallback"] = "watched"
    if "counters" not in engines:
        engines.insert(0, "counters")
    else:  # reference first, so every later engine has something to check
        engines.sort(key=lambda e: e != "counters")

    configs: List[dict] = []
    reference: Dict[bool, List[dict]] = {}
    identity_ok = True
    for pure in pure_modes:
        for engine in engines:
            kwargs = dict(engine=engine, pure=pure, **series)
            if profile:
                (runs, wall, solve_seconds), profile_text = _profile_series(kwargs)
            else:
                runs, wall, solve_seconds = run_series(**kwargs)
                profile_text = None
            key = config_key(engine, pure)
            entry = {
                "key": key,
                "engine": engine,
                "pure_literals": pure,
                **_aggregate(runs, wall, solve_seconds),
                "runs": runs,
                "baseline": _against_baseline(key, runs, wall) if not quick else None,
            }
            if profile_text is not None:
                entry["profile"] = profile_text
            if engine == "counters":
                reference[pure] = runs
            else:
                mismatches = _identity_mismatches(reference[pure], runs)
                entry["decision_identity_vs_counters"] = not mismatches
                if mismatches:
                    identity_ok = False
                    entry["decision_identity_mismatches"] = mismatches
            configs.append(entry)

    report = {
        "schema": SCHEMA,
        "generated_by": "repro bench",
        "mode": "quick" if quick else "full",
        "series": {"family": "counter", **series},
        "reference_engine": "counters",
        "decision_identity_ok": identity_ok,
        "kernel": kernel,
        "native_speedup_vs_watched": _native_speedups(configs),
        "baseline": {"label": PR3_BASELINE_LABEL, "configs": PR3_BASELINE},
        "configs": configs,
    }
    if not identity_ok:
        raise EngineDivergence(report)
    return report


def _native_speedups(configs: List[dict]) -> Optional[Dict[str, float]]:
    """decisions/sec ratio of the native rows over the watched rows.

    Same decisions by the identity contract, so the throughput ratio IS the
    wall speedup of the solving itself. None when native didn't run.
    """
    by_key = {c["key"]: c for c in configs}
    out = {}
    for key, c in by_key.items():
        if c["engine"] != "native":
            continue
        watched = by_key.get(config_key("watched", c["pure_literals"]))
        if watched and watched["decisions_per_second"] > 0:
            out[key] = c["decisions_per_second"] / watched["decisions_per_second"]
    return out or None


class EngineDivergence(AssertionError):
    """A backend produced different decision counts than the reference.

    Carries the full report so the caller can persist it for triage before
    failing the run.
    """

    def __init__(self, report: dict):
        bad = [
            c["key"] for c in report["configs"]
            if c.get("decision_identity_vs_counters") is False
        ]
        super().__init__("decision counts diverged from counters: %s" % ", ".join(bad))
        self.report = report


def _identity_mismatches(reference: List[dict], runs: List[dict]) -> List[dict]:
    mismatches = []
    for ref, run in zip(reference, runs):
        if (ref["instance"], ref["decisions"]) != (run["instance"], run["decisions"]):
            mismatches.append({"expected": ref, "got": run})
    if len(reference) != len(runs):
        mismatches.append({
            "expected_runs": len(reference), "got_runs": len(runs),
        })
    return mismatches


def _against_baseline(key: str, runs: List[dict], wall: float) -> Optional[dict]:
    base = PR3_BASELINE.get(key)
    if base is None:
        return None
    decisions = sum(r["decisions"] for r in runs)
    return {
        "label": PR3_BASELINE_LABEL,
        "baseline_wall_seconds": base["wall_seconds"],
        "baseline_decisions": base["decisions"],
        "wall_speedup": base["wall_seconds"] / wall if wall > 0 else float("nan"),
        "decisions_identical": decisions == base["decisions"],
    }


def render_report(report: dict) -> str:
    """Human-readable summary table of a report (stdout companion)."""
    lines = [
        "repro bench — Figure-6 counter series, %s mode" % report["mode"],
        "series: sizes=%s  max_n_cap=%d  budget=%d decisions"
        % (tuple(report["series"]["sizes"]), report["series"]["max_n_cap"],
           report["series"]["budget_decisions"]),
        "",
        "  %-22s %10s %12s %14s %10s" % (
            "config", "wall", "decisions", "decisions/sec", "speedup"),
    ]
    for c in report["configs"]:
        base = c.get("baseline")
        speedup = "%.2fx" % base["wall_speedup"] if base else "-"
        lines.append("  %-22s %9.2fs %12d %14.0f %10s" % (
            c["key"], c["wall_seconds"], c["decisions"],
            c["decisions_per_second"], speedup,
        ))
    verdict = "ok" if report["decision_identity_ok"] else "DIVERGED"
    lines.append("")
    lines.append("decision identity vs %s backend: %s"
                 % (report["reference_engine"], verdict))
    kernel = report.get("kernel") or {}
    if kernel.get("available"):
        lines.append("native kernel: available (version %s)" % kernel.get("version"))
    else:
        lines.append(
            "native kernel: UNAVAILABLE (%s) — native rows fell back to watched"
            % kernel.get("import_error")
        )
    speedups = report.get("native_speedup_vs_watched")
    if speedups:
        for key in sorted(speedups):
            lines.append("native speedup vs watched (%s): %.2fx decisions/sec"
                         % (key.split("/", 1)[1], speedups[key]))
    if any(c.get("baseline") for c in report["configs"]):
        lines.append("baseline: %s" % PR3_BASELINE_LABEL)
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
