"""Literal and quantifier primitives.

Variables are positive integers ``1, 2, 3, ...``. A *literal* is a nonzero
integer: ``v`` denotes the positive literal of variable ``v`` and ``-v`` its
negation. This is the classical DIMACS encoding, chosen because the solver
kernel manipulates literals in tight loops and plain integers are the fastest
hashable value in CPython.

The module also defines :class:`Quant`, the two quantifier kinds, used by the
prefix tree (:mod:`repro.core.prefix`) and everything above it.
"""

from __future__ import annotations

import enum
from typing import Iterable, Tuple


class Quant(enum.Enum):
    """Quantifier kind of a variable or of a quantifier block."""

    EXISTS = "e"
    FORALL = "a"

    @property
    def dual(self) -> "Quant":
        """Return the other quantifier (``∃`` for ``∀`` and vice versa)."""
        if self is Quant.EXISTS:
            return Quant.FORALL
        return Quant.EXISTS

    @property
    def symbol(self) -> str:
        """Unicode symbol, for pretty-printing prefixes."""
        return "∃" if self is Quant.EXISTS else "∀"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.symbol


#: Convenient aliases so call sites can say ``EXISTS``/``FORALL`` directly.
EXISTS = Quant.EXISTS
FORALL = Quant.FORALL


def var_of(lit: int) -> int:
    """Return the variable of ``lit`` (the paper's ``|l|``)."""
    return lit if lit > 0 else -lit


def neg(lit: int) -> int:
    """Return the complementary literal (the paper's ``l̄``)."""
    return -lit


def sign(lit: int) -> bool:
    """True for a positive literal, False for a negated one."""
    return lit > 0


def lit_name(lit: int, prefix_hint: str = "z") -> str:
    """Human readable rendering such as ``z3`` / ``¬z3`` for debugging."""
    v = var_of(lit)
    body = "%s%d" % (prefix_hint, v)
    return body if lit > 0 else "¬" + body


def check_no_duplicate_vars(lits: Iterable[int]) -> Tuple[int, ...]:
    """Validate that no variable occurs twice (in either polarity).

    The paper's clause definition requires ``|l_i| != |l_j]`` for each pair of
    literals in a clause; the same well-formedness applies to cubes. Returns
    the literals as a tuple, sorted by variable then sign, so that syntactic
    equality of constraints is canonical.

    Raises:
        ValueError: if a variable occurs twice or a literal is zero.
    """
    out = sorted(set(lits), key=lambda l: (var_of(l), l))
    seen = set()
    for lit in out:
        if lit == 0:
            raise ValueError("0 is not a literal")
        v = var_of(lit)
        if v in seen:
            raise ValueError("variable %d occurs twice in %r" % (v, out))
        seen.add(v)
    return tuple(out)
