"""The paradigm-neutral solver seam: protocol, capability flags, registry.

Every consumer of "solve this QBF" — the CLI, the evalx harness, the serve
daemon, the cube coordinator, the portfolio racer — talks to a *paradigm*
through one narrow surface:

* :class:`Solver` — the protocol: ``load(formula)`` / ``solve(**hooks)`` /
  ``stats``, plus class-level ``name`` and ``capabilities``;
* :class:`Capabilities` — honest feature flags a caller introspects
  *before* wiring hooks: proof logging, checkpoint/resume, constraint
  exchange, cooperative interruption. Passing a hook the paradigm cannot
  honor raises :class:`CapabilityError` instead of silently dropping it —
  a certificate that was never logged or a checkpoint that was never
  flushed must fail loudly at the seam, not at triage time;
* the registry — ``name → Solver subclass`` for every paradigm in
  :data:`repro.core.engine.config.PARADIGMS`. Implementations register
  themselves at import; :func:`get_paradigm` lazily imports the standard
  implementations so callers need no import-order knowledge.

Registered paradigms:

``search``
    the production QDPLL engine (:mod:`repro.core.solver` /
    :mod:`repro.core.engine`) — QUBE(TO) on prenex inputs, QUBE(PO) on
    quantifier trees. Full capabilities.
``expansion``
    the iterative quantifier-expansion engine (:mod:`repro.core.expand`),
    the non-recursive worklist counterpart of the semantics oracle. No
    proof logging, no checkpoint resume (v1), no exchange.
``qdll``
    the recursive Figure-1 reference (:mod:`repro.core.simple`), kept as a
    registered paradigm so the repository has no unregistered solve entry
    points. Reference-grade only.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type

from repro.core.engine.config import PARADIGMS, SolverConfig, default_paradigm
from repro.core.formula import QBF
from repro.core.result import SolveResult, SolverStats

__all__ = [
    "Capabilities",
    "CapabilityError",
    "Solver",
    "available_paradigms",
    "get_paradigm",
    "register_paradigm",
    "registry",
    "solve_formula",
]


class CapabilityError(ValueError):
    """A hook was requested from a paradigm that cannot honor it.

    Subclasses :class:`ValueError` so protocol layers that map
    ``ValueError`` to structured client errors (the serve daemon) report
    capability mismatches without special-casing.
    """

    def __init__(self, paradigm: str, capability: str, detail: str = ""):
        message = "paradigm %r does not support %s" % (paradigm, capability)
        if detail:
            message += " (%s)" % detail
        super().__init__(message)
        self.paradigm = paradigm
        self.capability = capability


@dataclass(frozen=True)
class Capabilities:
    """What a paradigm can honestly do; introspected before wiring hooks."""

    #: accepts a :class:`repro.certify.proof.ProofLogger` and records a
    #: machine-checkable clause/term resolution derivation.
    proof: bool = False
    #: honors ``resume_from``/``checkpoint_to`` (repro-ckpt snapshots).
    checkpoint: bool = False
    #: honors the cube-and-conquer constraint ``exchange`` hook.
    exchange: bool = False
    #: polls a cooperative interrupt flag at quiescent points.
    interrupt: bool = True

    def to_dict(self) -> Dict[str, bool]:
        return {
            "proof": self.proof,
            "checkpoint": self.checkpoint,
            "exchange": self.exchange,
            "interrupt": self.interrupt,
        }


class Solver(abc.ABC):
    """One solving session of one paradigm: load a formula, solve it.

    Subclasses set ``name`` (the registry key, also the
    ``SolverConfig.paradigm`` value) and ``capabilities``, and implement
    :meth:`load` and :meth:`_solve_loaded`. The public :meth:`solve`
    enforces the capability contract before delegating, so every
    implementation gets hook validation for free.
    """

    #: registry key; must be listed in ``repro.core.engine.config.PARADIGMS``.
    name: str = ""
    capabilities: Capabilities = Capabilities()

    def __init__(self, config: Optional[SolverConfig] = None):
        self.config = config or SolverConfig()
        self.formula: Optional[QBF] = None
        #: work counters of the most recent :meth:`solve`; every paradigm
        #: reports at least ``decisions`` (its own unit of branching work).
        self.stats = SolverStats()

    @abc.abstractmethod
    def load(self, formula: QBF) -> None:
        """Set (or replace) the formula the next :meth:`solve` works on."""

    @abc.abstractmethod
    def _solve_loaded(
        self,
        proof: Optional[object],
        interrupt: Optional[object],
        resume_from: Optional[object],
        checkpoint_to: Optional[str],
        exchange: Optional[object],
    ) -> SolveResult:
        """Solve the loaded formula; hooks are pre-validated."""

    def solve(
        self,
        proof: Optional[object] = None,
        interrupt: Optional[object] = None,
        resume_from: Optional[object] = None,
        checkpoint_to: Optional[str] = None,
        exchange: Optional[object] = None,
    ) -> SolveResult:
        """Solve to completion, budget exhaustion, or interruption.

        Raises :class:`CapabilityError` when a hook is passed that this
        paradigm's :class:`Capabilities` rule out, and ``RuntimeError``
        when no formula is loaded.
        """
        if self.formula is None:
            raise RuntimeError("no formula loaded (call load() first)")
        caps = self.capabilities
        if proof is not None and not caps.proof:
            raise CapabilityError(self.name, "proof logging")
        if (resume_from is not None or checkpoint_to is not None) and not caps.checkpoint:
            raise CapabilityError(self.name, "checkpoint/resume")
        if exchange is not None and not caps.exchange:
            raise CapabilityError(self.name, "constraint exchange")
        result = self._solve_loaded(proof, interrupt, resume_from, checkpoint_to, exchange)
        self.stats = result.stats
        return result


# -- the registry -------------------------------------------------------------

_REGISTRY: Dict[str, Type[Solver]] = {}


def register_paradigm(cls: Type[Solver]) -> Type[Solver]:
    """Class decorator: enter ``cls`` into the paradigm registry.

    The name must be pre-declared in ``PARADIGMS`` — the static tuple is
    what config validation and CLI choices are built from, so a paradigm
    that never made it there would be constructible but unreachable.
    """
    if not cls.name:
        raise ValueError("paradigm class %r has no name" % (cls,))
    if cls.name not in PARADIGMS:
        raise ValueError(
            "paradigm %r is not declared in config.PARADIGMS %s"
            % (cls.name, PARADIGMS)
        )
    _REGISTRY[cls.name] = cls
    return cls


def _ensure_loaded() -> None:
    """Import the standard implementations so their registrations run."""
    import repro.core.expand  # noqa: F401  (registers "expansion")
    import repro.core.simple  # noqa: F401  (registers "qdll")
    import repro.core.solver  # noqa: F401  (registers "search")


def registry() -> Dict[str, Type[Solver]]:
    """Snapshot of the full ``name → Solver subclass`` registry."""
    _ensure_loaded()
    return dict(_REGISTRY)


def available_paradigms() -> Tuple[str, ...]:
    """Registered paradigm names, in PARADIGMS declaration order."""
    loaded = registry()
    return tuple(name for name in PARADIGMS if name in loaded)


def get_paradigm(name: Optional[str] = None) -> Type[Solver]:
    """Resolve a paradigm name (default: :func:`default_paradigm`)."""
    _ensure_loaded()
    key = name if name is not None else default_paradigm()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ValueError(
            "unknown paradigm %r (choose from %s)" % (key, available_paradigms())
        ) from None


def solve_formula(
    formula: QBF,
    config: Optional[SolverConfig] = None,
    proof: Optional[object] = None,
    interrupt: Optional[object] = None,
    resume_from: Optional[object] = None,
    checkpoint_to: Optional[str] = None,
    exchange: Optional[object] = None,
) -> SolveResult:
    """One-shot paradigm-dispatched solve; the seam every consumer uses.

    The paradigm comes from ``config.paradigm`` (itself defaulting to the
    ``REPRO_PARADIGM`` environment knob). Hook/capability mismatches raise
    :class:`CapabilityError` before any solving starts.
    """
    config = config or SolverConfig()
    solver = get_paradigm(config.paradigm)(config)
    solver.load(formula)
    return solver.solve(
        proof=proof,
        interrupt=interrupt,
        resume_from=resume_from,
        checkpoint_to=checkpoint_to,
        exchange=exchange,
    )


def poll_interrupt(flag: Optional[object]) -> bool:
    """Shared cooperative-interrupt probe: ``is_set()`` objects or callables.

    The same duck-typing the search engine uses, factored out so the other
    paradigms poll identically.
    """
    if flag is None:
        return False
    check = getattr(flag, "is_set", None)
    return bool(check() if check is not None else flag())
