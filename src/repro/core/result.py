"""Solver outcome and statistics containers shared by all engines."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class BudgetExceeded(RuntimeError):
    """Raised internally when a solver exhausts its decision budget."""

    def __init__(self, spent: int):
        super().__init__("budget exceeded after %d decisions" % spent)
        self.spent = spent


class UnknownOutcomeError(ValueError):
    """An UNKNOWN outcome was asked for its truth value.

    Subclasses :class:`ValueError` so existing ``except ValueError`` guards
    keep working. ``spent`` carries the decisions consumed before the budget
    ran out (``None`` when the converter has no stats in hand), so batch
    callers can report the censored cost without re-deriving it.
    """

    def __init__(self, spent: Optional[int] = None):
        detail = "" if spent is None else " (budget exhausted after %d decisions)" % spent
        super().__init__("UNKNOWN outcome has no truth value" + detail)
        self.spent = spent


class Outcome(enum.Enum):
    """Verdict of a solver run."""

    TRUE = "true"
    FALSE = "false"
    #: Budget (decision or wall-clock) exhausted — the paper's "timeout".
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        if self is Outcome.UNKNOWN:
            raise UnknownOutcomeError()
        return self is Outcome.TRUE


@dataclass
class SolverStats:
    """Work counters of one :class:`~repro.core.solver.QdpllSolver` run.

    ``decisions`` is the primary cost metric of the reproduction (the
    platform-independent stand-in for the paper's CPU seconds); the rest
    supports the ablations and the learning analyses.
    """

    decisions: int = 0
    propagations: int = 0
    pure_literals: int = 0
    conflicts: int = 0
    solutions: int = 0
    learned_clauses: int = 0
    learned_cubes: int = 0
    learned_clause_lits: int = 0
    learned_cube_lits: int = 0
    backjumps: int = 0
    chrono_backtracks: int = 0
    max_trail: int = 0
    #: propagation-layer observability (engine-dependent by design, unlike
    #: the counters above, which every backend must reproduce exactly):
    #: full constraint-body scans during propagation...
    clause_visits: int = 0
    cube_visits: int = 0
    #: ...and watch-literal repairs (always 0 under the counter backend).
    watcher_swaps: int = 0
    #: engine-selection notice: the backend actually used when the requested
    #: one was unavailable (e.g. ``"watched"`` after ``engine="native"`` on
    #: a build without the compiled kernel), else "". Never set silently —
    #: selection also emits a NativeFallbackWarning. Engine metadata, not a
    #: work counter: excluded from cross-backend stat comparisons.
    engine_fallback: str = ""

    @property
    def backtracks(self) -> int:
        return self.conflicts + self.solutions


@dataclass
class SolveResult:
    """Outcome + cost of a solver run.

    ``seconds`` accumulates across resumed attempts (the spent budget rides
    along in the checkpoint); ``interrupted`` distinguishes a cooperative
    preemption (SIGTERM/SIGINT via an interrupt flag) from an exhausted
    budget — both report ``Outcome.UNKNOWN``.
    """

    outcome: Outcome
    stats: SolverStats = field(default_factory=SolverStats)
    seconds: float = 0.0
    interrupted: bool = False

    @property
    def timed_out(self) -> bool:
        return self.outcome is Outcome.UNKNOWN

    @property
    def value(self) -> bool:
        """Truth value; raises :class:`UnknownOutcomeError` on UNKNOWN."""
        if self.outcome is Outcome.UNKNOWN:
            raise UnknownOutcomeError(self.stats.decisions)
        return self.outcome is Outcome.TRUE

    def __repr__(self) -> str:
        return "SolveResult(%s, decisions=%d, %.3fs)" % (
            self.outcome.value,
            self.stats.decisions,
            self.seconds,
        )
