"""The recursive Q-DLL of Figure 1, generalized to arbitrary QBFs.

This is a direct transcription of the paper's pseudo-code (Section III) with
the Section IV generalizations:

* line 1 — FALSE on a *contradictory* clause (all-universal, Lemma 4);
* line 2 — TRUE on an empty matrix;
* line 3 — simplify on a *unit* literal, with the partial-order definition
  of unit (``|l_i| ⊀ |l|`` for the universal companions, Lemma 5);
* lines 4-6 — branch on a heuristically chosen *top* literal, "or"-combining
  for existentials and "and"-combining for universals.

The implementation recurses on explicit cofactors (``QBF.assign``), exactly
like the pseudo-code; it is the readable reference, not the fast engine.
It optionally records the search tree, which is how
``examples/paper_example.py`` regenerates Figure 2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.core.constraints import is_contradictory, unit_literal
from repro.core.engine.config import SolverConfig
from repro.core.formula import QBF
from repro.core.literals import EXISTS
from repro.core.paradigm import Capabilities, Solver, poll_interrupt, register_paradigm
from repro.core.result import BudgetExceeded, Outcome, SolveResult, SolverStats


@dataclass
class SearchNode:
    """One node of a recorded Q-DLL search tree (compare Figure 2)."""

    number: int
    path: Tuple[int, ...]
    matrix: Tuple[Tuple[int, ...], ...]
    verdict: Optional[bool] = None
    children: List["SearchNode"] = field(default_factory=list)

    def render(self, indent: int = 0) -> str:
        """Figure-2-style indented rendering of the subtree."""
        label = "%d: %s" % (self.number, list(map(list, self.matrix)))
        if self.verdict is not None:
            label += "  -> %s" % ("TRUE" if self.verdict else "FALSE")
        lines = ["  " * indent + label]
        for child in self.children:
            edge = "  " * (indent + 1) + "branch %d" % child.path[-1]
            lines.append(edge)
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


@dataclass
class SimpleStats:
    """Counters reported by :func:`q_dll`."""

    branches: int = 0
    units: int = 0
    nodes: int = 0


#: Signature of a branching heuristic: given the current QBF, return a top
#: literal to assign as a branch.
Heuristic = Callable[[QBF], int]


def first_top_literal(formula: QBF) -> int:
    """Default heuristic: smallest top variable, positive phase first."""
    return formula.prefix.top_variables()[0]


def q_dll(
    formula: QBF,
    heuristic: Heuristic = first_top_literal,
    record_tree: bool = False,
    max_branches: Optional[int] = None,
) -> Tuple[bool, SimpleStats, Optional[SearchNode]]:
    """Run the Figure-1 Q-DLL procedure.

    Args:
        formula: input QBF (prenex or not).
        heuristic: branching literal chooser (must return a top literal).
        record_tree: capture the explored tree for inspection.
        max_branches: optional budget; :class:`BudgetExceeded` when hit.

    Returns:
        ``(value, stats, tree_root_or_None)``.
    """
    stats = SimpleStats()
    counter = [0]

    def new_node(path: Tuple[int, ...], current: QBF) -> Optional[SearchNode]:
        if not record_tree:
            return None
        counter[0] += 1
        return SearchNode(counter[0], path, tuple(c.lits for c in current.clauses))

    def rec(current: QBF, path: Tuple[int, ...], node: Optional[SearchNode]) -> bool:
        stats.nodes += 1
        if max_branches is not None and stats.branches > max_branches:
            raise BudgetExceeded(stats.branches)
        if any(is_contradictory(c.lits, current.prefix) for c in current.clauses):
            if node is not None:
                node.verdict = False
            return False
        if not current.clauses:
            if node is not None:
                node.verdict = True
            return True
        for clause in current.clauses:
            lit = unit_literal(clause.lits, current.prefix)
            if lit is not None:
                stats.units += 1
                return rec(current.assign(lit), path, node)
        lit = heuristic(current)
        stats.branches += 1
        left = current.assign(lit)
        left_node = new_node(path + (lit,), left)
        if node is not None and left_node is not None:
            node.children.append(left_node)
        left_value = rec(left, path + (lit,), left_node)
        existential = current.prefix.quant(lit) is EXISTS
        if existential and left_value:
            if node is not None:
                node.verdict = True
            return True
        if not existential and not left_value:
            if node is not None:
                node.verdict = False
            return False
        stats.branches += 1
        right = current.assign(-lit)
        right_node = new_node(path + (-lit,), right)
        if node is not None and right_node is not None:
            node.children.append(right_node)
        right_value = rec(right, path + (-lit,), right_node)
        value = (left_value or right_value) if existential else (left_value and right_value)
        if node is not None:
            node.verdict = value
        return value

    root = new_node((), formula)
    value = rec(formula, (), root)
    return value, stats, root


class _Interrupted(Exception):
    """Internal: the interrupt flag fired inside a q_dll run."""


@register_paradigm
class QdllReferenceSolver(Solver):
    """The Figure-1 recursive reference as a registered paradigm.

    Exists so the repository has *no* unregistered solve entry points: the
    readable reference is reachable through the same seam as the production
    engines, with honest flags (no proofs, no checkpoints, no exchange).
    Budgets bind: ``max_decisions`` caps branches, ``max_seconds`` is
    polled at every branch point, as is the cooperative interrupt flag.
    """

    name = "qdll"
    capabilities = Capabilities(proof=False, checkpoint=False, exchange=False, interrupt=True)

    def load(self, formula: QBF) -> None:
        self.formula = formula

    def _solve_loaded(
        self,
        proof: Optional[object],
        interrupt: Optional[object],
        resume_from: Optional[object],
        checkpoint_to: Optional[str],
        exchange: Optional[object],
    ) -> SolveResult:
        config = self.config
        deadline = None
        if config.max_seconds is not None:
            deadline = time.monotonic() + config.max_seconds

        # q_dll has no hook points of its own; the branching heuristic runs
        # exactly once per branch decision, so it doubles as the poll site
        # for the wall-clock budget and the interrupt flag.
        def polling_heuristic(current: QBF) -> int:
            if poll_interrupt(interrupt):
                raise _Interrupted()
            if deadline is not None and time.monotonic() > deadline:
                raise BudgetExceeded(0)
            return first_top_literal(current)

        start = time.perf_counter()
        interrupted = False
        try:
            value, simple_stats, _ = q_dll(
                self.formula,
                heuristic=polling_heuristic,
                max_branches=config.max_decisions,
            )
            outcome = Outcome.TRUE if value else Outcome.FALSE
            simple = simple_stats
        except BudgetExceeded:
            outcome, simple = Outcome.UNKNOWN, SimpleStats()
        except _Interrupted:
            outcome, simple = Outcome.UNKNOWN, SimpleStats()
            interrupted = True
        stats = SolverStats(decisions=simple.branches, propagations=simple.units)
        return SolveResult(
            outcome=outcome,
            stats=stats,
            seconds=time.perf_counter() - start,
            interrupted=interrupted,
        )
