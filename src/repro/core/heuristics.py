"""Branching heuristics (Section VI of the paper).

Both QUBE variants keep a per-literal *counter* of the number of constraints
(matrix clauses plus learned nogoods/goods) the literal occurs in, bumped on
learning and periodically decayed — the VSIDS-flavoured scheme the paper
attributes to ZCHAFF.

* ``QUBE(TO)`` sorts literals by (prefix level, counter, id). In a prenex
  formula only the outermost unfinished block is branchable, so the level
  key simply restricts the choice to that block.
* ``QUBE(PO)`` cannot sort by level (the prefix is a partial order). The
  paper's solution: the *score* of a literal is its counter plus the maximum
  score of the literals one alternation deeper in its scope. This guarantees
  that ``|l| ≺ |l'|`` implies ``score(l) > score(l')`` (so outer variables
  are branched first) while reducing to plain VSIDS on SAT instances.

Both are implemented by :class:`ScoreKeeper` + a pick policy; the engine asks
for the best literal among *available* variables (those whose ``≺``
predecessors are all assigned), so every policy is sound for every prefix —
the policies differ only in ranking.

Storage layout: the counters live in two flat lists indexed by variable
(``score_pos[v]`` for literal ``v``, ``score_neg[v]`` for ``-v``), and the
per-block subtree maxima in two lists indexed by block DFS index. The
arithmetic is unchanged from the dict-backed original — bump adds the same
1.0, decay multiplies every counter by the same factor, ``_recompute`` folds
the same ``max(score + kid)`` per block — so decisions are bit-identical;
only the indexing cost changed. ``keeper.score`` remains available as a
dict-like signed-literal view (:class:`_ScoreView`) for checkpoints and
tests; hot paths read the arrays directly.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.prefix import Prefix

#: pick policy names accepted by the solver configuration.
POLICIES = ("levelsub", "subtree", "counter", "naive")


class _ScoreView:
    """Dict-like signed-literal facade over the flat score arrays.

    Supports exactly what the cold paths need: indexing by signed literal,
    iteration over the signed literals of the prefix (insertion order of the
    historical dict: ``v, -v`` per variable, ascending), ``dict(view)`` for
    checkpoint capture and ``view.update(mapping)`` for restore.
    """

    __slots__ = ("_keeper",)

    def __init__(self, keeper: "ScoreKeeper"):
        self._keeper = keeper

    def __getitem__(self, lit: int) -> float:
        k = self._keeper
        return k.score_pos[lit] if lit > 0 else k.score_neg[-lit]

    def __setitem__(self, lit: int, value: float) -> None:
        k = self._keeper
        if lit > 0:
            k.score_pos[lit] = value
        else:
            k.score_neg[-lit] = value

    def __iter__(self) -> Iterator[int]:
        for v in self._keeper.prefix.variables:
            yield v
            yield -v

    def __len__(self) -> int:
        return 2 * len(self._keeper.prefix.variables)

    def __contains__(self, lit: int) -> bool:
        v = lit if lit > 0 else -lit
        return v in self._keeper.prefix.variables

    def keys(self) -> List[int]:
        return list(self)

    def items(self) -> List[Tuple[int, float]]:
        return [(lit, self[lit]) for lit in self]

    def values(self) -> List[float]:
        return [self[lit] for lit in self]

    def update(self, other) -> None:
        items = other.items() if hasattr(other, "items") else other
        for lit, value in items:
            self[lit] = value


class ScoreKeeper:
    """Literal activity counters with periodic decay and subtree maxima."""

    #: decay factor applied every :attr:`decay_interval` learned constraints
    #: ("halving the old score", Section VI).
    DECAY = 0.5

    def __init__(self, prefix: Prefix, decay_interval: int = 64):
        self.prefix = prefix
        tab = prefix.tables()
        self.score_pos: List[float] = [0.0] * tab.num_slots
        self.score_neg: List[float] = [0.0] * tab.num_slots
        self._is_exist = tab.is_exist
        self._level = tab.level
        self._block_index = tab.block_index
        n_blocks = len(tab.block_vars)
        self._subtree_max: List[float] = [0.0] * n_blocks
        self._child_max: List[float] = [0.0] * n_blocks
        self.decay_interval = decay_interval
        self._since_decay = 0
        self._dirty = True
        self.score = _ScoreView(self)

    def _bump(self, lit: int) -> None:
        # Section VI: an existential literal counts the constraints it
        # occurs in; a universal literal counts the constraints its
        # *complement* occurs in (the universal player branches to falsify).
        if lit > 0:
            if self._is_exist[lit]:
                self.score_pos[lit] += 1.0
            else:
                self.score_neg[lit] += 1.0
        else:
            v = -lit
            if self._is_exist[v]:
                self.score_neg[v] += 1.0
            else:
                self.score_pos[v] += 1.0

    def bump_initial(self, clauses: Iterable[Sequence[int]]) -> None:
        """Initialize counters from matrix occurrences."""
        for clause in clauses:
            for lit in clause:
                self._bump(lit)
        self._dirty = True

    def on_learned(self, lits: Sequence[int]) -> None:
        """Bump the literals of a freshly learned constraint and maybe decay."""
        for lit in lits:
            self._bump(lit)
        self._since_decay += 1
        if self._since_decay >= self.decay_interval:
            self._since_decay = 0
            decay = self.DECAY
            # In-place (the arrays are captured by picker closures and must
            # never be rebound). Unused slots stay 0.0, same as before.
            score_pos = self.score_pos
            score_neg = self.score_neg
            for i in range(len(score_pos)):
                score_pos[i] *= decay
                score_neg[i] *= decay
        self._dirty = True

    # -- PO subtree scores ---------------------------------------------------

    def _recompute(self) -> None:
        """Bottom-up pass computing, per block, the max augmented score.

        ``subtree_max(b)`` is the maximum over literals ``l`` of block ``b``
        of ``score(l) + child_max(b)``, where ``child_max(b)`` is the largest
        ``subtree_max`` among the children of ``b`` (0 for leaves). This is
        precisely the Section VI definition, evaluated per block since all
        variables of a block share the same children.
        """
        subtree_max = self._subtree_max
        child_max = self._child_max
        score_pos = self.score_pos
        score_neg = self.score_neg
        for block in reversed(self.prefix.blocks):
            kid = 0.0
            level = block.level
            for child in block.children:
                if child.level > level:
                    # One alternation deeper: the child's own literals are
                    # the "prefix level k+1" literals of the definition.
                    kid = max(kid, subtree_max[child.index])
                else:
                    # Same-level child (branch point without alternation):
                    # only its strictly deeper descendants count.
                    kid = max(kid, child_max[child.index])
            child_max[block.index] = kid
            best = 0.0
            for v in block.variables:
                best = max(best, score_pos[v] + kid, score_neg[v] + kid)
            subtree_max[block.index] = best
        self._dirty = False

    def effective(self, lit: int) -> float:
        """The PO score of ``lit``: counter plus deeper-subtree maximum."""
        if self._dirty:
            self._recompute()
        v = lit if lit > 0 else -lit
        s = self.score_pos[v] if lit > 0 else self.score_neg[v]
        return s + self._child_max[self._block_index[v]]


def make_picker(
    policy: str,
    keeper: ScoreKeeper,
) -> Callable[[Sequence[int]], Optional[int]]:
    """Build the branching function for ``policy`` once, at solver init.

    Historically :func:`pick_literal` rebuilt its key lambda on every
    decision; the engine now hoists that construction here and calls the
    returned closure per decision. The ranking is unchanged:

    ``levelsub`` — rank by (prefix level, subtree score): Section VI's
    requirement that the queue account for "both their position in the
    prefix and their score", taking the position key literally. The
    reproduction's default: it keeps branching freedom across incomparable
    same-level blocks while never diving below an unfinished shallower
    block, which our backjumping engine rewards (see the heuristic ablation
    bench); ``subtree`` — the pure Section VI score formula (counter plus
    deeper-subtree maximum), whose ≺-monotonicity is the only ordering
    constraint; ``counter`` — raw counters, ignoring the tree (ablation);
    ``naive`` — smallest variable id, positive phase (ablation).

    Every key ends in ``-v``, a strict tiebreak, so the result never depends
    on the order of ``available``. The returned function maps an available
    list to a literal, or None when the list is empty.
    """
    if policy == "naive":
        def pick_naive(available: Sequence[int]) -> Optional[int]:
            if not available:
                return None
            return min(available)

        return pick_naive

    score_pos = keeper.score_pos
    score_neg = keeper.score_neg
    if policy == "counter":
        def key(v: int) -> Tuple:
            a = score_pos[v]
            b = score_neg[v]
            return (a if a >= b else b, -v)
    elif policy == "subtree":
        effective = keeper.effective

        def key(v: int) -> Tuple:
            a = effective(v)
            b = effective(-v)
            return (a if a >= b else b, -v)
    elif policy == "levelsub":
        level = keeper._level
        effective = keeper.effective

        def key(v: int) -> Tuple:
            a = effective(v)
            b = effective(-v)
            return (-level[v], a if a >= b else b, -v)
    else:
        raise ValueError("unknown branching policy %r" % policy)

    def pick(available: Sequence[int]) -> Optional[int]:
        if not available:
            return None
        var = max(available, key=key)
        return var if score_pos[var] >= score_neg[var] else -var

    return pick


def pick_literal(
    policy: str,
    keeper: ScoreKeeper,
    available: Sequence[int],
) -> Optional[int]:
    """One-shot convenience wrapper over :func:`make_picker`.

    Kept for tests and exploratory code; the engine builds its picker once
    at init instead. Returns a literal, or None when ``available`` is empty.
    """
    if not available:
        return None
    return make_picker(policy, keeper)(available)
