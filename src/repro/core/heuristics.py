"""Branching heuristics (Section VI of the paper).

Both QUBE variants keep a per-literal *counter* of the number of constraints
(matrix clauses plus learned nogoods/goods) the literal occurs in, bumped on
learning and periodically decayed — the VSIDS-flavoured scheme the paper
attributes to ZCHAFF.

* ``QUBE(TO)`` sorts literals by (prefix level, counter, id). In a prenex
  formula only the outermost unfinished block is branchable, so the level
  key simply restricts the choice to that block.
* ``QUBE(PO)`` cannot sort by level (the prefix is a partial order). The
  paper's solution: the *score* of a literal is its counter plus the maximum
  score of the literals one alternation deeper in its scope. This guarantees
  that ``|l| ≺ |l'|`` implies ``score(l) > score(l')`` (so outer variables
  are branched first) while reducing to plain VSIDS on SAT instances.

Both are implemented by :class:`ScoreKeeper` + a pick policy; the engine asks
for the best literal among *available* variables (those whose ``≺``
predecessors are all assigned), so every policy is sound for every prefix —
the policies differ only in ranking.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.prefix import Block, Prefix

#: pick policy names accepted by the solver configuration.
POLICIES = ("levelsub", "subtree", "counter", "naive")


class ScoreKeeper:
    """Literal activity counters with periodic decay and subtree maxima."""

    #: decay factor applied every :attr:`decay_interval` learned constraints
    #: ("halving the old score", Section VI).
    DECAY = 0.5

    def __init__(self, prefix: Prefix, decay_interval: int = 64):
        self.prefix = prefix
        self.score: Dict[int, float] = {}
        for v in prefix.variables:
            self.score[v] = 0.0
            self.score[-v] = 0.0
        self.decay_interval = decay_interval
        self._since_decay = 0
        self._subtree_max: Dict[int, float] = {}
        self._child_max: Dict[int, float] = {}
        self._dirty = True

    def _bump(self, lit: int) -> None:
        # Section VI: an existential literal counts the constraints it
        # occurs in; a universal literal counts the constraints its
        # *complement* occurs in (the universal player branches to falsify).
        if self.prefix.is_existential(lit):
            self.score[lit] += 1.0
        else:
            self.score[-lit] += 1.0

    def bump_initial(self, clauses: Iterable[Sequence[int]]) -> None:
        """Initialize counters from matrix occurrences."""
        for clause in clauses:
            for lit in clause:
                self._bump(lit)
        self._dirty = True

    def on_learned(self, lits: Sequence[int]) -> None:
        """Bump the literals of a freshly learned constraint and maybe decay."""
        for lit in lits:
            self._bump(lit)
        self._since_decay += 1
        if self._since_decay >= self.decay_interval:
            self._since_decay = 0
            for lit in self.score:
                self.score[lit] *= self.DECAY
        self._dirty = True

    # -- PO subtree scores ---------------------------------------------------

    def _recompute(self) -> None:
        """Bottom-up pass computing, per block, the max augmented score.

        ``subtree_max(b)`` is the maximum over literals ``l`` of block ``b``
        of ``score(l) + child_max(b)``, where ``child_max(b)`` is the largest
        ``subtree_max`` among the children of ``b`` (0 for leaves). This is
        precisely the Section VI definition, evaluated per block since all
        variables of a block share the same children.
        """
        order: List[Block] = list(self.prefix.blocks)
        for block in reversed(order):
            kid = 0.0
            for child in block.children:
                if child.level > block.level:
                    # One alternation deeper: the child's own literals are
                    # the "prefix level k+1" literals of the definition.
                    kid = max(kid, self._subtree_max[child.index])
                else:
                    # Same-level child (branch point without alternation):
                    # only its strictly deeper descendants count.
                    kid = max(kid, self._child_max[child.index])
            self._child_max[block.index] = kid
            best = 0.0
            for v in block.variables:
                best = max(best, self.score[v] + kid, self.score[-v] + kid)
            self._subtree_max[block.index] = best
        self._dirty = False

    def effective(self, lit: int) -> float:
        """The PO score of ``lit``: counter plus deeper-subtree maximum."""
        if self._dirty:
            self._recompute()
        block = self.prefix.block_of(abs(lit))
        return self.score[lit] + self._child_max[block.index]


def pick_literal(
    policy: str,
    keeper: ScoreKeeper,
    available: Sequence[int],
) -> Optional[int]:
    """Choose a branching literal among available (top) variables.

    Args:
        policy: one of :data:`POLICIES`.
            ``levelsub`` — rank by (prefix level, subtree score): Section
            VI's requirement that the queue account for "both their position
            in the prefix and their score", taking the position key
            literally. The reproduction's default: it keeps branching
            freedom across incomparable same-level blocks while never diving
            below an unfinished shallower block, which our backjumping
            engine rewards (see the heuristic ablation bench);
            ``subtree`` — the pure Section VI score formula (counter plus
            deeper-subtree maximum), whose ≺-monotonicity is the only
            ordering constraint;
            ``counter`` — raw counters, ignoring the tree (ablation);
            ``naive`` — smallest variable id, positive phase (ablation).
        keeper: the activity store.
        available: unassigned variables whose predecessors are assigned.

    Returns:
        a literal, or None when ``available`` is empty.
    """
    if not available:
        return None
    if policy == "naive":
        return min(available)
    if policy == "counter":
        key: Callable[[int], Tuple] = lambda v: (
            max(keeper.score[v], keeper.score[-v]),
            -v,
        )
    elif policy == "subtree":
        key = lambda v: (max(keeper.effective(v), keeper.effective(-v)), -v)
    elif policy == "levelsub":
        prefix = keeper.prefix
        key = lambda v: (
            -prefix.level(v),
            max(keeper.effective(v), keeper.effective(-v)),
            -v,
        )
    else:
        raise ValueError("unknown branching policy %r" % policy)
    var = max(available, key=key)
    return var if keeper.score[var] >= keeper.score[-var] else -var
