"""Solver kernel: formulas, prefixes, propagation, learning, engines."""

from repro.core.constraints import (
    Clause,
    Constraint,
    Cube,
    existential_reduce,
    is_contradictory,
    resolve,
    unit_literal,
    universal_reduce,
)
from repro.core.expand import ExpansionSolver, expand_solve
from repro.core.expansion import evaluate
from repro.core.formula import QBF, paper_example
from repro.core.heuristics import ScoreKeeper, make_picker, pick_literal
from repro.core.literals import EXISTS, FORALL, Quant, neg, var_of
from repro.core.paradigm import (
    Capabilities,
    CapabilityError,
    Solver,
    available_paradigms,
    get_paradigm,
    register_paradigm,
    registry,
    solve_formula,
)
from repro.core.prefix import Block, Prefix
from repro.core.result import (
    BudgetExceeded,
    Outcome,
    SolveResult,
    SolverStats,
    UnknownOutcomeError,
)
from repro.core.simple import q_dll
from repro.core.solver import QdpllSolver, SolverConfig, solve

__all__ = [
    "Block",
    "BudgetExceeded",
    "Capabilities",
    "CapabilityError",
    "Clause",
    "Constraint",
    "Cube",
    "EXISTS",
    "ExpansionSolver",
    "FORALL",
    "Outcome",
    "Prefix",
    "QBF",
    "QdpllSolver",
    "Quant",
    "ScoreKeeper",
    "SolveResult",
    "Solver",
    "SolverConfig",
    "SolverStats",
    "UnknownOutcomeError",
    "available_paradigms",
    "evaluate",
    "expand_solve",
    "get_paradigm",
    "register_paradigm",
    "registry",
    "solve_formula",
    "existential_reduce",
    "is_contradictory",
    "neg",
    "paper_example",
    "make_picker",
    "pick_literal",
    "q_dll",
    "resolve",
    "solve",
    "unit_literal",
    "universal_reduce",
    "var_of",
]
