"""Solver kernel: formulas, prefixes, propagation, learning, engines."""

from repro.core.constraints import (
    Clause,
    Constraint,
    Cube,
    existential_reduce,
    is_contradictory,
    resolve,
    unit_literal,
    universal_reduce,
)
from repro.core.expansion import evaluate
from repro.core.formula import QBF, paper_example
from repro.core.heuristics import ScoreKeeper, make_picker, pick_literal
from repro.core.literals import EXISTS, FORALL, Quant, neg, var_of
from repro.core.prefix import Block, Prefix
from repro.core.result import (
    BudgetExceeded,
    Outcome,
    SolveResult,
    SolverStats,
    UnknownOutcomeError,
)
from repro.core.simple import q_dll
from repro.core.solver import QdpllSolver, SolverConfig, solve

__all__ = [
    "Block",
    "BudgetExceeded",
    "Clause",
    "Constraint",
    "Cube",
    "EXISTS",
    "FORALL",
    "Outcome",
    "Prefix",
    "QBF",
    "QdpllSolver",
    "Quant",
    "ScoreKeeper",
    "SolveResult",
    "SolverConfig",
    "SolverStats",
    "UnknownOutcomeError",
    "evaluate",
    "existential_reduce",
    "is_contradictory",
    "neg",
    "paper_example",
    "make_picker",
    "pick_literal",
    "q_dll",
    "resolve",
    "solve",
    "unit_literal",
    "universal_reduce",
    "var_of",
]
