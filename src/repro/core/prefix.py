"""Partially ordered quantifier prefixes (Section II and VI of the paper).

A (possibly non-prenex) QBF is represented in the paper as a pair
``⟨prefix, matrix⟩`` where the prefix is a partially ordered set of
quantified variables: ``z ≺ z'`` holds when ``z'`` is quantified in the
scope of ``z`` *with a quantifier alternation in between* (Section II,
conditions (a) and (b)). This module implements that order as a quantifier
tree of :class:`Block` nodes, each binding a set of variables under one
quantifier.

Normalization applies two semantics-preserving rewrites:

* empty blocks (possible after variable removal) are spliced out;
* a block that is the *only* child of a same-quantifier parent is merged
  into it — the paper's ``Q1 z1 Q2 z2 ϕ ↦ Q2 z2 Q1 z1 ϕ`` commutation.
  Merging across branch points would widen scopes and forge spurious order
  pairs, so it is deliberately not performed; the tree may therefore contain
  same-quantifier parent/child pairs at branch points, which simply carry no
  order between their variables.

Order queries are O(1) via two per-block quantities computed in one DFS:

* a plain discovery/finish interval (``din``/``dout``) giving the ancestor
  relation, and
* the *alternation level* (the paper's prefix level): 1 for top blocks,
  incremented on each quantifier alternation down the tree.

Then ``z ≺ z'`` iff ``block(z)`` is a proper ancestor of ``block(z')`` and
``level(z') > level(z)`` — on trees with no same-quantifier branch-point
children this is exactly the paper's equation (13) test
``d(z) < d(z') ≤ f(z)``, whose stamps are also exposed (:meth:`Prefix.d`,
:meth:`Prefix.f`) and match the Section VI worked example.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.literals import EXISTS, FORALL, Quant, var_of

#: A prefix *spec* is the user-facing nested-tuple description of a tree:
#: ``(quant, vars)`` or ``(quant, vars, [child_spec, ...])``.  The top level
#: is a list of specs (a forest — e.g. ``(∃x ϕ ∧ ∀y ψ)`` has two roots).
Spec = Union[
    Tuple[Quant, Sequence[int]],
    Tuple[Quant, Sequence[int], Sequence["Spec"]],
]


class Block:
    """One quantifier block of the tree.

    Attributes:
        quant: the quantifier binding every variable of the block, or
            ``None`` for the virtual root only.
        variables: tuple of variables bound here (mutually unordered).
        children: child blocks.
        parent: parent block (the virtual root for top-level blocks).
        level: the paper's *prefix level* of the block's variables (length
            of the longest ``≺`` chain ending at them); 1 for top blocks.
        din, dout: plain DFS discovery interval for O(1) ancestor tests.
        d, f: the paper's Section VI stamps (counter bumped once per
            quantifier alternation); they satisfy equation (13) on trees
            without same-quantifier branch-point children.
        index: position of the block in the prefix's DFS block list.
    """

    __slots__ = (
        "quant",
        "variables",
        "children",
        "parent",
        "level",
        "din",
        "dout",
        "d",
        "f",
        "index",
    )

    def __init__(self, quant: Optional[Quant], variables: Tuple[int, ...]):
        self.quant = quant
        self.variables = variables
        self.children: List["Block"] = []
        self.parent: Optional["Block"] = None
        self.level = 0
        self.din = 0
        self.dout = 0
        self.d = 0
        self.f = 0
        self.index = -1

    @property
    def is_root(self) -> bool:
        """True for the virtual root block (which binds no variables)."""
        return self.quant is None

    def is_ancestor_of(self, other: "Block") -> bool:
        """Proper ancestor test via DFS intervals."""
        return self is not other and self.din <= other.din <= self.dout

    def ancestors(self) -> Iterator["Block"]:
        """Yield proper ancestor blocks, innermost first, root excluded."""
        node = self.parent
        while node is not None and not node.is_root:
            yield node
            node = node.parent

    def subtree(self) -> Iterator["Block"]:
        """Yield this block and every descendant, in DFS order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        q = self.quant.symbol if self.quant is not None else "·"
        return "%s%s" % (q, list(self.variables))


class PrefixTables:
    """Flat, positionally indexed lookup tables over one :class:`Prefix`.

    The solver's hot loops (propagation, reduction, branching) pay for every
    ``block_of`` dict probe and ``Block`` attribute hop millions of times per
    run, so the per-variable quantities they need are precomputed here once
    as plain lists indexed by variable (slots for unbound variables stay at
    their zero defaults and must never be consulted):

    * ``level[v]``/``is_exist[v]``/``din[v]``/``dout[v]`` — the variable's
      block's alternation level, quantifier, and DFS interval. The order
      test ``a ≺ b`` becomes three comparisons on these arrays:
      ``level[a] < level[b] and din[a] <= din[b] <= dout[a]``.
    * ``block_index[v]`` — index of the binding block in DFS order.

    Per-block tables support the incremental branching frontier
    (:meth:`repro.core.engine.trail.Trail.available_vars`):

    * ``block_vars[bi]`` — the block's variable tuple, DFS block order.
    * ``init_blockers[bi]`` — how many proper ancestors sit at a strictly
      lower alternation level (every one of them holds unassigned variables
      in the empty assignment, so this is the initial blocker count).
    * ``deeper_descendants[bi]`` — indices of descendant blocks at a
      strictly greater level: exactly the blocks whose frontier membership
      this block gates.
    """

    __slots__ = (
        "num_slots",
        "level",
        "is_exist",
        "din",
        "dout",
        "block_index",
        "block_vars",
        "init_blockers",
        "deeper_descendants",
    )

    def __init__(self, prefix: "Prefix"):
        nv = max(prefix.variables, default=0)
        self.num_slots = nv + 1
        self.level: List[int] = [0] * self.num_slots
        self.is_exist: List[bool] = [False] * self.num_slots
        self.din: List[int] = [0] * self.num_slots
        self.dout: List[int] = [0] * self.num_slots
        self.block_index: List[int] = [0] * self.num_slots
        blocks = prefix.blocks
        self.block_vars: Tuple[Tuple[int, ...], ...] = tuple(b.variables for b in blocks)
        for block in blocks:
            is_exist = block.quant is EXISTS
            for v in block.variables:
                self.level[v] = block.level
                self.is_exist[v] = is_exist
                self.din[v] = block.din
                self.dout[v] = block.dout
                self.block_index[v] = block.index
        deeper: List[List[int]] = [[] for _ in blocks]
        init_blockers = []
        for block in blocks:
            n = 0
            for anc in block.ancestors():
                if anc.level < block.level:
                    n += 1
                    deeper[anc.index].append(block.index)
            init_blockers.append(n)
        self.init_blockers: Tuple[int, ...] = tuple(init_blockers)
        self.deeper_descendants: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(d) for d in deeper
        )


class Prefix:
    """An immutable partially ordered quantifier prefix.

    Construct with :meth:`linear` (prenex), :meth:`tree` (arbitrary forest
    spec), or :meth:`exists_only` (plain SAT). All constructors normalize
    the tree and precompute the stamps and levels used by the solver.
    """

    def __init__(self, roots: Sequence[Spec]):
        self._root = Block(None, ())
        for spec in roots:
            child = _build(spec)
            child.parent = self._root
            self._root.children.append(child)
        _normalize(self._root)
        self._blocks: List[Block] = []
        self._stamp_tree()
        self._block_of: Dict[int, Block] = {}
        for block in self._blocks:
            for v in block.variables:
                if v in self._block_of:
                    raise ValueError("variable %d bound more than once" % v)
                if v <= 0:
                    raise ValueError("variables must be positive, got %d" % v)
                self._block_of[v] = block
        self._variables = tuple(sorted(self._block_of))
        self._tables: Optional[PrefixTables] = None

    # -- construction ------------------------------------------------------

    @classmethod
    def linear(cls, blocks: Sequence[Tuple[Quant, Sequence[int]]]) -> "Prefix":
        """Build a prenex (totally ordered) prefix, outermost to innermost.

        Example: ``Prefix.linear([(EXISTS, [1]), (FORALL, [2, 3])])`` is
        ``∃x1 ∀x2 x3``.
        """
        spec: Optional[Spec] = None
        for quant, variables in reversed(list(blocks)):
            if spec is None:
                spec = (quant, tuple(variables), ())
            else:
                spec = (quant, tuple(variables), (spec,))
        return cls([] if spec is None else [spec])

    @classmethod
    def tree(cls, roots: Sequence[Spec]) -> "Prefix":
        """Build a prefix from a forest of nested ``(quant, vars, children)``."""
        return cls(roots)

    @classmethod
    def exists_only(cls, variables: Sequence[int]) -> "Prefix":
        """Build the prefix of a plain SAT problem (all existential)."""
        return cls.linear([(EXISTS, tuple(variables))] if variables else [])

    # -- internals ---------------------------------------------------------

    def _stamp_tree(self) -> None:
        """One DFS computing din/dout, alternation levels and paper stamps."""

        def visit(node: Block, plain: int, alt: int, level: int, context: Optional[Quant]):
            if not node.is_root:
                plain += 1
                node.din = plain
                if context is None or node.quant is not context:
                    alt += 1
                    level += 1
                node.d = alt
                node.level = level
                node.index = len(self._blocks)
                self._blocks.append(node)
                context = node.quant
            for child in node.children:
                plain, alt = visit(child, plain, alt, level, context)
            node.dout = plain
            node.f = alt
            return plain, alt

        plain = 0
        alt = 0
        for child in self._root.children:
            # Forest roots restart the alternation context so unrelated top
            # blocks never share a discovery stamp.
            plain, alt = visit(child, plain, alt, 0, None)
        self._root.din = 0
        self._root.dout = plain
        self._root.level = 0

    # -- queries -----------------------------------------------------------

    @property
    def root(self) -> Block:
        """The virtual root block (binds no variables)."""
        return self._root

    @property
    def blocks(self) -> Tuple[Block, ...]:
        """All real blocks in DFS order."""
        return tuple(self._blocks)

    def tables(self) -> PrefixTables:
        """The flat lookup tables for this prefix, built once on first use.

        The prefix is immutable, so the cache can never go stale; hot loops
        grab the arrays they need from here at setup time and index them
        directly thereafter.
        """
        if self._tables is None:
            self._tables = PrefixTables(self)
        return self._tables

    @property
    def variables(self) -> Tuple[int, ...]:
        """Every bound variable, ascending."""
        return self._variables

    @property
    def num_vars(self) -> int:
        return len(self._variables)

    def block_of(self, var: int) -> Block:
        """Return the block binding ``var``."""
        return self._block_of[var]

    def quant(self, var_or_lit: int) -> Quant:
        """Quantifier of the variable of ``var_or_lit``."""
        return self._block_of[var_of(var_or_lit)].quant

    def is_existential(self, lit: int) -> bool:
        return self.quant(lit) is EXISTS

    def is_universal(self, lit: int) -> bool:
        return self.quant(lit) is FORALL

    def level(self, var_or_lit: int) -> int:
        """The paper's *prefix level* of the variable (1 = top)."""
        return self._block_of[var_of(var_or_lit)].level

    @property
    def prefix_level(self) -> int:
        """Prefix level of the whole QBF (0 for an empty prefix)."""
        return max((b.level for b in self._blocks), default=0)

    def d(self, var_or_lit: int) -> int:
        """Paper Section VI discovery stamp of the variable's block."""
        return self._block_of[var_of(var_or_lit)].d

    def f(self, var_or_lit: int) -> int:
        """Paper Section VI finish stamp of the variable's block."""
        return self._block_of[var_of(var_or_lit)].f

    def prec(self, a: int, b: int) -> bool:
        """The partial order test ``|a| ≺ |b|``.

        Equivalent to the paper's equation (13); implemented as "proper
        ancestor and strictly deeper alternation level", which stays correct
        on trees with same-quantifier branch-point children.
        """
        ba = self._block_of[var_of(a)]
        bb = self._block_of[var_of(b)]
        return ba.level < bb.level and ba.is_ancestor_of(bb)

    def same_block(self, a: int, b: int) -> bool:
        return self._block_of[var_of(a)] is self._block_of[var_of(b)]

    def top_variables(self) -> Tuple[int, ...]:
        """Variables of prefix level 1 (the paper's *top* variables)."""
        return tuple(sorted(v for v in self._variables if self.level(v) == 1))

    @property
    def is_prenex(self) -> bool:
        """True when the prefix is a total order (classical prenex form)."""
        node = self._root
        while node.children:
            if len(node.children) > 1:
                return False
            node = node.children[0]
        return True

    def linear_blocks(self) -> List[Tuple[Quant, Tuple[int, ...]]]:
        """The total order as a list of blocks; requires :attr:`is_prenex`."""
        if not self.is_prenex:
            raise ValueError("prefix is not prenex")
        out: List[Tuple[Quant, Tuple[int, ...]]] = []
        node = self._root
        while node.children:
            node = node.children[0]
            out.append((node.quant, node.variables))
        return out

    def to_spec(self) -> List[Spec]:
        """Nested-tuple forest describing this (normalized) prefix."""

        def conv(block: Block) -> Spec:
            return (block.quant, block.variables, tuple(conv(c) for c in block.children))

        return [conv(c) for c in self._root.children]

    def restrict(self, remove: Iterable[int]) -> "Prefix":
        """A new prefix with the given variables deleted (cofactor support).

        This implements point 2 of the paper's definition of ``ψ_l``: all
        order pairs involving a removed variable disappear; emptied blocks
        are spliced out and the tree re-normalized.
        """
        gone = {var_of(v) for v in remove}

        def conv(block: Block) -> Spec:
            kept = tuple(v for v in block.variables if v not in gone)
            return (block.quant, kept, tuple(conv(c) for c in block.children))

        return Prefix([conv(c) for c in self._root.children])

    # -- dunder ------------------------------------------------------------

    def __contains__(self, var: int) -> bool:
        return var in self._block_of

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return _shape(self._root) == _shape(other._root)

    def __hash__(self) -> int:
        return hash(_shape(self._root))

    def __repr__(self) -> str:
        def render(block: Block) -> str:
            body = "%s{%s}" % (block.quant.symbol, ",".join(map(str, block.variables)))
            if not block.children:
                return body
            return body + "(" + " ".join(render(c) for c in block.children) + ")"

        return "Prefix[" + " ".join(render(c) for c in self._root.children) + "]"


def _build(spec: Spec) -> Block:
    """Turn one nested-tuple spec into a raw (unnormalized) block tree."""
    if len(spec) == 2:
        quant, variables = spec  # type: ignore[misc]
        children: Sequence[Spec] = ()
    else:
        quant, variables, children = spec  # type: ignore[misc]
    if not isinstance(quant, Quant):
        raise TypeError("spec quantifier must be a Quant, got %r" % (quant,))
    block = Block(quant, tuple(variables))
    for child_spec in children:
        child = _build(child_spec)
        child.parent = block
        block.children.append(child)
    return block


def _normalize(root: Block) -> None:
    """Splice empty blocks; merge same-quantifier only-child chains.

    Both rewrites preserve every variable's scope. Merging a child at a
    *branch point* would lift its variables above sibling subtrees (forging
    order pairs), so only-child merges are the only ones performed.
    """

    def pass_once(node: Block) -> bool:
        changed = False
        new_children: List[Block] = []
        for child in node.children:
            if pass_once(child):
                changed = True
            if not child.variables:
                # An empty block binds nothing; splicing its children up
                # changes no variable's scope.
                for grand in child.children:
                    grand.parent = node
                    new_children.append(grand)
                changed = True
            else:
                new_children.append(child)
        node.children = new_children
        # Chain merge: absorb a same-quantifier only child. The child's
        # variables end up scoping over exactly the same subtree as before.
        while (
            not node.is_root
            and len(node.children) == 1
            and node.children[0].quant is node.quant
        ):
            child = node.children[0]
            node.variables = node.variables + child.variables
            node.children = child.children
            for grand in node.children:
                grand.parent = node
            changed = True
        return changed

    while pass_once(root):
        pass


def _shape(block: Block) -> tuple:
    """Canonical hashable form of a tree, for equality: children unordered."""
    kids = tuple(sorted(_shape(c) for c in block.children))
    quant = block.quant.value if block.quant is not None else "."
    return (quant, tuple(sorted(block.variables)), kids)
