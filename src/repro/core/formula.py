"""The QBF container: a quantifier prefix plus a CNF matrix.

Matches the paper's Section II representation of (possibly non-prenex) QBFs
as pairs ``⟨prefix, matrix⟩`` where the prefix is a partial order over the
quantified variables and the matrix is a set of clauses.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.constraints import Clause
from repro.core.literals import EXISTS, Quant, var_of
from repro.core.prefix import Prefix, Spec


class QBF:
    """A quantified boolean formula with CNF matrix.

    Args:
        prefix: the (partially ordered) quantifier prefix. Every variable
            appearing in the matrix must be bound by the prefix; per the
            paper's convention, callers with free variables should bind them
            existentially at the top first (see :meth:`close`).
        clauses: the matrix, as an iterable of literal iterables or
            :class:`~repro.core.constraints.Clause` objects. Duplicate
            clauses are kept (they are harmless and the generators avoid
            them); duplicate/opposite literals inside a clause are rejected.
    """

    def __init__(self, prefix: Prefix, clauses: Iterable[Iterable[int]]):
        self.prefix = prefix
        self.clauses: Tuple[Clause, ...] = tuple(
            c if isinstance(c, Clause) else Clause(c) for c in clauses
        )
        for clause in self.clauses:
            for lit in clause:
                if var_of(lit) not in prefix:
                    raise ValueError(
                        "literal %d of %r is not bound by the prefix" % (lit, clause)
                    )

    # -- construction helpers ---------------------------------------------

    @classmethod
    def prenex(
        cls,
        blocks: Sequence[Tuple[Quant, Sequence[int]]],
        clauses: Iterable[Iterable[int]],
    ) -> "QBF":
        """Build a prenex QBF from outermost-to-innermost quantifier blocks."""
        return cls(Prefix.linear(blocks), clauses)

    @classmethod
    def tree(cls, roots: Sequence[Spec], clauses: Iterable[Iterable[int]]) -> "QBF":
        """Build a non-prenex QBF from a nested prefix spec."""
        return cls(Prefix.tree(roots), clauses)

    @classmethod
    def close(
        cls, prefix: Prefix, clauses: Iterable[Iterable[int]]
    ) -> "QBF":
        """Bind any matrix variable missing from ``prefix`` existentially on top.

        Implements the paper's convention that unbound variables are treated
        as outermost existentials.
        """
        clause_objs = [c if isinstance(c, Clause) else Clause(c) for c in clauses]
        seen = set()
        for clause in clause_objs:
            for lit in clause:
                seen.add(var_of(lit))
        free = sorted(v for v in seen if v not in prefix)
        if free:
            spec = prefix.to_spec()
            prefix = Prefix.tree([(EXISTS, tuple(free), tuple(spec))])
        return cls(prefix, clause_objs)

    # -- basic queries ------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self.prefix.num_vars

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    @property
    def is_prenex(self) -> bool:
        return self.prefix.is_prenex

    @property
    def is_sat(self) -> bool:
        """True when every variable is existential (a plain SAT problem)."""
        return all(b.quant is EXISTS for b in self.prefix.blocks)

    def literals(self) -> Iterable[int]:
        """All literal occurrences of the matrix (with repetitions)."""
        for clause in self.clauses:
            for lit in clause:
                yield lit

    def occurrence_counts(self) -> Dict[int, int]:
        """Literal -> number of matrix occurrences (for heuristics/purity)."""
        counts: Dict[int, int] = {}
        for lit in self.literals():
            counts[lit] = counts.get(lit, 0) + 1
        return counts

    # -- semantics-preserving operations ------------------------------------

    def assign(self, lit: int) -> "QBF":
        """The cofactor ``ϕ_l`` of Section II.

        Clauses containing ``lit`` are deleted, ``-lit`` is removed from the
        others, and the variable disappears from the prefix. Used by the
        recursive reference solvers; the production engine works on a trail
        instead.
        """
        new_clauses: List[Tuple[int, ...]] = []
        nlit = -lit
        for clause in self.clauses:
            if lit in clause.lits:
                continue
            if nlit in clause.lits:
                new_clauses.append(tuple(l for l in clause.lits if l != nlit))
            else:
                new_clauses.append(clause.lits)
        return QBF(self.prefix.restrict([var_of(lit)]), new_clauses)

    def has_empty_clause(self) -> bool:
        return any(len(c) == 0 for c in self.clauses)

    def renamed(self, mapping: Dict[int, int]) -> "QBF":
        """Apply a variable renaming (must be injective on the variables)."""
        image = set(mapping.values())
        if len(image) != len(mapping):
            raise ValueError("renaming is not injective")

        def rn_var(v: int) -> int:
            return mapping.get(v, v)

        def rn_lit(lit: int) -> int:
            v = var_of(lit)
            return rn_var(v) if lit > 0 else -rn_var(v)

        def rn_spec(spec: Spec) -> Spec:
            quant, variables, children = spec
            return (
                quant,
                tuple(rn_var(v) for v in variables),
                tuple(rn_spec(c) for c in children),
            )

        prefix = Prefix.tree([rn_spec(s) for s in self.prefix.to_spec()])
        clauses = [tuple(rn_lit(l) for l in c.lits) for c in self.clauses]
        return QBF(prefix, clauses)

    # -- dunder --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QBF):
            return NotImplemented
        return self.prefix == other.prefix and sorted(
            c.lits for c in self.clauses
        ) == sorted(c.lits for c in other.clauses)

    def __hash__(self) -> int:
        return hash((self.prefix, tuple(sorted(c.lits for c in self.clauses))))

    def __repr__(self) -> str:
        return "QBF(%r, %d clauses)" % (self.prefix, len(self.clauses))

    def pretty(self) -> str:
        """Multi-line rendering for debugging and the examples."""
        lines = [repr(self.prefix)]
        for clause in self.clauses:
            lines.append("  (" + " ∨ ".join(map(str, clause.lits)) + ")")
        return "\n".join(lines)


def paper_example() -> QBF:
    """The running example, equation (1)/(3)/(4) of the paper.

    Variables: ``x0=1, y1=2, x1=3, x2=4, y2=5, x3=6, x4=7``. The prefix is
    the tree ``x0 ≺ y1 ≺ x1,x2`` and ``x0 ≺ y2 ≺ x3,x4``; the matrix is the
    eight clauses of equation (4).
    """
    from repro.core.literals import FORALL

    x0, y1, x1, x2, y2, x3, x4 = 1, 2, 3, 4, 5, 6, 7
    prefix = Prefix.tree(
        [
            (
                EXISTS,
                (x0,),
                (
                    (FORALL, (y1,), ((EXISTS, (x1, x2), ()),)),
                    (FORALL, (y2,), ((EXISTS, (x3, x4), ()),)),
                ),
            )
        ]
    )
    clauses = [
        (x0, x1, x2),
        (y1, -x1, x2),
        (x1, -x2),
        (x0, -x1, -x2),
        (-x0, x3, x4),
        (y2, -x3, x4),
        (x3, -x4),
        (-x0, -x3, -x4),
    ]
    return QBF(prefix, clauses)
