"""Nogood and good learning (Sections III, V and [23]).

Conflict analysis derives a new clause (*nogood*) by Q-resolution: starting
from the falsified clause, the most recently propagated existential literal
is resolved with its reason clause, applying universal reduction (Lemma 3)
after every step, until the clause is *asserting* — unit, under the
generalized Section IV unit rule, at some earlier decision level.

Solution analysis is the exact dual: starting from a satisfied cube (either a
learned good that became true, or a fresh *model cube* covering every matrix
clause), cube-propagated universal literals are resolved with their reason
cubes, applying existential reduction, until the cube is unit at an earlier
level, which flips a universal decision.

Two non-standard situations are handled conservatively:

* a resolution step that would produce a tautological resolvent is skipped —
  the offending literal is kept in the derived constraint as if it were a
  decision (soundness is preserved because the working constraint is always
  a genuine Q-resolvent of database constraints);
* when no asserting constraint can be derived, analysis reports *fallback*
  and the engine reverts to chronological backtracking for that conflict or
  solution (plain Figure-1 Q-DLL behaviour).

The asymmetry tested by the paper lives in the two ``reduce`` calls: with a
tree prefix, fewer literal pairs satisfy ``|l| ≺ |l'|``, so reductions delete
more literals and learned constraints are stronger (the Section VII-C worked
example: good ``{y1_0}`` under the tree vs ``{x1_0, x2_0, x1_1, x2_1, y1_0}``
under the total order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.core.constraints import (
    Clause,
    Constraint,
    Cube,
    existential_reduce,
    resolve,
    universal_reduce,
)
from repro.core.literals import var_of


@dataclass
class Terminal:
    """The analysis proves the whole QBF: FALSE (clauses) or TRUE (cubes)."""


@dataclass
class Backjump:
    """Learn ``lits`` and backtrack, making the constraint assert ``assert_lit``.

    For a clause, ``assert_lit`` is the existential literal that becomes unit
    (to be assigned true); for a cube, it is the universal literal whose
    *negation* must be assigned. The constraint is unit at every level in
    ``[level, shallow_level]``: ``level`` is the classical asserting level
    (deepest jump), ``shallow_level`` the least destructive one; the engine
    picks according to its configuration.
    """

    lits: Tuple[int, ...]
    level: int
    assert_lit: int
    shallow_level: int = -1

    def __post_init__(self) -> None:
        if self.shallow_level < self.level:
            self.shallow_level = self.level


@dataclass
class Fallback:
    """No asserting constraint derivable; use chronological backtracking."""


AnalysisOutcome = Union[Terminal, Backjump, Fallback]


class TrailView:
    """The slice of engine state the analyses need (duck-typed by the solver).

    Attributes (all callables):
        value: literal -> True/False/None under the current assignment.
        level_of: variable -> decision level (meaningful only if assigned).
        pos_of: variable -> trail position (meaningful only if assigned).
        reason_of: variable -> Constraint | None ("None" covers decisions and
            pure literals — anything that cannot be resolved away).

    The engine additionally supplies the flat kernels backing those
    callables — the trail's literal-indexed value array (``lit_val`` +
    ``base``) and its level/position arrays — which the hot analyses index
    directly. They are optional: views built over plain callables (unit
    tests, tools) leave them None and the analyses fall back to calling.
    """

    def __init__(
        self,
        value,
        level_of,
        pos_of,
        reason_of,
        prefix,
        lit_val=None,
        base=0,
        level_arr=None,
        pos_arr=None,
        reduce_clause=None,
        reduce_cube=None,
    ):
        self.value = value
        self.level_of = level_of
        self.pos_of = pos_of
        self.reason_of = reason_of
        self.prefix = prefix
        self.lit_val = lit_val
        self.base = base
        self.level_arr = level_arr
        self.pos_arr = pos_arr
        #: optional compiled reductions (exact ports of universal_reduce /
        #: existential_reduce over this prefix) supplied by the engine when
        #: its backend carries them; None falls back to the Python reference.
        self.reduce_clause = reduce_clause
        self.reduce_cube = reduce_cube


def _clause_backjump(work: Sequence[int], view: TrailView) -> Optional[AnalysisOutcome]:
    """Asserting-level computation for a (reduced) working clause.

    Returns Terminal when the clause proves FALSE outright, a Backjump when
    some earlier level makes it unit, or None when further resolution is
    needed.

    Quantifier tests and the ``≺`` comparisons run on the prefix's flat
    lookup tables; level/position/value reads go through the view's arrays
    when the engine supplied them, else through its callables.
    """
    tab = view.prefix.tables()
    is_exist = tab.is_exist
    existentials = []
    universals = []
    for l in work:
        if is_exist[l if l > 0 else -l]:
            existentials.append(l)
        else:
            universals.append(l)
    if not existentials:
        return Terminal()
    level_arr = view.level_arr
    if level_arr is not None:
        level_of = level_arr.__getitem__
        pos_of = view.pos_arr.__getitem__
    else:
        level_of = view.level_of
        pos_of = view.pos_of
    value = view.value
    # All existential literals of a working clause are false on the trail,
    # so their (level, pos) keys are distinct and the plain > scan matches
    # max()'s first-of-ties semantics.
    estar = existentials[0]
    ev = estar if estar > 0 else -estar
    estar_level = level_of(ev)
    estar_pos = pos_of(ev)
    for l in existentials:
        v = l if l > 0 else -l
        lv = level_of(v)
        if lv > estar_level or (lv == estar_level and pos_of(v) > estar_pos):
            estar = l
            estar_level = lv
            estar_pos = pos_of(v)
    if estar_level == 0:
        blocked = any(
            value(u) is True and level_of(u if u > 0 else -u) == 0 for u in universals
        )
        return None if blocked else Terminal()
    b_lo = 0
    b_hi = estar_level - 1
    for e in existentials:
        if e is not estar:
            lv = level_of(e if e > 0 else -e)
            if lv > b_lo:
                b_lo = lv
    level = tab.level
    din = tab.din
    dout = tab.dout
    ev = estar if estar > 0 else -estar
    e_level = level[ev]
    e_din = din[ev]
    for u in universals:
        uv = u if u > 0 else -u
        val = value(u)
        blocking = level[uv] < e_level and din[uv] <= e_din <= dout[uv]
        if val is None:
            if blocking:
                return None
        elif val is False:
            if blocking:
                lv = level_of(uv)
                if lv > b_lo:
                    b_lo = lv
        else:  # val is True: must be unassigned at the target level
            if blocking:
                return None
            b_hi = min(b_hi, level_of(uv) - 1)
    if b_lo <= b_hi:
        return Backjump(tuple(work), b_lo, estar, b_hi)
    return None


def _cube_backjump(work: Sequence[int], view: TrailView) -> Optional[AnalysisOutcome]:
    """Dual of :func:`_clause_backjump` for a (reduced) working cube."""
    tab = view.prefix.tables()
    is_exist = tab.is_exist
    universals = []
    existentials = []
    for l in work:
        if is_exist[l if l > 0 else -l]:
            existentials.append(l)
        else:
            universals.append(l)
    if not universals:
        return Terminal()
    level_arr = view.level_arr
    if level_arr is not None:
        level_of = level_arr.__getitem__
        pos_of = view.pos_arr.__getitem__
    else:
        level_of = view.level_of
        pos_of = view.pos_of
    value = view.value
    # All universal literals of a working cube are true on the trail.
    ustar = universals[0]
    uv = ustar if ustar > 0 else -ustar
    ustar_level = level_of(uv)
    ustar_pos = pos_of(uv)
    for l in universals:
        v = l if l > 0 else -l
        lv = level_of(v)
        if lv > ustar_level or (lv == ustar_level and pos_of(v) > ustar_pos):
            ustar = l
            ustar_level = lv
            ustar_pos = pos_of(v)
    if ustar_level == 0:
        blocked = any(
            value(e) is False and level_of(e if e > 0 else -e) == 0 for e in existentials
        )
        return None if blocked else Terminal()
    b_lo = 0
    b_hi = ustar_level - 1
    for u in universals:
        if u is not ustar:
            lv = level_of(u if u > 0 else -u)
            if lv > b_lo:
                b_lo = lv
    level = tab.level
    din = tab.din
    dout = tab.dout
    uv = ustar if ustar > 0 else -ustar
    u_level = level[uv]
    u_din = din[uv]
    for e in existentials:
        sv = e if e > 0 else -e
        val = value(e)
        blocking = level[sv] < u_level and din[sv] <= u_din <= dout[sv]
        if val is None:
            if blocking:
                return None
        elif val is True:
            if blocking:
                lv = level_of(sv)
                if lv > b_lo:
                    b_lo = lv
        else:  # val is False: the cube would be dead unless e is unassigned
            if blocking:
                return None
            b_hi = min(b_hi, level_of(sv) - 1)
    if b_lo <= b_hi:
        return Backjump(tuple(work), b_lo, ustar, b_hi)
    return None


def analyze_conflict(
    conflict: Sequence[int], view: TrailView, trace=None
) -> AnalysisOutcome:
    """Derive a learned clause from a falsified clause (nogood learning).

    ``trace``, when given, is a :class:`repro.certify.proof.DerivationTrace`
    mirroring every resolution/reduction step into a certificate. Tracing is
    passive — it never changes which constraint is derived.
    """
    prefix = view.prefix
    is_exist = prefix.tables().is_exist
    value = view.value
    reason_of = view.reason_of
    pos_of = view.pos_arr.__getitem__ if view.pos_arr is not None else view.pos_of
    reduce_c = getattr(view, "reduce_clause", None)
    if reduce_c is None:
        def reduce_c(ls):
            return universal_reduce(ls, prefix)
    work: Tuple[int, ...] = reduce_c(tuple(conflict))
    if trace is not None:
        trace.reduced(work)
    banned: Set[int] = set()
    while True:
        outcome = _clause_backjump(work, view)
        if outcome is not None:
            if trace is not None and isinstance(outcome, Terminal):
                _finish_clause_refutation(work, view, trace)
            return outcome
        # The deepest (max trail position) resolvable existential; positions
        # are unique, so the scan matches max() over the filtered list.
        pivot = 0
        pivot_pos = -1
        for l in work:
            v = l if l > 0 else -l
            if (
                is_exist[v]
                and l not in banned
                and value(l) is False
                and isinstance(reason_of(v), Clause)
            ):
                p = pos_of(v)
                if p > pivot_pos:
                    pivot = l
                    pivot_pos = p
        if pivot_pos < 0:
            return Fallback()
        pivot_var = pivot if pivot > 0 else -pivot
        reason = reason_of(pivot_var)
        resolvent = resolve(work, reason.lits, pivot_var)
        if resolvent is None:
            banned.add(pivot)
            continue
        work = reduce_c(resolvent)
        if trace is not None:
            trace.resolved(reason.lits, pivot_var, work)


def analyze_solution(
    model_cube: Sequence[int], view: TrailView, trace=None
) -> AnalysisOutcome:
    """Derive a learned cube from a satisfied cube (good learning).

    ``trace`` mirrors the derivation into a certificate, as in
    :func:`analyze_conflict`.
    """
    prefix = view.prefix
    is_exist = prefix.tables().is_exist
    value = view.value
    reason_of = view.reason_of
    pos_of = view.pos_arr.__getitem__ if view.pos_arr is not None else view.pos_of
    reduce_t = getattr(view, "reduce_cube", None)
    if reduce_t is None:
        def reduce_t(ls):
            return existential_reduce(ls, prefix)
    work: Tuple[int, ...] = reduce_t(tuple(model_cube))
    if trace is not None:
        trace.reduced(work)
    banned: Set[int] = set()
    while True:
        outcome = _cube_backjump(work, view)
        if outcome is not None:
            if trace is not None and isinstance(outcome, Terminal):
                _finish_cube_confirmation(work, view, trace)
            return outcome
        # The deepest resolvable universal, as in analyze_conflict.
        pivot = 0
        pivot_pos = -1
        for l in work:
            v = l if l > 0 else -l
            if (
                not is_exist[v]
                and l not in banned
                and value(l) is True
                and isinstance(reason_of(v), Cube)
            ):
                p = pos_of(v)
                if p > pivot_pos:
                    pivot = l
                    pivot_pos = p
        if pivot_pos < 0:
            return Fallback()
        pivot_var = pivot if pivot > 0 else -pivot
        reason = reason_of(pivot_var)
        resolvent = resolve(work, reason.lits, pivot_var)
        if resolvent is None:
            banned.add(pivot)
            continue
        work = reduce_t(resolvent)
        if trace is not None:
            trace.resolved(reason.lits, pivot_var, work)


def _finish_clause_refutation(work: Tuple[int, ...], view: TrailView, trace) -> None:
    """Resolve a Terminal working clause down to the empty clause.

    A Terminal clause either is empty already, or has every existential
    literal falsified at decision level 0 (and no true universal there, or
    the backjump computation would have blocked). Resolving those literals
    with their level-0 unit reasons in reverse trail order terminates and
    cannot produce a tautology: every literal involved is false on the
    trail, and no two false literals clash. The only unresolvable case is a
    literal assigned by the pure-literal rule (reason is not a clause),
    which marks the certificate incomplete.
    """
    while work and trace.ok:
        candidates = [
            l
            for l in work
            if view.prefix.is_existential(l)
            and isinstance(view.reason_of(var_of(l)), Clause)
        ]
        if not candidates:
            trace.fail("terminal clause blocked on a reason-less literal")
            return
        pivot = max(candidates, key=lambda l: view.pos_of(var_of(l)))
        reason = view.reason_of(var_of(pivot))
        resolvent = resolve(work, reason.lits, var_of(pivot))
        if resolvent is None:  # pragma: no cover - impossible on a real trail
            trace.fail("tautological resolvent in terminal derivation")
            return
        work = universal_reduce(resolvent, view.prefix)
        trace.resolved(reason.lits, var_of(pivot), work)


def _finish_cube_confirmation(work: Tuple[int, ...], view: TrailView, trace) -> None:
    """Dual of :func:`_finish_clause_refutation`: derive the empty cube."""
    while work and trace.ok:
        candidates = [
            l
            for l in work
            if view.prefix.is_universal(l)
            and isinstance(view.reason_of(var_of(l)), Cube)
        ]
        if not candidates:
            trace.fail("terminal cube blocked on a reason-less literal")
            return
        pivot = max(candidates, key=lambda l: view.pos_of(var_of(l)))
        reason = view.reason_of(var_of(pivot))
        resolvent = resolve(work, reason.lits, var_of(pivot))
        if resolvent is None:  # pragma: no cover - impossible on a real trail
            trace.fail("tautological resolvent in terminal derivation")
            return
        work = existential_reduce(resolvent, view.prefix)
        trace.resolved(reason.lits, var_of(pivot), work)


def build_model_cube(
    clauses: Sequence[Constraint],
    view: TrailView,
    trail: Sequence[int],
) -> Tuple[int, ...]:
    """Construct the initial good of Section III point 1.

    Picks, for every matrix clause, one satisfying literal of the current
    assignment (preferring literals already chosen, then the earliest
    assigned), producing a set ``S`` with ``C ∩ S ≠ ∅`` for every clause
    ``C``. The caller passes the result to :func:`analyze_solution`, which
    existentially reduces it.

    This runs once per solution over the whole matrix, making it one of the
    hottest call sites on true-heavy instances; when the view carries the
    trail's flat arrays, each literal costs one ``lit_val`` probe and the
    per-clause min folds positions inline (positions are unique, so the
    fold matches ``min()``'s first-of-ties semantics).
    """
    chosen: Set[int] = set()
    lit_val = view.lit_val
    if lit_val is not None:
        base = view.base
        pos = view.pos_arr
        for clause in clauses:
            best = 0
            best_pos = -1
            already = False
            for l in clause.lits:
                if lit_val[base + l] == 1:
                    if l in chosen:
                        already = True
                        break
                    p = pos[l if l > 0 else -l]
                    if best_pos < 0 or p < best_pos:
                        best = l
                        best_pos = p
            if already:
                continue
            if best_pos < 0:
                raise ValueError("matrix clause not satisfied: %r" % (clause,))
            chosen.add(best)
    else:
        for clause in clauses:
            sats = [l for l in clause.lits if view.value(l) is True]
            if not sats:
                raise ValueError("matrix clause not satisfied: %r" % (clause,))
            if any(l in chosen for l in sats):
                continue
            chosen.add(min(sats, key=lambda l: view.pos_of(var_of(l))))
    return tuple(sorted(chosen, key=lambda l: (var_of(l), l)))
