"""Clauses (nogoods) and cubes (goods), with the paper's reduction rules.

A *clause* is a disjunction of literals; the matrix of every QBF handled by
the library is a set of clauses (Section II). A *cube* (called a *good* in
the paper, Section III) is a conjunction of literals; learned cubes are kept
"as if in disjunction with the matrix".

Both kinds share representation (a canonical tuple of integer literals) and
a pair of dual rewriting rules:

* **Universal reduction** (Lemma 3): a universal literal ``l`` may be deleted
  from a clause if no existential literal ``l'`` of the clause satisfies
  ``|l| ≺ |l'|``. A clause whose reduction is empty is *contradictory*
  (Lemma 4) and makes the whole QBF false.
* **Existential reduction** (the dual, from clause/term resolution [23]): an
  existential literal ``l`` may be deleted from a cube if no universal
  literal ``l'`` of the cube satisfies ``|l| ≺ |l'|``. A cube whose reduction
  is empty makes the QBF true.

The reductions are what the quantifier *tree* strengthens: with a partial
order fewer pairs satisfy ``|l| ≺ |l'|``, so more literals are deleted and
learned constraints prune more (the Section V and VII-C arguments).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.core.literals import check_no_duplicate_vars, var_of
from repro.core.prefix import Prefix


class Constraint:
    """A clause or cube: canonical literal tuple plus solver bookkeeping."""

    __slots__ = ("lits", "learned", "activity")

    #: Subclasses override: True for cubes (conjunctions), False for clauses.
    is_cube = False

    def __init__(self, lits: Iterable[int], learned: bool = False):
        self.lits: Tuple[int, ...] = check_no_duplicate_vars(lits)
        self.learned = learned
        self.activity = 0.0

    def __len__(self) -> int:
        return len(self.lits)

    def __iter__(self):
        return iter(self.lits)

    def __contains__(self, lit: int) -> bool:
        return lit in self.lits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return self.is_cube == other.is_cube and self.lits == other.lits

    def __hash__(self) -> int:
        return hash((self.is_cube, self.lits))

    def __repr__(self) -> str:
        shape = "cube" if self.is_cube else "clause"
        return "%s(%s)" % (shape, " ".join(map(str, self.lits)))


def sanitize_lits(lits: Iterable[int]) -> Optional[Tuple[int, ...]]:
    """Drop duplicate literals; return None for a same-clause tautology.

    The permissive counterpart of :func:`~repro.core.literals.
    check_no_duplicate_vars`: instead of rejecting raw input that mentions a
    variable twice, it deduplicates repeated literals and reports a clause
    that contains ``v`` and ``-v`` as ``None`` (such a clause is valid in
    every assignment, so a reader or an engine installing a matrix can
    simply skip it; dually, such a *cube* is unsatisfiable and can be
    skipped by anything that stores cubes disjunctively). Order of first
    occurrence is preserved; canonicalization stays the constructor's job.
    """
    out = []
    seen = set()
    for lit in lits:
        if lit in seen:
            continue
        if -lit in seen:
            return None
        seen.add(lit)
        out.append(lit)
    return tuple(out)


class Clause(Constraint):
    """A disjunction of literals (a *nogood* when learned)."""

    is_cube = False


class Cube(Constraint):
    """A conjunction of literals (a *good* when learned)."""

    is_cube = True


def universal_reduce(lits: Sequence[int], prefix: Prefix) -> Tuple[int, ...]:
    """Apply Lemma 3 to clause literals: drop non-blocking universals.

    A universal literal survives only if some existential literal of the
    clause lies in its scope (``|l| ≺ |l'|``).

    Runs on the prefix's flat tables — the analyses call this after every
    resolution step, so the ``≺`` test is inlined over the level/DFS-interval
    arrays instead of going through ``prec``'s block lookups.
    """
    tab = prefix.tables()
    is_exist = tab.is_exist
    evars = []
    has_universal = False
    for lit in lits:
        v = lit if lit > 0 else -lit
        if is_exist[v]:
            evars.append(v)
        else:
            has_universal = True
    if not has_universal:
        return tuple(lits)
    level = tab.level
    din = tab.din
    dout = tab.dout
    kept = []
    for lit in lits:
        v = lit if lit > 0 else -lit
        if is_exist[v]:
            kept.append(lit)
        else:
            v_level = level[v]
            v_din = din[v]
            v_dout = dout[v]
            for e in evars:
                if v_level < level[e] and v_din <= din[e] <= v_dout:
                    kept.append(lit)
                    break
    return tuple(kept)


def existential_reduce(lits: Sequence[int], prefix: Prefix) -> Tuple[int, ...]:
    """Apply the dual of Lemma 3 to cube literals: drop trailing existentials.

    An existential literal survives only if some universal literal of the
    cube lies in its scope. Exact dual of :func:`universal_reduce`, on the
    same flat tables.
    """
    tab = prefix.tables()
    is_exist = tab.is_exist
    uvars = []
    has_existential = False
    for lit in lits:
        v = lit if lit > 0 else -lit
        if is_exist[v]:
            has_existential = True
        else:
            uvars.append(v)
    if not has_existential:
        return tuple(lits)
    level = tab.level
    din = tab.din
    dout = tab.dout
    kept = []
    for lit in lits:
        v = lit if lit > 0 else -lit
        if not is_exist[v]:
            kept.append(lit)
        else:
            v_level = level[v]
            v_din = din[v]
            v_dout = dout[v]
            for u in uvars:
                if v_level < level[u] and v_din <= din[u] <= v_dout:
                    kept.append(lit)
                    break
    return tuple(kept)


def reduce_constraint(lits: Sequence[int], prefix: Prefix, is_cube: bool) -> Tuple[int, ...]:
    """Dispatch to the reduction matching the constraint kind."""
    if is_cube:
        return existential_reduce(lits, prefix)
    return universal_reduce(lits, prefix)


def is_contradictory(clause: Sequence[int], prefix: Prefix) -> bool:
    """Lemma 4 test: a clause with no existential literal is contradictory."""
    return all(prefix.is_universal(l) for l in clause)


def is_trivially_true(cube: Sequence[int], prefix: Prefix) -> bool:
    """Dual of Lemma 4: a cube with no universal literal makes the QBF true."""
    return all(prefix.is_existential(l) for l in cube)


def unit_literal(clause: Sequence[int], prefix: Prefix) -> Optional[int]:
    """Return the unit literal of a clause per the Section IV definition.

    A literal ``l`` is unit when it is existential and every other literal of
    the clause is universal with ``|l_i| ⊀ |l|`` (``l`` is not in the scope of
    any of them). Returns the literal, or None if the clause is not unit.
    This is the *static* notion used by the recursive Q-DLL of Figure 1; the
    iterative engine uses the assignment-aware variant in
    :mod:`repro.core.solver`.
    """
    existentials = [l for l in clause if prefix.is_existential(l)]
    if len(existentials) != 1:
        return None
    lit = existentials[0]
    for other in clause:
        if other == lit:
            continue
        if prefix.prec(other, lit):
            return None
    return lit


def resolve(a: Sequence[int], b: Sequence[int], pivot_var: int) -> Optional[Tuple[int, ...]]:
    """Resolve two like-kind constraints on ``pivot_var``.

    For clauses this is Q-resolution's propositional step (the caller applies
    universal reduction afterwards); for cubes it is term resolution. Returns
    the resolvent literals, or None when the resolvent is *tautological*
    (some non-pivot variable occurs with both signs) — the caller decides how
    to proceed, see :mod:`repro.core.learning`.
    """
    merged = {}
    for lit in a:
        if var_of(lit) != pivot_var:
            merged[var_of(lit)] = lit
    for lit in b:
        v = var_of(lit)
        if v == pivot_var:
            continue
        if v in merged and merged[v] != lit:
            return None
        merged[v] = lit
    return tuple(sorted(merged.values(), key=lambda l: (var_of(l), l)))
