"""Semantic QBF evaluation by quantifier expansion — the test oracle.

This evaluator implements the Section II semantics *literally*: pick any top
variable ``z`` of the current QBF and recurse on the cofactors ``ϕ_z`` and
``ϕ_z̄``, combining with "or" for existentials and "and" for universals. The
only shortcuts are the two base cases of the semantics (empty matrix / empty
clause) plus memoization on the syntactic representation.

It is exponential and meant exclusively as an oracle for testing the search
engines; it shares *no* code with them beyond the formula representation, so
agreement between the two is meaningful evidence of correctness.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.core.formula import QBF
from repro.core.literals import EXISTS


def evaluate(formula: QBF, max_vars: Optional[int] = 40) -> bool:
    """Return the truth value of ``formula`` by full expansion.

    Args:
        formula: the QBF to evaluate.
        max_vars: guard against accidental use on large inputs; pass None to
            disable.

    Raises:
        ValueError: if the formula has more than ``max_vars`` variables.
    """
    if max_vars is not None and formula.num_vars > max_vars:
        raise ValueError(
            "expansion oracle limited to %d variables (got %d)"
            % (max_vars, formula.num_vars)
        )
    cache: Dict[Tuple[object, FrozenSet[Tuple[int, ...]]], bool] = {}
    return _eval(formula, cache)


def _eval(formula: QBF, cache: dict) -> bool:
    matrix = frozenset(c.lits for c in formula.clauses)
    if not matrix:
        return True
    if () in matrix:
        return False
    key = (formula.prefix, matrix)
    if key in cache:
        return cache[key]
    tops = formula.prefix.top_variables()
    if not tops:
        # Matrix clauses only mention prefix variables, so "no top variable"
        # implies an empty prefix and hence an empty or trivially false
        # matrix — both handled above.
        raise AssertionError("non-trivial matrix with an empty prefix")
    var = tops[0]
    pos = _eval(formula.assign(var), cache)
    if formula.prefix.quant(var) is EXISTS:
        result = pos or _eval(formula.assign(-var), cache)
    else:
        result = pos and _eval(formula.assign(-var), cache)
    cache[key] = result
    return result


def count_models_of_tops(formula: QBF) -> int:
    """Count assignments to *top existential* variables keeping ϕ true.

    Convenience used by tests that need a finer-grained signal than a single
    boolean (e.g. to compare encodings of the same model-checking problem).
    Universally quantified tops make the count 0/1 semantics-style: the
    function counts over top existential variables only, evaluating the rest
    of the formula with the oracle.
    """
    tops = [v for v in formula.prefix.top_variables() if formula.prefix.quant(v) is EXISTS]
    if not tops:
        return 1 if evaluate(formula, max_vars=None) else 0
    total = 0
    var = tops[0]
    for lit in (var, -var):
        total += count_models_of_tops(formula.assign(lit))
    return total
