"""Iterative expansion-based solving — the oracle's semantics, budgeted.

The semantics oracle (:mod:`repro.core.expansion`) evaluates a QBF by
recursive quantifier expansion: cofactor on a top variable, "or"-combine for
existentials, "and"-combine for universals. It is deliberately minimal — a
Python-recursion-bound test oracle with a hard variable cap.

This module is the *engine-grade* counterpart: the same expansion semantics
run non-recursively over an explicit frame stack (a worklist of pending
cofactors), so deep prefixes cannot blow the interpreter stack, plus the two
cheap inferences the paper justifies for arbitrary prefixes:

* **Lemma 4** — a clause whose existential part is empty and whose
  universal part cannot help (a *contradictory* clause) falsifies the
  formula immediately;
* **Lemma 5** — a *unit* existential literal (all universal companions
  ``|l_i| ⊀ |l|``) may be assigned without branching; counted as a
  propagation, exactly like the search engines count theirs.

Expansion-variable choice respects the non-prenex partial order ``≺`` for
free: candidates come from ``prefix.top_variables()``, the ≺-minimal
variables, so no variable is ever expanded before one it depends on.
Among the tops the engine prefers the variable with the most matrix
occurrences (expanding it shrinks both cofactors fastest), tie-broken by
variable id for determinism.

Capabilities are honest: no proof logging (expansion derives no resolution
steps to log) and no checkpoint/resume in v1 (the frame stack holds whole
cofactor formulas; snapshotting it is future work — see DESIGN.md §13).
Budgets and cooperative interruption work exactly as in search: branches
count as decisions against ``max_decisions``, ``max_seconds`` and the
interrupt flag are polled at every branch, and exhaustion reports
``Outcome.UNKNOWN``.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Optional, Tuple

from repro.core.constraints import is_contradictory, unit_literal
from repro.core.engine.config import SolverConfig
from repro.core.formula import QBF
from repro.core.literals import EXISTS
from repro.core.paradigm import Capabilities, Solver, poll_interrupt, register_paradigm
from repro.core.result import Outcome, SolveResult, SolverStats

__all__ = ["ExpansionSolver", "expand_solve"]

#: memo key: syntactic identity, same as the oracle's.
_Key = Tuple[object, FrozenSet[Tuple[int, ...]]]


class _Frame:
    """One pending expansion: a subformula whose value is being computed.

    ``phase`` walks 0 → 1 → 2: not yet examined, waiting on the positive
    cofactor, waiting on the negative cofactor.
    """

    __slots__ = ("formula", "key", "var", "exists", "phase", "left")

    def __init__(self, formula: QBF):
        self.formula = formula
        self.key: Optional[_Key] = None
        self.var = 0
        self.exists = False
        self.phase = 0
        self.left = False


class _Stop(Exception):
    """Internal: budget exhausted or interrupt flag set mid-expansion."""

    def __init__(self, interrupted: bool):
        super().__init__("expansion stopped")
        self.interrupted = interrupted


def _pick_variable(formula: QBF) -> int:
    """Most-occurring top variable, id-tie-broken — ≺-respecting by source.

    ``top_variables()`` returns exactly the ≺-minimal variables of the
    (possibly partially ordered) prefix, so whichever we pick, nothing it
    depends on is still quantified inside — the non-prenex soundness
    condition for expansion.
    """
    tops = formula.prefix.top_variables()
    if len(tops) == 1:
        return tops[0]
    occurrences: Dict[int, int] = {v: 0 for v in tops}
    for clause in formula.clauses:
        for lit in clause.lits:
            var = abs(lit)
            if var in occurrences:
                occurrences[var] += 1
    return min(tops, key=lambda v: (-occurrences[v], v))


class ExpansionSolver(Solver):
    """Non-recursive expansion engine behind the :class:`Solver` seam."""

    name = "expansion"
    capabilities = Capabilities(proof=False, checkpoint=False, exchange=False, interrupt=True)

    def load(self, formula: QBF) -> None:
        self.formula = formula

    def _solve_loaded(
        self,
        proof: Optional[object],
        interrupt: Optional[object],
        resume_from: Optional[object],
        checkpoint_to: Optional[str],
        exchange: Optional[object],
    ) -> SolveResult:
        config = self.config
        stats = SolverStats()
        deadline = None
        if config.max_seconds is not None:
            deadline = time.monotonic() + config.max_seconds
        start = time.perf_counter()
        try:
            value = self._expand(self.formula, config, stats, interrupt, deadline)
            outcome = Outcome.TRUE if value else Outcome.FALSE
            interrupted = False
        except _Stop as stop:
            outcome = Outcome.UNKNOWN
            interrupted = stop.interrupted
        return SolveResult(
            outcome=outcome,
            stats=stats,
            seconds=time.perf_counter() - start,
            interrupted=interrupted,
        )

    # -- the worklist ----------------------------------------------------------

    @staticmethod
    def _simplify(formula: QBF, stats: SolverStats) -> Tuple[QBF, Optional[bool]]:
        """Exhaust Lemma 4/5: return the reduced formula or a decided value."""
        while True:
            clauses = formula.clauses
            if not clauses:
                return formula, True
            prefix = formula.prefix
            lit = None
            for clause in clauses:
                lits = clause.lits
                if not lits or is_contradictory(lits, prefix):
                    return formula, False
                if lit is None:
                    lit = unit_literal(lits, prefix)
            if lit is None:
                return formula, None
            stats.propagations += 1
            formula = formula.assign(lit)

    def _expand(
        self,
        root: QBF,
        config: SolverConfig,
        stats: SolverStats,
        interrupt: Optional[object],
        deadline: Optional[float],
    ) -> bool:
        cache: Dict[_Key, bool] = {}
        frames = [_Frame(root)]
        ret = False
        while frames:
            frame = frames[-1]
            if frame.phase == 0:
                formula, decided = self._simplify(frame.formula, stats)
                if decided is not None:
                    ret = decided
                    frames.pop()
                    continue
                frame.formula = formula
                frame.key = (formula.prefix, frozenset(c.lits for c in formula.clauses))
                hit = cache.get(frame.key)
                if hit is not None:
                    ret = hit
                    frames.pop()
                    continue
                if poll_interrupt(interrupt):
                    raise _Stop(interrupted=True)
                if deadline is not None and time.monotonic() > deadline:
                    raise _Stop(interrupted=False)
                if config.max_decisions is not None and stats.decisions >= config.max_decisions:
                    raise _Stop(interrupted=False)
                frame.var = _pick_variable(formula)
                frame.exists = formula.prefix.quant(frame.var) is EXISTS
                frame.phase = 1
                stats.decisions += 1
                if len(frames) > stats.max_trail:
                    stats.max_trail = len(frames)
                frames.append(_Frame(formula.assign(frame.var)))
            elif frame.phase == 1:
                # positive cofactor just returned `ret`; short-circuit like
                # the oracle's `or`/`and` — an existential needs one true
                # branch, a universal one false branch.
                if ret if frame.exists else not ret:
                    cache[frame.key] = ret
                    frames.pop()
                    continue
                frame.left = ret
                frame.phase = 2
                stats.decisions += 1
                frames.append(_Frame(frame.formula.assign(-frame.var)))
            else:
                value = (frame.left or ret) if frame.exists else (frame.left and ret)
                cache[frame.key] = value
                ret = value
                frames.pop()
        return ret


register_paradigm(ExpansionSolver)


def expand_solve(formula: QBF, config: Optional[SolverConfig] = None) -> SolveResult:
    """Convenience: one-shot expansion solve (no hooks)."""
    solver = ExpansionSolver(config)
    solver.load(formula)
    return solver.solve()
