"""The layered QDPLL engine.

Three layers, each behind an explicit seam:

* :mod:`~repro.core.engine.trail` — the assignment/trail layer, the only
  mutable search state;
* :mod:`~repro.core.engine.backend` + the two implementations
  (:mod:`~repro.core.engine.counters`, :mod:`~repro.core.engine.watched`) —
  the propagation backends, decision-for-decision interchangeable;
* :mod:`~repro.core.engine.search` — decide/backjump/learn over the
  backend interface.

:class:`repro.core.solver.QdpllSolver` is the façade that assembles them.
"""

from repro.core.engine.backend import (
    CONFLICT,
    MODEL,
    PURE,
    SOLUTION,
    PropagationBackend,
    Rec,
)
from repro.core.engine.config import ENGINES, SolverConfig, default_engine
from repro.core.engine.counters import CounterBackend
from repro.core.engine.search import BACKENDS, SearchEngine
from repro.core.engine.trail import Trail
from repro.core.engine.watched import WatchedBackend

__all__ = [
    "BACKENDS",
    "CONFLICT",
    "CounterBackend",
    "ENGINES",
    "MODEL",
    "PURE",
    "PropagationBackend",
    "Rec",
    "SOLUTION",
    "SearchEngine",
    "SolverConfig",
    "Trail",
    "WatchedBackend",
    "default_engine",
]
