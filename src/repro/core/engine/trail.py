"""The assignment/trail layer: the only mutable search state.

One :class:`Trail` holds everything the search mutates as it dives and
backtracks — variable values, decision levels, trail positions, implication
reasons, the literal stack itself, per-level bookkeeping and the propagation
queue head. Propagation backends and the search layer share one instance;
neither owns any other mutable search state (the backends' occurrence
counters and watch memos are derived caches of this trail).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.literals import var_of


class Trail:
    """Assignment stack with levels, positions and reasons.

    Attributes are deliberately public: the propagation backends read and
    write them directly in their hot loops. ``decision[lvl]`` is the
    ``(literal, flipped)`` pair that opened level ``lvl``;
    ``level_start[lvl]`` its first trail position. Level 0 is the root
    (slot literal 0, never a real decision).
    """

    __slots__ = (
        "num_slots",
        "value",
        "level",
        "pos",
        "reason",
        "lits",
        "queue_head",
        "level_start",
        "decision",
    )

    def __init__(self, num_vars: int):
        self.num_slots = num_vars + 1
        self.value: List[int] = [0] * self.num_slots
        self.level: List[int] = [0] * self.num_slots
        self.pos: List[int] = [-1] * self.num_slots
        self.reason: List[object] = [None] * self.num_slots
        self.lits: List[int] = []
        self.queue_head = 0
        self.level_start: List[int] = [0]
        self.decision: List[Tuple[int, bool]] = [(0, False)]  # slot per level

    @property
    def current_level(self) -> int:
        return len(self.level_start) - 1

    def lit_value(self, lit: int) -> Optional[bool]:
        raw = self.value[var_of(lit)]
        if raw == 0:
            return None
        return (raw > 0) == (lit > 0)

    def push(self, lit: int, reason: object) -> None:
        """Record ``lit`` as assigned at the current level; backends call
        this from ``assign`` and layer their bookkeeping around it."""
        v = var_of(lit)
        assert self.value[v] == 0, "double assignment of %d" % v
        self.value[v] = 1 if lit > 0 else -1
        self.level[v] = self.current_level
        self.pos[v] = len(self.lits)
        self.reason[v] = reason
        self.lits.append(lit)

    def open_level(self, lit: int, flipped: bool) -> None:
        """Start a new decision level about to be justified by ``lit``."""
        self.level_start.append(len(self.lits))
        self.decision.append((lit, flipped))

    def snapshot(self) -> dict:
        """Copy of the replayable frontier (for checkpoint serialization):
        the literal stack, per-level start positions, the decision
        (literal, flipped) pairs for levels 1..N, and the queue head.
        Values/levels/positions/reasons are derivable by replaying these
        through a backend's ``assign``, so they are not duplicated here."""
        return {
            "lits": list(self.lits),
            "level_start": list(self.level_start),
            "decision": [(lit, flipped) for lit, flipped in self.decision[1:]],
            "queue_head": self.queue_head,
        }

    def shrink(self, to_level: int, target: int) -> None:
        """Drop the trail suffix from position ``target`` and the levels
        above ``to_level``; the caller has already unassigned the values."""
        del self.lits[target:]
        del self.level_start[to_level + 1 :]
        del self.decision[to_level + 1 :]
        self.queue_head = len(self.lits)
