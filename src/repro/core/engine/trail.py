"""The assignment/trail layer: the only mutable search state.

One :class:`Trail` holds everything the search mutates as it dives and
backtracks — variable values, decision levels, trail positions, implication
reasons, the literal stack itself, per-level bookkeeping and the propagation
queue head. Propagation backends and the search layer share one instance;
neither owns any other mutable search state (the backends' occurrence
counters and watch memos are derived caches of this trail).

Two flat-array kernels live here:

* ``lit_val`` — a literal-indexed value array of size ``2 * num_slots``.
  ``lit_val[base + l]`` is ``1`` when literal ``l`` is true, ``-1`` when it
  is false and ``0`` when its variable is unassigned (``base == num_slots``,
  so negative literals index below ``base`` and positive ones above). The
  propagation backends probe literal truth with one index op instead of the
  ``raw[var] == (1 if l > 0 else -1)`` dance; ``value`` (variable-indexed)
  is maintained alongside for the model builders and the compat facade.
* the **branching frontier** — per-block counters that keep the set of
  available variables (unassigned, all ≺-predecessors assigned) current
  under :meth:`push`/:meth:`unassign`, so :meth:`available_vars` replaces
  the per-decision recursive quantifier-tree walk. ``block_unassigned[bi]``
  counts unassigned variables in block ``bi``; ``block_blockers[bi]`` counts
  the proper ancestors at a strictly lower alternation level that still hold
  an unassigned variable — a block's variables are available exactly when
  that count is zero. When a block's unassigned count transitions between 0
  and 1, the blocker counts of its strictly-deeper descendants (precomputed
  in :class:`repro.core.prefix.PrefixTables`) are adjusted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.core.literals import var_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.prefix import Prefix


class Trail:
    """Assignment stack with levels, positions and reasons.

    Attributes are deliberately public: the propagation backends read and
    write them directly in their hot loops. ``decision[lvl]`` is the
    ``(literal, flipped)`` pair that opened level ``lvl``;
    ``level_start[lvl]`` its first trail position. Level 0 is the root
    (slot literal 0, never a real decision).

    ``push`` is selected at construction time: the release path skips the
    double-assignment guard; ``paranoid=True`` (or ``REPRO_PARANOID=1`` via
    :class:`repro.core.engine.config.SolverConfig`) keeps it.
    """

    __slots__ = (
        "num_slots",
        "value",
        "level",
        "pos",
        "reason",
        "lits",
        "queue_head",
        "level_start",
        "decision",
        "lit_val",
        "base",
        "push",
        "block_index",
        "block_vars",
        "block_unassigned",
        "block_blockers",
        "_deeper_desc",
    )

    def __init__(
        self,
        num_vars: int,
        prefix: Optional["Prefix"] = None,
        paranoid: bool = False,
    ):
        self.num_slots = num_vars + 1
        self.value: List[int] = [0] * self.num_slots
        self.level: List[int] = [0] * self.num_slots
        self.pos: List[int] = [-1] * self.num_slots
        self.reason: List[object] = [None] * self.num_slots
        self.lits: List[int] = []
        self.queue_head = 0
        self.level_start: List[int] = [0]
        self.decision: List[Tuple[int, bool]] = [(0, False)]  # slot per level
        self.base = self.num_slots
        self.lit_val: List[int] = [0] * (2 * self.num_slots)
        # `push` is an instance slot, not a method, so the paranoid check
        # costs nothing when it is off.
        self.push = self._push_checked if paranoid else self._push_fast
        if prefix is not None:
            tab = prefix.tables()
            self.block_index = tab.block_index
            self.block_vars = tab.block_vars
            self.block_unassigned: List[int] = [len(vs) for vs in tab.block_vars]
            self.block_blockers: List[int] = list(tab.init_blockers)
            self._deeper_desc = tab.deeper_descendants
        else:
            # No prefix: frontier queries are meaningless, but push/unassign
            # must still run. One dummy block whose unassigned count can
            # never reach zero keeps them branch-free.
            self.block_index = [0] * self.num_slots
            self.block_vars = ()
            self.block_unassigned = [self.num_slots + 1]
            self.block_blockers = [0]
            self._deeper_desc = ((),)

    @property
    def current_level(self) -> int:
        return len(self.level_start) - 1

    def lit_value(self, lit: int) -> Optional[bool]:
        raw = self.lit_val[self.base + lit]
        if raw == 0:
            return None
        return raw > 0

    def _push_fast(self, lit: int, reason: object) -> None:
        """Record ``lit`` as assigned at the current level; backends call
        this from ``assign`` and layer their bookkeeping around it."""
        v = lit if lit > 0 else -lit
        self.value[v] = 1 if lit > 0 else -1
        base = self.base
        lit_val = self.lit_val
        lit_val[base + lit] = 1
        lit_val[base - lit] = -1
        self.level[v] = len(self.level_start) - 1
        self.pos[v] = len(self.lits)
        self.reason[v] = reason
        self.lits.append(lit)
        bi = self.block_index[v]
        block_unassigned = self.block_unassigned
        n = block_unassigned[bi] - 1
        block_unassigned[bi] = n
        if n == 0:
            block_blockers = self.block_blockers
            for d in self._deeper_desc[bi]:
                block_blockers[d] -= 1

    def _push_checked(self, lit: int, reason: object) -> None:
        """Paranoid variant of push: guards against double assignment."""
        v = var_of(lit)
        if self.value[v] != 0:
            raise AssertionError("double assignment of %d" % v)
        self._push_fast(lit, reason)

    def unassign(self, lit: int) -> int:
        """Clear one literal's assignment state (values, reason, frontier
        counters) and return its variable. Backends call this from their
        backtrack loops; occurrence/watch sidecar maintenance stays with
        the backend, and the caller still ends with :meth:`shrink`."""
        v = lit if lit > 0 else -lit
        self.value[v] = 0
        base = self.base
        lit_val = self.lit_val
        lit_val[base + lit] = 0
        lit_val[base - lit] = 0
        self.reason[v] = None
        bi = self.block_index[v]
        block_unassigned = self.block_unassigned
        n = block_unassigned[bi] + 1
        block_unassigned[bi] = n
        if n == 1:
            block_blockers = self.block_blockers
            for d in self._deeper_desc[bi]:
                block_blockers[d] += 1
        return v

    def available_vars(self) -> List[int]:
        """Unassigned variables whose ≺-predecessors are all assigned, in
        prefix DFS order — the same order the recursive tree walk
        (``SearchEngine._available_vars``) produces, maintained
        incrementally by :meth:`push`/:meth:`unassign`."""
        out: List[int] = []
        value = self.value
        block_blockers = self.block_blockers
        block_unassigned = self.block_unassigned
        for bi, vs in enumerate(self.block_vars):
            if block_unassigned[bi] and not block_blockers[bi]:
                for v in vs:
                    if value[v] == 0:
                        out.append(v)
        return out

    def open_level(self, lit: int, flipped: bool) -> None:
        """Start a new decision level about to be justified by ``lit``."""
        self.level_start.append(len(self.lits))
        self.decision.append((lit, flipped))

    def snapshot(self) -> dict:
        """Copy of the replayable frontier (for checkpoint serialization):
        the literal stack, per-level start positions, the decision
        (literal, flipped) pairs for levels 1..N, and the queue head.
        Values/levels/positions/reasons are derivable by replaying these
        through a backend's ``assign``, so they are not duplicated here."""
        return {
            "lits": list(self.lits),
            "level_start": list(self.level_start),
            "decision": [(lit, flipped) for lit, flipped in self.decision[1:]],
            "queue_head": self.queue_head,
        }

    def shrink(self, to_level: int, target: int) -> None:
        """Drop the trail suffix from position ``target`` and the levels
        above ``to_level``; the caller has already unassigned the values."""
        del self.lits[target:]
        del self.level_start[to_level + 1 :]
        del self.decision[to_level + 1 :]
        self.queue_head = len(self.lits)
