"""The compiled propagation backend and its pure-Python fallback story.

:class:`NativeBackend` is the third :class:`~repro.core.engine.backend.
PropagationBackend`: the whole propagation fixpoint — the clause/cube
examine-and-dequeue loop, eager literal assignment and backtrack over the
literal-indexed value array, universal reduction's ``≺`` test over the flat
:class:`~repro.core.prefix.PrefixTables`, and the pure-literal rule — runs
inside one C call (:mod:`repro._native`, built optionally by ``setup.py``).

**Identity.** The kernel is a port of the eager *counter* scheme, so it
inherits the reference semantics directly: same events on the same records
in the same order, hence the same decisions, trail, learned constraints and
outcome.  The wrapper keeps the Python :class:`~repro.core.engine.trail.
Trail` authoritative for everything the search layer reads (values, levels,
positions, reasons, the branching frontier): forwarded ``assign``/
``backtrack`` calls update both sides, and assignments made *inside* a
native ``propagate()`` come back as a chronological push log that is
replayed onto the Python trail before the event is returned.  Only the
per-record bookkeeping (occurrence lists, satisfaction counters, the
pure-literal sidecar) lives exclusively in C — the Python ``Rec`` objects
remain as identity tokens for the search layer and the proof logger.

**Fallback.** When the extension is missing the backend cannot run.  The
engine-selection layer (:func:`repro.core.engine.search.resolve_backend`)
then degrades to the watched backend — *loudly*: a
:class:`NativeFallbackWarning` is emitted and the run's
``SolverStats.engine_fallback`` records ``"watched"`` so benchmark rows and
evalx records can never silently change engines.  Set
``REPRO_REQUIRE_NATIVE=1`` (or ``SolverConfig(require_native=True)``) to
turn the fallback into a structured :class:`NativeUnavailableError`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

from repro.core.engine.backend import (
    CONFLICT,
    MODEL,
    PURE,
    SOLUTION,
    PropagationBackend,
    Rec,
)

try:  # the compiled kernel is optional by design
    # importlib rather than `from repro import _native`: the latter reports
    # a missing extension as a bogus "partially initialized module" error
    # when this module is first pulled in during the package's own init.
    import importlib

    _native = importlib.import_module("repro._native")
except ImportError as exc:  # pragma: no cover - depends on the build
    _native = None
    _IMPORT_ERROR: Optional[str] = str(exc)
else:
    _IMPORT_ERROR = None


class NativeFallbackWarning(RuntimeWarning):
    """``--engine native`` requested but the extension is unavailable."""


class NativeUnavailableError(RuntimeError):
    """The native kernel was *required* but cannot be imported.

    Carries ``reason`` (the import error) and renders actionable guidance:
    how to build the extension, and how to opt into the pure-Python
    fallback instead.
    """

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(
            "the native propagation kernel (repro._native) is unavailable: "
            "%s. Build it with `python setup.py build_ext --inplace` (or "
            "`pip install -e .` with a C compiler on PATH), pick another "
            "engine (--engine watched/counters), or unset "
            "REPRO_REQUIRE_NATIVE / require_native to accept the "
            "pure-Python fallback." % reason
        )


def native_available() -> bool:
    """True when the compiled kernel imported successfully."""
    return _native is not None


def native_import_error() -> Optional[str]:
    """The import failure message, or None when the kernel is available."""
    return _IMPORT_ERROR


def kernel_version() -> Optional[int]:
    """The compiled kernel's version stamp, or None when unavailable."""
    return None if _native is None else int(_native.KERNEL_VERSION)


class _NativeCandidates:
    """Set facade over the kernel's pure-literal candidate flags.

    The checkpoint layer treats ``backend.pure_candidates`` as a mutable
    set (``capture`` sorts it, ``restore`` clears and refills it); the
    backends add to it during backtracking.  For the native backend the
    flags live in C, so this facade forwards the handful of set operations
    the rest of the system uses.
    """

    __slots__ = ("_core",)

    def __init__(self, core):
        self._core = core

    def __iter__(self) -> Iterator[int]:
        return iter(self._core.get_candidates())

    def __len__(self) -> int:
        return len(self._core.get_candidates())

    def __contains__(self, v: int) -> bool:
        return v in self._core.get_candidates()

    def add(self, v: int) -> None:
        self._core.add_candidate(v)

    def clear(self) -> None:
        self._core.set_candidates(())

    def update(self, vs: Iterable[int]) -> None:
        for v in vs:
            self._core.add_candidate(v)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NativeCandidates(%r)" % (self._core.get_candidates(),)


class NativeBackend(PropagationBackend):
    """Compiled eager-counter propagation behind the backend interface."""

    name = "native"

    def __init__(self, formula, prefix, config, stats, trail, keeper):
        if _native is None:
            # resolve_backend() normally routes around this; the guard keeps
            # direct construction (backend_override in tests) honest too.
            raise NativeUnavailableError(_IMPORT_ERROR or "unknown import error")
        self._core = None
        self._recs: list = []
        super().__init__(formula, prefix, config, stats, trail, keeper)
        tab = self._tab
        core = _native.NativeCore(
            num_slots=trail.num_slots,
            level=tab.level,
            is_exist=[1 if e else 0 for e in tab.is_exist],
            din=tab.din,
            dout=tab.dout,
            track_pure=1 if config.pure_literals else 0,
        )
        for rec in self.orig_clauses:
            rid = core.add_record(0, 1, 0, rec.lits, rec.prim, rec.sec)
            assert rid == len(self._recs)
            self._recs.append(rec)
        core.set_candidates(sorted(self.pure_candidates))
        self.pure_candidates = _NativeCandidates(core)  # type: ignore[assignment]
        #: paranoid runs keep the two-step replay through Trail.push so the
        #: trail's double-assignment guard still sees every assignment.
        self._fast_replay = not config.paranoid
        self._core = core

    # -- install hooks ------------------------------------------------------

    def _install_clause(self, rec: Rec) -> None:
        # Matrix installation happens in bulk after the base constructor
        # (the kernel needs the prefix tables, which the base class builds);
        # orig_clauses already carries every record in installation order.
        pass

    def _install_learned_clause(self, rec: Rec) -> None:
        rid = self._core.add_record(0, 0, 1, rec.lits, rec.prim, rec.sec)
        assert rid == len(self._recs)
        self._recs.append(rec)

    def _install_learned_cube(self, rec: Rec) -> None:
        rid = self._core.add_record(1, 0, 1, rec.lits, rec.prim, rec.sec)
        assert rid == len(self._recs)
        self._recs.append(rec)

    # -- the backend interface ---------------------------------------------

    def assign(self, lit: int, reason: object) -> None:
        trail = self.trail
        trail.push(lit, reason)
        self._core.assign(lit)
        if len(trail.lits) > self.stats.max_trail:
            self.stats.max_trail = len(trail.lits)

    def backtrack(self, to_level: int) -> None:
        trail = self.trail
        target = trail.level_start[to_level + 1]
        self._core.backtrack(target)
        unassign = trail.unassign
        for lit in reversed(trail.lits[target:]):
            # candidate re-flagging happens inside the kernel's backtrack;
            # here only the Python trail state is unwound.
            unassign(lit)
        trail.shrink(to_level, target)

    def propagate(self) -> Optional[Tuple[str, object]]:
        trail = self.trail
        stats = self.stats
        recs = self._recs
        if self._fast_replay:
            # The kernel replays its own push log onto the trail's lists
            # (the C twin of Trail._push_fast), so no per-literal Python
            # code runs at all on the propagation path.
            (
                event,
                rid,
                queue_head,
                max_trail,
                propagations,
                pure_literals,
                clause_visits,
                cube_visits,
            ) = self._core.propagate_into(
                trail.queue_head,
                trail.value,
                trail.lit_val,
                trail.level,
                trail.pos,
                trail.reason,
                trail.lits,
                trail.current_level,
                trail.block_index,
                trail.block_unassigned,
                trail.block_blockers,
                trail._deeper_desc,
                recs,
                PURE,
            )
        else:
            # Paranoid mode: replay through Trail.push so its invariant
            # guards (double-assignment check) stay on the hot path.
            (
                event,
                rid,
                pushes,
                queue_head,
                max_trail,
                propagations,
                pure_literals,
                clause_visits,
                cube_visits,
            ) = self._core.propagate(trail.queue_head)
            push = trail.push
            for lit, tag, reason_rid in pushes:
                push(lit, PURE if tag == 1 else recs[reason_rid])
        trail.queue_head = queue_head
        stats.propagations += propagations
        stats.pure_literals += pure_literals
        stats.clause_visits += clause_visits
        stats.cube_visits += cube_visits
        if max_trail > stats.max_trail:
            stats.max_trail = max_trail
        if event == 1:
            return (CONFLICT, recs[rid])
        if event == 2:
            return (SOLUTION, recs[rid])
        if event == 3:
            return (MODEL, None)
        return None

    def apply_pure_literals(self) -> bool:  # pragma: no cover - guard only
        raise RuntimeError(
            "the native backend applies the pure-literal rule inside the "
            "compiled propagate(); there is no standalone entry point"
        )

    # -- learning/branching fast paths --------------------------------------
    # Exact C ports of the analysis-layer hot functions, exposed through the
    # optional-acceleration slots the search layer wires up (see
    # PropagationBackend for the pure-Python defaults of the contract).

    def reduce_clause_fast(self, lits) -> Tuple[int, ...]:
        """:func:`~repro.core.constraints.universal_reduce`, in C."""
        return self._core.reduce(lits, 0)

    def reduce_cube_fast(self, lits) -> Tuple[int, ...]:
        """:func:`~repro.core.constraints.existential_reduce`, in C."""
        return self._core.reduce(lits, 1)

    def native_model_cube(self) -> Tuple[int, ...]:
        """:func:`~repro.core.learning.build_model_cube`, in C.

        The kernel already holds the original clauses, the assignment and
        the trail positions, so the whole once-per-solution matrix sweep
        runs without touching a Python object."""
        return self._core.build_model_cube()

    def accelerated_picker(self, policy: str, keeper):
        """A compiled branching closure for ``policy``, or None.

        Only the default ``levelsub`` ranking has a C port; the ablation
        policies keep the pure-Python picker (they never run in the perf
        lane). The keeper's lazily-recomputed subtree maxima stay in
        Python — the closure flushes the dirty flag, then ranks the
        available list in C against the keeper's own score arrays."""
        if policy != "levelsub":
            return None
        pick_levelsub = _native.pick_levelsub
        level = keeper._level
        score_pos = keeper.score_pos
        score_neg = keeper.score_neg
        child_max = keeper._child_max
        block_index = keeper._block_index

        def pick(available):
            if not available:
                return None
            if keeper._dirty:
                keeper._recompute()
            return pick_levelsub(
                available, level, score_pos, score_neg, child_max, block_index
            )

        return pick

    def accelerated_frontier_picker(self, policy: str, keeper, trail):
        """Fused ``available_vars`` + ``levelsub`` ranking, one C call.

        Reads the trail's incremental frontier counters and the keeper's
        score arrays in place; no candidate list is built. Same
        ``levelsub``-only restriction as :meth:`accelerated_picker`."""
        if policy != "levelsub":
            return None
        pick_frontier = _native.pick_frontier_levelsub
        block_vars = trail.block_vars
        block_unassigned = trail.block_unassigned
        block_blockers = trail.block_blockers
        value = trail.value
        level = keeper._level
        score_pos = keeper.score_pos
        score_neg = keeper.score_neg
        child_max = keeper._child_max
        block_index = keeper._block_index

        def pick():
            if keeper._dirty:
                keeper._recompute()
            return pick_frontier(
                block_vars, block_unassigned, block_blockers, value,
                level, score_pos, score_neg, child_max, block_index,
            )

        return pick
