"""The search layer: decide, backjump, learn — over the backend interface.

:class:`SearchEngine` owns the trail, the branching heuristic state and the
statistics, and talks to the matrix exclusively through a
:class:`~repro.core.engine.backend.PropagationBackend`. It implements the
outer QDPLL loop (propagate → decide / analyze → backjump or flip), the
budget accounting and the certificate hooks; everything it knows about
clauses and cubes arrives as opaque records from the backend.
"""

from __future__ import annotations

import time
import warnings
from typing import List, Optional, Tuple

from repro.core.constraints import Constraint
from repro.core.engine.backend import CONFLICT, PropagationBackend, Rec
from repro.core.engine.config import SolverConfig
from repro.core.engine.counters import CounterBackend
from repro.core.engine.native import (
    NativeBackend,
    NativeFallbackWarning,
    NativeUnavailableError,
    native_available,
    native_import_error,
)
from repro.core.engine.trail import Trail
from repro.core.engine.watched import WatchedBackend
from repro.core.formula import QBF
from repro.core.heuristics import ScoreKeeper, make_picker
from repro.core.learning import (
    Backjump,
    Terminal,
    TrailView,
    analyze_conflict,
    analyze_solution,
    build_model_cube,
)
from repro.core.literals import EXISTS, FORALL
from repro.core.result import Outcome, SolveResult, SolverStats

#: name → class, the registry behind ``SolverConfig.engine``.
BACKENDS = {
    CounterBackend.name: CounterBackend,
    WatchedBackend.name: WatchedBackend,
    NativeBackend.name: NativeBackend,
}


def resolve_backend(config: SolverConfig, stats: SolverStats) -> type:
    """Map ``config.engine`` to a backend class, with the native fallback.

    ``native`` on a build without the compiled kernel degrades to the
    watched backend — recorded in ``stats.engine_fallback`` and announced
    with a :class:`NativeFallbackWarning`, so no run ever changes engines
    silently. With ``config.require_native`` (or ``REPRO_REQUIRE_NATIVE=1``)
    the degradation becomes a structured
    :class:`~repro.core.engine.native.NativeUnavailableError` instead.
    """
    cls = BACKENDS[config.engine]
    if cls is NativeBackend and not native_available():
        reason = native_import_error() or "unknown import error"
        if config.require_native:
            raise NativeUnavailableError(reason)
        warnings.warn(
            "engine 'native' requested but the compiled kernel is "
            "unavailable (%s); falling back to the pure-Python watched "
            "backend. Build it with `python setup.py build_ext --inplace`, "
            "or set REPRO_REQUIRE_NATIVE=1 to make this an error." % reason,
            NativeFallbackWarning,
            stacklevel=3,
        )
        stats.engine_fallback = WatchedBackend.name
        return WatchedBackend
    return cls


class SearchEngine:
    """One solving session over a fixed QBF. Use :func:`solve` for one-shots.

    ``proof`` optionally attaches a :class:`repro.certify.proof.ProofLogger`
    that records the run's implicit clause/term resolution derivation as a
    machine-checkable certificate. Logging is passive — decisions,
    assignments and learned constraints are identical with and without it —
    and with ``proof=None`` every hook short-circuits on an ``is None``
    test, so the disabled cost is zero.
    """

    #: test hook: a PropagationBackend subclass pinned by a test; when set,
    #: it wins over the ``config.engine`` registry lookup.
    backend_override: Optional[type] = None

    def __init__(
        self,
        formula: QBF,
        config: Optional[SolverConfig] = None,
        proof: Optional[object] = None,
        interrupt: Optional[object] = None,
        exchange: Optional[object] = None,
    ):
        self.formula = formula
        self.config = config or SolverConfig()
        self._proof = proof
        #: cooperative preemption: an object with ``is_set()`` (or a bare
        #: callable) polled at the budget-check sites; see
        #: :mod:`repro.robustness.interrupt`.
        self._interrupt = interrupt
        #: optional constraint-exchange hook (see :mod:`repro.cube.sharing`):
        #: ``on_learned(is_cube, lits)`` is called after every learned
        #: constraint enters the database, and ``drain()`` is polled at the
        #: pre-decision quiescent point for constraints to import. Like the
        #: proof logger, ``None`` costs an ``is None`` test and nothing else.
        self._exchange = exchange
        self.interrupted = False
        self.prefix = formula.prefix
        self.stats = SolverStats()
        nv = max(self.prefix.variables, default=0)
        self.trail = Trail(nv, prefix=self.prefix, paranoid=self.config.paranoid)
        self._lit_value = self.trail.lit_value
        self._keeper = ScoreKeeper(self.prefix, decay_interval=self.config.decay_interval)
        backend_cls = self.backend_override or resolve_backend(self.config, self.stats)
        self.backend: PropagationBackend = backend_cls(
            formula, self.prefix, self.config, self.stats, self.trail, self._keeper
        )
        # The branching closure is built once here (not per decision); the
        # backend supplies a compiled ranking when it carries one, and
        # optionally a fused frontier-scan + ranking used by _decide.
        self._pick = self.backend.accelerated_picker(
            self.config.policy, self._keeper
        ) or make_picker(self.config.policy, self._keeper)
        self._frontier_pick = self.backend.accelerated_frontier_picker(
            self.config.policy, self._keeper, self.trail
        )
        if self._proof is not None:
            self._proof.register_formula(formula)
        self._view = TrailView(
            value=self._lit_value,
            level_of=lambda v: self.trail.level[v],
            pos_of=lambda v: self.trail.pos[v],
            reason_of=self._reason_constraint,
            prefix=self.prefix,
            lit_val=self.trail.lit_val,
            base=self.trail.base,
            level_arr=self.trail.level,
            pos_arr=self.trail.pos,
            reduce_clause=self.backend.reduce_clause_fast,
            reduce_cube=self.backend.reduce_cube_fast,
        )
        self._deadline: Optional[float] = None

    # -- trail accessors -------------------------------------------------------

    @property
    def current_level(self) -> int:
        return self.trail.current_level

    def _reason_constraint(self, var: int) -> Optional[Constraint]:
        reason = self.trail.reason[var]
        if isinstance(reason, Rec):
            return reason.constraint
        return None

    # -- decisions ----------------------------------------------------------------

    def _available_vars(self) -> List[int]:
        """Unassigned variables whose ``≺`` predecessors are all assigned.

        A variable is *top* in the current subproblem iff no unassigned
        variable of a strictly lower alternation level sits above it in the
        tree. The walk carries two flags: pending variables in ancestors of
        strictly lower level (blocks them) and pending variables in
        ancestors of the same level (blocks only deeper levels).

        This is the *reference* computation: ``_decide`` uses the trail's
        incrementally maintained frontier (``Trail.available_vars``), which
        must return exactly this list in exactly this order — a contract
        enforced by the frontier property tests.
        """
        out: List[int] = []
        value = self.trail.value

        def visit(block, pending_lt: bool, pending_eq: bool) -> None:
            pending_here = False
            for v in block.variables:
                if value[v] == 0:
                    pending_here = True
                    if not pending_lt:
                        out.append(v)
            for child in block.children:
                if child.level == block.level:
                    visit(child, pending_lt, pending_eq or pending_here)
                else:
                    visit(child, pending_lt or pending_eq or pending_here, False)

        visit(self.prefix.root, False, False)
        return out

    def _decide(self) -> bool:
        """Branch on a heuristic literal; False when no variable remains."""
        if self._frontier_pick is not None:
            lit = self._frontier_pick()
        else:
            lit = self._pick(self.trail.available_vars())
        if lit is None:
            return False
        self.stats.decisions += 1
        self.trail.open_level(lit, flipped=False)
        self.backend.assign(lit, None)
        return True

    def _flip_chronological(self, want: object) -> bool:
        """Chronological fallback: flip the deepest unflipped ``want`` decision.

        ``want`` is EXISTS after a conflict and FORALL after a solution.
        Returns False when no such decision exists (search exhausted).
        """
        self.stats.chrono_backtracks += 1
        for lvl in range(self.current_level, 0, -1):
            lit, flipped = self.trail.decision[lvl]
            if not flipped and self.prefix.quant(lit) is want:
                self.backend.backtrack(lvl - 1)
                self.trail.open_level(-lit, flipped=True)
                self.backend.assign(-lit, None)
                return True
        return False

    # -- main loop ---------------------------------------------------------------------

    def solve(
        self,
        resume_from: Optional[object] = None,
        checkpoint_to: Optional[str] = None,
    ) -> SolveResult:
        """Run the search to completion, budget exhaustion, or interruption.

        ``resume_from`` (a :class:`repro.robustness.checkpoint.Checkpoint`
        or a path to one) replays an earlier run's frontier into this
        freshly built engine before searching; the resumed run continues
        decision-for-decision where the interrupted one stopped. A bad
        checkpoint raises :class:`~repro.robustness.checkpoint.
        CheckpointError` before any state is mutated.

        ``checkpoint_to`` names a snapshot file: flushed (atomically) when
        the run ends UNKNOWN — preempted or out of budget — and removed on
        a determinate outcome, so a stale snapshot never outlives the
        answer it was saved to reach.
        """
        start = time.monotonic()
        resumed_seconds = 0.0
        if resume_from is not None:
            from repro.robustness.checkpoint import load_checkpoint, restore

            if isinstance(resume_from, str):
                resume_from = load_checkpoint(resume_from)
            resumed_seconds = restore(self, resume_from)
        if self.config.max_seconds is not None:
            # The checkpointed run already spent part of the wall budget.
            self._deadline = start + max(self.config.max_seconds - resumed_seconds, 0.0)
        outcome = self._run()
        seconds = resumed_seconds + (time.monotonic() - start)
        if checkpoint_to is not None:
            if outcome is Outcome.UNKNOWN:
                # Capture before concluding the proof: the snapshot must
                # carry a logger state that can still reach a conclusion.
                from repro.robustness.checkpoint import capture, save_checkpoint

                save_checkpoint(capture(self, seconds=seconds), checkpoint_to)
            else:
                import os

                try:
                    os.unlink(checkpoint_to)
                except OSError:
                    pass
        if self._proof is not None and not self._proof.concluded:
            # A verdict that never passed through a Terminal analysis:
            # budget exhaustion, or search exhausted by chronological flips
            # alone. Conclude honestly with no backing derivation.
            if outcome is Outcome.UNKNOWN:
                reason = "interrupted" if self.interrupted else "budget exhausted"
            else:
                reason = "verdict reached by chronological exhaustion"
            self._proof.conclude(outcome.value, None, reason=reason)
        return SolveResult(outcome, self.stats, seconds, interrupted=self.interrupted)

    def _interrupt_requested(self) -> bool:
        flag = self._interrupt
        if flag is None:
            return False
        check = getattr(flag, "is_set", None)
        return bool(check() if check is not None else flag())

    def _should_stop(self) -> bool:
        """Budget *or* preemption — polled only at quiescent points, so an
        UNKNOWN exit always leaves a checkpointable frontier."""
        if self._interrupt_requested():
            self.interrupted = True
            return True
        return self._budget_exhausted()

    def _budget_exhausted(self) -> bool:
        cfg = self.config
        if cfg.max_decisions is not None:
            if self.stats.decisions >= cfg.max_decisions:
                return True
            # Safety net: backjump/propagation loops that make no decisions
            # still burn backtracks; bound them by a generous multiple so a
            # budgeted run can never spin forever.
            if self.stats.backtracks >= 32 * cfg.max_decisions + 1024:
                return True
        if self._deadline is not None and time.monotonic() > self._deadline:
            return True
        return False

    def _run(self) -> Outcome:
        backend = self.backend
        if backend.trivially_false:
            if self._proof is not None:
                # register_formula logged the clause whose reduction is
                # empty; it is the whole refutation.
                self._proof.conclude("false", self._proof.lookup(False, ()))
            return Outcome.FALSE
        if not backend.orig_clauses:
            if self._proof is not None:
                # Empty matrix: the empty cube vacuously satisfies it.
                self._proof.conclude("true", self._proof.initial_cube(()))
            return Outcome.TRUE
        while True:
            event = backend.propagate()
            if event is None:
                if self._should_stop():
                    return Outcome.UNKNOWN
                if self._exchange is not None:
                    self._drain_exchange()
                if not self._decide():
                    # Every variable assigned without conflict: all clauses
                    # are satisfied, which propagate reports as a model.
                    raise AssertionError("decision requested with no variables left")
                continue
            kind, payload = event
            if kind == CONFLICT:
                self.stats.conflicts += 1
                verdict = self._handle_conflict(payload)
            else:
                self.stats.solutions += 1
                verdict = self._handle_solution(payload)
            if verdict is not None:
                return verdict
            if self._should_stop():
                return Outcome.UNKNOWN

    # -- constraint exchange ---------------------------------------------------------

    def _drain_exchange(self) -> None:
        """Install constraints imported through the exchange hook.

        Runs only at the pre-decision quiescent point (propagation is at a
        fixpoint), where both backends' trail-aware install paths initialize
        the new record's counters/watches from the live assignment. An
        imported constraint that the current trail already falsifies is not
        re-examined here — the missed conflict costs at most the work until
        the next backtrack, never soundness: imported constraints are
        consequences of the original matrix, and models are validated
        against original clauses only.
        """
        ex = self._exchange
        for is_cube, lits in ex.drain():
            if is_cube:
                self.backend.add_learned_cube(lits)
            else:
                self.backend.add_learned_clause(lits)

    # -- analysis plumbing ----------------------------------------------------------

    def _backjump_target(self, outcome: Backjump) -> int:
        if self.config.backjump == "shallow":
            return outcome.shallow_level
        return outcome.level

    def _bind_learned(self, trace: Optional[object], is_cube: bool, lits: Tuple[int, ...]) -> None:
        """Name a learned constraint after its derivation's final step."""
        if trace is None or not trace.ok:
            return
        if trace.cur_lits == lits:
            self._proof.bind(is_cube, lits, trace.cur_id)
        else:  # pragma: no cover - trace desync would be a logger bug
            trace.fail("learned constraint does not match its derivation")

    def _handle_conflict(self, rec: Rec) -> Optional[Outcome]:
        if self.config.learn_clauses:
            trace = None
            if self._proof is not None:
                trace = self._proof.begin_clause(rec.lits)
            outcome = analyze_conflict(rec.lits, self._view, trace)
            if isinstance(outcome, Terminal):
                if self._proof is not None:
                    self._proof.conclude(
                        "false", trace.final_id if trace is not None else None
                    )
                return Outcome.FALSE
            if isinstance(outcome, Backjump):
                self.stats.backjumps += 1
                self.backend.backtrack(self._backjump_target(outcome))
                learned = self.backend.add_learned_clause(outcome.lits)
                self._bind_learned(trace, False, outcome.lits)
                if self._exchange is not None:
                    self._exchange.on_learned(False, outcome.lits)
                if self._lit_value(outcome.assert_lit) is None:
                    self.stats.propagations += 1
                    self.backend.assign(outcome.assert_lit, learned)
                return None
        if not self._flip_chronological(EXISTS):
            return Outcome.FALSE
        return None

    def _handle_solution(self, rec: Optional[Rec]) -> Optional[Outcome]:
        if rec is not None:
            cube_lits: Tuple[int, ...] = rec.lits
        elif self.backend.native_model_cube is not None:
            cube_lits = self.backend.native_model_cube()
        else:
            cube_lits = build_model_cube(
                [r.constraint for r in self.backend.orig_clauses],
                self._view,
                self.trail.lits,
            )
        if self.config.learn_cubes:
            trace = None
            if self._proof is not None:
                if rec is not None:
                    trace = self._proof.begin_cube(cube_lits)
                else:
                    trace = self._proof.begin_initial_cube(cube_lits)
            outcome = analyze_solution(cube_lits, self._view, trace)
            if isinstance(outcome, Terminal):
                if self._proof is not None:
                    self._proof.conclude(
                        "true", trace.final_id if trace is not None else None
                    )
                return Outcome.TRUE
            if isinstance(outcome, Backjump):
                self.stats.backjumps += 1
                self.backend.backtrack(self._backjump_target(outcome))
                learned = self.backend.add_learned_cube(outcome.lits)
                self._bind_learned(trace, True, outcome.lits)
                if self._exchange is not None:
                    self._exchange.on_learned(True, outcome.lits)
                if self._lit_value(outcome.assert_lit) is None:
                    self.stats.propagations += 1
                    self.backend.assign(-outcome.assert_lit, learned)
                return None
        if not self._flip_chronological(FORALL):
            return Outcome.TRUE
        return None
