"""Engine configuration: feature switches plus propagation-backend choice.

``SolverConfig`` historically lived in :mod:`repro.core.solver`; it moved
here when the monolithic solver was split into layers, because both the
search layer and the propagation backends consume it. The old import path
re-exports it, so existing code and serialized configs keep working.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.core.heuristics import POLICIES

#: the propagation backends an engine can be built on. "counters" is the
#: original eager occurrence-counter scheme; "watched" is the lazy
#: prefix-aware watched-literal scheme. Both are decision-for-decision
#: identical — see repro.core.engine.backend for the contract.
ENGINES = ("counters", "watched")


def default_engine() -> str:
    """Backend default: the REPRO_ENGINE environment knob, else counters.

    The environment hook exists so a whole test suite or benchmark run can
    be flipped onto the watched backend without touching call sites (the CI
    matrix runs one leg with ``REPRO_ENGINE=watched``). Recorded sweeps
    should pass ``engine=...`` explicitly instead, so the choice lands in
    the task fingerprint.
    """
    return os.environ.get("REPRO_ENGINE", "counters")


def default_paranoid() -> bool:
    """Debug-assertion default: the REPRO_PARANOID environment knob.

    When truthy (anything but empty/``0``), the trail's release-path
    invariant checks — e.g. the double-assignment guard in ``Trail.push`` —
    stay active. Off by default: the guards sit on the hottest loop in the
    solver and only ever fire on engine bugs, never on user input.
    """
    return os.environ.get("REPRO_PARANOID", "") not in ("", "0")


@dataclass
class SolverConfig:
    """Feature switches of one engine instance.

    The defaults model the full QUBE(PO); the ablation benchmarks toggle the
    individual switches.
    """

    #: branching policy: "levelsub" (prefix position first, then the
    #: Section VI subtree score — the reproduction's QUBE(PO) default),
    #: "subtree" (the pure Section VI score formula), "counter" (plain
    #: VSIDS-like, tree-blind ranking), or "naive" (lowest id).
    policy: str = "levelsub"
    learn_clauses: bool = True
    learn_cubes: bool = True
    pure_literals: bool = True
    #: backtrack target for asserting constraints: "assert" jumps to the
    #: classical asserting level, "shallow" to the least destructive level
    #: at which the learned constraint is still unit.
    backjump: str = "assert"
    max_decisions: Optional[int] = None
    max_seconds: Optional[float] = None
    decay_interval: int = 64
    #: propagation backend (see ENGINES). Purely an implementation choice:
    #: every backend must produce the same decisions, trail and outcome.
    engine: str = field(default_factory=default_engine)
    #: keep the trail's hot-path invariant guards (double-assignment check
    #: in push) active. Diagnostic only — never changes decisions — so it is
    #: excluded from checkpoint config digests, like `engine`.
    paranoid: bool = field(default_factory=default_paranoid)

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError("unknown policy %r" % (self.policy,))
        if self.backjump not in ("assert", "shallow"):
            raise ValueError("unknown backjump mode %r" % (self.backjump,))
        if self.engine not in ENGINES:
            raise ValueError("unknown engine %r (choose from %s)" % (self.engine, ENGINES))
