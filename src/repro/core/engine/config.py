"""Engine configuration: feature switches plus propagation-backend choice.

``SolverConfig`` historically lived in :mod:`repro.core.solver`; it moved
here when the monolithic solver was split into layers, because both the
search layer and the propagation backends consume it. The old import path
re-exports it, so existing code and serialized configs keep working.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.core.heuristics import POLICIES

#: the propagation backends an engine can be built on. "counters" is the
#: original eager occurrence-counter scheme; "watched" is the lazy
#: prefix-aware watched-literal scheme; "native" runs the eager scheme
#: inside the compiled kernel (repro._native) when the optional extension
#: is built, degrading loudly to "watched" when it is not (see
#: repro.core.engine.native). All are decision-for-decision identical —
#: see repro.core.engine.backend for the contract.
ENGINES = ("counters", "watched", "native")

#: the solver paradigms a config can select. Unlike ENGINES — interchangeable
#: propagation schemes inside ONE search procedure — a paradigm is a whole
#: solving algorithm: "search" is the QDPLL engine (QUBE(TO)/QUBE(PO)),
#: "expansion" the iterative quantifier-expansion engine, "qdll" the
#: recursive Figure-1 reference. They agree on verdicts but not on cost or
#: capabilities; see repro.core.paradigm for the registry and the
#: per-paradigm capability flags.
PARADIGMS = ("search", "expansion", "qdll")


def default_paradigm() -> str:
    """Paradigm default: the REPRO_PARADIGM environment knob, else search.

    Mirrors :func:`default_engine`: the environment hook flips a whole test
    or benchmark run onto another paradigm without touching call sites;
    recorded sweeps should pass ``paradigm=...`` explicitly so the choice
    lands in the task fingerprint.
    """
    return os.environ.get("REPRO_PARADIGM", "search")


def default_engine() -> str:
    """Backend default: the REPRO_ENGINE environment knob, else counters.

    The environment hook exists so a whole test suite or benchmark run can
    be flipped onto the watched backend without touching call sites (the CI
    matrix runs one leg with ``REPRO_ENGINE=watched``). Recorded sweeps
    should pass ``engine=...`` explicitly instead, so the choice lands in
    the task fingerprint.
    """
    return os.environ.get("REPRO_ENGINE", "counters")


def default_require_native() -> bool:
    """Strict-native default: the REPRO_REQUIRE_NATIVE environment knob.

    When truthy (anything but empty/``0``), requesting ``engine="native"``
    on a machine where the compiled kernel is unavailable raises a
    structured :class:`repro.core.engine.native.NativeUnavailableError`
    instead of falling back to the watched backend. Off by default: the
    fallback is loud (warning + ``SolverStats.engine_fallback``), never
    silent, so degrading is safe for interactive use while CI perf legs
    can insist on the real kernel.
    """
    return os.environ.get("REPRO_REQUIRE_NATIVE", "") not in ("", "0")


def default_paranoid() -> bool:
    """Debug-assertion default: the REPRO_PARANOID environment knob.

    When truthy (anything but empty/``0``), the trail's release-path
    invariant checks — e.g. the double-assignment guard in ``Trail.push`` —
    stay active. Off by default: the guards sit on the hottest loop in the
    solver and only ever fire on engine bugs, never on user input.
    """
    return os.environ.get("REPRO_PARANOID", "") not in ("", "0")


@dataclass
class SolverConfig:
    """Feature switches of one engine instance.

    The defaults model the full QUBE(PO); the ablation benchmarks toggle the
    individual switches.
    """

    #: branching policy: "levelsub" (prefix position first, then the
    #: Section VI subtree score — the reproduction's QUBE(PO) default),
    #: "subtree" (the pure Section VI score formula), "counter" (plain
    #: VSIDS-like, tree-blind ranking), or "naive" (lowest id).
    policy: str = "levelsub"
    learn_clauses: bool = True
    learn_cubes: bool = True
    pure_literals: bool = True
    #: backtrack target for asserting constraints: "assert" jumps to the
    #: classical asserting level, "shallow" to the least destructive level
    #: at which the learned constraint is still unit.
    backjump: str = "assert"
    max_decisions: Optional[int] = None
    max_seconds: Optional[float] = None
    decay_interval: int = 64
    #: propagation backend (see ENGINES). Purely an implementation choice:
    #: every backend must produce the same decisions, trail and outcome.
    engine: str = field(default_factory=default_engine)
    #: solver paradigm (see PARADIGMS and :mod:`repro.core.paradigm`). The
    #: search-only switches above are silently irrelevant under the other
    #: paradigms; the budget fields (max_decisions/max_seconds) bind for
    #: all of them. Excluded from checkpoint config digests — only the
    #: search paradigm checkpoints, and its snapshots predate the field.
    paradigm: str = field(default_factory=default_paradigm)
    #: refuse to run when ``engine="native"`` is requested but the compiled
    #: kernel is unavailable, instead of degrading to the watched backend.
    #: Selection-policy only — never changes decisions — so it is excluded
    #: from checkpoint config digests, like `engine` and `paranoid`.
    require_native: bool = field(default_factory=default_require_native)
    #: keep the trail's hot-path invariant guards (double-assignment check
    #: in push) active. Diagnostic only — never changes decisions — so it is
    #: excluded from checkpoint config digests, like `engine`.
    paranoid: bool = field(default_factory=default_paranoid)

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError("unknown policy %r" % (self.policy,))
        if self.backjump not in ("assert", "shallow"):
            raise ValueError("unknown backjump mode %r" % (self.backjump,))
        if self.engine not in ENGINES:
            raise ValueError("unknown engine %r (choose from %s)" % (self.engine, ENGINES))
        if self.paradigm not in PARADIGMS:
            raise ValueError(
                "unknown paradigm %r (choose from %s)" % (self.paradigm, PARADIGMS)
            )
