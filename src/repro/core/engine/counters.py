"""The eager occurrence-counter propagation backend (the reference).

This is the original QUBE-style scheme, moved behind the backend interface
unchanged: every record keeps live ``n_true``/``n_false`` counters, updated
by walking all four occurrence lists of a literal at assignment time and
reversed symmetrically at backtrack time. Propagation dequeues a trail
literal and examines every clause in which it occurs negatively (skipping
satisfied ones via ``n_true``) and every live learned cube in which it
occurs positively (skipping dead ones via ``n_false``).

The scheme is simple and its counters double as the pure-literal index, but
the eager walks make ``assign``/``backtrack`` cost O(occurrences) even for
literals that never trigger anything — the cost profile the watched backend
removes. This backend is the semantic reference that defines the
equivalence contract (see :mod:`repro.core.engine.backend`).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.engine.backend import MODEL, PropagationBackend, Rec


class CounterBackend(PropagationBackend):
    """Eager counters over full occurrence lists."""

    name = "counters"

    def _install_clause(self, rec: Rec) -> None:
        for lit in rec.lits:
            self.clause_occ[lit].append(rec)
            self.occ_unsat[lit] += 1

    def assign(self, lit: int, reason: object) -> None:
        trail = self.trail
        trail.push(lit, reason)
        # Counters are maintained eagerly (at assignment, not at dequeue) so
        # that backtrack can reverse them uniformly even when the
        # propagation queue still holds unprocessed literals.
        for rec in self.clause_occ[lit]:
            rec.n_true += 1
            if rec.n_true == 1:
                self._on_clause_sat(rec)
        for rec in self.clause_occ[-lit]:
            rec.n_false += 1
        for rec in self.cube_occ[-lit]:
            rec.n_false += 1
        for rec in self.cube_occ[lit]:
            rec.n_true += 1
        if len(trail.lits) > self.stats.max_trail:
            self.stats.max_trail = len(trail.lits)

    def backtrack(self, to_level: int) -> None:
        trail = self.trail
        target = trail.level_start[to_level + 1]
        unassign = trail.unassign
        clause_occ = self.clause_occ
        cube_occ = self.cube_occ
        pure_candidates = self.pure_candidates
        for lit in reversed(trail.lits[target:]):
            # A variable that becomes unassigned may be pure in the restored
            # state (its candidacy was consumed further down this branch,
            # possibly while it was assigned and hence skipped by
            # apply_pure_literals). Purity only has to be re-examined for
            # exactly these variables: for a variable that stayed unassigned
            # through the dive, failing the purity test deeper implies
            # failing it in every ancestor state, since unassigning can only
            # add unsatisfied occurrences and revive learned cubes.
            pure_candidates.add(unassign(lit))
            for rec in clause_occ[lit]:
                rec.n_true -= 1
                if rec.n_true == 0:
                    self._on_clause_unsat(rec)
            for rec in clause_occ[-lit]:
                rec.n_false -= 1
            for rec in cube_occ[-lit]:
                rec.n_false -= 1
            for rec in cube_occ[lit]:
                rec.n_true -= 1
        trail.shrink(to_level, target)

    def propagate(self) -> Optional[Tuple[str, object]]:
        """Run propagation + pure literals to fixpoint.

        Returns None (keep searching), a conflict, a solution triggered by a
        learned cube, or a *model* (every matrix clause satisfied).
        """
        trail = self.trail
        examine = self._examine
        lits = trail.lits  # stable alias: push appends / shrink dels in place
        clause_occ = self.clause_occ
        cube_occ = self.cube_occ
        while True:
            while trail.queue_head < len(lits):
                lit = lits[trail.queue_head]
                trail.queue_head += 1
                for rec in clause_occ[-lit]:
                    if rec.n_true == 0:
                        event = examine(rec, False)
                        if event is not None:
                            return event
                for rec in cube_occ[lit]:
                    if rec.n_false == 0:
                        event = examine(rec, True)
                        if event is not None:
                            return event
            if self.n_unsat_orig == 0:
                return (MODEL, None)
            if self.config.pure_literals and self.apply_pure_literals():
                continue
            return None

    def _install_learned_clause(self, rec: Rec) -> None:
        lit_val = self.trail.lit_val
        base = self.trail.base
        sat = False
        for lit in rec.lits:
            self.clause_occ[lit].append(rec)
            val = lit_val[base + lit]
            if val == 1:
                rec.n_true += 1
                sat = True
            elif val == -1:
                rec.n_false += 1
        if not sat:
            for lit in rec.lits:
                self.occ_unsat[lit] += 1
        else:
            # keep the unsat-occurrence invariant: a satisfied clause does
            # not contribute, so nothing to add.
            pass

    def _install_learned_cube(self, rec: Rec) -> None:
        lit_val = self.trail.lit_val
        base = self.trail.base
        for lit in rec.lits:
            self.cube_occ[lit].append(rec)
            self.cube_count[lit] += 1
            val = lit_val[base + lit]
            if val == 1:
                rec.n_true += 1
            elif val == -1:
                rec.n_false += 1
