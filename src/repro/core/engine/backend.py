"""Propagation backends: the interface and the shared machinery.

A backend owns everything derived from the matrix — occurrence lists,
satisfaction counters or watch memos, the learned-constraint stores — and
exposes four operations to the search layer: ``assign``, ``backtrack``,
``propagate`` and ``add_learned_clause``/``add_learned_cube``. The search
layer never looks past this interface.

**The equivalence contract.** Every backend must be *decision-for-decision
identical* to the reference counter backend: same trail, in the same order,
with the same reasons, the same conflict/solution/model events on the same
constraint records, and the same learned constraints — given the same
formula, config and heuristic tie-breaks. Backends may only differ in the
*cost* of reaching those events (tracked by the ``clause_visits``,
``cube_visits`` and ``watcher_swaps`` stats, which are explicitly
backend-dependent). The contract is what makes the old backend a free
differential-testing oracle for any new one.

The contract is stricter than it may look: conflicts and units must fire
while scanning the occurrence list of the *currently dequeued* literal, in
installation order, under eager value semantics (assignments made mid-scan
are visible to later records in the same scan). See
:mod:`repro.core.engine.watched` for what that rules out.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.constraints import (
    Clause,
    Constraint,
    Cube,
    sanitize_lits,
    universal_reduce,
)
from repro.core.literals import var_of

#: sentinel reason for pure-literal assignments (decision-like in analyses).
PURE = object()

CONFLICT = "conflict"
SOLUTION = "solution"
MODEL = "model"


class Rec:
    """Backend-private record of one clause or cube.

    ``n_true``/``n_false`` are the eager satisfaction counters (live under
    the counter backend, and under the watched backend only as the
    pure-literal sidecar). ``w1``/``w2``/``blocker`` are the watched
    backend's lazy memos; the counter backend never touches them.

    ``prim``/``sec`` are the constraint's literals split by the primary
    quantifier of its kind (existential for clauses, universal for cubes),
    each preserving literal order. They are immutable once installed; the
    examine scan iterates them instead of re-testing the quantifier of
    every literal on every visit.
    """

    __slots__ = (
        "constraint",
        "n_true",
        "n_false",
        "original",
        "w1",
        "w2",
        "blocker",
        "prim",
        "sec",
    )

    def __init__(self, constraint: Constraint, original: bool):
        self.constraint = constraint
        self.n_true = 0
        self.n_false = 0
        self.original = original
        self.w1 = 0
        self.w2 = 0
        self.blocker = 0
        self.prim: Tuple[int, ...] = ()
        self.sec: Tuple[int, ...] = ()

    @property
    def lits(self) -> Tuple[int, ...]:
        return self.constraint.lits

    @property
    def is_cube(self) -> bool:
        return self.constraint.is_cube

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Rec(%r, T=%d, F=%d)" % (self.constraint, self.n_true, self.n_false)


class PropagationBackend:
    """Base class: matrix installation, the duality-parameterized examine,
    the pure-literal rule, and the learned-constraint bookkeeping."""

    name = "?"
    #: True when :meth:`_examine` should refresh the record's watch memos.
    refreshes_watches = False

    #: Optional acceleration slots the search layer probes at init. A
    #: backend that owns compiled equivalents of the analysis-layer hot
    #: functions overrides these (see the native backend); None means "use
    #: the pure-Python reference" — :func:`~repro.core.constraints.
    #: universal_reduce` / ``existential_reduce`` and :func:`~repro.core.
    #: learning.build_model_cube`. Overrides must be exact ports: they sit
    #: on the learning path, so any deviation breaks decision identity.
    reduce_clause_fast = None
    reduce_cube_fast = None
    native_model_cube = None

    def accelerated_picker(self, policy, keeper):
        """A compiled branching closure for ``policy``, or None for the
        pure-Python :func:`~repro.core.heuristics.make_picker` ranking."""
        return None

    def accelerated_frontier_picker(self, policy, keeper, trail):
        """A compiled decision function fusing ``trail.available_vars()``
        with the ``policy`` ranking (no candidate list materialized), or
        None for the two-step Python path. Fusion is only sound because
        every ranking ends in a strict ``-v`` tiebreak, making the result
        independent of frontier enumeration order."""
        return None

    def __init__(self, formula, prefix, config, stats, trail, keeper):
        self.formula = formula
        self.prefix = prefix
        self.config = config
        self.stats = stats
        self.trail = trail
        self.keeper = keeper
        self._lit_value = trail.lit_value
        self._tab = prefix.tables()
        self._track_pure = config.pure_literals
        self.clause_occ: Dict[int, List[Rec]] = {}
        self.cube_occ: Dict[int, List[Rec]] = {}
        self.occ_unsat: Dict[int, int] = {}
        self.cube_count: Dict[int, int] = {}
        for v in prefix.variables:
            for lit in (v, -v):
                self.clause_occ[lit] = []
                self.cube_occ[lit] = []
                self.occ_unsat[lit] = 0
                self.cube_count[lit] = 0
        self.orig_clauses: List[Rec] = []
        self.learned_clauses: Dict[Tuple[int, ...], Rec] = {}
        self.learned_cubes: Dict[Tuple[int, ...], Rec] = {}
        self.n_unsat_orig = 0
        self.pure_candidates: Set[int] = set()
        self.trivially_false = False
        self.install_matrix()

    # -- setup ---------------------------------------------------------------

    def install_matrix(self) -> None:
        """Install the matrix: sanitize, universally reduce, deduplicate.

        Sanitization handles raw input once, here, so no per-propagation
        code ever has to: duplicate literals within a clause are dropped and
        a same-clause tautology (``v`` and ``-v``) skips the whole clause —
        it is satisfied by every assignment, so installing it would only
        slow propagation down (canonical :class:`Clause` inputs are already
        clean; this covers duck-typed clauses and tolerant readers).
        """
        seen: Set[Tuple[int, ...]] = set()
        for clause in self.formula.clauses:
            lits = sanitize_lits(clause.lits)
            if lits is None:
                continue  # tautological: true in every assignment
            # Canonical clause order (a no-op for Clause inputs, which are
            # already sorted) so the duplicate check below sees raw clauses
            # that differ only in literal order as equal.
            lits = tuple(sorted(lits, key=lambda l: (var_of(l), l)))
            reduced = universal_reduce(lits, self.prefix)
            if not reduced:
                self.trivially_false = True
                return
            if reduced in seen:
                continue
            seen.add(reduced)
            rec = Rec(Clause(reduced), original=True)
            self._split_primaries(rec)
            self.orig_clauses.append(rec)
            self._install_clause(rec)
        self.n_unsat_orig = len(self.orig_clauses)
        self.keeper.bump_initial([r.lits for r in self.orig_clauses])
        self.pure_candidates.update(self.prefix.variables)

    def _split_primaries(self, rec: Rec) -> None:
        """Precompute the record's primary/secondary literal tuples, in
        literal order, so no examine scan ever re-tests a quantifier."""
        is_exist = self._tab.is_exist
        if rec.is_cube:
            rec.prim = tuple(l for l in rec.lits if not is_exist[l if l > 0 else -l])
            rec.sec = tuple(l for l in rec.lits if is_exist[l if l > 0 else -l])
        else:
            rec.prim = tuple(l for l in rec.lits if is_exist[l if l > 0 else -l])
            rec.sec = tuple(l for l in rec.lits if not is_exist[l if l > 0 else -l])

    def _install_clause(self, rec: Rec) -> None:
        raise NotImplementedError

    # -- the backend interface ------------------------------------------------

    def assign(self, lit: int, reason: object) -> None:
        raise NotImplementedError

    def backtrack(self, to_level: int) -> None:
        raise NotImplementedError

    def propagate(self) -> Optional[Tuple[str, object]]:
        raise NotImplementedError

    def _install_learned_clause(self, rec: Rec) -> None:
        raise NotImplementedError

    def _install_learned_cube(self, rec: Rec) -> None:
        raise NotImplementedError

    def add_learned_clause(self, lits: Tuple[int, ...]) -> Rec:
        rec = self.learned_clauses.get(lits)
        if rec is not None:
            return rec
        rec = Rec(Clause(lits, learned=True), original=False)
        self._split_primaries(rec)
        self.learned_clauses[lits] = rec
        self._install_learned_clause(rec)
        self.stats.learned_clauses += 1
        self.stats.learned_clause_lits += len(lits)
        self.keeper.on_learned(lits)
        return rec

    def add_learned_cube(self, lits: Tuple[int, ...]) -> Rec:
        rec = self.learned_cubes.get(lits)
        if rec is not None:
            return rec
        rec = Rec(Cube(lits, learned=True), original=False)
        self._split_primaries(rec)
        self.learned_cubes[lits] = rec
        self._install_learned_cube(rec)
        self.stats.learned_cubes += 1
        self.stats.learned_cube_lits += len(lits)
        self.keeper.on_learned(lits)
        return rec

    # -- the examine routine ----------------------------------------------------

    def _examine(self, rec: Rec, is_cube: bool) -> Optional[Tuple[str, object]]:
        """One full-body scan: Lemmas 4/5 for clauses, their duals for cubes.

        A clause conflicts with no unassigned existential left and
        propagates its single unassigned existential ``e`` when no
        unassigned universal precedes ``e``; a cube triggers a solution with
        no unassigned universal left and propagates (the negation of) its
        single unassigned universal ``u`` when no unassigned existential
        precedes ``u``. One routine covers both by picking the *primary*
        quantifier (existential for clauses, universal for cubes) and the
        *defusing* value (a true literal satisfies a clause; a false literal
        kills a cube).

        Self-guarding: a defused constraint returns None immediately (the
        counter backend pre-guards with its eager counters, so the bail is
        only ever taken by lazy backends). When ``refreshes_watches`` is
        set, the scan re-aims the record's watch memos at the first two
        unassigned primaries it saw.

        The scan runs on the flat kernels: literal truth is one probe of the
        trail's literal-indexed value array, the primary/secondary split is
        precomputed per record (``rec.prim``/``rec.sec``), and the blocking
        test inlines ``prec`` over the prefix's flat level/DFS-interval
        tables. Scanning primaries before secondaries only changes which
        defused literal lands in the blocker memo — a cost-only cache —
        never the produced events.
        """
        lit_val = self.trail.lit_val
        base = self.trail.base
        if is_cube:
            self.stats.cube_visits += 1
            defused = -1  # a false literal kills a cube
        else:
            self.stats.clause_visits += 1
            defused = 1  # a true literal satisfies a clause
        unassigned_p: List[int] = []
        for lit in rec.prim:
            val = lit_val[base + lit]
            if val == 0:
                unassigned_p.append(lit)
            elif val == defused:
                rec.blocker = lit
                return None
        unassigned_s: List[int] = []
        for lit in rec.sec:
            val = lit_val[base + lit]
            if val == 0:
                unassigned_s.append(lit)
            elif val == defused:
                rec.blocker = lit
                return None
        if self.refreshes_watches and unassigned_p:
            w1 = unassigned_p[0]
            w2 = unassigned_p[1] if len(unassigned_p) > 1 else 0
            if w1 != rec.w1 or w2 != rec.w2:
                rec.w1 = w1
                rec.w2 = w2
                self.stats.watcher_swaps += 1
        if not unassigned_p:
            return (SOLUTION if is_cube else CONFLICT, rec)
        if len(unassigned_p) == 1:
            p = unassigned_p[0]
            tab = self._tab
            level = tab.level
            din = tab.din
            pv = p if p > 0 else -p
            p_level = level[pv]
            p_din = din[pv]
            dout = tab.dout
            for s in unassigned_s:
                sv = s if s > 0 else -s
                if level[sv] < p_level and din[sv] <= p_din <= dout[sv]:
                    break  # an unassigned secondary precedes p: not unit
            else:
                self.stats.propagations += 1
                self.assign(-p if is_cube else p, rec)
        return None

    # -- sidecar bookkeeping (occ_unsat / purity candidates) ---------------------

    def _on_clause_sat(self, rec: Rec) -> None:
        if rec.original:
            self.n_unsat_orig -= 1
        occ_unsat = self.occ_unsat
        for lit in rec.lits:
            occ_unsat[lit] -= 1
            if occ_unsat[lit] == 0:
                self.pure_candidates.add(var_of(lit))

    def _on_clause_unsat(self, rec: Rec) -> None:
        if rec.original:
            self.n_unsat_orig += 1
        for lit in rec.lits:
            self.occ_unsat[lit] += 1

    # -- the pure-literal rule ---------------------------------------------------

    def apply_pure_literals(self) -> bool:
        """Assign currently pure literals; True when anything was assigned.

        Existential rule: assign ``l`` when ``l̄`` occurs in no unsatisfied
        clause. Universal rule: assign ``l`` when ``l`` itself occurs in no
        unsatisfied clause. Both additionally require that the assigned
        literal occurs in no *live* learned cube (one not yet killed by a
        false literal) — the guard against the monotone-literal/learning
        interaction analysed in [24]: a pure assignment must never be able
        to turn a learned good true out of prefix order. Cubes already dead
        on this branch cannot become true, so they do not block purity.

        Counter-driven by design: the rule reads the ``occ_unsat`` index
        and the cubes' ``n_false`` sidecar, which every backend maintains
        whenever ``config.pure_literals`` is on.
        """
        assigned = False
        candidates = sorted(self.pure_candidates)
        self.pure_candidates.clear()
        value = self.trail.value
        is_exist = self._tab.is_exist
        occ_unsat = self.occ_unsat
        cube_count = self.cube_count
        cube_occ = self.cube_occ
        for v in candidates:
            if value[v] != 0:
                continue
            if is_exist[v]:
                options = [l for l in (v, -v) if occ_unsat[-l] == 0]
            else:
                options = [l for l in (v, -v) if occ_unsat[l] == 0]
            options = [
                l
                for l in options
                if cube_count[l] == 0
                or all(rec.n_false > 0 for rec in cube_occ[l])
            ]
            if options:
                self.stats.pure_literals += 1
                self.assign(options[0], PURE)
                assigned = True
        return assigned
