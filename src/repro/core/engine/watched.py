"""The prefix-aware watched-literal propagation backend.

**Why clause watches must be existential.** Under a quantifier prefix the
assignment-aware Lemma 4/5 events depend only on the clause's *existential*
population: a clause conflicts when its last unassigned existential
disappears and propagates when exactly one remains (with no unassigned
universal preceding it). Two unassigned existentials therefore certify that
no event is possible, no matter how many universals the clause contains —
so the two watched literals are existential, and universal literals never
need watching for event detection at all. The cube rules are the exact
dual: two unassigned *universal* watches certify a live cube is silent.

**The universal-blocker trick.** Universals still matter for the other
skip condition — a clause satisfied by any true literal (existential or
universal) triggers nothing. Instead of counting, each record caches one
``blocker``: the last literal seen to defuse it (a true literal for
clauses, a false literal for cubes, which is how a universal assignment
typically silences a clause). The blocker is checked against the *current*
assignment before trusting it, so it can go stale across backtracking
without ever being cleaned up.

**Why this is not the classic two-watched-literal scheme.** SAT solvers
keep inverted watch lists and examine only the clauses watching the
dequeued literal. That violates this engine's equivalence contract (see
:mod:`repro.core.engine.backend`): when a unit assigned mid-scan falsifies
another clause that *contains* the dequeued literal but does not *watch*
it, the counter backend detects that clause's conflict during the same
dequeue, in installation order — a watch-list scheme would detect it one
or more dequeues later, after other units have fired, reordering the trail
and hence conflict analysis and learning. So this backend keeps the
occurrence-complete dequeue loop and makes the *per-record* test O(1):
``blocker``/``w1``/``w2`` are lazy, self-repairing memos, not maintained
watch lists — nothing is updated at assign or backtrack time.

What the laziness buys: ``assign``/``backtrack`` touch no occurrence list
at all when the pure-literal rule is off (certified runs force it off),
and only two of the counter backend's four walks when it is on — the
``occ_unsat``/cube-liveness sidecar that the counter-driven pure rule
reads. The model check (every matrix clause satisfied) is eager via the
sidecar when pure is on, and a blocker-accelerated scan at quiescence when
it is off.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.engine.backend import MODEL, PropagationBackend, Rec


class WatchedBackend(PropagationBackend):
    """Lazy watch/blocker memos over the occurrence-complete dequeue loop."""

    name = "watched"
    refreshes_watches = True

    #: the clause that defeated the last lazy model check; re-checked first
    #: on the next quiescence (it usually still fails, making the common
    #: case O(one clause) instead of O(matrix)).
    _model_witness: Optional[Rec] = None

    def _install_clause(self, rec: Rec) -> None:
        for lit in rec.lits:
            self.clause_occ[lit].append(rec)
            self.occ_unsat[lit] += 1
        # Aim the watches at the first two existentials; every installed
        # clause has at least one (an all-universal clause reduces to the
        # empty clause and never gets here), and nothing is assigned yet.
        prim = rec.prim
        rec.w1 = prim[0]
        rec.w2 = prim[1] if len(prim) > 1 else 0

    def assign(self, lit: int, reason: object) -> None:
        trail = self.trail
        trail.push(lit, reason)
        if self._track_pure:
            # The pure-literal sidecar: the rule reads occ_unsat (via the
            # sat/unsat transitions of clause n_true) and cube n_false, so
            # only those two of the counter backend's four walks survive.
            for rec in self.clause_occ[lit]:
                rec.n_true += 1
                if rec.n_true == 1:
                    self._on_clause_sat(rec)
            for rec in self.cube_occ[-lit]:
                rec.n_false += 1
        if len(trail.lits) > self.stats.max_trail:
            self.stats.max_trail = len(trail.lits)

    def backtrack(self, to_level: int) -> None:
        trail = self.trail
        target = trail.level_start[to_level + 1]
        unassign = trail.unassign
        if self._track_pure:
            clause_occ = self.clause_occ
            cube_occ = self.cube_occ
            pure_candidates = self.pure_candidates
            for lit in reversed(trail.lits[target:]):
                # see CounterBackend.backtrack for why exactly the
                # unassigned variables re-enter the candidate set.
                pure_candidates.add(unassign(lit))
                for rec in clause_occ[lit]:
                    rec.n_true -= 1
                    if rec.n_true == 0:
                        self._on_clause_unsat(rec)
                for rec in cube_occ[-lit]:
                    rec.n_false -= 1
        else:
            # No sidecar to unwind: unassigning is O(1) per literal. The
            # watch/blocker memos repair themselves against the live
            # assignment, so none of them needs touching here either.
            for lit in reversed(trail.lits[target:]):
                unassign(lit)
        trail.shrink(to_level, target)

    def propagate(self) -> Optional[Tuple[str, object]]:
        """The counter backend's dequeue loop with O(1) per-record tests.

        Each record is skipped without scanning its body when its memos
        prove the reference backend would find no event there: the cached
        blocker still defuses it, one watch defuses it (re-caching the
        blocker), or both watches are unassigned — two unassigned primaries
        rule out conflict, solution and unit alike. Everything else falls
        through to the shared examine, which re-aims the memos as a side
        effect.
        """
        trail = self.trail
        lit_val = trail.lit_val  # literal-indexed: 1 true, -1 false, 0 open
        base = trail.base
        lits = trail.lits  # stable alias: push appends / shrink dels in place
        examine = self._examine
        clause_occ = self.clause_occ
        cube_occ = self.cube_occ
        track = self._track_pure
        while True:
            while trail.queue_head < len(lits):
                lit = lits[trail.queue_head]
                trail.queue_head += 1
                if track:
                    # The pure-literal sidecar keeps n_true/n_false exact,
                    # so reuse the counter backend's O(1) defused guards and
                    # spend the watch memos purely on skipping body scans.
                    for rec in clause_occ[-lit]:
                        if rec.n_true == 0:
                            w2 = rec.w2
                            if (
                                w2
                                and lit_val[base + rec.w1] == 0
                                and lit_val[base + w2] == 0
                            ):
                                continue  # two unassigned existentials
                            event = examine(rec, False)
                            if event is not None:
                                return event
                    for rec in cube_occ[lit]:
                        if rec.n_false == 0:
                            w2 = rec.w2
                            if (
                                w2
                                and lit_val[base + rec.w1] == 0
                                and lit_val[base + w2] == 0
                            ):
                                continue  # two unassigned universals
                            event = examine(rec, True)
                            if event is not None:
                                return event
                    continue
                # No counters anywhere: the memos carry the whole test,
                # with literal truth read in one probe of lit_val.
                for rec in clause_occ[-lit]:
                    b = rec.blocker
                    if b and lit_val[base + b] == 1:
                        continue  # cached satisfying literal still true
                    w1 = rec.w1
                    w2 = rec.w2
                    if w2:
                        v1 = lit_val[base + w1]
                        v2 = lit_val[base + w2]
                        if v1 == 0:
                            if v2 == 0:
                                continue  # two unassigned existentials
                            if v2 == 1:
                                rec.blocker = w2
                                continue  # watch satisfies the clause
                        elif v1 == 1:
                            rec.blocker = w1
                            continue
                        elif v2 == 1:
                            rec.blocker = w2
                            continue
                    elif w1:
                        if lit_val[base + w1] == 1:
                            rec.blocker = w1
                            continue
                    event = examine(rec, False)
                    if event is not None:
                        return event
                for rec in cube_occ[lit]:
                    b = rec.blocker
                    if b and lit_val[base + b] == -1:
                        continue  # cached false literal: the cube is dead
                    w1 = rec.w1
                    w2 = rec.w2
                    if w2:
                        v1 = lit_val[base + w1]
                        v2 = lit_val[base + w2]
                        if v1 == 0:
                            if v2 == 0:
                                continue  # two unassigned universals
                            if v2 == -1:
                                rec.blocker = w2
                                continue  # watch is false: dead cube
                        elif v1 == -1:
                            rec.blocker = w1
                            continue
                        elif v2 == -1:
                            rec.blocker = w2
                            continue
                    elif w1:
                        if lit_val[base + w1] == -1:
                            rec.blocker = w1
                            continue
                    event = examine(rec, True)
                    if event is not None:
                        return event
            if track:
                if self.n_unsat_orig == 0:
                    return (MODEL, None)
                if self.apply_pure_literals():
                    continue
                return None
            if self._matrix_satisfied():
                return (MODEL, None)
            return None

    def _matrix_satisfied(self) -> bool:
        """Lazy model test at quiescence: is every matrix clause satisfied?

        Replaces the eager ``n_unsat_orig`` counter when the pure-literal
        sidecar is off. Two memos keep the common case cheap: the witness
        clause that failed the previous check is re-tried first (it almost
        always still fails, skipping the matrix walk entirely), and each
        clause's blocker short-circuits the full scan when it does happen.
        """
        lit_val = self.trail.lit_val
        base = self.trail.base
        wit = self._model_witness
        if wit is not None:
            for lit in wit.lits:
                if lit_val[base + lit] == 1:
                    break
            else:
                return False
        for rec in self.orig_clauses:
            b = rec.blocker
            if b and lit_val[base + b] == 1:
                continue
            for lit in rec.lits:
                if lit_val[base + lit] == 1:
                    rec.blocker = lit
                    break
            else:
                self._model_witness = rec
                return False
        return True

    def _install_learned_clause(self, rec: Rec) -> None:
        track = self._track_pure
        lit_val = self.trail.lit_val
        base = self.trail.base
        sat = False
        for lit in rec.lits:
            self.clause_occ[lit].append(rec)
            if lit_val[base + lit] == 1:
                sat = True
                rec.blocker = lit
                if track:
                    rec.n_true += 1
        # Watches: the first two unassigned existentials, in literal order
        # (rec.prim preserves it, so this matches the historical inline scan).
        w = []
        for lit in rec.prim:
            if lit_val[base + lit] == 0:
                w.append(lit)
                if len(w) == 2:
                    break
        rec.w1 = w[0] if w else 0
        rec.w2 = w[1] if len(w) > 1 else 0
        if track and not sat:
            for lit in rec.lits:
                self.occ_unsat[lit] += 1

    def _install_learned_cube(self, rec: Rec) -> None:
        track = self._track_pure
        lit_val = self.trail.lit_val
        base = self.trail.base
        for lit in rec.lits:
            self.cube_occ[lit].append(rec)
            self.cube_count[lit] += 1
            if lit_val[base + lit] == -1:
                rec.blocker = lit
                if track:
                    rec.n_false += 1
        w = []
        for lit in rec.prim:
            if lit_val[base + lit] == 0:
                w.append(lit)
                if len(w) == 2:
                    break
        rec.w1 = w[0] if w else 0
        rec.w2 = w[1] if len(w) > 1 else 0
