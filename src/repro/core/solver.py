"""The iterative QDPLL engine — QUBE(TO)/QUBE(PO) on a common kernel.

This is the production counterpart of :mod:`repro.core.simple`: a trail-based
search procedure with

* assignment-aware generalizations of Lemmas 4 and 5 (conflict detection and
  unit propagation under a partial-order prefix),
* dual propagation over learned cubes (goods),
* pure-literal fixing (Section III, with the conservative learned-cube guard
  discussed in [24]),
* nogood/good learning with backjumping (:mod:`repro.core.learning`), and
* the Section VI branching heuristics (:mod:`repro.core.heuristics`).

The QUBE(TO) behaviour of the paper is obtained by feeding the engine a
*prenex* formula (the prefix itself then enforces the total order: only the
outermost unfinished block is ever branchable); QUBE(PO) is the same engine
on the original quantifier tree. This mirrors the paper's observation that
the only structural changes needed are the branching score and the O(1)
``d``/``f`` order test — both of which degenerate gracefully on total
orders.

Since the layering refactor the engine itself lives in
:mod:`repro.core.engine`: the trail, the search layer, and two
interchangeable propagation backends (``counters``, the original eager
scheme, and ``watched``, the lazy prefix-aware watch/blocker scheme —
selected by ``SolverConfig.engine``). This module is the stable façade: it
re-exports :class:`SolverConfig` from its historical import path and keeps
:class:`QdpllSolver`'s legacy private attribute names alive as views onto
the layered state, because the white-box tests and debugging sessions poke
them.

Cost accounting uses *decisions* as the primary platform-independent metric;
wall-clock is also recorded. A run that exhausts its decision or time budget
reports ``Outcome.UNKNOWN`` — the reproduction's analogue of the paper's
600-second timeouts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.engine.backend import (
    CONFLICT as _CONFLICT,
    MODEL as _MODEL,
    PURE as _PURE,
    SOLUTION as _SOLUTION,
    Rec as _Rec,
)
from repro.core.engine.config import ENGINES, SolverConfig, default_engine
from repro.core.engine.search import BACKENDS, SearchEngine
from repro.core.formula import QBF
from repro.core.paradigm import Capabilities, Solver, register_paradigm
from repro.core.result import Outcome, SolveResult

__all__ = [
    "BACKENDS",
    "ENGINES",
    "QdpllSolver",
    "SearchSolver",
    "SolverConfig",
    "default_engine",
    "solve",
]


class QdpllSolver(SearchEngine):
    """One solving session over a fixed QBF — the assembled layered engine.

    All solving behaviour lives in :class:`~repro.core.engine.search.
    SearchEngine` and the propagation backend it instantiates; this subclass
    only restores the pre-refactor private names (``_trail``, ``_value``,
    ``_orig_clauses``, ``_assign``, …) as delegating views so white-box
    tests and interactive debugging keep working unchanged.
    """

    # -- trail views -----------------------------------------------------------

    @property
    def _trail(self) -> List[int]:
        return self.trail.lits

    @property
    def _value(self) -> List[int]:
        return self.trail.value

    @property
    def _level(self) -> List[int]:
        return self.trail.level

    @property
    def _pos(self) -> List[int]:
        return self.trail.pos

    @property
    def _reason(self) -> List[object]:
        return self.trail.reason

    @property
    def _level_start(self) -> List[int]:
        return self.trail.level_start

    @property
    def _decision(self) -> List[Tuple[int, bool]]:
        return self.trail.decision

    @property
    def _queue_head(self) -> int:
        return self.trail.queue_head

    @_queue_head.setter
    def _queue_head(self, value: int) -> None:
        self.trail.queue_head = value

    # -- backend views ---------------------------------------------------------

    @property
    def _orig_clauses(self) -> List[_Rec]:
        return self.backend.orig_clauses

    @property
    def _learned_clauses(self) -> Dict[Tuple[int, ...], _Rec]:
        return self.backend.learned_clauses

    @property
    def _learned_cubes(self) -> Dict[Tuple[int, ...], _Rec]:
        return self.backend.learned_cubes

    @property
    def _pure_candidates(self) -> Set[int]:
        return self.backend.pure_candidates

    @property
    def _clause_occ(self) -> Dict[int, List[_Rec]]:
        return self.backend.clause_occ

    @property
    def _cube_occ(self) -> Dict[int, List[_Rec]]:
        return self.backend.cube_occ

    @property
    def _occ_unsat(self) -> Dict[int, int]:
        return self.backend.occ_unsat

    @property
    def _cube_count(self) -> Dict[int, int]:
        return self.backend.cube_count

    @property
    def _n_unsat_orig(self) -> int:
        return self.backend.n_unsat_orig

    @property
    def _trivially_false(self) -> bool:
        return self.backend.trivially_false

    # -- operation delegates ---------------------------------------------------

    def _assign(self, lit: int, reason: object) -> None:
        self.backend.assign(lit, reason)

    def _backtrack(self, to_level: int) -> None:
        self.backend.backtrack(to_level)

    def _propagate(self) -> Optional[Tuple[str, object]]:
        return self.backend.propagate()

    def _apply_pure_literals(self) -> bool:
        return self.backend.apply_pure_literals()

    def _add_learned_clause(self, lits: Tuple[int, ...]) -> _Rec:
        return self.backend.add_learned_clause(lits)

    def _add_learned_cube(self, lits: Tuple[int, ...]) -> _Rec:
        return self.backend.add_learned_cube(lits)

    def _on_clause_sat(self, rec: _Rec) -> None:
        self.backend._on_clause_sat(rec)

    def _on_clause_unsat(self, rec: _Rec) -> None:
        self.backend._on_clause_unsat(rec)


@register_paradigm
class SearchSolver(Solver):
    """The QDPLL search paradigm behind the neutral :class:`Solver` seam.

    Thin adapter: :meth:`load` stores the formula, each :meth:`solve` builds
    a fresh :class:`QdpllSolver` (engines are single-session objects) and
    forwards every hook — search is the only paradigm with the full
    capability set, so nothing is refused.
    """

    name = "search"
    capabilities = Capabilities(proof=True, checkpoint=True, exchange=True, interrupt=True)

    def __init__(self, config: Optional[SolverConfig] = None):
        super().__init__(config)
        #: the engine of the most recent solve, kept for white-box probing.
        self.engine: Optional[QdpllSolver] = None

    def load(self, formula: QBF) -> None:
        self.formula = formula
        self.engine = None

    def _solve_loaded(
        self,
        proof: Optional[object],
        interrupt: Optional[object],
        resume_from: Optional[object],
        checkpoint_to: Optional[str],
        exchange: Optional[object],
    ) -> SolveResult:
        self.engine = QdpllSolver(
            self.formula, self.config, proof=proof, interrupt=interrupt, exchange=exchange
        )
        return self.engine.solve(resume_from=resume_from, checkpoint_to=checkpoint_to)


def solve(
    formula: QBF,
    config: Optional[SolverConfig] = None,
    proof: Optional[object] = None,
    interrupt: Optional[object] = None,
    resume_from: Optional[object] = None,
    checkpoint_to: Optional[str] = None,
    exchange: Optional[object] = None,
) -> SolveResult:
    """Solve ``formula`` with a fresh engine; see :class:`SolverConfig`.

    ``interrupt``/``resume_from``/``checkpoint_to`` are the preemption and
    checkpoint hooks of :meth:`SearchEngine.solve`; ``exchange`` is the
    constraint-sharing hook of cube-and-conquer workers (see
    :mod:`repro.cube.sharing` and :mod:`repro.robustness`).

    Dispatches on ``config.paradigm``: the historical direct path for
    ``"search"``, the :mod:`repro.core.paradigm` registry otherwise (where
    hooks the paradigm cannot honor raise ``CapabilityError``).
    """
    config = config or SolverConfig()
    if config.paradigm != "search":
        from repro.core.paradigm import solve_formula

        return solve_formula(
            formula,
            config,
            proof=proof,
            interrupt=interrupt,
            resume_from=resume_from,
            checkpoint_to=checkpoint_to,
            exchange=exchange,
        )
    return QdpllSolver(
        formula, config, proof=proof, interrupt=interrupt, exchange=exchange
    ).solve(resume_from=resume_from, checkpoint_to=checkpoint_to)
