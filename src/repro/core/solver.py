"""The iterative QDPLL engine — QUBE(TO)/QUBE(PO) on a common kernel.

This is the production counterpart of :mod:`repro.core.simple`: a trail-based
search procedure with

* assignment-aware generalizations of Lemmas 4 and 5 (conflict detection and
  unit propagation under a partial-order prefix),
* dual propagation over learned cubes (goods),
* pure-literal fixing (Section III, with the conservative learned-cube guard
  discussed in [24]),
* nogood/good learning with backjumping (:mod:`repro.core.learning`), and
* the Section VI branching heuristics (:mod:`repro.core.heuristics`).

The QUBE(TO) behaviour of the paper is obtained by feeding the engine a
*prenex* formula (the prefix itself then enforces the total order: only the
outermost unfinished block is ever branchable); QUBE(PO) is the same engine
on the original quantifier tree. This mirrors the paper's observation that
the only structural changes needed are the branching score and the O(1)
``d``/``f`` order test — both of which degenerate gracefully on total
orders.

Cost accounting uses *decisions* as the primary platform-independent metric;
wall-clock is also recorded. A run that exhausts its decision or time budget
reports ``Outcome.UNKNOWN`` — the reproduction's analogue of the paper's
600-second timeouts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.constraints import Clause, Constraint, Cube, universal_reduce
from repro.core.formula import QBF
from repro.core.heuristics import POLICIES, ScoreKeeper, pick_literal
from repro.core.learning import (
    Backjump,
    Fallback,
    Terminal,
    TrailView,
    analyze_conflict,
    analyze_solution,
    build_model_cube,
)
from repro.core.literals import EXISTS, FORALL, var_of
from repro.core.result import Outcome, SolveResult, SolverStats


@dataclass
class SolverConfig:
    """Feature switches of one engine instance.

    The defaults model the full QUBE(PO); the ablation benchmarks toggle the
    individual switches.
    """

    #: branching policy: "levelsub" (prefix position first, then the
    #: Section VI subtree score — the reproduction's QUBE(PO) default),
    #: "subtree" (the pure Section VI score formula), "counter" (plain
    #: VSIDS-like, tree-blind ranking), or "naive" (lowest id).
    policy: str = "levelsub"
    learn_clauses: bool = True
    learn_cubes: bool = True
    pure_literals: bool = True
    #: backtrack target for asserting constraints: "assert" jumps to the
    #: classical asserting level, "shallow" to the least destructive level
    #: at which the learned constraint is still unit.
    backjump: str = "assert"
    max_decisions: Optional[int] = None
    max_seconds: Optional[float] = None
    decay_interval: int = 64

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError("unknown policy %r" % (self.policy,))
        if self.backjump not in ("assert", "shallow"):
            raise ValueError("unknown backjump mode %r" % (self.backjump,))


class _Rec:
    """Solver-private record of one clause or cube with live counters."""

    __slots__ = ("constraint", "n_true", "n_false", "original")

    def __init__(self, constraint: Constraint, original: bool):
        self.constraint = constraint
        self.n_true = 0
        self.n_false = 0
        self.original = original

    @property
    def lits(self) -> Tuple[int, ...]:
        return self.constraint.lits

    @property
    def is_cube(self) -> bool:
        return self.constraint.is_cube

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Rec(%r, T=%d, F=%d)" % (self.constraint, self.n_true, self.n_false)


#: sentinel reason for pure-literal assignments (decision-like in analyses).
_PURE = object()

_CONFLICT = "conflict"
_SOLUTION = "solution"
_MODEL = "model"


class QdpllSolver:
    """One solving session over a fixed QBF. Use :func:`solve` for one-shots.

    ``proof`` optionally attaches a :class:`repro.certify.proof.ProofLogger`
    that records the run's implicit clause/term resolution derivation as a
    machine-checkable certificate. Logging is passive — decisions,
    assignments and learned constraints are identical with and without it —
    and with ``proof=None`` every hook short-circuits on an ``is None``
    test, so the disabled cost is zero.
    """

    def __init__(
        self,
        formula: QBF,
        config: Optional[SolverConfig] = None,
        proof: Optional[object] = None,
    ):
        self.formula = formula
        self.config = config or SolverConfig()
        self._proof = proof
        self.prefix = formula.prefix
        self.stats = SolverStats()
        nv = max(self.prefix.variables, default=0)
        self._num_slots = nv + 1
        self._value: List[int] = [0] * self._num_slots
        self._level: List[int] = [0] * self._num_slots
        self._pos: List[int] = [-1] * self._num_slots
        self._reason: List[object] = [None] * self._num_slots
        self._trail: List[int] = []
        self._queue_head = 0
        self._level_start: List[int] = [0]
        self._decision: List[Tuple[int, bool]] = [(0, False)]  # slot per level
        self._clause_occ: Dict[int, List[_Rec]] = {}
        self._cube_occ: Dict[int, List[_Rec]] = {}
        self._occ_unsat: Dict[int, int] = {}
        self._cube_count: Dict[int, int] = {}
        for v in self.prefix.variables:
            for lit in (v, -v):
                self._clause_occ[lit] = []
                self._cube_occ[lit] = []
                self._occ_unsat[lit] = 0
                self._cube_count[lit] = 0
        self._orig_clauses: List[_Rec] = []
        self._learned_clauses: Dict[Tuple[int, ...], _Rec] = {}
        self._learned_cubes: Dict[Tuple[int, ...], _Rec] = {}
        self._n_unsat_orig = 0
        self._pure_candidates: Set[int] = set()
        self._trivially_false = False
        self._keeper = ScoreKeeper(self.prefix, decay_interval=self.config.decay_interval)
        self._install_matrix()
        if self._proof is not None:
            self._proof.register_formula(formula)
        self._view = TrailView(
            value=self._lit_value,
            level_of=lambda v: self._level[v],
            pos_of=lambda v: self._pos[v],
            reason_of=self._reason_constraint,
            prefix=self.prefix,
        )
        self._deadline: Optional[float] = None

    # -- setup ---------------------------------------------------------------

    def _install_matrix(self) -> None:
        seen: Set[Tuple[int, ...]] = set()
        for clause in self.formula.clauses:
            reduced = universal_reduce(clause.lits, self.prefix)
            if not reduced:
                self._trivially_false = True
                return
            if reduced in seen:
                continue
            seen.add(reduced)
            rec = _Rec(Clause(reduced), original=True)
            self._orig_clauses.append(rec)
            for lit in rec.lits:
                self._clause_occ[lit].append(rec)
                self._occ_unsat[lit] += 1
        self._n_unsat_orig = len(self._orig_clauses)
        self._keeper.bump_initial([r.lits for r in self._orig_clauses])
        self._pure_candidates.update(self.prefix.variables)

    # -- trail primitives ------------------------------------------------------

    @property
    def current_level(self) -> int:
        return len(self._level_start) - 1

    def _lit_value(self, lit: int) -> Optional[bool]:
        raw = self._value[var_of(lit)]
        if raw == 0:
            return None
        return (raw > 0) == (lit > 0)

    def _reason_constraint(self, var: int) -> Optional[Constraint]:
        reason = self._reason[var]
        if isinstance(reason, _Rec):
            return reason.constraint
        return None

    def _assign(self, lit: int, reason: object) -> None:
        v = var_of(lit)
        assert self._value[v] == 0, "double assignment of %d" % v
        self._value[v] = 1 if lit > 0 else -1
        self._level[v] = self.current_level
        self._pos[v] = len(self._trail)
        self._reason[v] = reason
        self._trail.append(lit)
        # Counters are maintained eagerly (at assignment, not at dequeue) so
        # that _backtrack can reverse them uniformly even when the
        # propagation queue still holds unprocessed literals.
        for rec in self._clause_occ[lit]:
            rec.n_true += 1
            if rec.n_true == 1:
                self._on_clause_sat(rec)
        for rec in self._clause_occ[-lit]:
            rec.n_false += 1
        for rec in self._cube_occ[-lit]:
            rec.n_false += 1
        for rec in self._cube_occ[lit]:
            rec.n_true += 1
        if len(self._trail) > self.stats.max_trail:
            self.stats.max_trail = len(self._trail)

    def _backtrack(self, to_level: int) -> None:
        target = self._level_start[to_level + 1]
        for lit in reversed(self._trail[target:]):
            v = var_of(lit)
            self._value[v] = 0
            self._reason[v] = None
            # A variable that becomes unassigned may be pure in the restored
            # state (its candidacy was consumed further down this branch,
            # possibly while it was assigned and hence skipped by
            # _apply_pure_literals). Purity only has to be re-examined for
            # exactly these variables: for a variable that stayed unassigned
            # through the dive, failing the purity test deeper implies
            # failing it in every ancestor state, since unassigning can only
            # add unsatisfied occurrences and revive learned cubes.
            self._pure_candidates.add(v)
            for rec in self._clause_occ[lit]:
                rec.n_true -= 1
                if rec.n_true == 0:
                    self._on_clause_unsat(rec)
            for rec in self._clause_occ[-lit]:
                rec.n_false -= 1
            for rec in self._cube_occ[-lit]:
                rec.n_false -= 1
            for rec in self._cube_occ[lit]:
                rec.n_true -= 1
        del self._trail[target:]
        del self._level_start[to_level + 1 :]
        del self._decision[to_level + 1 :]
        self._queue_head = len(self._trail)

    def _on_clause_sat(self, rec: _Rec) -> None:
        if rec.original:
            self._n_unsat_orig -= 1
        for lit in rec.lits:
            self._occ_unsat[lit] -= 1
            if self._occ_unsat[lit] == 0:
                self._pure_candidates.add(var_of(lit))

    def _on_clause_unsat(self, rec: _Rec) -> None:
        if rec.original:
            self._n_unsat_orig += 1
        for lit in rec.lits:
            self._occ_unsat[lit] += 1

    # -- propagation ------------------------------------------------------------

    def _examine_clause(self, rec: _Rec) -> Optional[Tuple[str, object]]:
        """Unit/conflict test under the current assignment (Lemmas 4 and 5)."""
        unassigned_e: List[int] = []
        unassigned_u: List[int] = []
        prefix = self.prefix
        for lit in rec.lits:
            val = self._lit_value(lit)
            if val is None:
                if prefix.is_existential(lit):
                    unassigned_e.append(lit)
                else:
                    unassigned_u.append(lit)
        if not unassigned_e:
            return (_CONFLICT, rec)
        if len(unassigned_e) == 1:
            e = unassigned_e[0]
            if all(not prefix.prec(u, e) for u in unassigned_u):
                self.stats.propagations += 1
                self._assign(e, rec)
        return None

    def _examine_cube(self, rec: _Rec) -> Optional[Tuple[str, object]]:
        """Dual test: a true cube triggers a solution, a unit cube propagates."""
        unassigned_e: List[int] = []
        unassigned_u: List[int] = []
        prefix = self.prefix
        for lit in rec.lits:
            val = self._lit_value(lit)
            if val is None:
                if prefix.is_existential(lit):
                    unassigned_e.append(lit)
                else:
                    unassigned_u.append(lit)
        if not unassigned_u:
            return (_SOLUTION, rec)
        if len(unassigned_u) == 1:
            u = unassigned_u[0]
            if all(not prefix.prec(e, u) for e in unassigned_e):
                self.stats.propagations += 1
                self._assign(-u, rec)
        return None

    def _propagate(self) -> Optional[Tuple[str, object]]:
        """Run propagation + pure literals to fixpoint.

        Returns None (keep searching), a conflict, a solution triggered by a
        learned cube, or a *model* (every matrix clause satisfied).
        """
        while True:
            while self._queue_head < len(self._trail):
                lit = self._trail[self._queue_head]
                self._queue_head += 1
                for rec in self._clause_occ[-lit]:
                    if rec.n_true == 0:
                        event = self._examine_clause(rec)
                        if event is not None:
                            return event
                for rec in self._cube_occ[lit]:
                    if rec.n_false == 0:
                        event = self._examine_cube(rec)
                        if event is not None:
                            return event
            if self._n_unsat_orig == 0:
                return (_MODEL, None)
            if self.config.pure_literals and self._apply_pure_literals():
                continue
            return None

    def _apply_pure_literals(self) -> bool:
        """Assign currently pure literals; True when anything was assigned.

        Existential rule: assign ``l`` when ``l̄`` occurs in no unsatisfied
        clause. Universal rule: assign ``l`` when ``l`` itself occurs in no
        unsatisfied clause. Both additionally require that the assigned
        literal occurs in no *live* learned cube (one not yet killed by a
        false literal) — the guard against the monotone-literal/learning
        interaction analysed in [24]: a pure assignment must never be able
        to turn a learned good true out of prefix order. Cubes already dead
        on this branch cannot become true, so they do not block purity.
        """
        assigned = False
        candidates = sorted(self._pure_candidates)
        self._pure_candidates.clear()
        for v in candidates:
            if self._value[v] != 0:
                continue
            if self.prefix.quant(v) is EXISTS:
                options = [l for l in (v, -v) if self._occ_unsat[-l] == 0]
            else:
                options = [l for l in (v, -v) if self._occ_unsat[l] == 0]
            options = [
                l
                for l in options
                if self._cube_count[l] == 0
                or all(rec.n_false > 0 for rec in self._cube_occ[l])
            ]
            if options:
                self.stats.pure_literals += 1
                self._assign(options[0], _PURE)
                assigned = True
        return assigned

    # -- decisions ----------------------------------------------------------------

    def _available_vars(self) -> List[int]:
        """Unassigned variables whose ``≺`` predecessors are all assigned.

        A variable is *top* in the current subproblem iff no unassigned
        variable of a strictly lower alternation level sits above it in the
        tree. The walk carries two flags: pending variables in ancestors of
        strictly lower level (blocks them) and pending variables in
        ancestors of the same level (blocks only deeper levels).
        """
        out: List[int] = []
        value = self._value

        def visit(block, pending_lt: bool, pending_eq: bool) -> None:
            pending_here = False
            for v in block.variables:
                if value[v] == 0:
                    pending_here = True
                    if not pending_lt:
                        out.append(v)
            for child in block.children:
                if child.level == block.level:
                    visit(child, pending_lt, pending_eq or pending_here)
                else:
                    visit(child, pending_lt or pending_eq or pending_here, False)

        visit(self.prefix.root, False, False)
        return out

    def _decide(self) -> bool:
        """Branch on a heuristic literal; False when no variable remains."""
        available = self._available_vars()
        lit = pick_literal(self.config.policy, self._keeper, available)
        if lit is None:
            return False
        self.stats.decisions += 1
        self._level_start.append(len(self._trail))
        self._decision.append((lit, False))
        self._assign(lit, None)
        return True

    def _flip_chronological(self, want: object) -> bool:
        """Chronological fallback: flip the deepest unflipped ``want`` decision.

        ``want`` is EXISTS after a conflict and FORALL after a solution.
        Returns False when no such decision exists (search exhausted).
        """
        self.stats.chrono_backtracks += 1
        for lvl in range(self.current_level, 0, -1):
            lit, flipped = self._decision[lvl]
            if not flipped and self.prefix.quant(lit) is want:
                self._backtrack(lvl - 1)
                self._level_start.append(len(self._trail))
                self._decision.append((-lit, True))
                self._assign(-lit, None)
                return True
        return False

    # -- learning plumbing ----------------------------------------------------------

    def _add_learned_clause(self, lits: Tuple[int, ...]) -> _Rec:
        rec = self._learned_clauses.get(lits)
        if rec is not None:
            return rec
        rec = _Rec(Clause(lits, learned=True), original=False)
        self._learned_clauses[lits] = rec
        sat = False
        for lit in lits:
            self._clause_occ[lit].append(rec)
            val = self._lit_value(lit)
            if val is True:
                rec.n_true += 1
                sat = True
            elif val is False:
                rec.n_false += 1
        if not sat:
            for lit in lits:
                self._occ_unsat[lit] += 1
        else:
            # keep the unsat-occurrence invariant: a satisfied clause does
            # not contribute, so nothing to add.
            pass
        self.stats.learned_clauses += 1
        self.stats.learned_clause_lits += len(lits)
        self._keeper.on_learned(lits)
        return rec

    def _add_learned_cube(self, lits: Tuple[int, ...]) -> _Rec:
        rec = self._learned_cubes.get(lits)
        if rec is not None:
            return rec
        rec = _Rec(Cube(lits, learned=True), original=False)
        self._learned_cubes[lits] = rec
        for lit in lits:
            self._cube_occ[lit].append(rec)
            self._cube_count[lit] += 1
            val = self._lit_value(lit)
            if val is True:
                rec.n_true += 1
            elif val is False:
                rec.n_false += 1
        self.stats.learned_cubes += 1
        self.stats.learned_cube_lits += len(lits)
        self._keeper.on_learned(lits)
        return rec

    # -- main loop ---------------------------------------------------------------------

    def solve(self) -> SolveResult:
        """Run the search to completion or budget exhaustion."""
        start = time.monotonic()
        if self.config.max_seconds is not None:
            self._deadline = start + self.config.max_seconds
        outcome = self._run()
        if self._proof is not None and not self._proof.concluded:
            # A verdict that never passed through a Terminal analysis:
            # budget exhaustion, or search exhausted by chronological flips
            # alone. Conclude honestly with no backing derivation.
            reason = (
                "budget exhausted"
                if outcome is Outcome.UNKNOWN
                else "verdict reached by chronological exhaustion"
            )
            self._proof.conclude(outcome.value, None, reason=reason)
        return SolveResult(outcome, self.stats, time.monotonic() - start)

    def _budget_exhausted(self) -> bool:
        cfg = self.config
        if cfg.max_decisions is not None:
            if self.stats.decisions >= cfg.max_decisions:
                return True
            # Safety net: backjump/propagation loops that make no decisions
            # still burn backtracks; bound them by a generous multiple so a
            # budgeted run can never spin forever.
            if self.stats.backtracks >= 32 * cfg.max_decisions + 1024:
                return True
        if self._deadline is not None and time.monotonic() > self._deadline:
            return True
        return False

    def _run(self) -> Outcome:
        if self._trivially_false:
            if self._proof is not None:
                # register_formula logged the clause whose reduction is
                # empty; it is the whole refutation.
                self._proof.conclude("false", self._proof.lookup(False, ()))
            return Outcome.FALSE
        if not self._orig_clauses:
            if self._proof is not None:
                # Empty matrix: the empty cube vacuously satisfies it.
                self._proof.conclude("true", self._proof.initial_cube(()))
            return Outcome.TRUE
        while True:
            event = self._propagate()
            if event is None:
                if self._budget_exhausted():
                    return Outcome.UNKNOWN
                if not self._decide():
                    # Every variable assigned without conflict: all clauses
                    # are satisfied, which _propagate reports as a model.
                    raise AssertionError("decision requested with no variables left")
                continue
            kind, payload = event
            if kind == _CONFLICT:
                self.stats.conflicts += 1
                verdict = self._handle_conflict(payload)
            else:
                self.stats.solutions += 1
                verdict = self._handle_solution(payload)
            if verdict is not None:
                return verdict
            if self._budget_exhausted():
                return Outcome.UNKNOWN

    def _backjump_target(self, outcome: Backjump) -> int:
        if self.config.backjump == "shallow":
            return outcome.shallow_level
        return outcome.level

    def _bind_learned(self, trace: Optional[object], is_cube: bool, lits: Tuple[int, ...]) -> None:
        """Name a learned constraint after its derivation's final step."""
        if trace is None or not trace.ok:
            return
        if trace.cur_lits == lits:
            self._proof.bind(is_cube, lits, trace.cur_id)
        else:  # pragma: no cover - trace desync would be a logger bug
            trace.fail("learned constraint does not match its derivation")

    def _handle_conflict(self, rec: _Rec) -> Optional[Outcome]:
        if self.config.learn_clauses:
            trace = None
            if self._proof is not None:
                trace = self._proof.begin_clause(rec.lits)
            outcome = analyze_conflict(rec.lits, self._view, trace)
            if isinstance(outcome, Terminal):
                if self._proof is not None:
                    self._proof.conclude(
                        "false", trace.final_id if trace is not None else None
                    )
                return Outcome.FALSE
            if isinstance(outcome, Backjump):
                self.stats.backjumps += 1
                self._backtrack(self._backjump_target(outcome))
                learned = self._add_learned_clause(outcome.lits)
                self._bind_learned(trace, False, outcome.lits)
                if self._lit_value(outcome.assert_lit) is None:
                    self.stats.propagations += 1
                    self._assign(outcome.assert_lit, learned)
                return None
        if not self._flip_chronological(EXISTS):
            return Outcome.FALSE
        return None

    def _handle_solution(self, rec: Optional[_Rec]) -> Optional[Outcome]:
        if rec is not None:
            cube_lits: Tuple[int, ...] = rec.lits
        else:
            cube_lits = build_model_cube(
                [r.constraint for r in self._orig_clauses], self._view, self._trail
            )
        if self.config.learn_cubes:
            trace = None
            if self._proof is not None:
                if rec is not None:
                    trace = self._proof.begin_cube(cube_lits)
                else:
                    trace = self._proof.begin_initial_cube(cube_lits)
            outcome = analyze_solution(cube_lits, self._view, trace)
            if isinstance(outcome, Terminal):
                if self._proof is not None:
                    self._proof.conclude(
                        "true", trace.final_id if trace is not None else None
                    )
                return Outcome.TRUE
            if isinstance(outcome, Backjump):
                self.stats.backjumps += 1
                self._backtrack(self._backjump_target(outcome))
                learned = self._add_learned_cube(outcome.lits)
                self._bind_learned(trace, True, outcome.lits)
                if self._lit_value(outcome.assert_lit) is None:
                    self.stats.propagations += 1
                    self._assign(-outcome.assert_lit, learned)
                return None
        if not self._flip_chronological(FORALL):
            return Outcome.TRUE
        return None


def solve(
    formula: QBF,
    config: Optional[SolverConfig] = None,
    proof: Optional[object] = None,
) -> SolveResult:
    """Solve ``formula`` with a fresh engine; see :class:`SolverConfig`."""
    return QdpllSolver(formula, config, proof=proof).solve()
