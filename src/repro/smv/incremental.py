"""A variable-stable φ_n encoder: the incremental client's entry point.

:func:`repro.smv.diameter.diameter_qbf` renumbers every state variable when
the bound grows (the y-copies are allocated after the x-copies, which shift
with n), so nothing learned about φ_n survives into φ_{n+1} — the retention
check of :mod:`repro.incremental` correctly transfers zero constraints.

:class:`DiameterFamily` fixes the frame of reference: one persistent
allocator assigns each semantic object — state copy ``x_i``/``y_i``, CNF
group, definition variable — an id *once*, on first use, and every later
bound reuses it. The matrix of φ_n then decomposes into labelled clause
groups::

    init-x          I(x_0)                    asserted positively
    fwd i           T'(x_i, x_{i+1})          asserted positively
    neg-init-y      g → ¬I(y_0)               one literal g per group
    neg-t-y i       g → ¬T'(y_i, y_{i+1})
    neg-eq n        g → ¬(x_{n+1} ≡ y_n)
    top n           (g_init ∨ g_t0 ∨ … ∨ g_eq)

of which only ``neg-eq n`` and the top clause change between bounds: φ_n
and φ_{n+1} share their entire path core, so clauses learned from it pass
the closure-based retention check and transfer. The prenex shape is
equation (16): ∃(all x) ∀(all y) ∃(definitions), definitions innermost as
in the paper's Section VII-C worked example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.formula import QBF
from repro.core.literals import EXISTS, FORALL
from repro.core.result import Outcome
from repro.core.solver import SolverConfig, solve
from repro.formulas.ast import Formula, Not, nnf
from repro.formulas.cnf import _Clausifier
from repro.incremental import IncrementalSolver
from repro.smv.diameter import DiameterRun, t_prime
from repro.smv.models import SymbolicModel, equal_states

#: a group label: ("init-x",), ("fwd", i), ("neg-t-y", i), ("neg-eq", n), …
Label = Tuple[object, ...]


class DiameterFamily:
    """Generates φ_0, φ_1, … for one model with stable variable ids."""

    def __init__(self, model: SymbolicModel):
        self.model = model
        self._next = 1
        self._state: Dict[Tuple[str, int], List[int]] = {}
        #: label -> (clauses, definition vars) for positively asserted groups
        self._pos: Dict[Label, Tuple[Tuple[Tuple[int, ...], ...], Tuple[int, ...]]] = {}
        #: label -> (clauses, definition vars, group literal) for negated groups
        self._neg: Dict[
            Label, Tuple[Tuple[Tuple[int, ...], ...], Tuple[int, ...], Optional[int]]
        ] = {}

    # the persistent allocator; doubles as the _Clausifier's alloc object.
    def fresh(self) -> int:
        v = self._next
        self._next += 1
        return v

    def state_vars(self, kind: str, i: int) -> List[int]:
        """The id vector of state copy ``kind_i`` (allocated on first use)."""
        key = (kind, i)
        if key not in self._state:
            self._state[key] = [self.fresh() for _ in range(self.model.num_bits)]
        return self._state[key]

    def _pos_group(self, label: Label, build: Callable[[], Formula]):
        if label not in self._pos:
            cl = _Clausifier(self)
            aux = cl.assert_true(nnf(build()))
            self._pos[label] = (tuple(cl.clauses), tuple(aux))
        return self._pos[label]

    def _neg_group(self, label: Label, build: Callable[[], Formula]):
        if label not in self._neg:
            cl = _Clausifier(self)
            aux: List[int] = []
            lit = cl._encode(nnf(Not(build())), aux)
            self._neg[label] = (tuple(cl.clauses), tuple(aux), lit)
        return self._neg[label]

    def formula(self, n: int) -> QBF:
        """φ_n in prenex (equation (16)) form over the family's stable ids."""
        if n < 0:
            raise ValueError("n must be non-negative")
        m = self.model
        xs = [self.state_vars("x", i) for i in range(n + 2)]
        ys = [self.state_vars("y", i) for i in range(n + 1)]
        clauses: List[Tuple[int, ...]] = []
        defs: List[int] = []

        positive: List[Tuple[Label, Callable[[], Formula]]] = [
            (("init-x",), lambda: m.init(xs[0]))
        ]
        for i in range(n + 1):
            positive.append(
                (("fwd", i), (lambda i=i: t_prime(m, xs[i], xs[i + 1])))
            )
        for label, build in positive:
            group_clauses, aux = self._pos_group(label, build)
            clauses.extend(group_clauses)
            defs.extend(aux)

        negated: List[Tuple[Label, Callable[[], Formula]]] = [
            (("neg-init-y",), lambda: m.init(ys[0]))
        ]
        for i in range(n):
            negated.append(
                (("neg-t-y", i), (lambda i=i: t_prime(m, ys[i], ys[i + 1])))
            )
        negated.append((("neg-eq", n), lambda: equal_states(xs[n + 1], ys[n])))
        top: List[int] = []
        for label, build in negated:
            group_clauses, aux, lit = self._neg_group(label, build)
            clauses.extend(group_clauses)
            defs.extend(aux)
            if lit is not None:
                top.append(lit)
        clauses.append(tuple(top))

        x_all = [v for block in xs for v in block]
        y_all = [v for block in ys for v in block]
        blocks = [(EXISTS, x_all), (FORALL, y_all)]
        if defs:
            blocks.append((EXISTS, sorted(set(defs))))
        return QBF.prenex(blocks, clauses)


@dataclass
class IncrementalDiameterRun(DiameterRun):
    """A :class:`DiameterRun` plus per-bound retention counters."""

    #: constraints transferred into the solve of each tested bound.
    retained_per_bound: List[int] = field(default_factory=list)

    @property
    def total_retained(self) -> int:
        return sum(self.retained_per_bound)


def incremental_diameter(
    model: SymbolicModel,
    config: Optional[SolverConfig] = None,
    max_n: int = 64,
    certify: bool = False,
    interrupt: Optional[object] = None,
    solver: Optional[IncrementalSolver] = None,
) -> IncrementalDiameterRun:
    """The Section VII-C loop on one persistent :class:`IncrementalSolver`.

    Pass ``solver`` to keep the family's solver (and its learned database)
    alive across calls — what the serve daemon does for repeated bound
    requests on the same model.
    """
    fam = DiameterFamily(model)
    inc = solver if solver is not None else IncrementalSolver(config, certify=certify)
    run = IncrementalDiameterRun(model_name=model.name, diameter=None)
    for n in range(max_n + 1):
        inc.load(fam.formula(n))
        result = inc.solve(interrupt=interrupt)
        run.results.append(result)
        run.retained_per_bound.append(
            inc.last_retained_clauses + inc.last_retained_cubes
        )
        if result.outcome is Outcome.UNKNOWN:
            return run
        if result.outcome is Outcome.FALSE:
            run.diameter = n
            return run
    return run


def scratch_diameter(
    model: SymbolicModel,
    config: Optional[SolverConfig] = None,
    max_n: int = 64,
) -> DiameterRun:
    """The same sweep on the same stable formulas, one fresh solve per bound.

    This is the apples-to-apples baseline for the incremental sweep: the
    formulas are bit-identical, only the retention is missing."""
    fam = DiameterFamily(model)
    run = DiameterRun(model_name=model.name, diameter=None)
    for n in range(max_n + 1):
        result = solve(fam.formula(n), config)
        run.results.append(result)
        if result.outcome is Outcome.UNKNOWN:
            return run
        if result.outcome is Outcome.FALSE:
            run.diameter = n
            return run
    return run
