"""NuSMV-substitute substrate: symbolic models + diameter QBFs (Sec. VII-C)."""

from repro.smv.diameter import (
    DiameterRun,
    compute_diameter,
    diameter_formula,
    diameter_qbf,
    t_prime,
)
from repro.smv.models import SymbolicModel, equal_states
from repro.smv.models import (
    CounterModel,
    DmeModel,
    RingModel,
    SemaphoreModel,
    model_by_name,
)
from repro.smv.reachability import distances, eccentricity, initial_states, num_reachable

__all__ = [
    "CounterModel",
    "DiameterRun",
    "DmeModel",
    "RingModel",
    "SemaphoreModel",
    "SymbolicModel",
    "compute_diameter",
    "diameter_formula",
    "diameter_qbf",
    "distances",
    "eccentricity",
    "equal_states",
    "initial_states",
    "model_by_name",
    "num_reachable",
    "t_prime",
]
