"""Symbolic finite-state models — the NuSMV-substitute substrate.

The paper's DIA suite (Section VII-C) computes state-space diameters of
models bundled with NuSMV, extracting the initial-condition predicate
``I(s)`` and the transition relation ``T(s, s')`` with NuSMV's BMC tool.
This module plays that role: a :class:`SymbolicModel` is a machine over
``num_bits`` boolean state variables that can instantiate ``I`` and ``T``
over *any* given lists of variable indices — exactly what the diameter
encoding needs to build the time-unrolled copies ``x_0 … x_{n+1}`` and
``y_0 … y_n``.
"""

from __future__ import annotations

import abc
from typing import List, Sequence

from repro.formulas.ast import And, Formula, Iff, Var, conj


class SymbolicModel(abc.ABC):
    """A boolean FSM defined by symbolic ``I`` and ``T`` predicates."""

    #: short identifier used in benchmark labels, e.g. ``counter3``.
    name: str = "model"
    #: number of boolean state variables.
    num_bits: int = 0

    @abc.abstractmethod
    def init(self, s: Sequence[int]) -> Formula:
        """``I(s)``: satisfied exactly by the initial states."""

    @abc.abstractmethod
    def trans(self, s: Sequence[int], t: Sequence[int]) -> Formula:
        """``T(s, t)``: satisfied exactly when ``t`` is a successor of ``s``."""

    def check_vector(self, s: Sequence[int]) -> None:
        if len(s) != self.num_bits:
            raise ValueError(
                "%s expects %d state bits, got %d" % (self.name, self.num_bits, len(s))
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "%s(bits=%d)" % (self.name, self.num_bits)


def equal_states(s: Sequence[int], t: Sequence[int]) -> Formula:
    """Bitwise equality ``s ≡ t`` (the ``x_{n+1} ≡ y_n`` of equation (14))."""
    if len(s) != len(t):
        raise ValueError("state vectors differ in width")
    return conj(Iff(Var(a), Var(b)) for a, b in zip(s, t))


def unchanged(s: Sequence[int], t: Sequence[int], positions: Sequence[int]) -> Formula:
    """Frame condition: the given bit positions keep their value."""
    return conj(Iff(Var(s[i]), Var(t[i])) for i in positions)


def at_most_one(parts: List[Formula]) -> Formula:
    """Pairwise at-most-one constraint over arbitrary formulas."""
    from repro.formulas.ast import Not, disj

    out = []
    for i in range(len(parts)):
        for j in range(i + 1, len(parts)):
            out.append(disj((Not(parts[i]), Not(parts[j]))))
    return conj(out)
