"""Deprecated alias of :mod:`repro.smv.models`.

The substrate (:class:`SymbolicModel` and the state-vector helpers) and
the DIA model families used to live in two near-duplicate modules; they
are now one module, :mod:`repro.smv.models`. This shim re-exports the old
names so existing ``from repro.smv.model import ...`` imports keep
resolving to the same objects; new code should import from
``repro.smv.models`` directly.
"""

from __future__ import annotations

from repro.smv.models import (
    SymbolicModel,
    at_most_one,
    equal_states,
    unchanged,
)

__all__ = ["SymbolicModel", "at_most_one", "equal_states", "unchanged"]
