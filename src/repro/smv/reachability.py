"""Explicit-state reachability: the DIA suite's ground truth.

The paper checks diameters against known values (counter: 2^N; semaphore: 3
for N ≥ 3). We compute the reference value directly by multi-source BFS over
the explicit state graph, evaluating the model's symbolic ``I``/``T`` on
concrete states — an entirely independent code path from the QBF pipeline,
so agreement between the two is strong evidence both are right.

Complexity is O(4^bits) formula evaluations; intended for the small models
the benchmarks use (≤ ~10 bits).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.formulas.ast import evaluate_closed
from repro.smv.models import SymbolicModel

State = Tuple[bool, ...]

#: guard against accidental use on large models.
MAX_BITS = 14


def all_states(model: SymbolicModel) -> List[State]:
    if model.num_bits > MAX_BITS:
        raise ValueError("explicit enumeration limited to %d bits" % MAX_BITS)
    return [tuple(bits) for bits in itertools.product((False, True), repeat=model.num_bits)]


def initial_states(model: SymbolicModel) -> List[State]:
    """Concrete states satisfying I(s)."""
    n = model.num_bits
    cur = list(range(1, n + 1))
    init_formula = model.init(cur)
    out = []
    for state in all_states(model):
        env = {cur[i]: state[i] for i in range(n)}
        if evaluate_closed(init_formula, env):
            out.append(state)
    return out


def successor_map(model: SymbolicModel) -> Dict[State, List[State]]:
    """Concrete transition relation as an adjacency map."""
    n = model.num_bits
    cur = list(range(1, n + 1))
    nxt = list(range(n + 1, 2 * n + 1))
    trans_formula = model.trans(cur, nxt)
    states = all_states(model)
    adjacency: Dict[State, List[State]] = {}
    for s in states:
        env = {cur[i]: s[i] for i in range(n)}
        succs = []
        for t in states:
            env.update({nxt[i]: t[i] for i in range(n)})
            if evaluate_closed(trans_formula, env):
                succs.append(t)
        adjacency[s] = succs
    return adjacency


def distances(model: SymbolicModel) -> Dict[State, int]:
    """BFS distance of every reachable state from the initial states."""
    adjacency = successor_map(model)
    frontier = initial_states(model)
    dist: Dict[State, int] = {s: 0 for s in frontier}
    depth = 0
    while frontier:
        depth += 1
        new_frontier: List[State] = []
        for s in frontier:
            for t in adjacency[s]:
                if t not in dist:
                    dist[t] = depth
                    new_frontier.append(t)
        frontier = new_frontier
    return dist


def eccentricity(model: SymbolicModel) -> int:
    """The paper's "state space diameter": max BFS distance from init.

    This is the d for which φ_n (equation (14)) is true exactly when n < d.
    """
    dist = distances(model)
    if not dist:
        raise ValueError("%s has no initial state" % model.name)
    return max(dist.values())


def num_reachable(model: SymbolicModel) -> int:
    return len(distances(model))
