"""The diameter QBFs of Section VII-C: equations (14), (15) and (16).

For a model M with initial predicate I and transition relation T, and the
padded relation of equation (15)::

    T'(s, s') = (I(s) ∧ I(s')) ∨ T(s, s')

the formula φ_n of equation (14) is::

    ∃x_{n+1} ( ∃x_0 … x_n (I(x_0) ∧ ⋀_{i=0}^{n} T'(x_i, x_{i+1}))
             ∧ ∀y_0 … y_n ¬(I(y_0) ∧ ⋀_{i=0}^{n-1} T'(y_i, y_{i+1})
                            ∧ x_{n+1} ≡ y_n) )

φ_n is true exactly when n < d and false exactly when n ≥ d, where d is the
state-space diameter (max BFS distance from the initial states). The self
loop on initial states is what makes both paths "at most" rather than
"exactly" that long.

:func:`diameter_qbf` builds the QBF in two forms:

* ``tree`` — the natural non-prenex structure of (14): the x-path and the
  y-path are sibling subtrees under ∃x_{n+1} (QUBE(PO)'s input);
* ``prenex`` — equation (16), the ∃↑∀↑ prenexing with all x blocks before
  all y blocks (QUBE(TO)'s input).

Both share the same CNF conversion, with definition variables innermost —
matching the worked example in Section VII-C where the single CNF variable
``x`` ends up in the last block of prefixes (18) and (19).

:func:`compute_diameter` runs the paper's outer loop: test φ_0, φ_1, …
until the first false formula, whose index is the diameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.formula import QBF
from repro.core.result import Outcome, SolveResult
from repro.core.solver import SolverConfig, solve
from repro.formulas.ast import And, Exists, Forall, Formula, Not, Or, conj, disj
from repro.formulas.cnf import to_qbf
from repro.smv.models import SymbolicModel, equal_states

FORMS = ("tree", "prenex")


def t_prime(model: SymbolicModel, s: Sequence[int], t: Sequence[int]) -> Formula:
    """Equation (15): the transition relation padded with an initial self loop."""
    return disj((conj((model.init(s), model.init(t))), model.trans(s, t)))


def _state_blocks(model: SymbolicModel, count: int, start: int) -> Tuple[List[List[int]], int]:
    """Allocate ``count`` disjoint state-variable vectors from ``start``."""
    blocks = []
    nxt = start
    for _ in range(count):
        blocks.append(list(range(nxt, nxt + model.num_bits)))
        nxt += model.num_bits
    return blocks, nxt


def diameter_formula(model: SymbolicModel, n: int, form: str = "tree") -> Formula:
    """The φ_n AST in the requested form ("tree" = (14), "prenex" = (16))."""
    if form not in FORMS:
        raise ValueError("form must be one of %s" % (FORMS,))
    if n < 0:
        raise ValueError("n must be non-negative")
    xs, nxt = _state_blocks(model, n + 2, 1)  # x_0 .. x_{n+1}
    ys, _ = _state_blocks(model, n + 1, nxt)  # y_0 .. y_n
    x_last = xs[n + 1]
    forward = conj(
        [model.init(xs[0])] + [t_prime(model, xs[i], xs[i + 1]) for i in range(n + 1)]
    )
    y_path = conj(
        [model.init(ys[0])]
        + [t_prime(model, ys[i], ys[i + 1]) for i in range(n)]
        + [equal_states(x_last, ys[n])]
    )
    x_inner = [v for block in xs[: n + 1] for v in block]
    y_all = [v for block in ys for v in block]
    if form == "tree":
        return Exists(
            x_last,
            And(
                (
                    Exists(x_inner, forward),
                    Forall(y_all, Not(y_path)),
                )
            ),
        )
    # Equation (16): all existentials first, then all universals.
    return Exists(x_last + x_inner, Forall(y_all, And((forward, Not(y_path)))))


def diameter_qbf(model: SymbolicModel, n: int, form: str = "tree") -> QBF:
    """φ_n as a ⟨prefix, CNF⟩ QBF, non-prenex ("tree") or prenex ("prenex")."""
    phi = to_qbf(diameter_formula(model, n, form))
    if form == "prenex" and not phi.is_prenex:
        raise AssertionError("equation (16) conversion should be prenex")
    return phi


@dataclass
class DiameterRun:
    """Outcome of one :func:`compute_diameter` call."""

    model_name: str
    diameter: Optional[int]
    #: per-n solver results, n = 0 .. (last tested).
    results: List[SolveResult] = field(default_factory=list)

    @property
    def total_decisions(self) -> int:
        return sum(r.stats.decisions for r in self.results)

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.results)

    @property
    def timed_out(self) -> bool:
        return self.diameter is None


def compute_diameter(
    model: SymbolicModel,
    form: str = "tree",
    config: Optional[SolverConfig] = None,
    max_n: int = 64,
    solve_fn: Callable[[QBF, Optional[SolverConfig]], SolveResult] = solve,
) -> DiameterRun:
    """Run the Section VII-C loop: the diameter is the first n with φ_n false.

    A budget exhaustion (UNKNOWN) at any n aborts the run with
    ``diameter=None`` — the reproduction's "timeout" outcome.
    """
    run = DiameterRun(model_name=model.name, diameter=None)
    for n in range(max_n + 1):
        result = solve_fn(diameter_qbf(model, n, form), config)
        run.results.append(result)
        if result.outcome is Outcome.UNKNOWN:
            return run
        if result.outcome is Outcome.FALSE:
            run.diameter = n
            return run
    return run
