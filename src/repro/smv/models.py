"""Symbolic finite-state models: the substrate and the DIA suite families.

The paper's DIA suite (Section VII-C) computes state-space diameters of
models bundled with NuSMV, extracting the initial-condition predicate
``I(s)`` and the transition relation ``T(s, s')`` with NuSMV's BMC tool.
This module plays that role end to end: :class:`SymbolicModel` is a
machine over ``num_bits`` boolean state variables that can instantiate
``I`` and ``T`` over *any* given lists of variable indices — exactly what
the diameter encoding needs to build the time-unrolled copies
``x_0 … x_{n+1}`` and ``y_0 … y_n`` — and the concrete families below are
parametric versions of four models bundled with NuSMV: ``counter<N>``,
``ring<N>``, ``dme<N>`` and ``semaphore<N>``, implemented from their
published descriptions:

* :class:`CounterModel` — an N-bit binary counter; the distance from the
  initial state grows as 2^N, which the paper uses to study scaling with
  the *length* of the diameter.
* :class:`RingModel` — a ring of inverters with asynchronous (one gate per
  step) updates.
* :class:`DmeModel` — a distributed mutual-exclusion ring: a token circles
  the N stations; the diameter grows linearly with N.
* :class:`SemaphoreModel` — N processes competing for a semaphore with a
  constant diameter (3 for N ≥ 3 in the paper; our variant's ground truth
  is computed by :mod:`repro.smv.reachability` and recorded in
  EXPERIMENTS.md), used to study scaling with the *size of the model* at
  fixed diameter.

Exact state encodings differ from NuSMV's internals (which the paper does
not publish); each class documents its encoding, and the QBF pipeline is
validated against explicit-state BFS for every size we run.
"""

from __future__ import annotations

import abc
from typing import List, Sequence

from repro.formulas.ast import (
    Formula,
    Iff,
    Not,
    TRUE,
    Var,
    Xor,
    conj,
    disj,
)


class SymbolicModel(abc.ABC):
    """A boolean FSM defined by symbolic ``I`` and ``T`` predicates."""

    #: short identifier used in benchmark labels, e.g. ``counter3``.
    name: str = "model"
    #: number of boolean state variables.
    num_bits: int = 0

    @abc.abstractmethod
    def init(self, s: Sequence[int]) -> Formula:
        """``I(s)``: satisfied exactly by the initial states."""

    @abc.abstractmethod
    def trans(self, s: Sequence[int], t: Sequence[int]) -> Formula:
        """``T(s, t)``: satisfied exactly when ``t`` is a successor of ``s``."""

    def check_vector(self, s: Sequence[int]) -> None:
        if len(s) != self.num_bits:
            raise ValueError(
                "%s expects %d state bits, got %d" % (self.name, self.num_bits, len(s))
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "%s(bits=%d)" % (self.name, self.num_bits)


def equal_states(s: Sequence[int], t: Sequence[int]) -> Formula:
    """Bitwise equality ``s ≡ t`` (the ``x_{n+1} ≡ y_n`` of equation (14))."""
    if len(s) != len(t):
        raise ValueError("state vectors differ in width")
    return conj(Iff(Var(a), Var(b)) for a, b in zip(s, t))


def unchanged(s: Sequence[int], t: Sequence[int], positions: Sequence[int]) -> Formula:
    """Frame condition: the given bit positions keep their value."""
    return conj(Iff(Var(s[i]), Var(t[i])) for i in positions)


def at_most_one(parts: List[Formula]) -> Formula:
    """Pairwise at-most-one constraint over arbitrary formulas."""
    out = []
    for i in range(len(parts)):
        for j in range(i + 1, len(parts)):
            out.append(disj((Not(parts[i]), Not(parts[j]))))
    return conj(out)


class CounterModel(SymbolicModel):
    """N-bit binary counter: init 0, deterministic increment mod 2^N.

    Bit 0 is the least significant. Eccentricity from the initial state is
    2^N - 1 (every state reachable, the farthest in 2^N - 1 steps); the
    paper quotes the family as having diameter "2^N" under its counting
    convention.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("counter needs at least 1 bit")
        self.num_bits = n
        self.name = "counter%d" % n

    def init(self, s: Sequence[int]) -> Formula:
        self.check_vector(s)
        return conj(Not(Var(b)) for b in s)

    def trans(self, s: Sequence[int], t: Sequence[int]) -> Formula:
        self.check_vector(s)
        self.check_vector(t)
        parts: List[Formula] = []
        for i in range(self.num_bits):
            if i == 0:
                carry: Formula = TRUE
            else:
                carry = conj(Var(s[j]) for j in range(i))
            parts.append(Iff(Var(t[i]), Xor(Var(s[i]), carry)))
        return conj(parts)


class RingModel(SymbolicModel):
    """Ring of N inverters, asynchronous: one gate updates per step.

    State bit i is the output of inverter i, driven by the output of
    inverter i-1 (mod N). A step picks one gate i nondeterministically and
    sets ``s'_i = ¬s_{i-1}``; all other outputs are unchanged. Initial
    state: all outputs low.
    """

    def __init__(self, n: int):
        if n < 2:
            raise ValueError("ring needs at least 2 inverters")
        self.num_bits = n
        self.name = "ring%d" % n

    def init(self, s: Sequence[int]) -> Formula:
        self.check_vector(s)
        return conj(Not(Var(b)) for b in s)

    def trans(self, s: Sequence[int], t: Sequence[int]) -> Formula:
        self.check_vector(s)
        self.check_vector(t)
        n = self.num_bits
        options: List[Formula] = []
        for i in range(n):
            fire = conj(
                (
                    Iff(Var(t[i]), Not(Var(s[(i - 1) % n]))),
                    unchanged(s, t, [j for j in range(n) if j != i]),
                )
            )
            options.append(fire)
        return disj(options)


class DmeModel(SymbolicModel):
    """Distributed mutual exclusion as a token ring over N stations.

    One-hot encoding: bit i set means station i holds the token. The token
    moves to the next station each step (a station may also keep the token
    for one step, modelling a user in its critical section). Initial state:
    station 0 holds the token. Eccentricity: N - 1.
    """

    def __init__(self, n: int):
        if n < 2:
            raise ValueError("dme needs at least 2 stations")
        self.num_bits = n
        self.name = "dme%d" % n

    def init(self, s: Sequence[int]) -> Formula:
        self.check_vector(s)
        return conj(
            [Var(s[0])] + [Not(Var(b)) for b in s[1:]]
        )

    def trans(self, s: Sequence[int], t: Sequence[int]) -> Formula:
        self.check_vector(s)
        self.check_vector(t)
        n = self.num_bits
        moves: List[Formula] = []
        for i in range(n):
            for target in (i, (i + 1) % n):  # hold or pass
                state_t = conj(
                    [Var(t[target])] + [Not(Var(t[j])) for j in range(n) if j != target]
                )
                state_s = conj(
                    [Var(s[i])] + [Not(Var(s[j])) for j in range(n) if j != i]
                )
                moves.append(conj((state_s, state_t)))
        return disj(moves)


class SemaphoreModel(SymbolicModel):
    """N processes and a semaphore; constant diameter as N grows.

    Encoding: two bits per process — ``trying`` and ``critical`` (critical
    implies trying). In one step, every idle process may independently start
    trying, while *at most one* process performs a semaphore action: a
    trying process acquires (if no process is critical in the current
    state), or a critical process releases (returning to idle). This
    "broadcast requests, serialized semaphore" semantics keeps every
    reachable state within a constant number of steps of the initial
    all-idle state, which is what makes the family useful for studying how
    the solvers scale with model *size* at fixed diameter.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("semaphore needs at least 1 process")
        self.num_procs = n
        self.num_bits = 2 * n
        self.name = "semaphore%d" % n

    def _trying(self, s: Sequence[int], i: int) -> Formula:
        return Var(s[2 * i])

    def _critical(self, s: Sequence[int], i: int) -> Formula:
        return Var(s[2 * i + 1])

    def init(self, s: Sequence[int]) -> Formula:
        self.check_vector(s)
        return conj(Not(Var(b)) for b in s)

    def trans(self, s: Sequence[int], t: Sequence[int]) -> Formula:
        self.check_vector(s)
        self.check_vector(t)
        n = self.num_procs
        nobody_critical = conj(Not(self._critical(s, i)) for i in range(n))
        local: List[Formula] = []
        acquires: List[Formula] = []
        releases: List[Formula] = []
        for i in range(n):
            trying_s, crit_s = self._trying(s, i), self._critical(s, i)
            trying_t, crit_t = self._trying(t, i), self._critical(t, i)
            acquire = conj((trying_s, Not(crit_s), nobody_critical, trying_t, crit_t))
            release = conj((crit_s, Not(trying_t), Not(crit_t)))
            start = conj((Not(trying_s), Not(crit_s), trying_t, Not(crit_t)))
            stay = conj((Iff(trying_t, trying_s), Iff(crit_t, crit_s)))
            acquires.append(acquire)
            releases.append(release)
            local.append(disj((start, stay, acquire, release)))
        sem_actions = acquires + releases
        return conj(local + [at_most_one(sem_actions)])


def model_by_name(name: str, size: int) -> SymbolicModel:
    """Factory used by benchmarks: ``counter``/``ring``/``dme``/``semaphore``."""
    families = {
        "counter": CounterModel,
        "ring": RingModel,
        "dme": DmeModel,
        "semaphore": SemaphoreModel,
    }
    if name not in families:
        raise ValueError("unknown model family %r (want one of %s)" % (name, sorted(families)))
    return families[name](size)
