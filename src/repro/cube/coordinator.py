"""The cube-and-conquer coordinator: one instance, N worker processes.

Work-splitting is the quantifier-tree decomposition of
:mod:`repro.cube.splitter`; workers are forked with the same
process/pipe/signal idioms as the :mod:`repro.evalx.parallel` slot
machinery, but as a *persistent pool*: each of the ``jobs`` processes is
forked once and then pulls cube after cube from a job queue, so the
per-cube overhead is a queue round-trip, not a fork. Each cube runs the
layered engine on its subproblem:

* **incremental fast path** — a non-certified cube over original-outermost
  existential variables is solved through
  :class:`repro.incremental.IncrementalSolver` assumption scopes (the
  engine then works in the original variable space, so shared clauses
  install untranslated);
* **cofactor path** — everything else solves the explicitly cofactored
  leaf formula, with the clause/index map retained for the certificate
  merge (:mod:`repro.cube.merge`).

Constraint sharing rides bounded multiprocessing queues (one shared
outbox, one inbox per worker; everything non-blocking and lossy — see
:mod:`repro.cube.sharing`). The coordinator relays each export to every
other worker and keeps a bounded pool to seed respawned workers.

Verdicts fold up the split tree (existential split: any TRUE branch wins;
universal split: any FALSE branch wins — :func:`repro.cube.splitter.
fold_outcomes`), and a worker whose current cube is already settled by a
sibling is cancelled early: SIGTERM sets the worker's
:mod:`repro.robustness` interrupt flag, the engine exits UNKNOWN at the
next quiescent point, and the worker moves on to the next cube. A
preempted cube that was *not* the cancellation target (the signal raced a
job hand-off) is simply re-enqueued.

A worker that exhausts its decision budget flushes a ``repro-ckpt``
checkpoint (steal-by-checkpoint). The coordinator then either *re-splits*
the leaf — the subproblem still has branchable variables and depth budget,
so it becomes two fresh cubes — or re-enqueues it with a doubled budget,
resuming the checkpoint (the checkpoint config digest deliberately ignores
budget fields, and in certify mode the proof steps travel inside the
checkpoint, so the escalated run continues one unbroken derivation).

``jobs=1`` is the genuine sequential baseline: no splitting, no fork, no
sharing — the plain engine on the whole formula (still routed through the
fragment/merge path when certifying, so the certificate machinery is
identical).
"""

from __future__ import annotations

import os
import queue as stdlib_queue
import shutil
import signal
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.formula import QBF
from repro.core.literals import EXISTS, var_of
from repro.core.result import Outcome
from repro.core.solver import solve
from repro.evalx.parallel import STATUS_CRASH, STATUS_OK, _mp_context
from repro.evalx.runner import Budget
from repro.robustness.checkpoint import CheckpointError, load_checkpoint
from repro.robustness.interrupt import global_flag
from repro.cube.merge import LeafFragment, MergeReport, merge_certificates
from repro.cube.sharing import MAX_SHARED_LITS, AdmissionFilter, Exchange
from repro.cube.splitter import SplitNode, build_split, cofactor, fold_outcomes, split_leaf

#: default per-attempt decision budget of one leaf.
DEFAULT_LEAF_DECISIONS = 500
#: default number of initial cubes, as a multiple of ``jobs``. Oversplitting
#: relative to the worker count is deliberate: it keeps the job queue deep
#: enough that no worker idles, and on the decomposable families the extra
#: cofactoring keeps cutting total decisions well past ``jobs`` cubes.
INITIAL_CUBES_PER_JOB = 16
#: give a signalled/sentinelled worker this long before SIGKILL.
SHUTDOWN_GRACE_SECONDS = 5.0
#: cap on the constraint pool used to seed respawned workers.
POOL_MAX = 256
#: crashed-worker replacements tolerated per pool slot before the pool is
#: allowed to shrink (and, at zero workers, the run gives up).
MAX_RESPAWNS_PER_JOB = 4

#: crashes tolerated per leaf before it is written off as UNKNOWN.
MAX_CRASHES = 2
#: budget doublings tried on an over-budget leaf before re-splitting it.
RESPLIT_AFTER_ESCALATIONS = 1


@dataclass
class CubeJob:
    """One unit of work: solve the formula under this cube."""

    worker_id: int
    key: int
    path: Tuple[int, ...]
    budget_decisions: Optional[int]
    engine: Optional[str] = None
    paradigm: str = "search"
    certify: bool = False
    ckpt_path: Optional[str] = None
    resume: bool = False
    max_shared_lits: int = MAX_SHARED_LITS
    preload: List[Tuple[int, bool, Tuple[int, ...]]] = field(default_factory=list)


@dataclass
class CubeReport:
    """The coordinator's answer plus its work accounting."""

    outcome: Outcome
    seconds: float
    jobs: int
    leaves: int
    total_decisions: int
    workers_launched: int = 0
    escalations: int = 0
    resplits: int = 0
    cancelled: int = 0
    crashes: int = 0
    #: crashed workers actually replaced; stops growing once the respawn
    #: budget (:data:`MAX_RESPAWNS_PER_JOB` × jobs) is exhausted.
    respawns: int = 0
    interrupted: bool = False
    share: Dict[str, object] = field(default_factory=dict)
    certificate: Optional[MergeReport] = None
    certificate_status: Optional[str] = None
    root: Optional[SplitNode] = None


# -- the worker body ---------------------------------------------------------


def _incremental_eligible(formula: QBF, path: Tuple[int, ...]) -> bool:
    """True when every cube literal is an original-outermost existential —
    the :meth:`IncrementalSolver.push` contract."""
    prefix = formula.prefix
    return bool(path) and all(
        prefix.quant(var_of(l)) is EXISTS and prefix.level(var_of(l)) == 1
        for l in path
    )


def solve_cube_job(
    job: CubeJob,
    formula: QBF,
    outbox=None,
    inbox=None,
    interrupt=None,
) -> Dict[str, object]:
    """Solve one cube; returns the wire payload (plain JSON-able dict).

    Each cube gets a fresh solver on purpose. Keeping one warm
    ``IncrementalSolver`` per worker and push/solve/popping cubes
    through it was measured 3-6x *slower* end to end: the retained
    constraint database accumulated across sibling cubes outweighs the
    per-cube formula load it saves. Cross-cube reuse happens through the
    explicit sharing bus instead, where the admission filter bounds it.
    """
    started = time.monotonic()
    config = Budget(decisions=job.budget_decisions).to_config(
        **dict(
            ([("engine", job.engine)] if job.engine else [])
            + ([("paradigm", job.paradigm)] if job.paradigm != "search" else [])
        )
    )
    share = outbox is not None or inbox is not None or bool(job.preload)
    fragment: Optional[Dict[str, object]] = None
    exchange: Optional[Exchange] = None

    resume = None
    if job.resume and job.ckpt_path:
        try:
            resume = load_checkpoint(job.ckpt_path)
        except CheckpointError:
            resume = None  # stale/corrupt snapshot: redo the attempt fresh

    if not job.certify and _incremental_eligible(formula, job.path):
        from repro.incremental.solver import IncrementalSolver

        if share:
            admission = AdmissionFilter(
                formula, max_lits=job.max_shared_lits, cubes_ok=False
            )
            exchange = Exchange(
                job.worker_id,
                job.path,
                outbox,
                inbox,
                admission,
                max_lits=job.max_shared_lits,
                lift_cubes=False,
                preload=job.preload,
            )
        # retain=False: this solver lives for exactly one cube, so the
        # retention bookkeeping (proof-closure tagging of every learned
        # constraint) would be pure overhead — sharing goes through the
        # exchange instead.
        inc = IncrementalSolver(config, retain=False)
        inc.load(formula)
        inc.push(*job.path)
        try:
            result = inc.solve(
                interrupt=interrupt,
                checkpoint_to=job.ckpt_path,
                resume_from=resume,
                exchange=exchange,
            )
        except CheckpointError:
            result = inc.solve(
                interrupt=interrupt, checkpoint_to=job.ckpt_path, exchange=exchange
            )
    else:
        leaf, clause_map = cofactor(formula, job.path)
        if share:
            admission = AdmissionFilter(
                formula,
                receiver_prefix=leaf.prefix,
                assumptions=job.path,
                max_lits=job.max_shared_lits,
                cubes_ok=True,
            )
            # Certified workers export but never import: an imported
            # constraint has no derivation on record, so any analysis
            # touching it would poison the proof into incompleteness.
            exchange = Exchange(
                job.worker_id,
                job.path,
                outbox,
                None if job.certify else inbox,
                admission,
                max_lits=job.max_shared_lits,
                preload=[] if job.certify else job.preload,
            )

        def run(resume_ckpt):
            if job.certify:
                from repro.certify import MemorySink, ProofLogger, certifying_config

                sink = MemorySink()
                logger = None
                if resume_ckpt is not None and resume_ckpt.proof is not None:
                    steps = resume_ckpt.extra.get("proof_steps")
                    if steps is not None:
                        sink.steps = [dict(s) for s in steps]
                        logger = ProofLogger.resumed(sink, resume_ckpt.proof)
                if logger is None:
                    logger = ProofLogger(sink)
                result = solve(
                    leaf,
                    certifying_config(config),
                    proof=logger,
                    interrupt=interrupt,
                    resume_from=resume_ckpt,
                    checkpoint_to=job.ckpt_path,
                    exchange=exchange,
                )
                return result, LeafFragment(job.path, clause_map, sink.steps)
            result = solve(
                leaf,
                config,
                interrupt=interrupt,
                resume_from=resume_ckpt,
                checkpoint_to=job.ckpt_path,
                exchange=exchange,
            )
            return result, None

        try:
            result, frag = run(resume)
        except CheckpointError:
            result, frag = run(None)
        if frag is not None:
            fragment = frag.to_payload()

    return {
        "key": job.key,
        "outcome": result.outcome.name,
        "decisions": result.stats.decisions,
        "seconds": result.seconds,
        "interrupted": result.interrupted,
        "learned_clauses": result.stats.learned_clauses,
        "learned_cubes": result.stats.learned_cubes,
        "fragment": fragment,
        "share": exchange.stats() if exchange is not None else None,
        "elapsed": time.monotonic() - started,
    }


#: worker → coordinator message tags (first element after the worker id).
MSG_START = "start"
MSG_DONE = "done"


def _cube_worker_loop(worker_id, formula, jobq, resultq, outbox, inbox) -> None:
    """Persistent worker: pull cubes until the ``None`` sentinel.

    SIGTERM is the *cancel current cube* signal, not a shutdown: it sets
    the interrupt flag, the engine winds up UNKNOWN at the next quiescent
    point, and the loop clears the flag before the next cube.
    """
    flag = global_flag()
    flag.clear()
    try:
        # Forked children inherit the parent's signal wakeup fd (asyncio
        # loops set one); left in place, this worker's SIGTERM bytes would
        # land in the parent loop's self-pipe and read as a parent
        # shutdown. Detach before installing our own handler.
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    signal.signal(signal.SIGTERM, flag.set)
    while True:
        try:
            job = jobq.get()
        except (EOFError, OSError):  # queue torn down: coordinator is gone
            return
        if job is None:
            return
        flag.clear()
        job.worker_id = worker_id
        try:
            resultq.put((worker_id, MSG_START, job.key))
            payload = solve_cube_job(job, formula, outbox, inbox, interrupt=flag)
            resultq.put((worker_id, MSG_DONE, (STATUS_OK, payload)))
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException:
            try:
                resultq.put(
                    (worker_id, MSG_DONE, (STATUS_CRASH, traceback.format_exc()))
                )
            except (BrokenPipeError, OSError):  # pragma: no cover
                return


# -- the coordinator ---------------------------------------------------------


class _Worker:
    __slots__ = ("id", "proc", "inbox", "current_key", "cancel_key")

    def __init__(self, worker_id: int, proc, inbox):
        self.id = worker_id
        self.proc = proc
        self.inbox = inbox
        #: key of the cube this worker is believed to be solving.
        self.current_key: Optional[int] = None
        #: key this worker was SIGTERM'd over (to tell a targeted cancel
        #: from a collateral preemption when the UNKNOWN result arrives).
        self.cancel_key: Optional[int] = None


def _settled_above(node: SplitNode) -> bool:
    """True when some proper ancestor's verdict is already decided — this
    leaf can no longer influence the root and is dead work."""
    cur = node.parent
    while cur is not None:
        if fold_outcomes(cur) is not None:
            return True
        cur = cur.parent
    return False


class _Coordinator:
    def __init__(
        self,
        formula: QBF,
        jobs: int,
        leaf_decisions: int,
        certify: bool,
        share: bool,
        seed: int,
        engine: Optional[str],
        paradigm: str,
        max_depth: int,
        initial_cubes: Optional[int],
        wall_timeout: Optional[float],
        interrupt,
        workdir: Optional[str],
        max_shared_lits: int,
        max_escalations: int,
    ):
        self.formula = formula
        self.jobs = jobs
        self.leaf_decisions = leaf_decisions
        self.certify = certify
        self.share = share
        self.seed = seed
        self.engine = engine
        self.paradigm = paradigm
        self.max_depth = max_depth
        self.initial_cubes = initial_cubes or max(INITIAL_CUBES_PER_JOB * jobs, 2)
        self.wall_timeout = wall_timeout
        self.interrupt = interrupt
        self.max_shared_lits = max_shared_lits
        self.max_escalations = max_escalations
        self._own_workdir = workdir is None
        self.workdir = workdir or tempfile.mkdtemp(prefix="repro-cube-")
        self.ctx = _mp_context()
        self.jobq = None
        self.resultq = None
        self.outbox = None
        self.pool: List[Tuple[int, bool, Tuple[int, ...]]] = []
        self.pending: List[SplitNode] = []
        self.workers: Dict[int, _Worker] = {}
        self.nodes: Dict[int, SplitNode] = {}
        self.outstanding: Dict[int, SplitNode] = {}
        self.next_key = 0
        self.next_worker = 0
        self.report = CubeReport(
            outcome=Outcome.UNKNOWN,
            seconds=0.0,
            jobs=jobs,
            leaves=0,
            total_decisions=0,
        )
        self.share_totals = {"exported": 0, "export_dropped": 0, "imported": 0}
        self.rejected_totals: Dict[str, int] = {}

    # -- bookkeeping --------------------------------------------------------

    def _stamp(self, node: SplitNode) -> None:
        if node.key < 0:
            node.key = self.next_key
            self.nodes[node.key] = node
            self.next_key += 1
        if not node.budget:
            node.budget = self.leaf_decisions

    def _ckpt_path(self, node: SplitNode) -> str:
        return os.path.join(self.workdir, "cube-%d.repro-ckpt" % node.key)

    def _interrupted(self) -> bool:
        flag = self.interrupt
        if flag is None:
            return False
        check = getattr(flag, "is_set", None)
        return bool(check() if check is not None else flag())

    # -- worker lifecycle ---------------------------------------------------

    def _spawn_worker(self) -> None:
        worker_id = self.next_worker
        self.next_worker += 1
        inbox = self.ctx.Queue(maxsize=1024) if self.share else None
        proc = self.ctx.Process(
            target=_cube_worker_loop,
            args=(worker_id, self.formula, self.jobq, self.resultq, self.outbox, inbox),
            daemon=True,
        )
        proc.start()
        self.workers[worker_id] = _Worker(worker_id, proc, inbox)
        self.report.workers_launched += 1

    def _enqueue(self, node: SplitNode, resume: bool) -> None:
        self._stamp(node)
        node.attempts += 1
        self.outstanding[node.key] = node
        self.jobq.put(
            CubeJob(
                worker_id=-1,
                key=node.key,
                path=node.path,
                budget_decisions=node.budget,
                engine=self.engine,
                paradigm=self.paradigm,
                certify=self.certify,
                ckpt_path=self._ckpt_path(node),
                resume=resume,
                max_shared_lits=self.max_shared_lits,
                preload=[],
            )
        )

    def _cancel_current(self, worker: _Worker) -> None:
        """Abort the cube ``worker`` is on (SIGTERM → interrupt flag)."""
        if worker.cancel_key == worker.current_key:
            return  # already signalled for this cube
        worker.cancel_key = worker.current_key
        if worker.proc.is_alive():
            try:
                os.kill(worker.proc.pid, signal.SIGTERM)
            except (ProcessLookupError, OSError):  # pragma: no cover
                pass
        self.report.cancelled += 1

    def _drain_bus(self) -> None:
        if self.outbox is None:
            return
        while True:
            try:
                item = self.outbox.get_nowait()
            except stdlib_queue.Empty:
                return
            except (EOFError, OSError):  # pragma: no cover - torn bus
                return
            self.pool.append(item)
            if len(self.pool) > POOL_MAX:
                del self.pool[: len(self.pool) - POOL_MAX]
            for worker in self.workers.values():
                if worker.inbox is None:
                    continue
                try:
                    worker.inbox.put_nowait(item)
                except stdlib_queue.Full:
                    pass
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass

    # -- result handling ----------------------------------------------------

    def _absorb_share(self, stats: Optional[Dict[str, object]]) -> None:
        if not stats:
            return
        for key in ("exported", "export_dropped", "imported"):
            self.share_totals[key] += int(stats.get(key, 0))
        for reason, count in (stats.get("import_rejected") or {}).items():
            self.rejected_totals[reason] = self.rejected_totals.get(reason, 0) + count

    def _on_done(self, worker: _Worker, status: str, payload, shutdown: bool) -> None:
        key = worker.current_key
        worker.current_key = None
        cancelled = worker.cancel_key is not None and worker.cancel_key == key
        worker.cancel_key = None
        node = self.nodes.get(key) if key is not None else None
        if key is not None:
            self.outstanding.pop(key, None)
        if node is None:  # pragma: no cover - protocol confusion
            return
        if status != STATUS_OK:
            self.report.crashes += 1
            self._respawn(worker)
            if not shutdown and not cancelled and not _settled_above(node):
                if node.attempts <= MAX_CRASHES:
                    self.pending.append(node)
                else:
                    node.outcome = Outcome.UNKNOWN
            return
        outcome = Outcome[payload["outcome"]]
        self.report.total_decisions += int(payload.get("decisions", 0))
        self._absorb_share(payload.get("share"))
        if outcome in (Outcome.TRUE, Outcome.FALSE):
            node.outcome = outcome
            node.decisions = int(payload.get("decisions", 0))
            frag = payload.get("fragment")
            if frag is not None:
                node.fragment = LeafFragment.from_payload(frag)
            return
        # UNKNOWN: preempted or out of budget.
        node.interrupted = bool(payload.get("interrupted"))
        if cancelled or _settled_above(node):
            node.cancelled = True
            return
        if shutdown:
            return
        if node.interrupted:
            # Collateral preemption: the cancel signal raced the job
            # hand-off and hit the wrong cube. Just run it again (the
            # checkpoint, if flushed, resumes the partial work).
            self.pending.append(node)
            return
        self._escalate(node)

    def _respawn(self, worker: _Worker) -> None:
        """Replace a crashed worker process (its queues are abandoned).

        Bounded: after :data:`MAX_RESPAWNS_PER_JOB` × ``jobs`` replacements
        the pool stops respawning and shrinks instead — a poison formula
        that kills every worker it touches must not fork-bomb the host.
        When the last worker is gone the main loop gives up and folds what
        it has (the serve layer then degrades to a scratch solve).
        """
        proc = worker.proc
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=SHUTDOWN_GRACE_SECONDS)
        if proc.is_alive():  # pragma: no cover - stuck worker
            proc.kill()
            proc.join(timeout=1.0)
        if worker.inbox is not None:
            worker.inbox.cancel_join_thread()
            worker.inbox.close()
        self.workers.pop(worker.id, None)
        if self.report.respawns >= MAX_RESPAWNS_PER_JOB * self.jobs:
            return  # respawn budget exhausted: let the pool shrink
        self.report.respawns += 1
        self._spawn_worker()

    def _escalate(self, node: SplitNode) -> None:
        """A leaf blew its budget.

        Cheap first: double the budget and resume the checkpoint — no work
        is discarded. Only after a couple of doublings still fail do we
        re-split the cube (splitting throws the partial search away and
        doubles the leaf count, which thrashes badly when the cofactors are
        not actually easier than their parent). Re-split children inherit
        the escalated budget for the same reason.
        """
        can_double = node.attempts <= self.max_escalations
        if can_double and node.attempts <= RESPLIT_AFTER_ESCALATIONS:
            node.budget *= 2
            self.report.escalations += 1
            self.pending.append(node)
            return
        if node.depth() < self.max_depth:
            leaf, _ = cofactor(self.formula, node.path)
            if split_leaf(node, leaf, self.seed):
                self.report.resplits += 1
                try:
                    os.unlink(self._ckpt_path(node))
                except OSError:
                    pass
                for child in (node.pos, node.neg):
                    child.budget = node.budget
                    self._stamp(child)
                    self.pending.append(child)
                return
        if not can_double:
            node.outcome = Outcome.UNKNOWN
            return
        node.budget *= 2
        self.report.escalations += 1
        self.pending.append(node)

    # -- the main loop ------------------------------------------------------

    def run(self) -> CubeReport:
        started = time.monotonic()
        root = build_split(
            self.formula, self.initial_cubes, seed=self.seed, max_depth=self.max_depth
        )
        self.report.root = root
        self.jobq = self.ctx.Queue()
        self.resultq = self.ctx.Queue()
        if self.share:
            self.outbox = self.ctx.Queue(maxsize=4096)
        for leaf in root.leaves():
            self._stamp(leaf)
            self.pending.append(leaf)
        self.pending.sort(key=lambda n: n.path)
        for _ in range(self.jobs):
            self._spawn_worker()
        shutdown = False
        try:
            while True:
                now = time.monotonic()
                decided = fold_outcomes(root)
                timed_out = (
                    self.wall_timeout is not None
                    and now - started > self.wall_timeout
                )
                if self._interrupted() or timed_out:
                    self.report.interrupted = self.report.interrupted or self._interrupted()
                    shutdown = True
                if decided is not None or shutdown:
                    break
                # Cancel workers grinding cubes a sibling already settled.
                for worker in self.workers.values():
                    key = worker.current_key
                    if key is None or worker.cancel_key == key:
                        continue
                    node = self.nodes.get(key)
                    if node is not None and _settled_above(node):
                        self._cancel_current(worker)
                # Keep the job queue primed a few cubes deep per worker —
                # easy cubes drain in milliseconds, and a shallow queue
                # starves the pool on coordinator poll latency — but still
                # bounded, so re-splits and budget escalations see
                # reasonably fresh state when they dequeue.
                while self.pending and len(self.outstanding) < 4 * self.jobs:
                    node = self.pending.pop(0)
                    if _settled_above(node):
                        node.cancelled = True
                        continue
                    resume = node.attempts > 0 and os.path.exists(
                        self._ckpt_path(node)
                    )
                    self._enqueue(node, resume=resume)
                if not self.outstanding and not self.pending:
                    break
                if not self.workers:
                    # Respawn budget exhausted and the last worker is dead:
                    # nothing will ever drain the queue — fold what settled.
                    break
                self._drain_bus()
                self._pump_results(shutdown=False, timeout=0.02)
        finally:
            self._shutdown_pool()
            if self._own_workdir:
                shutil.rmtree(self.workdir, ignore_errors=True)
        report = self.report
        folded = fold_outcomes(root)
        # NB: Outcome.FALSE is falsy (and UNKNOWN raises on bool), so this
        # must be an explicit None test, not an ``or`` fallback.
        report.outcome = Outcome.UNKNOWN if folded is None else folded
        report.seconds = time.monotonic() - started
        report.leaves = len(root.leaves())
        report.share = dict(self.share_totals)
        report.share["import_rejected"] = dict(self.rejected_totals)
        if self.certify:
            from repro.certify import check_certificate

            report.certificate = merge_certificates(root, self.formula.prefix)
            report.certificate_status = check_certificate(
                self.formula, report.certificate.sink
            ).status
        return report

    def _pump_results(self, shutdown: bool, timeout: float) -> None:
        try:
            worker_id, tag, body = self.resultq.get(timeout=timeout)
        except stdlib_queue.Empty:
            self._check_worker_health()
            return
        except (EOFError, OSError):  # pragma: no cover - torn queue
            return
        while True:
            worker = self.workers.get(worker_id)
            if worker is not None:
                if tag == MSG_START:
                    worker.current_key = body
                    node = self.nodes.get(body)
                    if node is not None and (shutdown or _settled_above(node)):
                        self._cancel_current(worker)
                elif tag == MSG_DONE:
                    status, payload = body
                    self._on_done(worker, status, payload, shutdown=shutdown)
            try:
                worker_id, tag, body = self.resultq.get_nowait()
            except stdlib_queue.Empty:
                return
            except (EOFError, OSError):  # pragma: no cover
                return

    def _check_worker_health(self) -> None:
        """A worker that died without a message loses its current cube."""
        for worker in list(self.workers.values()):
            if worker.proc.is_alive():
                continue
            self._on_done(worker, STATUS_CRASH, "worker died silently", shutdown=False)

    def _shutdown_pool(self) -> None:
        # Abort in-flight cubes, then send one sentinel per worker.
        for worker in self.workers.values():
            if worker.proc.is_alive():
                try:
                    os.kill(worker.proc.pid, signal.SIGTERM)
                except (ProcessLookupError, OSError):  # pragma: no cover
                    pass
        for _ in self.workers:
            try:
                self.jobq.put_nowait(None)
            except (stdlib_queue.Full, OSError):  # pragma: no cover
                break
        deadline = time.monotonic() + SHUTDOWN_GRACE_SECONDS
        # Absorb any final results (a worker may have finished a decisive
        # cube just as we shut down — keep its verdict and fragment).
        for worker in self.workers.values():
            while worker.proc.is_alive() and time.monotonic() < deadline:
                self._pump_results(shutdown=True, timeout=0.05)
                worker.proc.join(timeout=0.05)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=1.0)
        self._pump_results(shutdown=True, timeout=0.0)
        for q in [self.jobq, self.resultq, self.outbox] + [
            w.inbox for w in self.workers.values()
        ]:
            if q is None:
                continue
            q.cancel_join_thread()
            q.close()
        self.workers.clear()


def run_cube(
    formula: QBF,
    jobs: int = 2,
    leaf_decisions: int = DEFAULT_LEAF_DECISIONS,
    certify: bool = False,
    share: bool = True,
    seed: int = 0,
    engine: Optional[str] = None,
    paradigm: Optional[str] = None,
    max_depth: int = 12,
    initial_cubes: Optional[int] = None,
    total_decisions: Optional[int] = None,
    wall_timeout: Optional[float] = None,
    interrupt=None,
    workdir: Optional[str] = None,
    max_shared_lits: int = MAX_SHARED_LITS,
    max_escalations: int = 8,
) -> CubeReport:
    """Solve ``formula`` cube-and-conquer style across ``jobs`` processes.

    Returns a :class:`CubeReport`; with ``certify=True`` its
    ``certificate`` is the merged derivation and ``certificate_status`` the
    independent checker's verdict against the original formula. The folded
    verdict is deterministic for a given ``seed``; wall-clock, decision
    totals, and sharing statistics are not (see DESIGN.md §12).

    ``paradigm`` (default: the configured session paradigm) must be
    checkpoint-capable — workers snapshot their leaves for budget
    escalation and preemption — and exchange-capable when ``share`` is on;
    an incapable paradigm is refused upfront with a
    :class:`~repro.core.paradigm.CapabilityError` instead of crashing a
    worker mid-solve.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    from repro.core.engine.config import default_paradigm
    from repro.core.paradigm import CapabilityError, get_paradigm

    paradigm = paradigm if paradigm is not None else default_paradigm()
    caps = get_paradigm(paradigm).capabilities
    if not caps.checkpoint:
        raise CapabilityError(
            paradigm,
            "checkpoint/resume",
            "cube workers snapshot their leaves for budget escalation and "
            "preemption; use a checkpoint-capable paradigm such as 'search'",
        )
    if share and jobs > 1 and not caps.exchange:
        raise CapabilityError(
            paradigm,
            "constraint exchange",
            "disable sharing (share=False) or use an exchange-capable "
            "paradigm such as 'search'",
        )
    started = time.monotonic()
    if jobs == 1:
        root = SplitNode(())
        root.key = 0
        job = CubeJob(
            worker_id=0,
            key=0,
            path=(),
            budget_decisions=total_decisions,
            engine=engine,
            paradigm=paradigm,
            certify=certify,
        )
        payload = solve_cube_job(job, formula, interrupt=interrupt)
        root.outcome = Outcome[payload["outcome"]]
        root.decisions = payload["decisions"]
        if payload.get("fragment") is not None:
            root.fragment = LeafFragment.from_payload(payload["fragment"])
        report = CubeReport(
            outcome=root.outcome,
            seconds=time.monotonic() - started,
            jobs=1,
            leaves=1,
            total_decisions=payload["decisions"],
            workers_launched=1,
            interrupted=bool(payload.get("interrupted")),
            root=root,
        )
        if certify:
            from repro.certify import check_certificate

            report.certificate = merge_certificates(root, formula.prefix)
            report.certificate_status = check_certificate(
                formula, report.certificate.sink
            ).status
        return report
    coordinator = _Coordinator(
        formula,
        jobs=jobs,
        leaf_decisions=leaf_decisions,
        certify=certify,
        share=share,
        seed=seed,
        engine=engine,
        paradigm=paradigm,
        max_depth=max_depth,
        initial_cubes=initial_cubes,
        wall_timeout=wall_timeout,
        interrupt=interrupt,
        workdir=workdir,
        max_shared_lits=max_shared_lits,
        max_escalations=max_escalations,
    )
    return coordinator.run()
