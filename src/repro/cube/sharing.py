"""Sound constraint sharing between cube-and-conquer workers.

Soundness contract (Giunchiglia, Narizzano & Tacchella): a constraint may
be installed in any worker iff it is derivable by clause/term resolution
from the *original* matrix. Workers therefore exchange constraints in the
**original variable space**, lifted out of their local cube context before
export:

* a clause ``C`` learned under assumptions ``A`` certifies ``A ⊨ ¬C``-ish
  only locally; globally the derivation replays with the assumption units
  removed, which *weakens* every step by literals of ``¬A`` — so the export
  is ``C ∪ ¬A``. Weakening a Q-derivable clause is itself derivable
  (resolve/reduce steps tolerate extra side literals), so the lift is
  sound.
* a cube ``T`` learned under ``A`` is an implicant of the *cofactored*
  matrix; re-attaching the assumptions, ``T ∪ A`` satisfies every original
  clause (those deleted by the cofactor contain a literal of ``A``), so it
  is a legal initial cube of the original formula, and term resolution from
  it stays sound.

The receiver direction is asymmetric. A worker solving the plain cofactor
``Φ|A`` strips its own assumption variables from an import (a clause
containing ``a ∈ A`` is satisfied under the cube and useless; a cube
containing ``¬a`` is dead); a worker on the incremental path — original
prefix plus assumption *unit clauses* — installs imports untranslated.

Every import passes an :class:`AdmissionFilter` first: size cap, bindness,
quantifier agreement, and pairwise prefix-order (``≺``) agreement with the
receiving engine's prefix. Genuine exports always pass (restricting level-1
variables preserves ``≺`` among survivors); the filter is the firewall
against malformed or foreign traffic, and every rejection is counted and
logged, never installed.
"""

from __future__ import annotations

import itertools
import logging
import queue
from collections import Counter
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.constraints import sanitize_lits
from repro.core.formula import QBF
from repro.core.literals import var_of

log = logging.getLogger("repro.cube")

#: default admission cap on shared-constraint width.
MAX_SHARED_LITS = 16

#: bus item: (sender id, is_cube, literals in original variable space).
BusItem = Tuple[int, bool, Tuple[int, ...]]


class AdmissionFilter:
    """Validate a shared constraint against the receiving engine's prefix.

    Args:
        original: the original (unsplit) formula — shared traffic lives in
            its variable space.
        receiver_prefix: the prefix the receiving engine actually runs on.
            ``None`` means the receiver runs in the original space
            (incremental path, or the coordinator itself).
        assumptions: the receiver's cube. Only meaningful together with a
            restricted ``receiver_prefix``: imports are stripped of these
            variables before installation (and dropped when the cube already
            satisfies/kills them).
        max_lits: reject constraints wider than this (after stripping).
        max_level: optionally reject constraints touching variables deeper
            than this prefix level in the receiver's prefix.
        cubes_ok: reject every shared *cube* when False. Receivers on the
            incremental path need this: their effective formula carries the
            assumptions as unit clauses, and a cube derivable from the
            original matrix need not be derivable once those units join the
            axioms (initial cubes must satisfy them too) — clauses, by
            monotonicity, are always safe to inherit.

    :meth:`admit` returns the literals to install, or ``None`` with the
    rejection reason recorded in :attr:`rejected`.
    """

    def __init__(
        self,
        original: QBF,
        receiver_prefix=None,
        assumptions: Sequence[int] = (),
        max_lits: int = MAX_SHARED_LITS,
        max_level: Optional[int] = None,
        cubes_ok: bool = True,
    ):
        self._orig_prefix = original.prefix
        self._prefix = receiver_prefix if receiver_prefix is not None else original.prefix
        self._strip = receiver_prefix is not None and receiver_prefix is not original.prefix
        self._assumed = frozenset(assumptions)
        self._assumed_vars = frozenset(var_of(l) for l in assumptions)
        self._bound = frozenset(original.prefix.variables)
        self._recv_vars = frozenset(self._prefix.variables)
        self.max_lits = max_lits
        self.max_level = max_level
        self.cubes_ok = cubes_ok
        self.rejected: Counter = Counter()
        self.admitted = 0

    def _reject(self, reason: str, lits) -> None:
        self.rejected[reason] += 1
        log.info("rejected shared constraint %r: %s", list(lits), reason)

    def admit(self, is_cube: bool, lits: Iterable[int]) -> Optional[Tuple[int, ...]]:
        lits = tuple(lits)
        if is_cube and not self.cubes_ok:
            self._reject("cube-on-original-path", lits)
            return None
        if not all(isinstance(l, int) and l != 0 for l in lits):
            self._reject("malformed", lits)
            return None
        clean = sanitize_lits(lits)
        if clean is None:
            self._reject("tautology", lits)
            return None
        if any(var_of(l) not in self._bound for l in clean):
            self._reject("unbound", lits)
            return None
        if self._strip:
            clean = self._strip_assumptions(is_cube, clean)
            if clean is None:
                # Satisfied clause / dead cube under the receiver's cube:
                # harmless, but nothing to install.
                self._reject("assumption-subsumed", lits)
                return None
        if not clean:
            self._reject("empty-after-strip", lits)
            return None
        if len(clean) > self.max_lits:
            self._reject("oversized", lits)
            return None
        variables = sorted(var_of(l) for l in clean)
        for v in variables:
            if v not in self._recv_vars:
                self._reject("unbound", lits)
                return None
            if self._prefix.quant(v) is not self._orig_prefix.quant(v):
                self._reject("quantifier-mismatch", lits)
                return None
        for a, b in itertools.combinations(variables, 2):
            if self._prefix.prec(a, b) != self._orig_prefix.prec(
                a, b
            ) or self._prefix.prec(b, a) != self._orig_prefix.prec(b, a):
                self._reject("prefix-order", lits)
                return None
        if self.max_level is not None and any(
            self._prefix.level(v) > self.max_level for v in variables
        ):
            self._reject("level-cap", lits)
            return None
        self.admitted += 1
        return clean

    def _strip_assumptions(
        self, is_cube: bool, lits: Tuple[int, ...]
    ) -> Optional[Tuple[int, ...]]:
        out: List[int] = []
        for lit in lits:
            if var_of(lit) not in self._assumed_vars:
                out.append(lit)
                continue
            if is_cube:
                if lit in self._assumed:
                    continue  # cube literal implied by the receiver's cube
                return None  # cube contradicts the receiver's cube: dead here
            if lit in self._assumed:
                return None  # clause satisfied by the receiver's cube
            # clause literal falsified by the cube: drop it (the stripped
            # clause is exactly the cofactor of the shared clause).
        return tuple(out)


class Exchange:
    """A worker's end of the sharing bus, and the engine's exchange hook.

    The search engine calls :meth:`on_learned` after each learned constraint
    and polls :meth:`drain` at its pre-decision quiescent point; this class
    turns those into non-blocking traffic on two multiprocessing queues
    (``outbox`` toward the coordinator, ``inbox`` from it). Everything is
    lossy by design: a full outbox drops the export, a burst of imports is
    installed over several drains. Loss never affects soundness — shared
    constraints are redundant consequences of the original matrix.
    """

    def __init__(
        self,
        sender_id: int,
        assumptions: Sequence[int],
        outbox,
        inbox,
        admission: AdmissionFilter,
        max_lits: int = MAX_SHARED_LITS,
        export: bool = True,
        lift_cubes: bool = True,
        preload: Sequence[BusItem] = (),
    ):
        self.sender_id = sender_id
        self._assumed = tuple(assumptions)
        self._neg_assumed = tuple(-l for l in assumptions)
        self._outbox = outbox
        self._inbox = inbox
        self.admission = admission
        self.max_lits = max_lits
        self.export = export
        #: incremental-path workers set this False: their cube derivations
        #: are valid in the original space verbatim (the assumption units
        #: never join a cube derivation), so cubes export unlifted.
        self.lift_cubes = lift_cubes
        #: constraints already on the bus when this worker started, handed
        #: over in the job payload; consumed by the first drain.
        self._preload: List[BusItem] = list(preload)
        self._seen: set = set()
        self.exported = 0
        self.export_dropped = 0
        self.imported = 0

    # -- engine-facing hook -------------------------------------------------

    def on_learned(self, is_cube: bool, lits: Sequence[int]) -> None:
        if not self.export or self._outbox is None:
            return
        lifted = self.lift(is_cube, lits)
        if lifted is None or len(lifted) > self.max_lits:
            return
        key = (is_cube, lifted)
        if key in self._seen:
            return
        self._seen.add(key)
        try:
            self._outbox.put_nowait((self.sender_id, is_cube, lifted))
            self.exported += 1
        except queue.Full:
            self.export_dropped += 1

    def drain(self) -> Iterator[Tuple[bool, Tuple[int, ...]]]:
        if self._preload:
            preload, self._preload = self._preload, []
            for sender, is_cube, lits in preload:
                got = self._admit(sender, is_cube, lits)
                if got is not None:
                    yield got
        if self._inbox is None:
            return
        while True:
            try:
                sender, is_cube, lits = self._inbox.get_nowait()
            except queue.Empty:
                return
            except (EOFError, OSError):  # bus torn down mid-drain
                return
            got = self._admit(sender, is_cube, lits)
            if got is not None:
                yield got

    def _admit(
        self, sender: int, is_cube: bool, lits
    ) -> Optional[Tuple[bool, Tuple[int, ...]]]:
        if sender == self.sender_id:
            return None
        clean = self.admission.admit(is_cube, lits)
        if clean is None:
            return None
        key = (is_cube, clean)
        if key in self._seen:
            return None
        self._seen.add(key)
        self.imported += 1
        return is_cube, clean

    # -- the sender-side lift ----------------------------------------------

    def lift(self, is_cube: bool, lits: Sequence[int]) -> Optional[Tuple[int, ...]]:
        """Rephrase a locally learned constraint in the original space.

        Clause: weaken by the negated assumptions (``C ∪ ¬A``); a clause
        that mentions an assumption positively lifts to a tautology — on
        the incremental path assumption units participate in resolution —
        and is skipped. Cube: strengthen by the assumptions (``T ∪ A``);
        cube literals are a trail subset, so ``¬a`` can never appear.
        """
        if is_cube and not self.lift_cubes:
            return sanitize_lits(tuple(lits))
        merged = tuple(lits) + (self._assumed if is_cube else self._neg_assumed)
        return sanitize_lits(merged)

    def stats(self) -> dict:
        return {
            "exported": self.exported,
            "export_dropped": self.export_dropped,
            "imported": self.imported,
            "import_rejected": dict(self.admission.rejected),
        }
