"""Cube-and-conquer speedup benchmark (``repro cube bench``).

Runs the pinned Figure-6 model-checking series (counter and semaphore
diameter bounds, tree form) through :func:`repro.cube.run_cube` at
``jobs=1`` — the genuine sequential baseline: no splitting, no fork, no
sharing — and at each parallel job count, and reports the wall-clock
speedup per instance.

The CI gate is **verdict agreement only**: every parallel configuration
must reproduce the sequential verdict (a disagreement raises
:class:`CubeDivergence`, and the divergent report is still persisted for
triage). Speedup is recorded, never gated — wall-clock numbers from shared
CI runners would gate on scheduler noise, and on a single hardware thread
the decomposition's work reduction is the only source of speedup anyway.

Report schema (``repro-cube-bench/1``)::

    {"schema": "...", "mode": "quick"|"full", "jobs": [1, 4],
     "instances": [{"instance": "counter3/n=7", "family": ..., "size": ...,
                    "n": ..., "verdict": "false", "agreement": true,
                    "runs": [{"jobs": 1, "wall_seconds": ..,
                              "total_decisions": .., "outcome": "false",
                              "speedup": 1.0, "share": {...}}, ...]}, ...],
     "verdict_agreement_ok": true}
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cube.coordinator import run_cube
from repro.smv.diameter import diameter_qbf
from repro.smv.models import model_by_name

SCHEMA = "repro-cube-bench/1"

#: (family, size, bounds) triples of the pinned series. The full series is
#: the Figure-6 pair: the counter family around its eccentricity (one TRUE
#: and one FALSE bound) plus the semaphore family; quick mode is a small
#: member of each family, sized for a CI smoke leg.
FULL_SERIES: Tuple[Tuple[str, int, Tuple[int, ...]], ...] = (
    ("counter", 3, (6, 7)),
    ("semaphore", 2, (4,)),
)
QUICK_SERIES: Tuple[Tuple[str, int, Tuple[int, ...]], ...] = (
    ("counter", 2, (4,)),
    ("semaphore", 2, (4,)),
)

FULL_JOBS: Tuple[int, ...] = (1, 2, 4)
QUICK_JOBS: Tuple[int, ...] = (1, 2)


class CubeDivergence(AssertionError):
    """A parallel run disagreed with the sequential verdict."""

    def __init__(self, report: dict):
        bad = [
            "%s (jobs=%d: %s vs %s)"
            % (i["instance"], r["jobs"], r["outcome"], i["verdict"])
            for i in report["instances"]
            for r in i["runs"]
            if r["outcome"] != i["verdict"]
        ]
        super().__init__(
            "cube verdicts diverged from sequential: %s" % ", ".join(bad)
        )
        self.report = report


def _run_one(formula, jobs: int, seed: int) -> Dict[str, object]:
    start = time.perf_counter()
    report = run_cube(formula, jobs=jobs, seed=seed)
    wall = time.perf_counter() - start
    return {
        "jobs": jobs,
        "outcome": report.outcome.value,
        "wall_seconds": wall,
        "total_decisions": report.total_decisions,
        "leaves": report.leaves,
        "escalations": report.escalations,
        "resplits": report.resplits,
        "cancelled": report.cancelled,
        "share": report.share,
    }


def run_cube_bench(
    quick: bool = False,
    jobs: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> dict:
    """Run the series; returns the report dict (see module docstring).

    Raises :class:`CubeDivergence` — with the full report attached — when
    any parallel verdict disagrees with the sequential one.
    """
    series = QUICK_SERIES if quick else FULL_SERIES
    job_counts = tuple(jobs) if jobs else (QUICK_JOBS if quick else FULL_JOBS)
    if 1 not in job_counts:
        job_counts = (1,) + job_counts
    instances: List[Dict[str, object]] = []
    agreement_ok = True
    for family, size, bounds in series:
        model = model_by_name(family, size)
        for n in bounds:
            formula = diameter_qbf(model, n, form="tree")
            runs = [_run_one(formula, j, seed) for j in sorted(job_counts)]
            sequential = runs[0]
            for run in runs:
                run["speedup"] = (
                    sequential["wall_seconds"] / run["wall_seconds"]
                    if run["wall_seconds"] > 0
                    else float("nan")
                )
            agree = all(r["outcome"] == sequential["outcome"] for r in runs)
            agreement_ok = agreement_ok and agree
            instances.append(
                {
                    "instance": "%s%d/n=%d" % (family, size, n),
                    "family": family,
                    "size": size,
                    "n": n,
                    "verdict": sequential["outcome"],
                    "agreement": agree,
                    "runs": runs,
                }
            )
    report = {
        "schema": SCHEMA,
        "mode": "quick" if quick else "full",
        "jobs": list(sorted(job_counts)),
        "seed": seed,
        "instances": instances,
        "verdict_agreement_ok": agreement_ok,
    }
    if not agreement_ok:
        raise CubeDivergence(report)
    return report


def render_report(report: dict) -> str:
    """Human-readable summary table of a report (stdout companion)."""
    lines = [
        "repro cube bench — Figure-6 series, %s mode" % report["mode"],
        "",
        "  %-18s %8s %6s %10s %12s %9s" % (
            "instance", "verdict", "jobs", "wall", "decisions", "speedup"),
    ]
    for inst in report["instances"]:
        for run in inst["runs"]:
            lines.append("  %-18s %8s %6d %9.2fs %12d %8.2fx" % (
                inst["instance"], inst["verdict"].upper(), run["jobs"],
                run["wall_seconds"], run["total_decisions"], run["speedup"],
            ))
    verdict = "ok" if report["verdict_agreement_ok"] else "DIVERGED"
    lines.append("")
    lines.append("parallel-vs-sequential verdict agreement: %s" % verdict)
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
