"""Cube-and-conquer: parallel search inside one QBF instance.

The quantifier structure that lets the engine branch on any top (level-1)
variable is also a sound work-splitting recipe: cofactoring on top
variables decomposes one instance into independent subproblems whose
verdicts fold back up the quantifier tree (existential split: any TRUE
branch wins; universal split: any FALSE branch wins). This package turns
that observation into a parallel solver:

* :mod:`repro.cube.splitter` — the split tree, cofactoring with an
  original-clause index map, and the verdict fold;
* :mod:`repro.cube.sharing` — sound learned-constraint exchange between
  workers (lift to the original variable space, admission filtering at the
  receiver);
* :mod:`repro.cube.merge` — lifting per-cube proof fragments and stitching
  them into one certificate the independent checker accepts against the
  original formula;
* :mod:`repro.cube.coordinator` — the process pool, dynamic re-splitting
  by checkpoint, early cancellation, and :func:`run_cube`;
* :mod:`repro.cube.bench` — the speedup benchmark (``repro cube bench``).
"""

from repro.cube.coordinator import (
    DEFAULT_LEAF_DECISIONS,
    CubeJob,
    CubeReport,
    run_cube,
    solve_cube_job,
)
from repro.cube.merge import LeafFragment, MergeReport, merge_certificates
from repro.cube.sharing import MAX_SHARED_LITS, AdmissionFilter, BusItem, Exchange
from repro.cube.splitter import (
    ClauseMap,
    SplitNode,
    build_split,
    choose_split_var,
    cofactor,
    fold_outcomes,
    rank_split_vars,
    split_leaf,
)

__all__ = [
    "AdmissionFilter",
    "BusItem",
    "ClauseMap",
    "CubeJob",
    "CubeReport",
    "DEFAULT_LEAF_DECISIONS",
    "Exchange",
    "LeafFragment",
    "MAX_SHARED_LITS",
    "MergeReport",
    "SplitNode",
    "build_split",
    "choose_split_var",
    "cofactor",
    "fold_outcomes",
    "merge_certificates",
    "rank_split_vars",
    "run_cube",
    "solve_cube_job",
    "split_leaf",
]
