"""Merging per-cube proof fragments into one checkable certificate.

Each worker certifies only its *leaf* formula ``Φ|A`` (the original matrix
cofactored by its cube ``A``). The merge lifts every fragment back into the
original variable space and stitches the lifted finals together along the
split tree, producing a single derivation that
:func:`repro.certify.check_certificate` accepts against the **original**
formula.

The lift (per leaf, assumptions ``A``)
--------------------------------------

Cofactoring deleted, from each surviving original clause ``O``, exactly the
literals of ``¬A`` it contained — the clause's *carried* set, recorded by
:func:`repro.cube.splitter.cofactor`. Re-attaching carried literals turns
every leaf clause step into a step about the original clause:

* ``inp``  — cites the original clause index; lits gain the carried set.
* clause ``res``/``red`` — lits gain the union of the antecedents' carried
  sets (weakening both antecedents of a resolution weakens the resolvent;
  a reduction's dropped universals stay droppable because no survivor of a
  split ever precedes (``≺``) a split variable in the original prefix).
* ``cube0`` and every cube step — lits gain ``A`` uniformly: a model of the
  cofactor together with the cube is a model of the original matrix, and
  the existential reductions stay legal for the same no-survivor-precedes-
  a-split-variable reason.

A leaf's lifted final is therefore: FALSE — a clause ``⊆ ¬A``; TRUE — the
cube ``A`` exactly.

The fold (per split node)
-------------------------

At a node with path assumptions ``A`` splitting on ``v``:

* existential ``v``, some branch TRUE: one existential ``red`` drops the
  branch literal from the child cube ``A ∪ {±v}``, giving ``A``.
* existential ``v``, both FALSE: resolve the child clauses on pivot ``v``
  (skipping the resolution when a child clause does not even mention its
  branch literal — it is already ``⊆ ¬A`` and used directly).
* universal ``v``: the exact dual (clause ``red`` / cube ``res``).

At the root ``A = ()``, so the fold ends in an empty constraint and the
conclusion can honestly claim ``complete``. Any undecided or uncertified
subtree degrades the merge to an *incomplete* certificate (honest partial
proof) rather than an invalid one.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.certify.store import (
    CONCLUSION,
    HEADER,
    INITIAL_CUBE,
    INPUT_CLAUSE,
    KIND_CLAUSE,
    KIND_CUBE,
    REDUCTION,
    RESOLUTION,
    MemorySink,
    header_step,
)
from repro.core.literals import EXISTS, var_of
from repro.core.result import Outcome
from repro.cube.splitter import ClauseMap, SplitNode, fold_outcomes


class LeafFragment:
    """One worker's raw certificate plus the context needed to lift it."""

    __slots__ = ("assumptions", "clause_map", "steps")

    def __init__(
        self,
        assumptions: Tuple[int, ...],
        clause_map: ClauseMap,
        steps: List[Dict[str, object]],
    ):
        self.assumptions = tuple(assumptions)
        self.clause_map = tuple(clause_map)
        self.steps = list(steps)

    def conclusion(self) -> Optional[Dict[str, object]]:
        for step in self.steps:
            if step.get("type") == CONCLUSION:
                return step
        return None

    def to_payload(self) -> Dict[str, object]:
        return {
            "assumptions": list(self.assumptions),
            "clause_map": [[i, list(c)] for i, c in self.clause_map],
            "steps": self.steps,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "LeafFragment":
        return cls(
            tuple(payload["assumptions"]),
            tuple((i, tuple(c)) for i, c in payload["clause_map"]),
            list(payload["steps"]),
        )


class MergeReport:
    """Outcome of one merge: the certificate plus honesty bookkeeping."""

    def __init__(self, sink: MemorySink, outcome: Optional[Outcome], complete: bool,
                 reason: Optional[str]):
        self.sink = sink
        self.outcome = outcome
        self.complete = complete
        self.reason = reason

    @property
    def steps(self) -> List[Dict[str, object]]:
        return self.sink.steps


def _canon(lits) -> Tuple[int, ...]:
    return tuple(sorted(set(lits), key=lambda l: (var_of(l), l)))


class _Merger:
    def __init__(self, prefix):
        self.prefix = prefix
        self.sink = MemorySink()
        self.sink.emit(header_step())
        self._next_id = 1
        self.incomplete_reason: Optional[str] = None

    def _fresh(self) -> int:
        out = self._next_id
        self._next_id += 1
        return out

    def _give_up(self, reason: str) -> None:
        if self.incomplete_reason is None:
            self.incomplete_reason = reason

    # -- the per-leaf lift --------------------------------------------------

    def lift_leaf(self, node: SplitNode) -> Optional[Tuple[int, FrozenSet[int]]]:
        frag = node.fragment
        if not isinstance(frag, LeafFragment):
            self._give_up("cube %r has no proof fragment" % (list(node.path),))
            return None
        conclusion = frag.conclusion()
        if conclusion is None or conclusion.get("final") is None or not conclusion.get(
            "complete", False
        ):
            self._give_up(
                "fragment for cube %r is incomplete: %s"
                % (list(node.path), (conclusion or {}).get("reason") or "no conclusion")
            )
            return None
        assumed = frag.assumptions
        idmap: Dict[int, int] = {}
        carried_of: Dict[int, FrozenSet[int]] = {}
        for step in frag.steps:
            t = step.get("type")
            if t in (HEADER, CONCLUSION):
                continue
            old_id = step["id"]
            new_id = self._fresh()
            idmap[old_id] = new_id
            if t == INPUT_CLAUSE:
                leaf_index = step["clause"]
                try:
                    orig_index, carried = frag.clause_map[leaf_index]
                except (IndexError, TypeError):
                    self._give_up(
                        "fragment for cube %r cites unmapped clause %r"
                        % (list(node.path), leaf_index)
                    )
                    return None
                carried_of[new_id] = frozenset(carried)
                self.sink.emit(
                    {
                        "type": INPUT_CLAUSE,
                        "id": new_id,
                        "clause": orig_index,
                        "lits": list(_canon(tuple(step["lits"]) + tuple(carried))),
                    }
                )
            elif t == INITIAL_CUBE:
                self.sink.emit(
                    {
                        "type": INITIAL_CUBE,
                        "id": new_id,
                        "lits": list(_canon(tuple(step["lits"]) + assumed)),
                    }
                )
            elif t in (RESOLUTION, REDUCTION):
                is_cube = step.get("kind") == KIND_CUBE
                try:
                    ants = [idmap[a] for a in step["ant"]]
                except KeyError:
                    # e.g. a pre-bound retained constraint from the
                    # incremental path: no derivation of it is on record.
                    self._give_up(
                        "fragment for cube %r references an unrecorded antecedent"
                        % (list(node.path),)
                    )
                    return None
                if is_cube:
                    extra: Tuple[int, ...] = assumed
                else:
                    carried = frozenset()
                    for a in ants:
                        carried |= carried_of.get(a, frozenset())
                    carried_of[new_id] = carried
                    extra = tuple(carried)
                out = {
                    "type": t,
                    "id": new_id,
                    "kind": step["kind"],
                    "ant": ants,
                    "lits": list(_canon(tuple(step["lits"]) + extra)),
                }
                if t == RESOLUTION:
                    out["pivot"] = step["pivot"]
                self.sink.emit(out)
            # unknown step types are dropped: the checker would reject them,
            # and a fragment containing one is already suspect.
        final_old = conclusion["final"]
        final_new = idmap.get(final_old)
        if final_new is None:
            self._give_up(
                "fragment for cube %r concludes with an unknown step"
                % (list(node.path),)
            )
            return None
        if conclusion.get("outcome") == "true":
            return final_new, frozenset(assumed)
        return final_new, carried_of.get(final_new, frozenset())

    # -- the bottom-up fold -------------------------------------------------

    def fold(self, node: SplitNode) -> Optional[Tuple[int, FrozenSet[int]]]:
        outcome = fold_outcomes(node)
        if outcome is None:
            self._give_up("subtree at cube %r is undecided" % (list(node.path),))
            return None
        if node.is_leaf:
            return self.lift_leaf(node)
        v = node.var
        is_cube = outcome is Outcome.TRUE
        # The branch whose verdict alone settles the node, if any.
        settles = (
            Outcome.TRUE if node.quant is EXISTS else Outcome.FALSE
        )
        if outcome is settles:
            # One winning branch; drop its branch literal by reduction.
            for child, branch_lit in ((node.pos, v), (node.neg, -v)):
                if fold_outcomes(child) is not outcome:
                    continue
                got = self.fold(child)
                if got is None:
                    continue
                child_id, child_lits = got
                want = branch_lit if is_cube else -branch_lit
                if want not in child_lits:
                    # Already free of the branch variable — use directly.
                    return child_id, child_lits
                lits = child_lits - {want}
                new_id = self._fresh()
                self.sink.emit(
                    {
                        "type": REDUCTION,
                        "id": new_id,
                        "kind": KIND_CUBE if is_cube else KIND_CLAUSE,
                        "ant": [child_id],
                        "lits": list(_canon(lits)),
                    }
                )
                return new_id, frozenset(lits)
            return None
        # Both branches agree on the losing verdict; resolve on the pivot.
        got_pos = self.fold(node.pos)
        got_neg = self.fold(node.neg)
        if got_pos is None or got_neg is None:
            return None
        pos_id, pos_lits = got_pos
        neg_id, neg_lits = got_neg
        # A TRUE fold carries cubes (pos branch cube contains +v), a FALSE
        # fold carries clauses (pos branch clause contains -v).
        pos_piv, neg_piv = (v, -v) if is_cube else (-v, v)
        if pos_piv not in pos_lits:
            return pos_id, pos_lits
        if neg_piv not in neg_lits:
            return neg_id, neg_lits
        lits = (pos_lits - {pos_piv}) | (neg_lits - {neg_piv})
        new_id = self._fresh()
        self.sink.emit(
            {
                "type": RESOLUTION,
                "id": new_id,
                "kind": KIND_CUBE if is_cube else KIND_CLAUSE,
                "ant": [pos_id, neg_id],
                "pivot": v,
                "lits": list(_canon(lits)),
            }
        )
        return new_id, frozenset(lits)


def merge_certificates(root: SplitNode, prefix=None) -> MergeReport:
    """Fold the split tree's proof fragments into one certificate.

    Returns a :class:`MergeReport` whose sink is checkable by
    :func:`repro.certify.check_certificate` against the **original**
    formula. An undecided tree concludes ``unknown``; a decided tree with
    missing or incomplete fragments concludes honestly incomplete.
    """
    merger = _Merger(prefix)
    outcome = fold_outcomes(root)
    if outcome is None:
        merger.sink.emit(
            {
                "type": CONCLUSION,
                "outcome": "unknown",
                "final": None,
                "complete": False,
                "reason": "split tree undecided",
            }
        )
        return MergeReport(merger.sink, None, False, "split tree undecided")
    got = merger.fold(root)
    out_str = "true" if outcome is Outcome.TRUE else "false"
    if got is None:
        reason = merger.incomplete_reason or "no terminal derivation recorded"
        merger.sink.emit(
            {
                "type": CONCLUSION,
                "outcome": out_str,
                "final": None,
                "complete": False,
                "reason": reason,
            }
        )
        return MergeReport(merger.sink, outcome, False, reason)
    final_id, final_lits = got
    complete = not final_lits
    reason = None if complete else "root constraint is not empty"
    merger.sink.emit(
        {
            "type": CONCLUSION,
            "outcome": out_str,
            "final": final_id if complete else None,
            "complete": complete,
            "reason": reason,
        }
    )
    return MergeReport(merger.sink, outcome, complete, reason)
