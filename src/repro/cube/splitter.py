"""Cube splitting over the quantifier tree's branchable frontier.

The paper's partial order exposes exactly the work-splitting recipe
cube-and-conquer needs: a *top* variable (prefix level 1) has no ``≺``
predecessor, so any linearization of the prefix may quantify it outermost,
and the formula decomposes over its two cofactors —

* existential top ``v``:  ``Φ ≡ Φ|v ∨ Φ|¬v`` (any satisfied branch wins),
* universal top ``v``:    ``Φ ≡ Φ|v ∧ Φ|¬v`` (any falsified branch wins).

Under a PO (tree) prefix the frontier is the union of every top block —
potentially many independent branchables; under a TO (prenex) prefix
``top_variables()`` degenerates to the outermost block, which *is* the
prefix-order fallback the coordinator relies on. Either way the split is
sound because restricting level-1 variables preserves the ``≺`` relation
among the surviving variables: splicing an emptied top block out of the
tree only promotes its subtrees, and the alternation count between any two
surviving blocks is unchanged. That invariant is what makes the leaf
solvers' universal/existential reductions — and therefore their proof
fragments — valid in the original formula (see :mod:`repro.cube.merge`).

:func:`cofactor` builds the leaf formula for a cube *with an index map back
to the original matrix*: per surviving clause it records which original
clause it came from and which literals were stripped (the ``carried`` set,
all of them falsified by the cube). The worker solves the leaf; the
certificate merge re-attaches the carried literals to lift the leaf's
derivation into the original clause space.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.formula import QBF
from repro.core.literals import EXISTS, Quant, var_of
from repro.core.result import Outcome

#: clause map entry: (original clause index, literals stripped by the cube).
ClauseMap = Tuple[Tuple[int, Tuple[int, ...]], ...]


class SplitNode:
    """One node of the split tree: a cube (path of assumed literals).

    Leaves are work items (``var is None``); internal nodes record the
    variable they split on and its quantifier, which the coordinator's
    verdict folding and the certificate merge both consult. Nodes are
    mutable on purpose — dynamic re-splitting turns a leaf into an internal
    node in place, and the coordinator stamps solve state onto leaves.
    """

    __slots__ = (
        "path",
        "var",
        "quant",
        "pos",
        "neg",
        "parent",
        "outcome",
        "interrupted",
        "cancelled",
        "attempts",
        "budget",
        "decisions",
        "fragment",
        "key",
    )

    def __init__(self, path: Tuple[int, ...], parent: Optional["SplitNode"] = None):
        self.path = path
        self.var: Optional[int] = None
        self.quant: Optional[Quant] = None
        self.pos: Optional["SplitNode"] = None
        self.neg: Optional["SplitNode"] = None
        self.parent = parent
        #: leaf solve state, coordinator-owned.
        self.outcome: Optional[Outcome] = None
        self.interrupted = False
        self.cancelled = False
        self.attempts = 0
        self.budget = 0
        self.decisions = 0
        #: the leaf's lifted proof ingredients (certify mode); see merge.py.
        self.fragment: Optional[object] = None
        #: stable integer id, stamped by the coordinator.
        self.key = -1

    @property
    def is_leaf(self) -> bool:
        return self.var is None

    def leaves(self) -> List["SplitNode"]:
        if self.is_leaf:
            return [self]
        return self.pos.leaves() + self.neg.leaves()

    def depth(self) -> int:
        return len(self.path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = "leaf" if self.is_leaf else "split@%d" % self.var
        return "SplitNode(%r, %s)" % (list(self.path), tag)


def cofactor(formula: QBF, lits: Sequence[int]) -> Tuple[QBF, ClauseMap]:
    """The iterated cofactor ``Φ|lits`` with an original-clause index map.

    Mirrors :meth:`QBF.assign` applied once per literal, but in one pass
    and keeping, for every surviving clause, its original index and the
    (cube-falsified) literals that were stripped from it. A clause
    containing any assumed literal is satisfied and dropped; a clause may
    survive *empty* (every literal falsified), which makes the leaf
    trivially false — the engine and the proof lift both handle that.
    """
    assumed = set(lits)
    falsified = {-l for l in lits}
    if assumed & falsified:
        raise ValueError("contradictory cube %r" % (list(lits),))
    new_clauses: List[Tuple[int, ...]] = []
    index_map: List[Tuple[int, Tuple[int, ...]]] = []
    for index, clause in enumerate(formula.clauses):
        kept: List[int] = []
        carried: List[int] = []
        satisfied = False
        for lit in clause.lits:
            if lit in assumed:
                satisfied = True
                break
            if lit in falsified:
                carried.append(lit)
            else:
                kept.append(lit)
        if satisfied:
            continue
        new_clauses.append(tuple(kept))
        index_map.append((index, tuple(carried)))
    prefix = formula.prefix.restrict([var_of(l) for l in lits])
    return QBF(prefix, new_clauses), tuple(index_map)


def rank_split_vars(formula: QBF, seed: int = 0) -> List[int]:
    """Branchable (level-1) variables, best split candidate first.

    Primary rank is total occurrence count in the matrix (splitting on a
    busy variable simplifies the most clauses); ties are broken by a
    seeded shuffle key so distinct seeds explore different — but each
    individually reproducible — split trees. The seed changes *which* cube
    a worker gets, never the folded verdict.
    """
    top = formula.prefix.top_variables()
    if not top:
        return []
    counts = formula.occurrence_counts()
    rng = random.Random(seed)
    tie = {v: rng.random() for v in sorted(top)}
    return sorted(
        top, key=lambda v: (-(counts.get(v, 0) + counts.get(-v, 0)), tie[v], v)
    )


def choose_split_var(formula: QBF, seed: int = 0) -> Optional[int]:
    """The next variable to split on, or None when nothing is branchable."""
    ranked = rank_split_vars(formula, seed)
    return ranked[0] if ranked else None


def split_leaf(node: SplitNode, formula: QBF, seed: int = 0) -> bool:
    """Turn ``node`` (a leaf) into a split over the best branchable var.

    ``formula`` must be the cofactor of the original instance by
    ``node.path``. Returns False when the cofactor has no branchable
    variable left (the leaf must be solved outright, or escalated).
    """
    if not node.is_leaf:
        raise ValueError("split_leaf on an internal node")
    var = choose_split_var(formula, seed)
    if var is None:
        return False
    node.var = var
    node.quant = formula.prefix.quant(var)
    node.pos = SplitNode(node.path + (var,), parent=node)
    node.neg = SplitNode(node.path + (-var,), parent=node)
    # The node is no longer a work item; its solve state is now the fold
    # of its children.
    node.outcome = None
    node.fragment = None
    return True


def build_split(
    formula: QBF, target_leaves: int, seed: int = 0, max_depth: int = 16
) -> SplitNode:
    """Grow an initial split tree with at least ``target_leaves`` leaves.

    Expands breadth-first — widest leaf first by clause count of its
    cofactor — so the tree stays balanced; stops early when no leaf has a
    branchable variable left or every leaf hit ``max_depth``.
    """
    root = SplitNode(())
    if target_leaves <= 1:
        return root
    frontier: List[Tuple[SplitNode, QBF]] = [(root, formula)]
    while len(frontier) < target_leaves:
        # Widest subproblem first; ties by path for determinism.
        frontier.sort(key=lambda item: (-len(item[1].clauses), item[0].path))
        expanded = False
        for i, (node, sub) in enumerate(frontier):
            if node.depth() >= max_depth:
                continue
            if not split_leaf(node, sub, seed):
                continue
            pos_sub, _ = cofactor(formula, node.pos.path)
            neg_sub, _ = cofactor(formula, node.neg.path)
            frontier[i : i + 1] = [(node.pos, pos_sub), (node.neg, neg_sub)]
            expanded = True
            break
        if not expanded:
            break
    return root


def fold_outcomes(node: SplitNode) -> Optional[Outcome]:
    """The verdict of ``node``'s subtree, from whatever leaves are decided.

    Existential split: any TRUE branch decides TRUE, both FALSE decide
    FALSE. Universal split: the dual. UNKNOWN leaves stay undecided
    (``None``) unless the decided sibling already settles the node — which
    is exactly what lets the coordinator cancel dead siblings early.
    """
    if node.is_leaf:
        out = node.outcome
        if out is Outcome.UNKNOWN:
            return None
        return out
    pos = fold_outcomes(node.pos)
    neg = fold_outcomes(node.neg)
    win, lose = (
        (Outcome.TRUE, Outcome.FALSE)
        if node.quant is EXISTS
        else (Outcome.FALSE, Outcome.TRUE)
    )
    if pos is win or neg is win:
        return win
    if pos is lose and neg is lose:
        return lose
    return None
