"""Clause/term resolution certificates for the Q-DLL engine.

The subsystem has three layers:

* :mod:`repro.certify.proof` — a passive :class:`ProofLogger` the solver
  drives while it runs, recording the implicit clause/term resolution proof;
* :mod:`repro.certify.store` — versioned JSONL serialization with streaming
  read-back (:class:`JsonlSink`, :class:`MemorySink`, :func:`read_certificate`);
* :mod:`repro.certify.checker` — an independent :func:`check_certificate`
  that replays a derivation against the original formula, solver not
  involved, honouring the quantifier tree's ``d(z)/f(z)`` partial order.

:func:`solve_certified` bundles the three for the common case: solve,
certify, self-check, in memory.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.certify.checker import (
    INCOMPLETE,
    INVALID,
    UNKNOWN,
    VERIFIED,
    CheckReport,
    check_certificate,
)
from repro.certify.proof import DerivationTrace, ProofLogger
from repro.certify.store import (
    CERT_FORMAT,
    CERT_VERSION,
    CertificateSource,
    CertificateStats,
    JsonlSink,
    MemorySink,
    certificate_stats,
    header_step,
    read_certificate,
)

__all__ = [
    "CERT_FORMAT",
    "CERT_VERSION",
    "CertificateSource",
    "CertificateStats",
    "CheckReport",
    "DerivationTrace",
    "INCOMPLETE",
    "INVALID",
    "JsonlSink",
    "MemorySink",
    "ProofLogger",
    "UNKNOWN",
    "VERIFIED",
    "certificate_stats",
    "certifying_config",
    "check_certificate",
    "header_step",
    "read_certificate",
    "solve_certified",
]


def certifying_config(config=None):
    """Return ``config`` adjusted for certification.

    The pure-literal rule has no counterpart in the resolution calculi, so a
    run that uses it can produce honest-but-incomplete certificates; learning
    must be on for any derivation to be recorded at all. This keeps every
    other knob (budgets, heuristics) untouched.
    """
    from dataclasses import replace

    from repro.core.solver import SolverConfig

    if config is None:
        config = SolverConfig()
    return replace(config, pure_literals=False, learn_clauses=True, learn_cubes=True)


def solve_certified(
    formula, config=None
) -> Tuple["SolveResult", MemorySink, CheckReport]:
    """Solve ``formula`` with proof logging and self-check the certificate.

    Returns ``(result, certificate, report)`` where ``certificate`` is the
    in-memory step stream and ``report`` the independent checker's verdict
    against the *original* formula. The config is passed through
    :func:`certifying_config` first.
    """
    from repro.core.solver import QdpllSolver

    sink = MemorySink()
    logger = ProofLogger(sink)
    result = QdpllSolver(formula, certifying_config(config), proof=logger).solve()
    report = check_certificate(formula, sink)
    return result, sink, report
