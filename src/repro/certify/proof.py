"""Proof logging: record the solver's implicit clause/term resolution proof.

Q-DLL with learning implicitly constructs a clause-resolution refutation when
the QBF is FALSE and a term(cube)-resolution confirmation when it is TRUE
(Giunchiglia, Narizzano, Tacchella — *Clause/Term Resolution and Learning in
the Evaluation of Quantified Boolean Formulas*). The :class:`ProofLogger`
makes that proof explicit: it is handed to :class:`repro.core.solver.
QdpllSolver` and receives, as they happen,

* the (reduced) input clauses installed from the matrix,
* every initial cube built from a model of the matrix,
* every resolution/reduction step of every conflict and solution analysis
  (via :class:`DerivationTrace` objects threaded through
  :mod:`repro.core.learning`), and
* the final conclusion.

Logging is strictly passive: it never changes a decision, an assignment or a
learned constraint, so a run with a logger attached is decision-for-decision
identical to the same run without one. With ``proof=None`` (the default) the
solver skips every hook, so the disabled cost is a handful of ``is None``
tests.

A certificate is *complete* when the conclusion is backed by a resolution
derivation of the empty constraint. Two engine behaviours cannot be backed
that way and mark the certificate incomplete instead of lying: a verdict
reached by exhausting chronological backtracking (no Terminal analysis ever
fired), and terminal derivations that run into a literal whose reason is not
a constraint (a pure-literal assignment — the monotone rule has no
counterpart in the resolution calculi). Running the engine with
``pure_literals=False`` and learning enabled avoids both in practice; the
logger records honestly either way.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.certify.store import (
    CONCLUSION,
    HEADER,
    INITIAL_CUBE,
    INPUT_CLAUSE,
    KIND_CLAUSE,
    KIND_CUBE,
    REDUCTION,
    RESOLUTION,
    header_step,
)
from repro.core.constraints import universal_reduce

#: map keys are (is_cube, lits) pairs.
_Key = Tuple[bool, Tuple[int, ...]]


class ProofLogger:
    """Accumulates one run's derivation steps into a step sink.

    The sink needs a single ``emit(dict)`` method —
    :class:`repro.certify.store.MemorySink` or
    :class:`repro.certify.store.JsonlSink`.
    """

    def __init__(self, sink):
        self._sink = sink
        self._next_id = 1
        self._ids: Dict[_Key, int] = {}
        self.complete = True
        self.incomplete_reason: Optional[str] = None
        self.concluded = False
        self.outcome: Optional[str] = None
        self._emit(header_step())

    # -- checkpoint continuation -------------------------------------------

    def export_state(self) -> Dict[str, object]:
        """The logger's resumable state (id counter, name map, flags).

        The emitted *steps* live in the sink, not here; a checkpointing
        caller snapshots them separately (a :class:`~repro.certify.store.
        MemorySink` exposes ``steps``) and rebuilds both sides with
        :meth:`resumed`.
        """
        return {
            "next_id": self._next_id,
            "ids": [
                [1 if is_cube else 0, list(lits), step_id]
                for (is_cube, lits), step_id in self._ids.items()
            ],
            "complete": self.complete,
            "incomplete_reason": self.incomplete_reason,
            "concluded": self.concluded,
            "outcome": self.outcome,
        }

    @classmethod
    def resumed(cls, sink, state: Dict[str, object]) -> "ProofLogger":
        """Rebuild a logger mid-derivation onto ``sink``.

        ``sink`` must already hold the steps recorded before the
        interruption (header included), so no header is re-emitted; new
        steps continue the old id sequence and ``register_formula`` becomes
        a no-op because every input clause is already in the name map.
        """
        logger = cls.__new__(cls)
        logger._sink = sink
        logger._next_id = int(state["next_id"])
        logger._ids = {
            (bool(is_cube), tuple(lits)): step_id
            for is_cube, lits, step_id in state["ids"]
        }
        logger.complete = bool(state["complete"])
        logger.incomplete_reason = state.get("incomplete_reason")
        logger.concluded = bool(state["concluded"])
        logger.outcome = state.get("outcome")
        return logger

    # -- plumbing ----------------------------------------------------------

    def _emit(self, step: Dict[str, object]) -> None:
        self._sink.emit(step)

    def _fresh(self) -> int:
        out = self._next_id
        self._next_id += 1
        return out

    def mark_incomplete(self, reason: str) -> None:
        """Record the first cause that keeps this proof from closing."""
        if self.complete:
            self.complete = False
            self.incomplete_reason = reason

    def lookup(self, is_cube: bool, lits: Tuple[int, ...]) -> Optional[int]:
        return self._ids.get((is_cube, lits))

    def bind(self, is_cube: bool, lits: Tuple[int, ...], step_id: int) -> None:
        """Name a derived constraint so later analyses can reference it.

        First binding wins: the engine dedups learned constraints by
        literals, so a second derivation of the same constraint is simply a
        second proof of an already-named fact.
        """
        self._ids.setdefault((is_cube, lits), step_id)

    # -- axioms ------------------------------------------------------------

    def register_formula(self, formula) -> None:
        """Emit one input step per distinct reduced matrix clause.

        Mirrors the engine's install-time universal reduction so the ids
        handed out here are exactly the constraints the engine resolves
        with. Emitted eagerly: input steps are cheap, and a TRUE proof's
        checker walks the whole matrix anyway.
        """
        prefix = formula.prefix
        for index, clause in enumerate(formula.clauses):
            reduced = universal_reduce(clause.lits, prefix)
            if (False, reduced) in self._ids:
                continue
            step_id = self._fresh()
            self._ids[(False, reduced)] = step_id
            self._emit(
                {
                    "type": INPUT_CLAUSE,
                    "id": step_id,
                    "clause": index,
                    "lits": list(reduced),
                }
            )

    def initial_cube(self, lits: Tuple[int, ...]) -> int:
        """An initial cube (model of the matrix); dedups repeats."""
        known = self._ids.get((True, lits))
        if known is not None:
            return known
        step_id = self._fresh()
        self._ids[(True, lits)] = step_id
        self._emit({"type": INITIAL_CUBE, "id": step_id, "lits": list(lits)})
        return step_id

    # -- derivation steps --------------------------------------------------

    def emit_resolution(
        self,
        is_cube: bool,
        a_id: int,
        b_id: int,
        pivot: int,
        lits: Tuple[int, ...],
    ) -> int:
        step_id = self._fresh()
        self._emit(
            {
                "type": RESOLUTION,
                "id": step_id,
                "kind": KIND_CUBE if is_cube else KIND_CLAUSE,
                "ant": [a_id, b_id],
                "pivot": pivot,
                "lits": list(lits),
            }
        )
        return step_id

    def emit_reduction(self, is_cube: bool, a_id: int, lits: Tuple[int, ...]) -> int:
        step_id = self._fresh()
        self._emit(
            {
                "type": REDUCTION,
                "id": step_id,
                "kind": KIND_CUBE if is_cube else KIND_CLAUSE,
                "ant": [a_id],
                "lits": list(lits),
            }
        )
        return step_id

    # -- traces ------------------------------------------------------------

    def begin_clause(self, lits: Tuple[int, ...]) -> Optional["DerivationTrace"]:
        """Start tracing a conflict analysis from a database clause."""
        return self._begin(False, lits)

    def begin_cube(self, lits: Tuple[int, ...]) -> Optional["DerivationTrace"]:
        """Start tracing a solution analysis from a database cube."""
        return self._begin(True, lits)

    def begin_initial_cube(self, lits: Tuple[int, ...]) -> "DerivationTrace":
        """Start tracing a solution analysis from a fresh model cube."""
        return DerivationTrace(self, True, self.initial_cube(lits), lits)

    def _begin(self, is_cube: bool, lits: Tuple[int, ...]) -> Optional["DerivationTrace"]:
        start = self.lookup(is_cube, lits)
        if start is None:
            # The starting constraint was never derived on record — give up
            # on completeness for this run rather than fabricate an axiom.
            self.mark_incomplete(
                "analysis started from an unrecorded %s"
                % (KIND_CUBE if is_cube else KIND_CLAUSE,)
            )
            return None
        return DerivationTrace(self, is_cube, start, lits)

    # -- conclusion --------------------------------------------------------

    def conclude(
        self,
        outcome: str,
        final_id: Optional[int],
        reason: Optional[str] = None,
    ) -> None:
        """Write the conclusion step; only the first call counts."""
        if self.concluded:
            return
        self.concluded = True
        self.outcome = outcome
        if final_id is None and outcome in ("true", "false"):
            self.mark_incomplete(reason or "no terminal derivation recorded")
        if reason is not None and self.incomplete_reason is None and final_id is None:
            self.incomplete_reason = reason
        self._emit(
            {
                "type": CONCLUSION,
                "outcome": outcome,
                "final": final_id,
                "complete": self.complete and final_id is not None,
                "reason": self.incomplete_reason if not self.complete else None,
            }
        )


class DerivationTrace:
    """The working constraint of one analysis, mirrored step by step.

    :mod:`repro.core.learning` drives it: ``reduced`` after every standalone
    reduction and ``resolved`` after every resolve-then-reduce; the trace
    emits matching certificate steps and tracks the current step id, which
    becomes the learned constraint's name (on Backjump) or the conclusion's
    ``final`` id (on Terminal, once the terminal derivation reaches the
    empty constraint).
    """

    __slots__ = ("logger", "is_cube", "cur_id", "cur_lits", "ok")

    def __init__(
        self,
        logger: ProofLogger,
        is_cube: bool,
        start_id: int,
        start_lits: Tuple[int, ...],
    ):
        self.logger = logger
        self.is_cube = is_cube
        self.cur_id = start_id
        self.cur_lits = tuple(start_lits)
        self.ok = True

    def reduced(self, lits: Tuple[int, ...]) -> None:
        """The working constraint was reduced (no-op reductions are elided)."""
        if not self.ok or lits == self.cur_lits:
            return
        self.cur_id = self.logger.emit_reduction(self.is_cube, self.cur_id, lits)
        self.cur_lits = tuple(lits)

    def resolved(
        self, reason_lits: Tuple[int, ...], pivot: int, lits: Tuple[int, ...]
    ) -> None:
        """The working constraint was resolved with a database constraint."""
        if not self.ok:
            return
        other = self.logger.lookup(self.is_cube, tuple(reason_lits))
        if other is None:
            self.fail("resolution against an unrecorded reason constraint")
            return
        self.cur_id = self.logger.emit_resolution(
            self.is_cube, self.cur_id, other, pivot, lits
        )
        self.cur_lits = tuple(lits)

    def fail(self, reason: str) -> None:
        """This derivation cannot be finished on record; poison the proof."""
        self.ok = False
        self.logger.mark_incomplete(reason)

    @property
    def final_id(self) -> Optional[int]:
        """The empty-constraint step id, if this trace derived one."""
        if self.ok and self.cur_lits == ():
            return self.cur_id
        return None
