"""Versioned JSONL serialization of clause/term resolution certificates.

A certificate is a stream of *steps*, one JSON object per line (QRP-inspired,
but self-describing and greppable like the evalx results files):

* ``{"type": "header", "format": "repro-cert", "version": 1, ...}`` — always
  the first line; carries the claimed outcome once known via the conclusion.
* ``{"type": "inp", "id": n, "clause": i, "lits": [...]}`` — an input clause:
  a (possibly reduced) image of matrix clause ``i`` of the formula being
  certified.
* ``{"type": "cube0", "id": n, "lits": [...]}`` — an initial cube (term
  axiom): a consistent set of literals satisfying every matrix clause.
* ``{"type": "res", "id": n, "kind": "clause"|"cube", "ant": [a, b],
  "pivot": v, "lits": [...]}`` — a resolution step on pivot variable ``v``
  followed by a (possibly partial) universal/existential reduction.
* ``{"type": "red", "id": n, "kind": ..., "ant": [a], "lits": [...]}`` — a
  standalone reduction step.
* ``{"type": "conclude", "outcome": "true"|"false"|"unknown", "final": id,
  "complete": bool, "reason": ...}`` — the claim; ``final`` names the step
  deriving the empty constraint (clause for FALSE, cube for TRUE).

Steps are written as they happen (streaming append) and read back line by
line, so a large proof never has to materialize as one object in memory:
:func:`read_certificate` is a generator, and the checker keeps only the
id -> literals map it still needs.
"""

from __future__ import annotations

import json
import os
from typing import Dict, IO, Iterable, Iterator, List, Optional, Union

#: certificate format tag and version; bump the version on breaking changes.
CERT_FORMAT = "repro-cert"
CERT_VERSION = 1

#: step type tags.
HEADER = "header"
INPUT_CLAUSE = "inp"
INITIAL_CUBE = "cube0"
RESOLUTION = "res"
REDUCTION = "red"
CONCLUSION = "conclude"

#: constraint kinds, in the ``kind`` field of derivation steps.
KIND_CLAUSE = "clause"
KIND_CUBE = "cube"


def header_step() -> Dict[str, object]:
    return {"type": HEADER, "format": CERT_FORMAT, "version": CERT_VERSION}


class MemorySink:
    """In-memory step sink — what the evalx workers self-check against."""

    def __init__(self) -> None:
        self.steps: List[Dict[str, object]] = []

    def emit(self, step: Dict[str, object]) -> None:
        self.steps.append(step)

    def close(self) -> None:
        pass

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)


class JsonlSink:
    """Streaming JSONL step sink: every step is flushed as one line."""

    def __init__(self, path: str):
        self.path = path
        self._handle: Optional[IO[str]] = None

    def emit(self, step: Dict[str, object]) -> None:
        if self._handle is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "w")
        self._handle.write(json.dumps(step, sort_keys=True) + "\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: anything the checker accepts as a certificate: a path, an open iterable of
#: lines, a MemorySink, or a plain list of step dicts.
CertificateSource = Union[str, MemorySink, Iterable[Dict[str, object]]]


def read_certificate(source: CertificateSource) -> Iterator[Dict[str, object]]:
    """Yield certificate steps one at a time (streaming for file paths)."""
    if isinstance(source, str):
        with open(source, "r") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                yield json.loads(line)
        return
    for step in source:
        yield step


class CertificateStats:
    """Step/literal counters of one certificate (for ``certify stats``)."""

    def __init__(self) -> None:
        self.steps = 0
        self.inputs = 0
        self.initial_cubes = 0
        self.resolutions = 0
        self.reductions = 0
        self.literals = 0
        self.max_width = 0
        self.outcome: Optional[str] = None
        self.complete: Optional[bool] = None

    def feed(self, step: Dict[str, object]) -> None:
        self.steps += 1
        t = step.get("type")
        if t == INPUT_CLAUSE:
            self.inputs += 1
        elif t == INITIAL_CUBE:
            self.initial_cubes += 1
        elif t == RESOLUTION:
            self.resolutions += 1
        elif t == REDUCTION:
            self.reductions += 1
        elif t == CONCLUSION:
            self.outcome = step.get("outcome")
            self.complete = step.get("complete")
        lits = step.get("lits")
        if isinstance(lits, list):
            self.literals += len(lits)
            self.max_width = max(self.max_width, len(lits))

    def to_dict(self) -> Dict[str, object]:
        return {
            "steps": self.steps,
            "inputs": self.inputs,
            "initial_cubes": self.initial_cubes,
            "resolutions": self.resolutions,
            "reductions": self.reductions,
            "literals": self.literals,
            "max_width": self.max_width,
            "outcome": self.outcome,
            "complete": self.complete,
        }


def certificate_stats(source: CertificateSource) -> CertificateStats:
    """Stream ``source`` once and return its :class:`CertificateStats`."""
    stats = CertificateStats()
    for step in read_certificate(source):
        stats.feed(step)
    return stats
