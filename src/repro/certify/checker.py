"""Independent certificate checker — replays a derivation, no solver involved.

The checker walks a certificate (see :mod:`repro.certify.store`) against a
:class:`~repro.core.formula.QBF` and verifies, step by step:

* **input clauses** are legal universal reductions of the named matrix
  clause;
* **initial cubes** are consistent literal sets over bound variables that
  satisfy every matrix clause (the term-resolution axiom rule);
* **resolution steps** resolve two previously derived same-kind constraints
  on an existential pivot (clauses) or universal pivot (cubes), are not
  tautological, and are followed by a legal reduction;
* **reduction steps** delete only literals the quantifier structure allows:
  a universal literal may leave a clause only if it precedes (``≺``) no
  existential literal of the clause, an existential literal may leave a cube
  only if it precedes no universal literal of the cube — the Lemma 3
  condition and its dual, evaluated on the formula's own ``d(z)/f(z)``
  partial order, so certificates are checked under the original non-prenex
  scopes;
* the **conclusion** names a derived empty clause (FALSE) or empty cube
  (TRUE).

Reductions are checked for *legality*, not maximality: a proof produced
under any linear extension of the quantifier tree (a prenexing) only ever
deletes a subset of what the tree allows, so the same certificate checks
against both the prenex form it was produced on and the original non-prenex
formula. The converse is deliberately false — a tree-order reduction that
the checked formula's order forbids is rejected, which is exactly the
"illegal reduction" corruption class the tests exercise.

The certificate source is streamed; the checker keeps only the id ->
literals map needed to resolve antecedent references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Set, Tuple

from repro.certify.store import (
    CERT_FORMAT,
    CERT_VERSION,
    CONCLUSION,
    HEADER,
    INITIAL_CUBE,
    INPUT_CLAUSE,
    KIND_CLAUSE,
    KIND_CUBE,
    REDUCTION,
    RESOLUTION,
    CertificateSource,
    read_certificate,
)
from repro.core.formula import QBF
from repro.core.literals import var_of

#: check statuses.
VERIFIED = "verified"  # complete proof, every step valid, conclusion holds
INVALID = "invalid"  # some step or the conclusion is wrong
INCOMPLETE = "incomplete"  # honest partial proof (no terminal derivation)
UNKNOWN = "unknown"  # the run did not determine an outcome


@dataclass
class CheckReport:
    """Outcome of checking one certificate against one formula."""

    status: str
    outcome: Optional[str] = None
    steps: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == VERIFIED

    def __repr__(self) -> str:
        body = "%s, outcome=%s, %d steps" % (self.status, self.outcome, self.steps)
        if self.error:
            body += ", error=%s" % (self.error,)
        return "CheckReport(%s)" % body


class _Reject(Exception):
    """Internal: step verification failure with a human-readable cause."""


def _canon(lits: Iterable[int]) -> Tuple[int, ...]:
    return tuple(sorted(set(int(l) for l in lits), key=lambda l: (var_of(l), l)))


def _check_legal_reduction(
    before: Sequence[int], after: Sequence[int], prefix, is_cube: bool, where: str
) -> None:
    """Verify ``after`` arises from ``before`` by deleting only reducible
    literals under the prefix's partial order (Lemma 3 / its dual)."""
    before_set = set(before)
    after_set = set(after)
    extra = after_set - before_set
    if extra:
        raise _Reject("%s: reduction invents literals %s" % (where, sorted(extra)))
    dropped = before_set - after_set
    if not dropped:
        return
    if is_cube:
        # Existential reduction: existential l may go iff it precedes no
        # universal literal of the cube (universals are never deletable).
        anchors = [l for l in before if prefix.is_universal(l)]
        for l in dropped:
            if prefix.is_universal(l):
                raise _Reject("%s: reduction deleted universal %d from a cube" % (where, l))
            if any(prefix.prec(l, u) for u in anchors):
                raise _Reject(
                    "%s: existential %d is blocked by a deeper universal" % (where, l)
                )
    else:
        # Universal reduction: universal l may go iff it precedes no
        # existential literal of the clause.
        anchors = [l for l in before if prefix.is_existential(l)]
        for l in dropped:
            if prefix.is_existential(l):
                raise _Reject(
                    "%s: reduction deleted existential %d from a clause" % (where, l)
                )
            if any(prefix.prec(l, e) for e in anchors):
                raise _Reject(
                    "%s: universal %d is blocked by a deeper existential" % (where, l)
                )


def _resolve_checked(
    a: Sequence[int], b: Sequence[int], pivot: int, prefix, is_cube: bool, where: str
) -> Tuple[int, ...]:
    """Verify and perform one resolution step; returns the raw resolvent."""
    if pivot not in prefix:
        raise _Reject("%s: pivot %d is not a bound variable" % (where, pivot))
    if is_cube:
        if not prefix.is_universal(pivot):
            raise _Reject("%s: cube resolution pivot %d is not universal" % (where, pivot))
    else:
        if not prefix.is_existential(pivot):
            raise _Reject(
                "%s: clause resolution pivot %d is not existential" % (where, pivot)
            )
    a_signs = {l for l in a if var_of(l) == pivot}
    b_signs = {l for l in b if var_of(l) == pivot}
    if len(a_signs) != 1 or len(b_signs) != 1 or a_signs == b_signs:
        raise _Reject(
            "%s: pivot %d does not occur with opposite signs in the antecedents"
            % (where, pivot)
        )
    merged: Dict[int, int] = {}
    for lit in a:
        if var_of(lit) != pivot:
            merged[var_of(lit)] = lit
    for lit in b:
        v = var_of(lit)
        if v == pivot:
            continue
        if v in merged and merged[v] != lit:
            raise _Reject("%s: tautological resolvent (variable %d)" % (where, v))
        merged[v] = lit
    return _canon(merged.values())


def _check_initial_cube(lits: Sequence[int], formula: QBF, where: str) -> None:
    """Term axiom rule: a consistent implicant of the whole matrix."""
    prefix = formula.prefix
    seen: Dict[int, int] = {}
    for l in lits:
        v = var_of(l)
        if v not in prefix:
            raise _Reject("%s: literal %d is not bound by the prefix" % (where, l))
        if seen.get(v, l) != l:
            raise _Reject("%s: contradictory literals on variable %d" % (where, v))
        seen[v] = l
    cube = set(lits)
    for index, clause in enumerate(formula.clauses):
        if not any(l in cube for l in clause.lits):
            raise _Reject(
                "%s: matrix clause %d is not satisfied by the cube" % (where, index)
            )


def check_certificate(formula: QBF, source: CertificateSource) -> CheckReport:
    """Replay ``source`` against ``formula`` and report the verdict.

    Never raises on malformed certificates — every defect is reported as an
    ``invalid`` :class:`CheckReport` with the offending step in ``error``.
    """
    prefix = formula.prefix
    derived: Dict[int, Tuple[bool, Tuple[int, ...]]] = {}
    steps = 0
    saw_header = False
    conclusion: Optional[Dict[str, object]] = None

    def fetch(step_id, kind_is_cube: bool, where: str) -> Tuple[int, ...]:
        entry = derived.get(step_id)
        if entry is None:
            raise _Reject("%s: unknown antecedent id %r" % (where, step_id))
        is_cube, lits = entry
        if is_cube != kind_is_cube:
            raise _Reject("%s: antecedent %r has the wrong kind" % (where, step_id))
        return lits

    def record(step_id, is_cube: bool, lits: Tuple[int, ...], where: str) -> None:
        if not isinstance(step_id, int):
            raise _Reject("%s: step id %r is not an integer" % (where, step_id))
        if step_id in derived:
            raise _Reject("%s: step id %d reused" % (where, step_id))
        derived[step_id] = (is_cube, lits)

    try:
        for step in read_certificate(source):
            steps += 1
            if not isinstance(step, dict):
                raise _Reject("step %d is not an object" % steps)
            t = step.get("type")
            where = "step %d (%s)" % (steps, t)
            if steps == 1:
                if t != HEADER:
                    raise _Reject("certificate does not start with a header")
                if step.get("format") != CERT_FORMAT:
                    raise _Reject("unknown certificate format %r" % (step.get("format"),))
                if step.get("version") != CERT_VERSION:
                    raise _Reject(
                        "unsupported certificate version %r" % (step.get("version"),)
                    )
                saw_header = True
                continue
            if conclusion is not None:
                raise _Reject("%s: step after the conclusion" % where)
            if t == INPUT_CLAUSE:
                index = step.get("clause")
                if not isinstance(index, int) or not (0 <= index < len(formula.clauses)):
                    raise _Reject("%s: bad matrix clause index %r" % (where, index))
                lits = _canon(step.get("lits", ()))
                original = _canon(formula.clauses[index].lits)
                _check_legal_reduction(original, lits, prefix, False, where)
                record(step.get("id"), False, lits, where)
            elif t == INITIAL_CUBE:
                lits = _canon(step.get("lits", ()))
                _check_initial_cube(lits, formula, where)
                record(step.get("id"), True, lits, where)
            elif t == RESOLUTION:
                is_cube = step.get("kind") == KIND_CUBE
                ant = step.get("ant")
                if not isinstance(ant, list) or len(ant) != 2:
                    raise _Reject("%s: resolution needs two antecedents" % where)
                a = fetch(ant[0], is_cube, where)
                b = fetch(ant[1], is_cube, where)
                pivot = step.get("pivot")
                if not isinstance(pivot, int):
                    raise _Reject("%s: bad pivot %r" % (where, pivot))
                resolvent = _resolve_checked(a, b, pivot, prefix, is_cube, where)
                lits = _canon(step.get("lits", ()))
                _check_legal_reduction(resolvent, lits, prefix, is_cube, where)
                record(step.get("id"), is_cube, lits, where)
            elif t == REDUCTION:
                is_cube = step.get("kind") == KIND_CUBE
                ant = step.get("ant")
                if not isinstance(ant, list) or len(ant) != 1:
                    raise _Reject("%s: reduction needs one antecedent" % where)
                before = fetch(ant[0], is_cube, where)
                lits = _canon(step.get("lits", ()))
                _check_legal_reduction(before, lits, prefix, is_cube, where)
                record(step.get("id"), is_cube, lits, where)
            elif t == CONCLUSION:
                conclusion = step
            else:
                raise _Reject("%s: unknown step type" % where)
    except _Reject as exc:
        return CheckReport(INVALID, None, steps, str(exc))
    except (TypeError, ValueError, KeyError) as exc:
        return CheckReport(INVALID, None, steps, "malformed certificate: %s" % (exc,))

    if not saw_header:
        return CheckReport(INVALID, None, steps, "empty certificate")
    if conclusion is None:
        return CheckReport(INCOMPLETE, None, steps, "no conclusion step")

    outcome = conclusion.get("outcome")
    if outcome == "unknown":
        return CheckReport(UNKNOWN, "unknown", steps)
    if outcome not in ("true", "false"):
        return CheckReport(INVALID, None, steps, "bad conclusion outcome %r" % (outcome,))
    final = conclusion.get("final")
    if final is None or not conclusion.get("complete", False):
        return CheckReport(
            INCOMPLETE,
            outcome,
            steps,
            conclusion.get("reason") or "conclusion not backed by a derivation",
        )
    entry = derived.get(final)
    if entry is None:
        return CheckReport(INVALID, outcome, steps, "conclusion names unknown step %r" % final)
    is_cube, lits = entry
    want_cube = outcome == "true"
    if is_cube != want_cube:
        return CheckReport(
            INVALID,
            outcome,
            steps,
            "conclusion kind mismatch: outcome %s needs a %s"
            % (outcome, "cube" if want_cube else "clause"),
        )
    if lits != ():
        return CheckReport(
            INVALID,
            outcome,
            steps,
            "final %s is not empty: %s" % ("cube" if is_cube else "clause", list(lits)),
        )
    return CheckReport(VERIFIED, outcome, steps)
