"""The asyncio serve daemon: persistent solving over a unix socket.

One process, three execution lanes:

* protocol work (accept, parse, cache lookups) stays on the event loop;
* generic ``solve`` requests run through :func:`repro.evalx.parallel.
  run_tasks` with ``jobs=2`` — i.e. in a forked, fault-isolated worker
  shard with the wall-timeout/SIGTERM/checkpoint machinery the batch
  harness already has — driven from a thread-pool slot so the loop never
  blocks;
* ``smv-diameter`` requests run in-process (each family on its own
  single-thread executor, serialized per model family by an asyncio lock)
  so the family's :class:`~repro.incremental.IncrementalSolver` keeps its
  learned constraints between bounds.

``solve`` requests may pick a non-default ``paradigm`` (expansion, the
recursive reference) and ``portfolio`` requests race several paradigms via
:func:`repro.portfolio.race`; capability mismatches — ``certify`` with a
proof-incapable paradigm — come back as structured errors before any
worker is spawned.

Between the protocol and those lanes sits the supervision layer
(:mod:`repro.serve.supervisor`):

* every solve-lane request must be *admitted* first — over the bounded
  in-flight budget it gets a structured ``overloaded`` error with a
  ``retry_after`` hint instead of queueing unboundedly;
* every task key and SMV family has a *circuit breaker* — after
  repeated crash/hang/memout outcomes the key trips open and requests
  for it get an immediate structured ``poisoned`` error carrying the
  last failure, until a cooldown lets a half-open probe through;
* worker memory blowups come back as ``memout`` records (the daemon's
  ``--mem-limit`` threads ``RLIMIT_AS`` into every forked worker) instead
  of host-level OOM kills;
* a wedged family solver is detected (the solve outlives its deadline by
  a grace), abandoned, and its family restarted with exponential backoff
  — requests arriving during the backoff *degrade* to one-shot scratch
  solves rather than erroring, as do cube solves whose worker pool died
  under them.

Verdicts are cached by the :meth:`repro.evalx.parallel.Task.key`
fingerprint triple and persisted to a :class:`~repro.evalx.parallel.
ResultsLog` (``--cache``): a restarted daemon reloads the log and serves
old verdicts — certificate status included — without re-solving. Only
settled ``ok`` verdicts are ever cached: ``interrupted``, ``hard-timeout``,
``memout`` and crash records are refused by :meth:`ServeDaemon._cache_put`
so a transient failure can never be replayed as an answer.

Shutdown follows the repository's preemption path: SIGTERM/SIGINT set
:func:`repro.robustness.interrupt.global_flag`, which every in-process
solve polls, and wake the accept loop; in-flight requests drain (possibly
with ``interrupted`` UNKNOWN verdicts, which are never cached), then the
socket is removed and the process exits 0. A daemon killed *without* that
grace (SIGKILL, OOM) leaves its socket file behind; the next daemon
probes the stale path, sees the connection refused, and unlinks it before
binding (:func:`claim_socket_path`).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket as socket_module
import stat
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from repro.core.result import Outcome
from repro.evalx.parallel import (
    Record,
    ResultsLog,
    STATUS_MEMOUT,
    STATUS_OK,
    Task,
    measurement_to_dict,
    run_tasks,
)
from repro.evalx.runner import Budget, Measurement
from repro.incremental import IncrementalSolver
from repro.robustness.faults import FaultPlan
from repro.robustness.interrupt import InterruptFlag, global_flag
from repro.serve.protocol import (
    MAX_CUBE_JOBS,
    PROTOCOL_VERSION,
    ProtocolError,
    check_formula_shape,
    check_formula_size,
    error_response,
    overloaded_response,
    parse_budget,
    parse_deadline,
    parse_paradigm,
    poisoned_response,
    validate_smv_request,
)
from repro.serve.supervisor import (
    OverloadedError,
    PoisonedError,
    Supervisor,
)
from repro.smv.incremental import DiameterFamily

#: solver label recorded on in-process incremental smv runs.
SMV_SOLVER_LABEL = "INC(stable)"

#: asyncio stream limit per request line: the formula byte cap plus JSON
#: framing slack, so an oversized-formula request is still *readable* and
#: gets the structured protocol error instead of a torn connection.
_STREAM_LIMIT = 2 * 4_000_000

#: request kinds that go through admission control; everything else
#: (ping/stats/shutdown) is control-plane and always answered.
SOLVE_KINDS = ("solve", "smv-diameter", "cube-solve", "portfolio")

#: default bound on admitted-but-unfinished solve-lane requests.
DEFAULT_MAX_INFLIGHT = 16

#: seconds past its deadline an in-process family solve may run before the
#: daemon declares it stuck and abandons it (the engine polls its wall
#: budget, so a healthy solve lands within the deadline; only a wedged one
#: eats the grace too).
DEFAULT_STUCK_GRACE = 2.0


def claim_socket_path(path: str) -> None:
    """Make ``path`` bindable: unlink it if it is a *stale* unix socket.

    A daemon killed with SIGKILL never reaches its cleanup, so the socket
    file survives and the next ``serve run`` would fail to bind. Probe it:
    connection refused means no listener — stale, safe to unlink. A live
    listener or an existing non-socket file is refused loudly (never
    silently deleted).
    """
    try:
        st = os.stat(path)
    except OSError:
        return  # nothing there: bind will create it
    if not stat.S_ISSOCK(st.st_mode):
        raise RuntimeError(
            "refusing to serve on %r: an existing non-socket file is in the "
            "way" % path
        )
    probe = socket_module.socket(socket_module.AF_UNIX, socket_module.SOCK_STREAM)
    probe.settimeout(0.5)
    try:
        probe.connect(path)
    except (ConnectionRefusedError, socket_module.timeout):
        try:
            os.unlink(path)
        except OSError:
            pass
    except OSError:
        # ENOENT race (someone else cleaned up) or an unconnectable state;
        # either way there is no live daemon behind the path.
        try:
            os.unlink(path)
        except OSError:
            pass
    else:
        raise RuntimeError(
            "refusing to serve on %r: a daemon is already listening" % path
        )
    finally:
        probe.close()


class _Family:
    """One model family's persistent encoder + incremental solver.

    The family owns a dedicated single-thread executor so that a wedged
    solve can be *abandoned*: the daemon stops waiting, drops the whole
    family (executor included), and a fresh one is built after the restart
    backoff. The orphaned thread finishes or exits on the interrupt flag;
    it just no longer has a family to poison.
    """

    def __init__(self, model, config=None):
        self.model = model
        self.encoder = DiameterFamily(model)
        self.solver = IncrementalSolver(config)
        self.lock = asyncio.Lock()
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="family-%s" % model.name
        )

    def abandon(self) -> None:
        """Stop feeding the executor; never joins the possibly-stuck thread."""
        self.executor.shutdown(wait=False)


class ServeDaemon:
    def __init__(
        self,
        socket_path: str,
        jobs: int = 2,
        cache_path: Optional[str] = None,
        wall_timeout: Optional[float] = None,
        checkpoint_dir: Optional[str] = None,
        interrupt: Optional[InterruptFlag] = None,
        mem_limit_mb: Optional[float] = None,
        faults: Optional[FaultPlan] = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        failure_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        restart_backoff: float = 0.5,
        stuck_grace: float = DEFAULT_STUCK_GRACE,
    ):
        self.socket_path = socket_path
        self.jobs = max(1, jobs)
        self.wall_timeout = wall_timeout
        self.checkpoint_dir = checkpoint_dir
        self.mem_limit_mb = mem_limit_mb
        self.stuck_grace = stuck_grace
        self._faults = faults
        self._interrupt = interrupt if interrupt is not None else global_flag()
        self._log = (
            ResultsLog(cache_path, durable=False, faults=faults)
            if cache_path
            else None
        )
        self._cache: Dict[Tuple[str, str, str], Record] = (
            self._log.load() if self._log is not None else {}
        )
        self._cache_lock = asyncio.Lock()
        self._families: Dict[str, _Family] = {}
        self._pool = ThreadPoolExecutor(max_workers=self.jobs)
        self._slots = asyncio.Semaphore(self.jobs)
        # Admission: one total budget, per-kind sub-budgets so one lane
        # cannot starve the others; cube/portfolio get half — each such
        # request fans out to several worker processes of its own.
        fanout_limit = max(1, max_inflight // 2)
        self.supervisor = Supervisor(
            total_limit=max(1, max_inflight),
            kind_limits={
                "solve": max(1, (3 * max_inflight) // 4),
                "smv-diameter": max(1, (3 * max_inflight) // 4),
                "cube-solve": fanout_limit,
                "portfolio": fanout_limit,
            },
            failure_threshold=failure_threshold,
            cooldown=breaker_cooldown,
            restart_backoff=restart_backoff,
        )
        self.shutdown_event = asyncio.Event()
        self.started = time.monotonic()
        self.stats = {
            "requests": 0,
            "errors": 0,
            "cache_hits": 0,
            "solves": 0,
            "incremental_solves": 0,
        }

    # -- cache -------------------------------------------------------------

    async def _cache_put(self, record: Record) -> None:
        """Persist a verdict — but only a settled one.

        The cache is a verdict store, not an incident log: ``crash``,
        ``hard-timeout``, ``memout`` and interrupted records describe one
        attempt's failure, not the formula's truth value, and replaying
        them as answers would poison every future request for the key.
        """
        m = record.measurement
        if record.status != STATUS_OK or m is None or m.interrupted:
            return
        async with self._cache_lock:
            self._cache[record.key] = record
            if self._log is not None:
                self._log.append(record)

    def _cached_response(self, record: Record) -> Dict[str, object]:
        m = record.measurement
        out: Dict[str, object] = {
            "ok": record.ok,
            "cached": True,
            "status": record.status,
            "protocol": PROTOCOL_VERSION,
        }
        if not record.ok:
            # Structured failure (deadline exceeded, memout, worker crash):
            # the client gets a reason, never a silently hung connection. A
            # partial measurement (checkpoint flush) may still ride along.
            if record.status == "hard-timeout":
                out["error"] = "solve exceeded its deadline and was killed"
            elif record.status == STATUS_MEMOUT:
                out["error"] = record.error or (
                    "solve exceeded its memory ceiling and was stopped"
                )
            else:
                out["error"] = "solve failed: %s" % record.status
        if m is not None:
            out.update(
                outcome=m.outcome.value,
                decisions=m.decisions,
                seconds=m.seconds,
                measurement=measurement_to_dict(m),
            )
            if m.certificate_status is not None:
                out["certificate_status"] = m.certificate_status
        return out

    # -- handlers ----------------------------------------------------------

    def _parse_formula(self, req: Dict[str, object]):
        text = req.get("formula")
        fmt = req.get("format", "qdimacs")
        if not isinstance(text, str):
            raise ProtocolError("solve needs a string 'formula'")
        check_formula_size(text)
        if fmt == "qdimacs":
            from repro.io import qdimacs

            formula = qdimacs.loads(text)
        elif fmt == "qtree":
            from repro.io import qtree

            formula = qtree.loads(text)
        else:
            raise ProtocolError("unknown formula format %r" % (fmt,))
        check_formula_shape(formula)
        return formula

    def _effective_deadline(self, req: Dict[str, object]) -> float:
        """Per-request deadline, further capped by the daemon's setting."""
        deadline = parse_deadline(req)
        if self.wall_timeout is not None:
            deadline = min(deadline, self.wall_timeout)
        return deadline

    async def _handle_solve(self, req: Dict[str, object]) -> Dict[str, object]:
        formula = self._parse_formula(req)
        deadline = self._effective_deadline(req)
        mode = req.get("mode", "po")
        if mode not in ("po", "to"):
            raise ProtocolError("mode must be 'po' or 'to'")
        paradigm = parse_paradigm(req)
        checkpoint_dir = self.checkpoint_dir
        if paradigm != "search":
            # Capability mismatches are structured errors (CapabilityError
            # is a ValueError, so the dispatch loop reports it cleanly):
            # certify + a proof-incapable paradigm must not reach a worker.
            from repro.core.paradigm import CapabilityError, get_paradigm

            caps = get_paradigm(paradigm).capabilities
            if bool(req.get("certify", False)) and not caps.proof:
                raise CapabilityError(
                    paradigm, "proof logging", "drop 'certify' or use search"
                )
            if not caps.checkpoint:
                # The daemon-side checkpoint directory is an optimization
                # for preempted shard solves; a paradigm that cannot
                # checkpoint simply runs without it.
                checkpoint_dir = None
        overrides = []
        if "engine" in req:
            overrides.append(("engine", req["engine"]))
        if paradigm != "search":
            # Non-default-only, like the batch harness: cache fingerprints
            # of existing search-paradigm verdicts stay untouched.
            overrides.append(("paradigm", paradigm))
        task = Task(
            instance=str(req.get("instance", "serve")),
            solver=str(req.get("solver", mode.upper())),
            formula=formula,
            mode=mode,
            strategy=str(req.get("strategy", "eu_au")),
            budget=parse_budget(req.get("budget")),
            overrides=tuple(overrides),
            certify=bool(req.get("certify", False)),
        )
        cached = self._cache.get(task.key)
        if cached is not None:
            self.stats["cache_hits"] += 1
            return self._cached_response(cached)
        # Breaker gate sits *after* the cache: a cached verdict is safe to
        # serve no matter how poisoned the key is, and costs no worker.
        breaker = self.supervisor.check(Supervisor.task_breaker_key(task.key))

        loop = asyncio.get_running_loop()
        mem_limit_mb = self.mem_limit_mb
        faults = self._faults
        async with self._slots:
            records = await loop.run_in_executor(
                self._pool,
                lambda: run_tasks(
                    [task],
                    jobs=2,
                    wall_timeout=deadline,
                    checkpoint_dir=checkpoint_dir,
                    mem_limit_mb=mem_limit_mb,
                    faults=faults,
                ),
            )
        record = records[0]
        self.stats["solves"] += 1
        self.supervisor.record_outcome(breaker, record.status, record.error)
        await self._cache_put(record)
        out = self._cached_response(record)
        out["cached"] = False
        return out

    def _stall(self) -> None:
        """Injected family wedge: a bounded, interrupt-aware busy-wait that
        stands in for a solver loop that stopped polling its budget."""
        seconds = self._faults.hang_seconds if self._faults is not None else 0.0
        end = time.monotonic() + seconds
        while time.monotonic() < end and not self._interrupt.is_set():
            time.sleep(0.05)

    async def _handle_smv(self, req: Dict[str, object]) -> Dict[str, object]:
        family_name, size, n = validate_smv_request(req)
        from repro.smv.models import model_by_name

        model = model_by_name(family_name, size)
        budget = parse_budget(req.get("budget"))
        # In-process lane: the deadline is enforced cooperatively, as a
        # wall-seconds budget the engine polls (no worker to kill here).
        deadline = self._effective_deadline(req)
        deadline_is_binding = budget.seconds is None or deadline <= budget.seconds
        seconds = deadline if budget.seconds is None else min(budget.seconds, deadline)
        budget = Budget(decisions=budget.decisions, seconds=seconds)
        breaker = self.supervisor.check(Supervisor.family_breaker_key(model.name))
        policy = self.supervisor.restart_policy(model.name)

        fam = self._families.get(model.name)
        if fam is None:
            if policy.in_backoff():
                # Degradation ladder, rung two: the family died recently and
                # its restart is still backing off — answer from a scratch
                # solver instead of erroring or restarting too eagerly.
                return await self._smv_scratch(
                    model, n, budget, breaker, deadline, deadline_is_binding
                )
            fam = _Family(model)
            self._families[model.name] = fam
            if policy.deaths > 0:
                policy.record_restart()

        loop = asyncio.get_running_loop()
        async with fam.lock:
            formula = fam.encoder.formula(n)
            task = self._smv_task(model, n, formula, budget)
            cached = self._cache.get(task.key)
            if cached is not None:
                self.stats["cache_hits"] += 1
                return self._cached_response(cached)
            incremental = fam.solver.solves > 0
            config = budget.to_config()
            stall = self._faults is not None and self._faults.stuck_family(
                "family:%s" % model.name
            )

            def solve_bound():
                if stall:
                    self._stall()
                fam.solver.config = config
                fam.solver.load(formula)
                return fam.solver.solve(interrupt=self._interrupt)

            try:
                async with self._slots:
                    result = await asyncio.wait_for(
                        loop.run_in_executor(fam.executor, solve_bound),
                        timeout=deadline + self.stuck_grace,
                    )
            except asyncio.TimeoutError:
                # The solve outlived deadline + grace: the family solver is
                # wedged. Abandon it, enter restart backoff, and tell the
                # client; the next request gets a scratch solve (backoff)
                # or a fresh family (after it).
                fam.abandon()
                self._families.pop(model.name, None)
                delay = policy.record_death()
                self.supervisor.record_outcome(
                    breaker,
                    "stuck",
                    "family solver exceeded its %.1fs deadline by more than "
                    "%.1fs and was abandoned" % (deadline, self.stuck_grace),
                )
                return {
                    "ok": False,
                    "cached": False,
                    "status": "stuck",
                    "error": "smv family solver is stuck; family restarted "
                    "with %.2fs backoff" % delay,
                    "retry_after": round(delay, 2),
                    "protocol": PROTOCOL_VERSION,
                }
            except Exception as exc:
                # An in-process crash kills the family's solver state too:
                # same recovery path as a wedge, minus the orphaned thread.
                self._families.pop(model.name, None)
                fam.abandon()
                policy.record_death()
                self.supervisor.record_outcome(breaker, "crash", str(exc))
                raise
        self.stats["solves"] += 1
        if incremental:
            self.stats["incremental_solves"] += 1
        m = Measurement(
            instance=task.instance,
            solver=task.solver,
            outcome=result.outcome,
            decisions=result.stats.decisions,
            seconds=result.seconds,
            learned_clauses=result.stats.learned_clauses,
            learned_cubes=result.stats.learned_cubes,
            stats=result.stats,
            interrupted=result.interrupted,
        )
        retained = fam.solver.last_retained_clauses + fam.solver.last_retained_cubes
        if (
            result.outcome is Outcome.UNKNOWN
            and not result.interrupted
            and deadline_is_binding
            and result.seconds >= seconds
        ):
            # The per-request wall clock — not the caller's own budget —
            # ran out: report it as a structured failure, not a soft
            # UNKNOWN. Deliberately not a breaker failure: the deadline
            # says the request was too impatient, not that the family is
            # poisonous.
            return {
                "ok": False,
                "cached": False,
                "status": "deadline",
                "error": "smv solve did not settle within its %.1fs deadline"
                % deadline,
                "outcome": result.outcome.value,
                "decisions": result.stats.decisions,
                "seconds": result.seconds,
                "interrupted": False,
                "protocol": PROTOCOL_VERSION,
            }
        self.supervisor.record_outcome(breaker, STATUS_OK)
        if policy.deaths > 0:
            policy.record_recovery()
        if result.outcome is not Outcome.UNKNOWN:
            await self._cache_put(
                Record(
                    instance=task.instance,
                    solver=task.solver,
                    fingerprint=task.fingerprint(),
                    status=STATUS_OK,
                    measurement=m,
                )
            )
        return {
            "ok": True,
            "cached": False,
            "incremental": incremental,
            "retained": retained,
            "outcome": result.outcome.value,
            "decisions": result.stats.decisions,
            "seconds": result.seconds,
            "interrupted": result.interrupted,
            "protocol": PROTOCOL_VERSION,
        }

    @staticmethod
    def _smv_task(model, n: int, formula, budget: Budget) -> Task:
        return Task(
            instance="smv:%s:n=%d" % (model.name, n),
            solver=SMV_SOLVER_LABEL,
            formula=formula,
            budget=budget,
        )

    async def _smv_scratch(
        self, model, n, budget, breaker, deadline, deadline_is_binding
    ) -> Dict[str, object]:
        """Degraded smv path: a throwaway encoder + solver on the shared
        pool; no retained constraints, but a real verdict."""
        encoder = DiameterFamily(model)
        formula = encoder.formula(n)
        task = self._smv_task(model, n, formula, budget)
        cached = self._cache.get(task.key)
        if cached is not None:
            self.stats["cache_hits"] += 1
            return self._cached_response(cached)
        solver = IncrementalSolver(budget.to_config())
        interrupt = self._interrupt

        def solve_scratch():
            solver.load(formula)
            return solver.solve(interrupt=interrupt)

        loop = asyncio.get_running_loop()
        async with self._slots:
            result = await loop.run_in_executor(self._pool, solve_scratch)
        self.stats["solves"] += 1
        self.supervisor.note_degraded()
        if (
            result.outcome is Outcome.UNKNOWN
            and not result.interrupted
            and deadline_is_binding
            and result.seconds >= (budget.seconds or deadline)
        ):
            return {
                "ok": False,
                "cached": False,
                "status": "deadline",
                "error": "smv solve did not settle within its %.1fs deadline"
                % deadline,
                "outcome": result.outcome.value,
                "decisions": result.stats.decisions,
                "seconds": result.seconds,
                "interrupted": False,
                "degraded": True,
                "protocol": PROTOCOL_VERSION,
            }
        self.supervisor.record_outcome(breaker, STATUS_OK)
        if result.outcome is not Outcome.UNKNOWN:
            m = Measurement(
                instance=task.instance,
                solver=task.solver,
                outcome=result.outcome,
                decisions=result.stats.decisions,
                seconds=result.seconds,
                learned_clauses=result.stats.learned_clauses,
                learned_cubes=result.stats.learned_cubes,
                stats=result.stats,
                interrupted=result.interrupted,
            )
            await self._cache_put(
                Record(
                    instance=task.instance,
                    solver=task.solver,
                    fingerprint=task.fingerprint(),
                    status=STATUS_OK,
                    measurement=m,
                )
            )
        return {
            "ok": True,
            "cached": False,
            "incremental": False,
            "retained": 0,
            "degraded": True,
            "outcome": result.outcome.value,
            "decisions": result.stats.decisions,
            "seconds": result.seconds,
            "interrupted": result.interrupted,
            "protocol": PROTOCOL_VERSION,
        }

    async def _handle_cube(self, req: Dict[str, object]) -> Dict[str, object]:
        """Cube-and-conquer solve across worker processes (``cube-solve``)."""
        from repro.cube import run_cube

        formula = self._parse_formula(req)
        deadline = self._effective_deadline(req)
        jobs = req.get("jobs", 2)
        if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1:
            raise ProtocolError("cube-solve jobs must be a positive integer")
        if jobs > MAX_CUBE_JOBS:
            raise ProtocolError(
                "cube-solve jobs must be at most %d" % MAX_CUBE_JOBS
            )
        seed = req.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ProtocolError("cube-solve seed must be an integer")
        certify = bool(req.get("certify", False))
        share = bool(req.get("share", True))
        engine = req.get("engine")
        paradigm = parse_paradigm(req)
        # Validate capability upfront on the event loop: run_cube would
        # raise the same CapabilityError, but from the executor thread —
        # failing here keeps the structured error on the cheap path.
        from repro.core.paradigm import get_paradigm

        caps = get_paradigm(paradigm).capabilities
        if not caps.checkpoint:
            raise ProtocolError(
                "paradigm %r cannot checkpoint; cube-solve workers snapshot "
                "their leaves — use a checkpoint-capable paradigm such as "
                "'search'" % paradigm
            )

        loop = asyncio.get_running_loop()
        interrupt = self._interrupt
        async with self._slots:
            report = await loop.run_in_executor(
                self._pool,
                lambda: run_cube(
                    formula,
                    jobs=jobs,
                    certify=certify,
                    share=share,
                    seed=seed,
                    engine=engine,
                    paradigm=paradigm,
                    wall_timeout=deadline,
                    interrupt=interrupt,
                ),
            )
        self.stats["solves"] += 1
        out: Dict[str, object] = {
            "ok": True,
            "cached": False,
            "outcome": report.outcome.value,
            "decisions": report.total_decisions,
            "seconds": report.seconds,
            "interrupted": report.interrupted,
            "jobs": report.jobs,
            "leaves": report.leaves,
            "resplits": report.resplits,
            "escalations": report.escalations,
            "cancelled": report.cancelled,
            "crashes": report.crashes,
            "respawns": report.respawns,
            "share": report.share,
            "protocol": PROTOCOL_VERSION,
        }
        if report.outcome is Outcome.UNKNOWN and not report.interrupted:
            remaining = max(0.0, deadline - report.seconds)
            if report.crashes > 0 and not certify and remaining >= 0.5:
                # Degradation ladder: the cube pool lost workers and never
                # settled — spend the request's remaining deadline on one
                # plain scratch solve instead of returning a failure the
                # client would just retry anyway.
                fallback = await self._cube_fallback(
                    req, formula, paradigm, engine, remaining
                )
                if fallback is not None:
                    out.update(fallback)
                    self.supervisor.note_degraded()
                    return out
            # Deadline ran out before the fold settled: structured failure.
            out["ok"] = False
            out["status"] = "deadline"
            out["error"] = (
                "cube-solve did not settle within its %.1fs deadline" % deadline
            )
        if certify:
            out["certificate_status"] = report.certificate_status
            out["certificate_complete"] = report.certificate.complete
        return out

    async def _cube_fallback(
        self, req, formula, paradigm, engine, remaining
    ) -> Optional[Dict[str, object]]:
        """One-shot scratch solve after a crash-degraded cube run; returns
        the response fields on a determinate verdict, else ``None``."""
        overrides = []
        if engine is not None:
            overrides.append(("engine", engine))
        if paradigm != "search":
            overrides.append(("paradigm", paradigm))
        task = Task(
            instance="%s:cube-fallback" % req.get("instance", "serve"),
            solver="PO",
            formula=formula,
            mode="po",
            budget=Budget(decisions=None, seconds=remaining),
            overrides=tuple(overrides),
        )
        loop = asyncio.get_running_loop()
        mem_limit_mb = self.mem_limit_mb
        async with self._slots:
            records = await loop.run_in_executor(
                self._pool,
                lambda: run_tasks(
                    [task],
                    jobs=2,
                    wall_timeout=remaining,
                    mem_limit_mb=mem_limit_mb,
                ),
            )
        record = records[0]
        m = record.measurement
        if not record.ok or m is None or m.outcome is Outcome.UNKNOWN:
            return None
        return {
            "ok": True,
            "degraded": True,
            "fallback": "scratch",
            "outcome": m.outcome.value,
            "decisions": m.decisions,
            "seconds": m.seconds,
        }

    async def _handle_portfolio(self, req: Dict[str, object]) -> Dict[str, object]:
        """Race several paradigms on one formula (``portfolio``)."""
        from repro.portfolio import DEFAULT_ENTRANTS, race

        if bool(req.get("certify", False)):
            raise ProtocolError(
                "portfolio does not accept 'certify': the default field "
                "includes proof-incapable lanes; cross-paradigm "
                "disagreements are certificate-triaged automatically"
            )
        formula = self._parse_formula(req)
        deadline = self._effective_deadline(req)
        entrants = req.get("entrants", list(DEFAULT_ENTRANTS))
        if not isinstance(entrants, list) or not all(
            isinstance(e, str) for e in entrants
        ):
            raise ProtocolError("portfolio entrants must be a list of strings")
        jobs = req.get("jobs", 3)
        if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1:
            raise ProtocolError("portfolio jobs must be a positive integer")
        if jobs > MAX_CUBE_JOBS:
            raise ProtocolError("portfolio jobs must be at most %d" % MAX_CUBE_JOBS)
        budget = parse_budget(req.get("budget"))
        # Serial races run in-process, so the deadline binds cooperatively
        # through the wall budget; pool races additionally get the hard
        # per-lane wall timeout.
        seconds = deadline if budget.seconds is None else min(budget.seconds, deadline)
        budget = Budget(decisions=budget.decisions, seconds=seconds)

        loop = asyncio.get_running_loop()
        async with self._slots:
            result = await loop.run_in_executor(
                self._pool,
                lambda: race(
                    formula,
                    instance=str(req.get("instance", "serve")),
                    budget=budget,
                    jobs=jobs,
                    entrants=tuple(entrants),
                    strategy=str(req.get("strategy", "eu_au")),
                    engine=str(req.get("engine", "counters")),
                    run_all=bool(req.get("run_all", False)),
                    wall_timeout=deadline,
                ),
            )
        self.stats["solves"] += 1
        out: Dict[str, object] = {
            "ok": True,
            "cached": False,
            "outcome": result.outcome.value,
            "winner": result.winner,
            "jobs": result.jobs,
            "seconds": result.seconds,
            "cancelled": result.cancelled,
            "reported": {
                m.solver: m.outcome.value for m in result.measurements
            },
            "protocol": PROTOCOL_VERSION,
        }
        if result.errors:
            out["lane_errors"] = {
                name: err.strip().splitlines()[-1]
                for name, err in result.errors.items()
            }
        if result.disagreement is not None:
            out["disagreement"] = result.disagreement
            out["triage"] = result.triage
        return out

    async def dispatch(self, req: Dict[str, object]) -> Dict[str, object]:
        kind = req.get("kind", "solve")
        if kind == "ping":
            return {"ok": True, "pong": True, "protocol": PROTOCOL_VERSION}
        if kind == "stats":
            out = dict(self.stats)
            out.update(
                ok=True,
                uptime=time.monotonic() - self.started,
                cache_size=len(self._cache),
                supervisor=self.supervisor.snapshot(),
                protocol=PROTOCOL_VERSION,
            )
            return out
        if kind == "shutdown":
            # The supported path is SIGTERM; this exists for clients that
            # cannot signal (e.g. a remote-ish wrapper), and follows it.
            self._interrupt.set()
            self.shutdown_event.set()
            return {"ok": True, "stopping": True, "protocol": PROTOCOL_VERSION}
        handlers = {
            "solve": self._handle_solve,
            "smv-diameter": self._handle_smv,
            "cube-solve": self._handle_cube,
            "portfolio": self._handle_portfolio,
        }
        handler = handlers.get(kind)
        if handler is None:
            raise ProtocolError("unknown request kind %r" % (kind,))
        # Admission first: over-budget requests are shed with a hint, not
        # queued — the only waiting after this point is on the bounded
        # executor slots. Sheds and poisoned refusals are deliberate
        # answers, so they do not count into stats["errors"].
        try:
            release = self.supervisor.admit(kind)
        except OverloadedError as exc:
            return overloaded_response(exc)
        try:
            return await handler(req)
        except PoisonedError as exc:
            return poisoned_response(exc)
        finally:
            release()

    # -- server loop -------------------------------------------------------

    async def _handle_conn(self, reader, writer) -> None:
        try:
            while not self.shutdown_event.is_set():
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                except ValueError:
                    # Request line beyond the stream limit: report the size
                    # cap as a structured error, then drop the connection
                    # (the rest of the oversized line is unrecoverable).
                    self.stats["errors"] += 1
                    writer.write(
                        (json.dumps(error_response(
                            "request too large: a single request line must "
                            "stay under %d bytes" % _STREAM_LIMIT)) + "\n"
                         ).encode("utf-8"))
                    await writer.drain()
                    break
                if not line:
                    break
                self.stats["requests"] += 1
                request_id = None
                try:
                    req = json.loads(line)
                    if not isinstance(req, dict):
                        raise ProtocolError("request must be a JSON object")
                    request_id = req.get("id")
                    response = await self.dispatch(req)
                except (ProtocolError, ValueError) as exc:
                    self.stats["errors"] += 1
                    response = error_response(str(exc), request_id)
                except Exception as exc:
                    # Handler bug or resource failure: the client still gets
                    # a structured error, never a silently dropped
                    # connection; the traceback goes to the daemon's log.
                    self.stats["errors"] += 1
                    traceback.print_exc()
                    response = error_response(
                        "internal error: %s: %s" % (type(exc).__name__, exc),
                        request_id,
                    )
                if request_id is not None and "id" not in response:
                    response["id"] = request_id
                writer.write((json.dumps(response) + "\n").encode("utf-8"))
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def run(self) -> None:
        claim_socket_path(self.socket_path)
        server = await asyncio.start_unix_server(
            self._handle_conn, path=self.socket_path, limit=_STREAM_LIMIT
        )
        try:
            async with server:
                await self.shutdown_event.wait()
        finally:
            self._pool.shutdown(wait=True)
            for fam in self._families.values():
                fam.abandon()
            if self._log is not None:
                self._log.close()
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass


def run_daemon(
    socket_path: str,
    jobs: int = 2,
    cache_path: Optional[str] = None,
    wall_timeout: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
    mem_limit_mb: Optional[float] = None,
    faults: Optional[FaultPlan] = None,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    failure_threshold: int = 3,
    breaker_cooldown: float = 30.0,
) -> int:
    """Blocking entry point: serve until SIGTERM/SIGINT, then exit 0."""

    async def main() -> None:
        flag = global_flag()
        flag.clear()
        daemon = ServeDaemon(
            socket_path,
            jobs=jobs,
            cache_path=cache_path,
            wall_timeout=wall_timeout,
            checkpoint_dir=checkpoint_dir,
            interrupt=flag,
            mem_limit_mb=mem_limit_mb,
            faults=faults,
            max_inflight=max_inflight,
            failure_threshold=failure_threshold,
            breaker_cooldown=breaker_cooldown,
        )
        loop = asyncio.get_running_loop()

        def initiate_shutdown(signum: int) -> None:
            # Same cooperative path as the batch harness: the flag stops
            # in-flight solves at their next poll, the event stops accepts.
            flag.set(signum)
            daemon.shutdown_event.set()

        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, initiate_shutdown, sig)
        try:
            await daemon.run()
        finally:
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(sig)

    asyncio.run(main())
    return 0
