"""The asyncio serve daemon: persistent solving over a unix socket.

One process, three execution lanes:

* protocol work (accept, parse, cache lookups) stays on the event loop;
* generic ``solve`` requests run through :func:`repro.evalx.parallel.
  run_tasks` with ``jobs=2`` — i.e. in a forked, fault-isolated worker
  shard with the wall-timeout/SIGTERM/checkpoint machinery the batch
  harness already has — driven from a thread-pool slot so the loop never
  blocks;
* ``smv-diameter`` requests run in-process (also on a thread-pool slot,
  serialized per model family by an asyncio lock) so the family's
  :class:`~repro.incremental.IncrementalSolver` keeps its learned
  constraints between bounds.

``solve`` requests may pick a non-default ``paradigm`` (expansion, the
recursive reference) and ``portfolio`` requests race several paradigms via
:func:`repro.portfolio.race`; capability mismatches — ``certify`` with a
proof-incapable paradigm — come back as structured errors before any
worker is spawned.

Verdicts are cached by the :meth:`repro.evalx.parallel.Task.key`
fingerprint triple and persisted to a :class:`~repro.evalx.parallel.
ResultsLog` (``--cache``): a restarted daemon reloads the log and serves
old verdicts — certificate status included — without re-solving.

Shutdown follows the repository's preemption path: SIGTERM/SIGINT set
:func:`repro.robustness.interrupt.global_flag`, which every in-process
solve polls, and wake the accept loop; in-flight requests drain (possibly
with ``interrupted`` UNKNOWN verdicts, which are never cached), then the
socket is removed and the process exits 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from repro.core.result import Outcome
from repro.evalx.parallel import (
    Record,
    ResultsLog,
    STATUS_OK,
    Task,
    measurement_to_dict,
    run_tasks,
)
from repro.evalx.runner import Budget, Measurement
from repro.incremental import IncrementalSolver
from repro.robustness.interrupt import InterruptFlag, global_flag
from repro.serve.protocol import (
    MAX_CUBE_JOBS,
    PROTOCOL_VERSION,
    ProtocolError,
    check_formula_shape,
    check_formula_size,
    error_response,
    parse_budget,
    parse_deadline,
    parse_paradigm,
    validate_smv_request,
)
from repro.smv.incremental import DiameterFamily

#: solver label recorded on in-process incremental smv runs.
SMV_SOLVER_LABEL = "INC(stable)"

#: asyncio stream limit per request line: the formula byte cap plus JSON
#: framing slack, so an oversized-formula request is still *readable* and
#: gets the structured protocol error instead of a torn connection.
_STREAM_LIMIT = 2 * 4_000_000


class _Family:
    """One model family's persistent encoder + incremental solver."""

    def __init__(self, model, config=None):
        self.model = model
        self.encoder = DiameterFamily(model)
        self.solver = IncrementalSolver(config)
        self.lock = asyncio.Lock()


class ServeDaemon:
    def __init__(
        self,
        socket_path: str,
        jobs: int = 2,
        cache_path: Optional[str] = None,
        wall_timeout: Optional[float] = None,
        checkpoint_dir: Optional[str] = None,
        interrupt: Optional[InterruptFlag] = None,
    ):
        self.socket_path = socket_path
        self.jobs = max(1, jobs)
        self.wall_timeout = wall_timeout
        self.checkpoint_dir = checkpoint_dir
        self._interrupt = interrupt if interrupt is not None else global_flag()
        self._log = ResultsLog(cache_path, durable=False) if cache_path else None
        self._cache: Dict[Tuple[str, str, str], Record] = (
            self._log.load() if self._log is not None else {}
        )
        self._cache_lock = asyncio.Lock()
        self._families: Dict[str, _Family] = {}
        self._pool = ThreadPoolExecutor(max_workers=self.jobs)
        self._slots = asyncio.Semaphore(self.jobs)
        self.shutdown_event = asyncio.Event()
        self.started = time.monotonic()
        self.stats = {
            "requests": 0,
            "errors": 0,
            "cache_hits": 0,
            "solves": 0,
            "incremental_solves": 0,
        }

    # -- cache -------------------------------------------------------------

    async def _cache_put(self, record: Record) -> None:
        async with self._cache_lock:
            self._cache[record.key] = record
            if self._log is not None:
                self._log.append(record)

    def _cached_response(self, record: Record) -> Dict[str, object]:
        m = record.measurement
        out: Dict[str, object] = {
            "ok": record.ok,
            "cached": True,
            "status": record.status,
            "protocol": PROTOCOL_VERSION,
        }
        if not record.ok:
            # Structured failure (deadline exceeded, worker crash): the
            # client gets a reason, never a silently hung connection. A
            # partial measurement (checkpoint flush) may still ride along.
            out["error"] = (
                "solve exceeded its deadline and was killed"
                if record.status == "hard-timeout"
                else "solve failed: %s" % record.status
            )
        if m is not None:
            out.update(
                outcome=m.outcome.value,
                decisions=m.decisions,
                seconds=m.seconds,
                measurement=measurement_to_dict(m),
            )
            if m.certificate_status is not None:
                out["certificate_status"] = m.certificate_status
        return out

    # -- handlers ----------------------------------------------------------

    def _parse_formula(self, req: Dict[str, object]):
        text = req.get("formula")
        fmt = req.get("format", "qdimacs")
        if not isinstance(text, str):
            raise ProtocolError("solve needs a string 'formula'")
        check_formula_size(text)
        if fmt == "qdimacs":
            from repro.io import qdimacs

            formula = qdimacs.loads(text)
        elif fmt == "qtree":
            from repro.io import qtree

            formula = qtree.loads(text)
        else:
            raise ProtocolError("unknown formula format %r" % (fmt,))
        check_formula_shape(formula)
        return formula

    def _effective_deadline(self, req: Dict[str, object]) -> float:
        """Per-request deadline, further capped by the daemon's setting."""
        deadline = parse_deadline(req)
        if self.wall_timeout is not None:
            deadline = min(deadline, self.wall_timeout)
        return deadline

    async def _handle_solve(self, req: Dict[str, object]) -> Dict[str, object]:
        formula = self._parse_formula(req)
        deadline = self._effective_deadline(req)
        mode = req.get("mode", "po")
        if mode not in ("po", "to"):
            raise ProtocolError("mode must be 'po' or 'to'")
        paradigm = parse_paradigm(req)
        checkpoint_dir = self.checkpoint_dir
        if paradigm != "search":
            # Capability mismatches are structured errors (CapabilityError
            # is a ValueError, so the dispatch loop reports it cleanly):
            # certify + a proof-incapable paradigm must not reach a worker.
            from repro.core.paradigm import CapabilityError, get_paradigm

            caps = get_paradigm(paradigm).capabilities
            if bool(req.get("certify", False)) and not caps.proof:
                raise CapabilityError(
                    paradigm, "proof logging", "drop 'certify' or use search"
                )
            if not caps.checkpoint:
                # The daemon-side checkpoint directory is an optimization
                # for preempted shard solves; a paradigm that cannot
                # checkpoint simply runs without it.
                checkpoint_dir = None
        overrides = []
        if "engine" in req:
            overrides.append(("engine", req["engine"]))
        if paradigm != "search":
            # Non-default-only, like the batch harness: cache fingerprints
            # of existing search-paradigm verdicts stay untouched.
            overrides.append(("paradigm", paradigm))
        task = Task(
            instance=str(req.get("instance", "serve")),
            solver=str(req.get("solver", mode.upper())),
            formula=formula,
            mode=mode,
            strategy=str(req.get("strategy", "eu_au")),
            budget=parse_budget(req.get("budget")),
            overrides=tuple(overrides),
            certify=bool(req.get("certify", False)),
        )
        cached = self._cache.get(task.key)
        if cached is not None:
            self.stats["cache_hits"] += 1
            return self._cached_response(cached)

        loop = asyncio.get_running_loop()
        async with self._slots:
            records = await loop.run_in_executor(
                self._pool,
                lambda: run_tasks(
                    [task],
                    jobs=2,
                    wall_timeout=deadline,
                    checkpoint_dir=checkpoint_dir,
                ),
            )
        record = records[0]
        self.stats["solves"] += 1
        m = record.measurement
        if record.ok and m is not None and not m.interrupted:
            await self._cache_put(record)
        out = self._cached_response(record)
        out["cached"] = False
        return out

    async def _handle_smv(self, req: Dict[str, object]) -> Dict[str, object]:
        family_name, size, n = validate_smv_request(req)
        from repro.smv.models import model_by_name

        model = model_by_name(family_name, size)
        budget = parse_budget(req.get("budget"))
        # In-process lane: the deadline is enforced cooperatively, as a
        # wall-seconds budget the engine polls (no worker to kill here).
        deadline = self._effective_deadline(req)
        deadline_is_binding = budget.seconds is None or deadline <= budget.seconds
        seconds = deadline if budget.seconds is None else min(budget.seconds, deadline)
        budget = Budget(decisions=budget.decisions, seconds=seconds)
        fam = self._families.get(model.name)
        if fam is None:
            fam = _Family(model)
            self._families[model.name] = fam

        async with fam.lock:
            formula = fam.encoder.formula(n)
            task = Task(
                instance="smv:%s:n=%d" % (model.name, n),
                solver=SMV_SOLVER_LABEL,
                formula=formula,
                budget=budget,
            )
            cached = self._cache.get(task.key)
            if cached is not None:
                self.stats["cache_hits"] += 1
                return self._cached_response(cached)
            loop = asyncio.get_running_loop()
            incremental = fam.solver.solves > 0
            config = budget.to_config()

            def solve_bound():
                fam.solver.config = config
                fam.solver.load(formula)
                return fam.solver.solve(interrupt=self._interrupt)

            async with self._slots:
                result = await loop.run_in_executor(self._pool, solve_bound)
        self.stats["solves"] += 1
        if incremental:
            self.stats["incremental_solves"] += 1
        m = Measurement(
            instance=task.instance,
            solver=task.solver,
            outcome=result.outcome,
            decisions=result.stats.decisions,
            seconds=result.seconds,
            learned_clauses=result.stats.learned_clauses,
            learned_cubes=result.stats.learned_cubes,
            stats=result.stats,
            interrupted=result.interrupted,
        )
        retained = fam.solver.last_retained_clauses + fam.solver.last_retained_cubes
        if (
            result.outcome is Outcome.UNKNOWN
            and not result.interrupted
            and deadline_is_binding
            and result.seconds >= seconds
        ):
            # The per-request wall clock — not the caller's own budget —
            # ran out: report it as a structured failure, not a soft UNKNOWN.
            return {
                "ok": False,
                "cached": False,
                "status": "deadline",
                "error": "smv solve did not settle within its %.1fs deadline"
                % deadline,
                "outcome": result.outcome.value,
                "decisions": result.stats.decisions,
                "seconds": result.seconds,
                "interrupted": False,
                "protocol": PROTOCOL_VERSION,
            }
        if result.outcome is not Outcome.UNKNOWN:
            await self._cache_put(
                Record(
                    instance=task.instance,
                    solver=task.solver,
                    fingerprint=task.fingerprint(),
                    status=STATUS_OK,
                    measurement=m,
                )
            )
        return {
            "ok": True,
            "cached": False,
            "incremental": incremental,
            "retained": retained,
            "outcome": result.outcome.value,
            "decisions": result.stats.decisions,
            "seconds": result.seconds,
            "interrupted": result.interrupted,
            "protocol": PROTOCOL_VERSION,
        }

    async def _handle_cube(self, req: Dict[str, object]) -> Dict[str, object]:
        """Cube-and-conquer solve across worker processes (``cube-solve``)."""
        from repro.cube import run_cube

        formula = self._parse_formula(req)
        deadline = self._effective_deadline(req)
        jobs = req.get("jobs", 2)
        if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1:
            raise ProtocolError("cube-solve jobs must be a positive integer")
        if jobs > MAX_CUBE_JOBS:
            raise ProtocolError(
                "cube-solve jobs must be at most %d" % MAX_CUBE_JOBS
            )
        seed = req.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ProtocolError("cube-solve seed must be an integer")
        certify = bool(req.get("certify", False))
        share = bool(req.get("share", True))
        engine = req.get("engine")
        paradigm = parse_paradigm(req)
        # Validate capability upfront on the event loop: run_cube would
        # raise the same CapabilityError, but from the executor thread —
        # failing here keeps the structured error on the cheap path.
        from repro.core.paradigm import get_paradigm

        caps = get_paradigm(paradigm).capabilities
        if not caps.checkpoint:
            raise ProtocolError(
                "paradigm %r cannot checkpoint; cube-solve workers snapshot "
                "their leaves — use a checkpoint-capable paradigm such as "
                "'search'" % paradigm
            )

        loop = asyncio.get_running_loop()
        async with self._slots:
            report = await loop.run_in_executor(
                self._pool,
                lambda: run_cube(
                    formula,
                    jobs=jobs,
                    certify=certify,
                    share=share,
                    seed=seed,
                    engine=engine,
                    paradigm=paradigm,
                    wall_timeout=deadline,
                    interrupt=self._interrupt,
                ),
            )
        self.stats["solves"] += 1
        out: Dict[str, object] = {
            "ok": True,
            "cached": False,
            "outcome": report.outcome.value,
            "decisions": report.total_decisions,
            "seconds": report.seconds,
            "interrupted": report.interrupted,
            "jobs": report.jobs,
            "leaves": report.leaves,
            "resplits": report.resplits,
            "escalations": report.escalations,
            "cancelled": report.cancelled,
            "share": report.share,
            "protocol": PROTOCOL_VERSION,
        }
        if report.outcome is Outcome.UNKNOWN and not report.interrupted:
            # Deadline ran out before the fold settled: structured failure.
            out["ok"] = False
            out["status"] = "deadline"
            out["error"] = (
                "cube-solve did not settle within its %.1fs deadline" % deadline
            )
        if certify:
            out["certificate_status"] = report.certificate_status
            out["certificate_complete"] = report.certificate.complete
        return out

    async def _handle_portfolio(self, req: Dict[str, object]) -> Dict[str, object]:
        """Race several paradigms on one formula (``portfolio``)."""
        from repro.portfolio import DEFAULT_ENTRANTS, race

        if bool(req.get("certify", False)):
            raise ProtocolError(
                "portfolio does not accept 'certify': the default field "
                "includes proof-incapable lanes; cross-paradigm "
                "disagreements are certificate-triaged automatically"
            )
        formula = self._parse_formula(req)
        deadline = self._effective_deadline(req)
        entrants = req.get("entrants", list(DEFAULT_ENTRANTS))
        if not isinstance(entrants, list) or not all(
            isinstance(e, str) for e in entrants
        ):
            raise ProtocolError("portfolio entrants must be a list of strings")
        jobs = req.get("jobs", 3)
        if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 1:
            raise ProtocolError("portfolio jobs must be a positive integer")
        if jobs > MAX_CUBE_JOBS:
            raise ProtocolError("portfolio jobs must be at most %d" % MAX_CUBE_JOBS)
        budget = parse_budget(req.get("budget"))
        # Serial races run in-process, so the deadline binds cooperatively
        # through the wall budget; pool races additionally get the hard
        # per-lane wall timeout.
        seconds = deadline if budget.seconds is None else min(budget.seconds, deadline)
        budget = Budget(decisions=budget.decisions, seconds=seconds)

        loop = asyncio.get_running_loop()
        async with self._slots:
            result = await loop.run_in_executor(
                self._pool,
                lambda: race(
                    formula,
                    instance=str(req.get("instance", "serve")),
                    budget=budget,
                    jobs=jobs,
                    entrants=tuple(entrants),
                    strategy=str(req.get("strategy", "eu_au")),
                    engine=str(req.get("engine", "counters")),
                    run_all=bool(req.get("run_all", False)),
                    wall_timeout=deadline,
                ),
            )
        self.stats["solves"] += 1
        out: Dict[str, object] = {
            "ok": True,
            "cached": False,
            "outcome": result.outcome.value,
            "winner": result.winner,
            "jobs": result.jobs,
            "seconds": result.seconds,
            "cancelled": result.cancelled,
            "reported": {
                m.solver: m.outcome.value for m in result.measurements
            },
            "protocol": PROTOCOL_VERSION,
        }
        if result.errors:
            out["lane_errors"] = {
                name: err.strip().splitlines()[-1]
                for name, err in result.errors.items()
            }
        if result.disagreement is not None:
            out["disagreement"] = result.disagreement
            out["triage"] = result.triage
        return out

    async def dispatch(self, req: Dict[str, object]) -> Dict[str, object]:
        kind = req.get("kind", "solve")
        if kind == "ping":
            return {"ok": True, "pong": True, "protocol": PROTOCOL_VERSION}
        if kind == "stats":
            out = dict(self.stats)
            out.update(
                ok=True,
                uptime=time.monotonic() - self.started,
                cache_size=len(self._cache),
                protocol=PROTOCOL_VERSION,
            )
            return out
        if kind == "shutdown":
            # The supported path is SIGTERM; this exists for clients that
            # cannot signal (e.g. a remote-ish wrapper), and follows it.
            self._interrupt.set()
            self.shutdown_event.set()
            return {"ok": True, "stopping": True, "protocol": PROTOCOL_VERSION}
        if kind == "solve":
            return await self._handle_solve(req)
        if kind == "smv-diameter":
            return await self._handle_smv(req)
        if kind == "cube-solve":
            return await self._handle_cube(req)
        if kind == "portfolio":
            return await self._handle_portfolio(req)
        raise ProtocolError("unknown request kind %r" % (kind,))

    # -- server loop -------------------------------------------------------

    async def _handle_conn(self, reader, writer) -> None:
        try:
            while not self.shutdown_event.is_set():
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                except ValueError:
                    # Request line beyond the stream limit: report the size
                    # cap as a structured error, then drop the connection
                    # (the rest of the oversized line is unrecoverable).
                    self.stats["errors"] += 1
                    writer.write(
                        (json.dumps(error_response(
                            "request too large: a single request line must "
                            "stay under %d bytes" % _STREAM_LIMIT)) + "\n"
                         ).encode("utf-8"))
                    await writer.drain()
                    break
                if not line:
                    break
                self.stats["requests"] += 1
                request_id = None
                try:
                    req = json.loads(line)
                    if not isinstance(req, dict):
                        raise ProtocolError("request must be a JSON object")
                    request_id = req.get("id")
                    response = await self.dispatch(req)
                except (ProtocolError, ValueError) as exc:
                    self.stats["errors"] += 1
                    response = error_response(str(exc), request_id)
                except Exception as exc:
                    # Handler bug or resource failure: the client still gets
                    # a structured error, never a silently dropped
                    # connection; the traceback goes to the daemon's log.
                    self.stats["errors"] += 1
                    traceback.print_exc()
                    response = error_response(
                        "internal error: %s: %s" % (type(exc).__name__, exc),
                        request_id,
                    )
                if request_id is not None and "id" not in response:
                    response["id"] = request_id
                writer.write((json.dumps(response) + "\n").encode("utf-8"))
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def run(self) -> None:
        server = await asyncio.start_unix_server(
            self._handle_conn, path=self.socket_path, limit=_STREAM_LIMIT
        )
        try:
            async with server:
                await self.shutdown_event.wait()
        finally:
            self._pool.shutdown(wait=True)
            if self._log is not None:
                self._log.close()
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass


def run_daemon(
    socket_path: str,
    jobs: int = 2,
    cache_path: Optional[str] = None,
    wall_timeout: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
) -> int:
    """Blocking entry point: serve until SIGTERM/SIGINT, then exit 0."""

    async def main() -> None:
        flag = global_flag()
        flag.clear()
        daemon = ServeDaemon(
            socket_path,
            jobs=jobs,
            cache_path=cache_path,
            wall_timeout=wall_timeout,
            checkpoint_dir=checkpoint_dir,
            interrupt=flag,
        )
        loop = asyncio.get_running_loop()

        def initiate_shutdown(signum: int) -> None:
            # Same cooperative path as the batch harness: the flag stops
            # in-flight solves at their next poll, the event stops accepts.
            flag.set(signum)
            daemon.shutdown_event.set()

        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, initiate_shutdown, sig)
        try:
            await daemon.run()
        finally:
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(sig)

    asyncio.run(main())
    return 0
