"""The asyncio serve daemon: persistent solving over a unix socket.

One process, three execution lanes:

* protocol work (accept, parse, cache lookups) stays on the event loop;
* generic ``solve`` requests run through :func:`repro.evalx.parallel.
  run_tasks` with ``jobs=2`` — i.e. in a forked, fault-isolated worker
  shard with the wall-timeout/SIGTERM/checkpoint machinery the batch
  harness already has — driven from a thread-pool slot so the loop never
  blocks;
* ``smv-diameter`` requests run in-process (also on a thread-pool slot,
  serialized per model family by an asyncio lock) so the family's
  :class:`~repro.incremental.IncrementalSolver` keeps its learned
  constraints between bounds.

Verdicts are cached by the :meth:`repro.evalx.parallel.Task.key`
fingerprint triple and persisted to a :class:`~repro.evalx.parallel.
ResultsLog` (``--cache``): a restarted daemon reloads the log and serves
old verdicts — certificate status included — without re-solving.

Shutdown follows the repository's preemption path: SIGTERM/SIGINT set
:func:`repro.robustness.interrupt.global_flag`, which every in-process
solve polls, and wake the accept loop; in-flight requests drain (possibly
with ``interrupted`` UNKNOWN verdicts, which are never cached), then the
socket is removed and the process exits 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from repro.core.result import Outcome
from repro.evalx.parallel import (
    Record,
    ResultsLog,
    STATUS_OK,
    Task,
    measurement_to_dict,
    run_tasks,
)
from repro.evalx.runner import Budget, Measurement
from repro.incremental import IncrementalSolver
from repro.robustness.interrupt import InterruptFlag, global_flag
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    error_response,
    parse_budget,
    validate_smv_request,
)
from repro.smv.incremental import DiameterFamily

#: solver label recorded on in-process incremental smv runs.
SMV_SOLVER_LABEL = "INC(stable)"


class _Family:
    """One model family's persistent encoder + incremental solver."""

    def __init__(self, model, config=None):
        self.model = model
        self.encoder = DiameterFamily(model)
        self.solver = IncrementalSolver(config)
        self.lock = asyncio.Lock()


class ServeDaemon:
    def __init__(
        self,
        socket_path: str,
        jobs: int = 2,
        cache_path: Optional[str] = None,
        wall_timeout: Optional[float] = None,
        checkpoint_dir: Optional[str] = None,
        interrupt: Optional[InterruptFlag] = None,
    ):
        self.socket_path = socket_path
        self.jobs = max(1, jobs)
        self.wall_timeout = wall_timeout
        self.checkpoint_dir = checkpoint_dir
        self._interrupt = interrupt if interrupt is not None else global_flag()
        self._log = ResultsLog(cache_path, durable=False) if cache_path else None
        self._cache: Dict[Tuple[str, str, str], Record] = (
            self._log.load() if self._log is not None else {}
        )
        self._cache_lock = asyncio.Lock()
        self._families: Dict[str, _Family] = {}
        self._pool = ThreadPoolExecutor(max_workers=self.jobs)
        self._slots = asyncio.Semaphore(self.jobs)
        self.shutdown_event = asyncio.Event()
        self.started = time.monotonic()
        self.stats = {
            "requests": 0,
            "errors": 0,
            "cache_hits": 0,
            "solves": 0,
            "incremental_solves": 0,
        }

    # -- cache -------------------------------------------------------------

    async def _cache_put(self, record: Record) -> None:
        async with self._cache_lock:
            self._cache[record.key] = record
            if self._log is not None:
                self._log.append(record)

    def _cached_response(self, record: Record) -> Dict[str, object]:
        m = record.measurement
        out: Dict[str, object] = {
            "ok": record.ok,
            "cached": True,
            "status": record.status,
            "protocol": PROTOCOL_VERSION,
        }
        if m is not None:
            out.update(
                outcome=m.outcome.value,
                decisions=m.decisions,
                seconds=m.seconds,
                measurement=measurement_to_dict(m),
            )
            if m.certificate_status is not None:
                out["certificate_status"] = m.certificate_status
        return out

    # -- handlers ----------------------------------------------------------

    async def _handle_solve(self, req: Dict[str, object]) -> Dict[str, object]:
        text = req.get("formula")
        fmt = req.get("format", "qdimacs")
        if not isinstance(text, str):
            raise ProtocolError("solve needs a string 'formula'")
        if fmt == "qdimacs":
            from repro.io import qdimacs

            formula = qdimacs.loads(text)
        elif fmt == "qtree":
            from repro.io import qtree

            formula = qtree.loads(text)
        else:
            raise ProtocolError("unknown formula format %r" % (fmt,))
        mode = req.get("mode", "po")
        if mode not in ("po", "to"):
            raise ProtocolError("mode must be 'po' or 'to'")
        overrides = []
        if "engine" in req:
            overrides.append(("engine", req["engine"]))
        task = Task(
            instance=str(req.get("instance", "serve")),
            solver=str(req.get("solver", mode.upper())),
            formula=formula,
            mode=mode,
            strategy=str(req.get("strategy", "eu_au")),
            budget=parse_budget(req.get("budget")),
            overrides=tuple(overrides),
            certify=bool(req.get("certify", False)),
        )
        cached = self._cache.get(task.key)
        if cached is not None:
            self.stats["cache_hits"] += 1
            return self._cached_response(cached)

        loop = asyncio.get_running_loop()
        async with self._slots:
            records = await loop.run_in_executor(
                self._pool,
                lambda: run_tasks(
                    [task],
                    jobs=2,
                    wall_timeout=self.wall_timeout,
                    checkpoint_dir=self.checkpoint_dir,
                ),
            )
        record = records[0]
        self.stats["solves"] += 1
        m = record.measurement
        if record.ok and m is not None and not m.interrupted:
            await self._cache_put(record)
        out = self._cached_response(record)
        out["cached"] = False
        return out

    async def _handle_smv(self, req: Dict[str, object]) -> Dict[str, object]:
        family_name, size, n = validate_smv_request(req)
        from repro.smv.models import model_by_name

        model = model_by_name(family_name, size)
        budget = parse_budget(req.get("budget"))
        fam = self._families.get(model.name)
        if fam is None:
            fam = _Family(model)
            self._families[model.name] = fam

        async with fam.lock:
            formula = fam.encoder.formula(n)
            task = Task(
                instance="smv:%s:n=%d" % (model.name, n),
                solver=SMV_SOLVER_LABEL,
                formula=formula,
                budget=budget,
            )
            cached = self._cache.get(task.key)
            if cached is not None:
                self.stats["cache_hits"] += 1
                return self._cached_response(cached)
            loop = asyncio.get_running_loop()
            incremental = fam.solver.solves > 0
            config = budget.to_config()

            def solve_bound():
                fam.solver.config = config
                fam.solver.load(formula)
                return fam.solver.solve(interrupt=self._interrupt)

            async with self._slots:
                result = await loop.run_in_executor(self._pool, solve_bound)
        self.stats["solves"] += 1
        if incremental:
            self.stats["incremental_solves"] += 1
        m = Measurement(
            instance=task.instance,
            solver=task.solver,
            outcome=result.outcome,
            decisions=result.stats.decisions,
            seconds=result.seconds,
            learned_clauses=result.stats.learned_clauses,
            learned_cubes=result.stats.learned_cubes,
            stats=result.stats,
            interrupted=result.interrupted,
        )
        retained = fam.solver.last_retained_clauses + fam.solver.last_retained_cubes
        if result.outcome is not Outcome.UNKNOWN:
            await self._cache_put(
                Record(
                    instance=task.instance,
                    solver=task.solver,
                    fingerprint=task.fingerprint(),
                    status=STATUS_OK,
                    measurement=m,
                )
            )
        return {
            "ok": True,
            "cached": False,
            "incremental": incremental,
            "retained": retained,
            "outcome": result.outcome.value,
            "decisions": result.stats.decisions,
            "seconds": result.seconds,
            "interrupted": result.interrupted,
            "protocol": PROTOCOL_VERSION,
        }

    async def dispatch(self, req: Dict[str, object]) -> Dict[str, object]:
        kind = req.get("kind", "solve")
        if kind == "ping":
            return {"ok": True, "pong": True, "protocol": PROTOCOL_VERSION}
        if kind == "stats":
            out = dict(self.stats)
            out.update(
                ok=True,
                uptime=time.monotonic() - self.started,
                cache_size=len(self._cache),
                protocol=PROTOCOL_VERSION,
            )
            return out
        if kind == "shutdown":
            # The supported path is SIGTERM; this exists for clients that
            # cannot signal (e.g. a remote-ish wrapper), and follows it.
            self._interrupt.set()
            self.shutdown_event.set()
            return {"ok": True, "stopping": True, "protocol": PROTOCOL_VERSION}
        if kind == "solve":
            return await self._handle_solve(req)
        if kind == "smv-diameter":
            return await self._handle_smv(req)
        raise ProtocolError("unknown request kind %r" % (kind,))

    # -- server loop -------------------------------------------------------

    async def _handle_conn(self, reader, writer) -> None:
        try:
            while not self.shutdown_event.is_set():
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                self.stats["requests"] += 1
                request_id = None
                try:
                    req = json.loads(line)
                    if not isinstance(req, dict):
                        raise ProtocolError("request must be a JSON object")
                    request_id = req.get("id")
                    response = await self.dispatch(req)
                except (ProtocolError, ValueError) as exc:
                    self.stats["errors"] += 1
                    response = error_response(str(exc), request_id)
                if request_id is not None and "id" not in response:
                    response["id"] = request_id
                writer.write((json.dumps(response) + "\n").encode("utf-8"))
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def run(self) -> None:
        server = await asyncio.start_unix_server(
            self._handle_conn, path=self.socket_path
        )
        try:
            async with server:
                await self.shutdown_event.wait()
        finally:
            self._pool.shutdown(wait=True)
            if self._log is not None:
                self._log.close()
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass


def run_daemon(
    socket_path: str,
    jobs: int = 2,
    cache_path: Optional[str] = None,
    wall_timeout: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
) -> int:
    """Blocking entry point: serve until SIGTERM/SIGINT, then exit 0."""

    async def main() -> None:
        flag = global_flag()
        flag.clear()
        daemon = ServeDaemon(
            socket_path,
            jobs=jobs,
            cache_path=cache_path,
            wall_timeout=wall_timeout,
            checkpoint_dir=checkpoint_dir,
            interrupt=flag,
        )
        loop = asyncio.get_running_loop()

        def initiate_shutdown(signum: int) -> None:
            # Same cooperative path as the batch harness: the flag stops
            # in-flight solves at their next poll, the event stops accepts.
            flag.set(signum)
            daemon.shutdown_event.set()

        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, initiate_shutdown, sig)
        try:
            await daemon.run()
        finally:
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(sig)

    asyncio.run(main())
    return 0
