"""Synchronous client for the serve daemon (stdlib sockets only)."""

from __future__ import annotations

import json
import os
import socket
import time
from typing import Dict, Optional


class ServeClientError(RuntimeError):
    """Connection or framing failure talking to the daemon."""


def request(
    socket_path: str, payload: Dict[str, object], timeout: float = 300.0
) -> Dict[str, object]:
    """Send one request, return its response object."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(socket_path)
        sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:  # EOF: fall through with whatever arrived
                break
            buf += chunk
        if not buf:
            raise ServeClientError("daemon closed the connection without replying")
        return json.loads(buf.decode("utf-8"))


def request_with_retry(
    socket_path: str,
    payload: Dict[str, object],
    timeout: float = 300.0,
    attempts: int = 4,
    max_backoff: float = 5.0,
) -> Dict[str, object]:
    """Send one request, honouring the daemon's backpressure.

    ``overloaded`` (admission shed) and ``stuck`` (family being restarted)
    responses carry a ``retry_after`` hint; sleep that long — capped at
    ``max_backoff`` so a pathological hint cannot park the client — and try
    again, up to ``attempts`` times. Every other response (including
    ``poisoned``, whose cooldown is typically much longer than a client
    wants to wait) is returned as-is; so is the final over-budget one.
    """
    last: Dict[str, object] = {}
    for attempt in range(max(1, attempts)):
        last = request(socket_path, payload, timeout=timeout)
        if last.get("ok") or last.get("status") not in ("overloaded", "stuck"):
            return last
        if attempt + 1 < max(1, attempts):
            hint = last.get("retry_after", 0.5)
            if not isinstance(hint, (int, float)) or hint < 0:
                hint = 0.5
            time.sleep(min(float(hint), max_backoff))
    return last


def wait_ready(
    socket_path: str, timeout: float = 30.0, poll: float = 0.05
) -> None:
    """Block until the daemon answers a ping (or raise after ``timeout``)."""
    deadline = time.monotonic() + timeout
    last: Optional[Exception] = None
    while time.monotonic() < deadline:
        if os.path.exists(socket_path):
            try:
                if request(socket_path, {"kind": "ping"}, timeout=5.0).get("pong"):
                    return
            except (OSError, ServeClientError, json.JSONDecodeError) as exc:
                last = exc
        time.sleep(poll)
    raise ServeClientError(
        "daemon at %s did not become ready within %.1fs%s"
        % (socket_path, timeout, ": %s" % last if last else "")
    )
