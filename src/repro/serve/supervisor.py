"""Supervision layer between the serve daemon and its execution backends.

The daemon (:mod:`repro.serve.daemon`) trusts nothing below it to behave:
workers crash, hang, and OOM; family solvers wedge; cache appends tear.
This module is the policy brain that keeps the *serving path* alive through
all of that, in four pieces the daemon composes:

* :class:`AdmissionController` — a bounded in-flight request budget with
  per-kind concurrency limits. Admission is grant-or-shed, never queue:
  an over-budget request gets a structured ``overloaded`` error with a
  ``retry_after`` hint instead of parking on an unbounded wait. Shed
  counts and live depth are reported through ``stats``.
* :class:`CircuitBreaker` / :class:`BreakerBoard` — per-key failure
  history. ``failure_threshold`` consecutive crash/hang/memout outcomes
  trip the key open; while open, requests for it get an immediate
  structured ``poisoned`` error carrying the last failure, with no worker
  spawned. After ``cooldown`` seconds the breaker goes half-open and lets
  exactly one probe through: success closes it, failure re-opens it.
* :class:`RestartPolicy` — exponential backoff for restarting a
  repeatedly-dying persistent family solver; while a family is in backoff
  the daemon degrades its requests to one-shot scratch solves instead of
  erroring.
* :class:`Supervisor` — the bundle the daemon owns: one admission
  controller, one breaker board, per-family restart policies, and the
  degradation counters, with a single ``snapshot()`` merged into the
  daemon's ``stats`` response.

Everything takes an injectable ``clock`` so the state machines are tested
with a fake clock instead of sleeps.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

#: breaker states, as reported in ``stats``.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: consecutive failures that trip a breaker open.
DEFAULT_FAILURE_THRESHOLD = 3
#: seconds an open breaker waits before allowing a half-open probe.
DEFAULT_COOLDOWN = 30.0
#: family-restart backoff: base seconds, doubling per consecutive death.
DEFAULT_RESTART_BACKOFF = 0.5
DEFAULT_RESTART_BACKOFF_MAX = 60.0


class OverloadedError(Exception):
    """Admission shed: the in-flight budget (total or per-kind) is full.

    Carries ``retry_after`` — a coarse client hint, seconds — and the
    dimension that was full (``"total"`` or the request kind).
    """

    def __init__(self, message: str, retry_after: float, dimension: str):
        super().__init__(message)
        self.retry_after = retry_after
        self.dimension = dimension


class PoisonedError(Exception):
    """Breaker open: this key has failed repeatedly; request refused.

    ``last_failure`` is the recorded ``{"status": ..., "error": ...}`` of
    the failure that tripped (or most recently re-opened) the breaker, and
    ``retry_after`` the seconds until the next half-open probe window.
    """

    def __init__(self, message: str, last_failure: Dict[str, object], retry_after: float):
        super().__init__(message)
        self.last_failure = last_failure
        self.retry_after = retry_after


class AdmissionController:
    """Grant-or-shed admission with a total and per-kind in-flight budget.

    ``admit(kind)`` either returns a release callable (call it exactly once
    when the request finishes, success or not) or raises
    :class:`OverloadedError`. Nothing ever queues here — bounded waiting
    happens *after* admission, on the daemon's executor slots, and is
    bounded precisely because admission is.
    """

    def __init__(
        self,
        total_limit: int,
        kind_limits: Optional[Dict[str, int]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if total_limit < 1:
            raise ValueError("total_limit must be >= 1")
        self.total_limit = total_limit
        self.kind_limits = dict(kind_limits or {})
        self._clock = clock
        self.inflight_total = 0
        self.inflight: Dict[str, int] = {}
        self.shed: Dict[str, int] = {}
        self.admitted = 0

    def _retry_after(self) -> float:
        """Coarse hint: scale with how saturated the budget is."""
        return round(0.5 * (1 + self.inflight_total), 2)

    def admit(self, kind: str) -> Callable[[], None]:
        limit = self.kind_limits.get(kind)
        if self.inflight_total >= self.total_limit:
            self.shed[kind] = self.shed.get(kind, 0) + 1
            raise OverloadedError(
                "overloaded: %d requests in flight (budget %d)"
                % (self.inflight_total, self.total_limit),
                retry_after=self._retry_after(),
                dimension="total",
            )
        if limit is not None and self.inflight.get(kind, 0) >= limit:
            self.shed[kind] = self.shed.get(kind, 0) + 1
            raise OverloadedError(
                "overloaded: %d %r requests in flight (per-kind budget %d)"
                % (self.inflight.get(kind, 0), kind, limit),
                retry_after=self._retry_after(),
                dimension=kind,
            )
        self.inflight_total += 1
        self.inflight[kind] = self.inflight.get(kind, 0) + 1
        self.admitted += 1
        released = [False]

        def release() -> None:
            if released[0]:  # idempotent: error paths may double-release
                return
            released[0] = True
            self.inflight_total -= 1
            self.inflight[kind] -= 1

        return release

    def snapshot(self) -> Dict[str, object]:
        return {
            "inflight": self.inflight_total,
            "inflight_by_kind": {k: v for k, v in self.inflight.items() if v},
            "limit": self.total_limit,
            "kind_limits": dict(self.kind_limits),
            "admitted": self.admitted,
            "shed": dict(self.shed),
            "shed_total": sum(self.shed.values()),
        }


class CircuitBreaker:
    """Per-key failure history: closed → open → half-open → closed.

    Success in any state resets to closed. ``failure_threshold``
    *consecutive* failures trip open. While open, :meth:`check` raises
    :class:`PoisonedError`; after ``cooldown`` seconds one probe is let
    through (half-open) — its failure re-opens, its success closes.
    """

    def __init__(
        self,
        key: str,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        cooldown: float = DEFAULT_COOLDOWN,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.key = key
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self.opened_at: Optional[float] = None
        self.last_failure: Optional[Dict[str, object]] = None
        self._probe_out = False

    def check(self) -> None:
        """Gate a request on this key; raises :class:`PoisonedError` when
        the breaker is open (or a half-open probe is already out)."""
        if self.state == CLOSED:
            return
        now = self._clock()
        opened_at = self.opened_at if self.opened_at is not None else now
        elapsed = now - opened_at
        if self.state == OPEN and elapsed >= self.cooldown:
            self.state = HALF_OPEN
            self._probe_out = False
        if self.state == HALF_OPEN and not self._probe_out:
            self._probe_out = True  # this request is the probe
            return
        retry_after = max(0.0, self.cooldown - elapsed) if self.state == OPEN else self.cooldown
        raise PoisonedError(
            "poisoned: %s failed %d consecutive time(s); breaker %s"
            % (self.key, self.consecutive_failures, self.state),
            last_failure=dict(self.last_failure or {}),
            retry_after=round(retry_after, 2),
        )

    def record_failure(self, status: str, error: Optional[str] = None) -> None:
        self.consecutive_failures += 1
        self.last_failure = {"status": status, "error": error}
        if self.state == HALF_OPEN or (
            self.state == CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            if self.state != OPEN:
                self.trips += 1
            self.state = OPEN
            self.opened_at = self._clock()
            self._probe_out = False

    def record_success(self) -> None:
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = None
        self._probe_out = False


class BreakerBoard:
    """All the daemon's breakers, created on first failure-capable use."""

    def __init__(
        self,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        cooldown: float = DEFAULT_COOLDOWN,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, key: str) -> CircuitBreaker:
        b = self._breakers.get(key)
        if b is None:
            b = CircuitBreaker(
                key,
                failure_threshold=self.failure_threshold,
                cooldown=self.cooldown,
                clock=self._clock,
            )
            self._breakers[key] = b
        return b

    def snapshot(self) -> Dict[str, object]:
        by_state = {CLOSED: 0, OPEN: 0, HALF_OPEN: 0}
        open_keys = []
        trips = 0
        for b in self._breakers.values():
            by_state[b.state] += 1
            trips += b.trips
            if b.state != CLOSED:
                open_keys.append(b.key)
        return {
            "tracked": len(self._breakers),
            "open": by_state[OPEN],
            "half_open": by_state[HALF_OPEN],
            "trips": trips,
            "open_keys": sorted(open_keys)[:16],
        }


class RestartPolicy:
    """Exponential restart backoff for a persistent in-process solver.

    Each :meth:`record_death` doubles the backoff (capped); while
    :meth:`in_backoff` the owner should serve degraded (scratch) and *not*
    restart. :meth:`record_recovery` resets after a successful solve on
    the restarted instance.
    """

    def __init__(
        self,
        base: float = DEFAULT_RESTART_BACKOFF,
        cap: float = DEFAULT_RESTART_BACKOFF_MAX,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.base = base
        self.cap = cap
        self._clock = clock
        self.deaths = 0
        self.restarts = 0
        self._blocked_until = 0.0

    def record_death(self) -> float:
        """Note a death; returns the backoff before the next restart."""
        delay = min(self.cap, self.base * (2.0 ** self.deaths))
        self.deaths += 1
        self._blocked_until = self._clock() + delay
        return delay

    def in_backoff(self) -> bool:
        return self._clock() < self._blocked_until

    def backoff_remaining(self) -> float:
        return max(0.0, self._blocked_until - self._clock())

    def record_restart(self) -> None:
        self.restarts += 1

    def record_recovery(self) -> None:
        self.deaths = 0
        self._blocked_until = 0.0


class Supervisor:
    """The daemon's one-stop supervision bundle."""

    #: statuses a breaker counts as key-poisoning failures. ``deadline``
    #: and ``interrupted`` deliberately excluded: time ran out or the
    #: operator preempted — neither says the *key* is poisonous.
    FAILURE_STATUSES = ("crash", "hard-timeout", "memout", "stuck")

    def __init__(
        self,
        total_limit: int,
        kind_limits: Optional[Dict[str, int]] = None,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        cooldown: float = DEFAULT_COOLDOWN,
        restart_backoff: float = DEFAULT_RESTART_BACKOFF,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._clock = clock
        self.admission = AdmissionController(total_limit, kind_limits, clock=clock)
        self.breakers = BreakerBoard(
            failure_threshold=failure_threshold, cooldown=cooldown, clock=clock
        )
        self.restart_backoff = restart_backoff
        self._restart_policies: Dict[str, RestartPolicy] = {}
        self.degraded_solves = 0
        self.memouts = 0
        self.poisoned = 0

    # -- admission ---------------------------------------------------------

    def admit(self, kind: str) -> Callable[[], None]:
        return self.admission.admit(kind)

    # -- breakers ----------------------------------------------------------

    @staticmethod
    def task_breaker_key(key: Tuple[str, str, str]) -> str:
        return "task:%s|%s|%s" % key

    @staticmethod
    def family_breaker_key(family: str) -> str:
        return "family:%s" % family

    def check(self, breaker_key: str) -> CircuitBreaker:
        """Breaker gate; counts the shed and re-raises on open."""
        breaker = self.breakers.breaker(breaker_key)
        try:
            breaker.check()
        except PoisonedError:
            self.poisoned += 1
            raise
        return breaker

    def record_outcome(
        self, breaker: CircuitBreaker, status: str, error: Optional[str] = None
    ) -> None:
        if status in self.FAILURE_STATUSES:
            if status == "memout":
                self.memouts += 1
            breaker.record_failure(status, error)
        else:
            breaker.record_success()

    # -- degradation -------------------------------------------------------

    def restart_policy(self, name: str) -> RestartPolicy:
        policy = self._restart_policies.get(name)
        if policy is None:
            policy = RestartPolicy(base=self.restart_backoff, clock=self._clock)
            self._restart_policies[name] = policy
        return policy

    def note_degraded(self) -> None:
        self.degraded_solves += 1

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        restarts = sum(p.restarts for p in self._restart_policies.values())
        deaths = sum(p.deaths for p in self._restart_policies.values())
        return {
            "admission": self.admission.snapshot(),
            "breakers": self.breakers.snapshot(),
            "degraded_solves": self.degraded_solves,
            "memouts": self.memouts,
            "poisoned": self.poisoned,
            "family_restarts": restarts,
            "family_deaths_pending": deaths,
        }
