"""The serve/incremental benchmark harness — emits ``BENCH_serve.json``.

Two measurements, mirroring what the tentpole promises:

* **Sweeps** — for each bench family, run the full diameter sweep twice on
  the *identical* stable-id formulas (:mod:`repro.smv.incremental`): once
  on a persistent :class:`~repro.incremental.IncrementalSolver`, once from
  scratch per bound. Reports total decisions for both, the savings, and
  checks the diameters agree with the explicit-state BFS ground truth.

* **Serve** — start a real daemon subprocess, replay the family's bound
  requests over the socket (cold), then replay them again (every one a
  fingerprint-cache hit), and SIGTERM it. Reports request throughput,
  cache-hit latency, and the daemon's own counters, asserting the clean
  exit the preemption path promises.

* **Degraded** — the same daemon under an injected fault plan (a wedged
  family solver plus a worker that OOMs on every attempt): replay a mixed
  workload and report ``degraded_rps`` — sustained answered-requests per
  second where a structured refusal (``memout``/``stuck``/``poisoned``)
  counts as answered and a hang or wrong verdict fails the bench.

Schema history: 1 = initial layout; 2 = added the ``degraded`` entry
(``degraded_rps``).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional

from repro.robustness.faults import FaultPlan
from repro.serve.client import request, wait_ready
from repro.smv.incremental import incremental_diameter, scratch_diameter
from repro.smv.models import model_by_name
from repro.smv.reachability import eccentricity

SCHEMA_VERSION = 2

#: (family, size) pairs swept by the bench; chosen to stay seconds-fast.
QUICK_FAMILIES = (("counter", 2), ("dme", 5), ("ring", 4))
FULL_FAMILIES = QUICK_FAMILIES + (("dme", 4), ("ring", 3), ("semaphore", 2))


def _sweep_entry(family: str, size: int) -> Dict[str, object]:
    model = model_by_name(family, size)
    truth = eccentricity(model)
    t0 = time.monotonic()
    inc = incremental_diameter(model)
    inc_seconds = time.monotonic() - t0
    t0 = time.monotonic()
    scratch = scratch_diameter(model)
    scratch_seconds = time.monotonic() - t0
    if inc.diameter != truth or scratch.diameter != truth:
        raise AssertionError(
            "%s: diameter mismatch (bfs=%s inc=%s scratch=%s)"
            % (model.name, truth, inc.diameter, scratch.diameter)
        )
    saved = scratch.total_decisions - inc.total_decisions
    return {
        "model": model.name,
        "diameter": truth,
        "incremental_decisions": inc.total_decisions,
        "scratch_decisions": scratch.total_decisions,
        "decisions_saved": saved,
        "savings_pct": round(100.0 * saved / max(1, scratch.total_decisions), 2),
        "retained_per_bound": inc.retained_per_bound,
        "incremental_seconds": round(inc_seconds, 3),
        "scratch_seconds": round(scratch_seconds, 3),
    }


def _serve_entry(family: str, size: int, max_n: int) -> Dict[str, object]:
    tmp = tempfile.mkdtemp(prefix="repro-serve-bench-")
    socket_path = os.path.join(tmp, "serve.sock")
    cache_path = os.path.join(tmp, "cache.jsonl")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "run",
            "--socket",
            socket_path,
            "--cache",
            cache_path,
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        wait_ready(socket_path, timeout=60.0)
        bounds = list(range(max_n + 1))

        def replay() -> List[float]:
            latencies = []
            for n in bounds:
                t0 = time.monotonic()
                resp = request(
                    socket_path,
                    {"kind": "smv-diameter", "family": family, "size": size, "n": n},
                )
                latencies.append(time.monotonic() - t0)
                if not resp.get("ok"):
                    raise AssertionError("serve request failed: %r" % (resp,))
            return latencies

        t0 = time.monotonic()
        cold = replay()
        warm = replay()
        elapsed = time.monotonic() - t0
        stats = request(socket_path, {"kind": "stats"})
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            returncode = proc.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            returncode = proc.wait()
    if returncode != 0:
        raise AssertionError("daemon exited %d after SIGTERM" % returncode)
    return {
        "model": "%s%d" % (family, size),
        "bounds": len(bounds),
        "requests_per_sec": round((2 * len(bounds)) / max(elapsed, 1e-9), 2),
        "cold_latency_ms": {
            "mean": round(1000 * sum(cold) / len(cold), 3),
            "max": round(1000 * max(cold), 3),
        },
        "cache_hit_latency_ms": {
            "mean": round(1000 * sum(warm) / len(warm), 3),
            "max": round(1000 * max(warm), 3),
        },
        "daemon_stats": {
            k: stats.get(k)
            for k in ("requests", "cache_hits", "solves", "incremental_solves")
        },
        "clean_sigterm_exit": returncode == 0,
    }


#: a trivially-true QBF served as the degraded bench's solve workload.
_TRUE_QD = "p cnf 2 2\ne 1 0\na 2 0\n1 2 0\n1 -2 0\n"

#: refusals the supervised daemon is allowed to answer with under chaos.
_STRUCTURED = ("memout", "stuck", "poisoned", "overloaded", "deadline")


def _degraded_entry(family: str, size: int, max_n: int) -> Dict[str, object]:
    """Throughput with the supervisor absorbing injected faults.

    Every request must still get an answer — a verdict (possibly served
    degraded from a scratch solver) or a structured refusal. ``degraded_rps``
    is answered requests per wall second over the whole chaotic replay.
    """
    model = model_by_name(family, size)
    tmp = tempfile.mkdtemp(prefix="repro-serve-bench-chaos-")
    socket_path = os.path.join(tmp, "serve.sock")
    cache_path = os.path.join(tmp, "cache.jsonl")
    plan_path = os.path.join(tmp, "faults.json")
    plan = FaultPlan(
        assignments={
            "family:%s" % model.name: "stuck-family",
            "oom-victim|PO": "worker-oom",
        },
        hang_seconds=4.0,
    )
    with open(plan_path, "w") as handle:
        json.dump(plan.to_dict(), handle)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", "run",
            "--socket", socket_path,
            "--cache", cache_path,
            "--fault-plan", plan_path,
            "--mem-limit", "512",
            "--breaker-cooldown", "300",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    answered = 0
    counts: Dict[str, int] = {}
    try:
        wait_ready(socket_path, timeout=60.0)
        workload: List[Dict[str, object]] = [
            # First smv request hits the injected wedge (short deadline so
            # the abandon fires fast); the rest ride the restart backoff as
            # degraded scratch solves.
            {"kind": "smv-diameter", "family": family, "size": size,
             "n": 0, "deadline": 1.0},
        ]
        workload += [
            {"kind": "smv-diameter", "family": family, "size": size,
             "n": n, "deadline": 20.0}
            for n in range(max_n + 1)
        ]
        workload += [
            {"kind": "solve", "instance": "oom-victim", "formula": _TRUE_QD,
             "deadline": 20.0}
            for _ in range(2)
        ]
        workload += [
            {"kind": "solve", "instance": "clean-%d" % i, "formula": _TRUE_QD,
             "deadline": 20.0}
            for i in range(4)
        ]
        t0 = time.monotonic()
        for req in workload:
            resp = request(socket_path, req, timeout=60.0)
            status = resp.get("status")
            if resp.get("ok"):
                answered += 1
                key = "degraded" if resp.get("degraded") else "ok"
                counts[key] = counts.get(key, 0) + 1
            elif status in _STRUCTURED:
                answered += 1
                counts[status] = counts.get(status, 0) + 1
            else:
                raise AssertionError(
                    "unstructured failure under chaos: %r" % (resp,)
                )
            if resp.get("ok") and "outcome" in resp and req["kind"] == "solve":
                if resp["outcome"] != "true":
                    raise AssertionError(
                        "wrong verdict under chaos: %r" % (resp,)
                    )
        elapsed = time.monotonic() - t0
        stats = request(socket_path, {"kind": "stats"})
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            returncode = proc.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            returncode = proc.wait()
    if returncode != 0:
        raise AssertionError("daemon exited %d after SIGTERM" % returncode)
    supervisor = stats.get("supervisor", {})
    return {
        "model": model.name,
        "requests": answered,
        "degraded_rps": round(answered / max(elapsed, 1e-9), 2),
        "answers": counts,
        "supervisor": {
            k: supervisor.get(k)
            for k in ("degraded_solves", "memouts", "poisoned",
                      "family_restarts")
        },
        "clean_sigterm_exit": returncode == 0,
    }


def run_serve_bench(quick: bool = True) -> Dict[str, object]:
    families = QUICK_FAMILIES if quick else FULL_FAMILIES
    sweeps = [_sweep_entry(f, s) for f, s in families]
    serve_family, serve_size = families[0]
    serve = _serve_entry(serve_family, serve_size, max_n=3)
    degraded = _degraded_entry(serve_family, serve_size, max_n=3)
    return {
        "schema": SCHEMA_VERSION,
        "generated_by": "repro serve bench",
        "quick": quick,
        "sweeps": sweeps,
        "serve": serve,
        "degraded": degraded,
        "incremental_strictly_fewer": all(
            e["incremental_decisions"] < e["scratch_decisions"] for e in sweeps
        ),
    }


def write_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_report(report: Dict[str, object]) -> str:
    lines = ["serve bench (schema %s)" % report["schema"]]
    for entry in report["sweeps"]:
        lines.append(
            "  %-12s d=%-3d decisions: incremental %d vs scratch %d (%.1f%% saved)"
            % (
                entry["model"],
                entry["diameter"],
                entry["incremental_decisions"],
                entry["scratch_decisions"],
                entry["savings_pct"],
            )
        )
    serve = report["serve"]
    lines.append(
        "  serve %-9s %.1f req/s, cache-hit latency %.2fms mean, clean exit: %s"
        % (
            serve["model"],
            serve["requests_per_sec"],
            serve["cache_hit_latency_ms"]["mean"],
            serve["clean_sigterm_exit"],
        )
    )
    degraded = report.get("degraded")
    if degraded is not None:
        lines.append(
            "  chaos %-9s %.1f req/s degraded (%d answered: %s), clean exit: %s"
            % (
                degraded["model"],
                degraded["degraded_rps"],
                degraded["requests"],
                ", ".join(
                    "%s %d" % (k, v) for k, v in sorted(degraded["answers"].items())
                ),
                degraded["clean_sigterm_exit"],
            )
        )
    lines.append(
        "  incremental strictly fewer decisions: %s"
        % report["incremental_strictly_fewer"]
    )
    return "\n".join(lines)
