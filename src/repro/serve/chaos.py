"""Serve-layer chaos smoke: a fault-injected daemon must never lie.

``repro serve chaos`` boots a *real* daemon subprocess with a
:class:`~repro.robustness.faults.FaultPlan` wired into every execution
lane — a solve key that OOMs on every attempt, one that crashes, one that
hangs past its deadline, a cache label whose JSONL append tears, and an
SMV family whose in-process solver wedges — then drives a scripted client
battery against it and checks the supervision invariants:

* **never a wrong verdict**: every determinate answer matches the known
  truth of its formula (and every SMV answer agrees with every other
  answer for the same bound);
* **never a hang**: every request returns — a verdict, or a structured
  ``overloaded`` / ``poisoned`` / ``memout`` / ``stuck`` / ``deadline``
  error;
* **never a daemon exit**: the process survives the whole battery, still
  answers ``ping``, and exits 0 on SIGTERM afterwards;
* **counters reconcile**: the client's tally of sheds, memouts, poisoned
  refusals and degraded solves equals the daemon's own ``stats``;
* **the cache stays clean**: the persisted verdict log reloads (torn line
  included) and contains only ``ok`` records.

The plan uses explicit ``assignments`` so the injected faults are
independent of request arrival order; ``seed`` is recorded in the report
for provenance and perturbs nothing but the burst instance names.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional

from repro.serve.client import request, wait_ready

SCHEMA_VERSION = 1

#: ∃x∀y (x∨y)(x∨¬y) — TRUE (pick x).
TRUE_QD = "p cnf 2 2\ne 1 0\na 2 0\n1 2 0\n1 -2 0\n"
#: ∀x (x) — FALSE (pick ¬x).
FALSE_QD = "p cnf 1 1\na 1 0\n1 0\n"

#: the daemon's admission budget during chaos; the burst exceeds it.
MAX_INFLIGHT = 4
BURST = 8
FAILURE_THRESHOLD = 3
#: long enough that a tripped breaker stays open for the whole battery.
BREAKER_COOLDOWN = 120.0
#: worker-hang / family-stall duration: past the hang deadline (kill
#: escalation) and past the smv deadline + the daemon's 2 s stuck grace.
HANG_SECONDS = 4.0
SOLVE_DEADLINE = 1.5
SMV_DEADLINE = 1.0

#: structured failure statuses the battery accepts; anything else — or a
#: determinate verdict that contradicts the oracle — is a violation.
ACCEPTED_FAILURES = ("overloaded", "poisoned", "memout", "stuck", "deadline")


def _fault_plan(seed: int) -> Dict[str, object]:
    return {
        "seed": seed,
        "hang_seconds": HANG_SECONDS,
        "assignments": {
            "clean-true|PO": "torn-append",
            "crash-victim|PO": "crash",
            "hang-victim|PO": "hang",
            "oom-victim|PO": "worker-oom",
            "family:counter2": "stuck-family",
        },
    }


class _Battery:
    """Client-side request driver + invariant bookkeeping."""

    def __init__(self, socket_path: str):
        self.socket_path = socket_path
        self._lock = threading.Lock()  # burst threads share the tallies
        self.counts: Dict[str, int] = {
            "requests": 0,
            "ok": 0,
            "cached": 0,
            "memout": 0,
            "poisoned": 0,
            "overloaded": 0,
            "stuck": 0,
            "deadline": 0,
            "degraded": 0,
        }
        self.violations: List[str] = []
        self.smv_answers: Dict[int, str] = {}

    def ask(
        self,
        payload: Dict[str, object],
        expect: Optional[str] = None,
        label: str = "?",
    ) -> Dict[str, object]:
        """One request; classify the response and check the oracle."""
        resp = request(self.socket_path, payload, timeout=120.0)
        with self._lock:
            self.counts["requests"] += 1
            if resp.get("degraded"):
                # A degraded answer can be either a verdict or a deadline
                # failure; the daemon counts both, so the client must too.
                self.counts["degraded"] += 1
            if resp.get("ok"):
                self.counts["ok"] += 1
                if resp.get("cached"):
                    self.counts["cached"] += 1
                outcome = resp.get("outcome")
                if (
                    expect is not None
                    and outcome in ("true", "false")
                    and outcome != expect
                ):
                    self.violations.append(
                        "%s: WRONG VERDICT %r (expected %r)"
                        % (label, outcome, expect)
                    )
            else:
                status = resp.get("status")
                if status in self.counts:
                    self.counts[status] += 1
                if status not in ACCEPTED_FAILURES or "error" not in resp:
                    self.violations.append(
                        "%s: unstructured failure %r" % (label, resp)
                    )
        return resp

    def ask_smv(self, n: int, label: str) -> Dict[str, object]:
        resp = self.ask(
            {
                "kind": "smv-diameter",
                "family": "counter",
                "size": 2,
                "n": n,
                "deadline": SMV_DEADLINE,
            },
            label=label,
        )
        outcome = resp.get("outcome")
        if resp.get("ok") and outcome in ("true", "false"):
            seen = self.smv_answers.setdefault(n, outcome)
            if seen != outcome:
                self.violations.append(
                    "%s: smv n=%d answered %r after %r" % (label, n, outcome, seen)
                )
        return resp

    def burst(self, round_no: int, seed: int) -> None:
        """Fire more concurrent solves than the admission budget allows."""
        responses: List[Optional[Dict[str, object]]] = [None] * BURST

        def one(i: int) -> None:
            responses[i] = self.ask(
                {
                    "kind": "solve",
                    "formula": TRUE_QD,
                    "instance": "burst-%d-%d-%d" % (seed, round_no, i),
                    "deadline": SOLVE_DEADLINE,
                },
                expect="true",
                label="burst-%d-%d" % (round_no, i),
            )

        threads = [threading.Thread(target=one, args=(i,)) for i in range(BURST)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
        if any(r is None for r in responses):
            self.violations.append("burst round %d: a request never returned" % round_no)


def run_serve_chaos(
    seed: int = 0,
    requests: int = 3,
    mem_limit_mb: float = 512.0,
    keep_stats: Optional[str] = None,
) -> Dict[str, object]:
    """Run the whole smoke; returns the machine-readable report."""
    tmp = tempfile.mkdtemp(prefix="repro-serve-chaos-")
    socket_path = os.path.join(tmp, "serve.sock")
    cache_path = os.path.join(tmp, "cache.jsonl")
    plan_path = os.path.join(tmp, "faults.json")
    with open(plan_path, "w") as handle:
        json.dump(_fault_plan(seed), handle)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", "run",
            "--socket", socket_path,
            "--cache", cache_path,
            "--fault-plan", plan_path,
            "--mem-limit", str(mem_limit_mb),
            "--max-inflight", str(MAX_INFLIGHT),
            "--failure-threshold", str(FAILURE_THRESHOLD),
            "--breaker-cooldown", str(BREAKER_COOLDOWN),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    battery = _Battery(socket_path)
    started = time.monotonic()
    stats: Dict[str, object] = {}
    clean_exit = False
    try:
        wait_ready(socket_path, timeout=60.0)
        for r in range(max(1, requests)):
            battery.ask(
                {"kind": "solve", "formula": TRUE_QD, "instance": "clean-true",
                 "deadline": SOLVE_DEADLINE},
                expect="true", label="clean-true r%d" % r,
            )
            battery.ask(
                {"kind": "solve", "formula": FALSE_QD, "instance": "crash-victim",
                 "deadline": SOLVE_DEADLINE},
                expect="false", label="crash-victim r%d" % r,
            )
            battery.ask(
                {"kind": "solve", "formula": TRUE_QD, "instance": "hang-victim",
                 "deadline": SOLVE_DEADLINE},
                expect="true", label="hang-victim r%d" % r,
            )
            battery.ask(
                {"kind": "solve", "formula": TRUE_QD, "instance": "oom-victim",
                 "deadline": SOLVE_DEADLINE},
                expect="true", label="oom-victim r%d" % r,
            )
            battery.burst(r, seed)
            # Round 0 wedges the family (injected stall outlives deadline +
            # grace); the immediate follow-up lands inside the restart
            # backoff and must be served degraded, not erroring.
            battery.ask_smv(n=r % 2, label="smv r%d" % r)
            if r == 0:
                battery.ask_smv(n=0, label="smv degraded probe")
        # Let the wedged family's restart backoff lapse, then solve on it
        # once more: this must take the restart path, not the scratch one.
        time.sleep(1.2)
        battery.ask_smv(n=1, label="smv recovery probe")
        if max(1, requests) >= FAILURE_THRESHOLD:
            # The OOM key's breaker tripped on the last round: one more
            # request must be refused as poisoned, without running anything.
            probe = battery.ask(
                {"kind": "solve", "formula": TRUE_QD, "instance": "oom-victim",
                 "deadline": SOLVE_DEADLINE},
                expect="true", label="poisoned probe",
            )
            if probe.get("status") != "poisoned":
                battery.violations.append(
                    "open breaker answered %r instead of refusing as poisoned"
                    % probe.get("status")
                )
            elif "last_failure" not in probe:
                battery.violations.append(
                    "poisoned refusal carries no last_failure"
                )
        if battery.smv_answers.get(0) not in (None, "true"):
            battery.violations.append(
                "smv counter2 n=0 answered %r, known true"
                % battery.smv_answers.get(0)
            )
        if proc.poll() is not None:
            battery.violations.append(
                "daemon exited mid-battery with code %s" % proc.returncode
            )
        ping = request(socket_path, {"kind": "ping"}, timeout=30.0)
        if not ping.get("pong"):
            battery.violations.append("daemon stopped answering ping: %r" % ping)
        stats = request(socket_path, {"kind": "stats"}, timeout=30.0)
        _reconcile(stats, battery, rounds=max(1, requests))
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            try:
                clean_exit = proc.wait(timeout=60.0) == 0
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
    if not clean_exit:
        battery.violations.append("daemon did not exit 0 on SIGTERM")
    _audit_cache(cache_path, battery)
    if keep_stats:
        with open(keep_stats, "w") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True)
    return {
        "schema": SCHEMA_VERSION,
        "generated_by": "repro serve chaos",
        "seed": seed,
        "rounds": max(1, requests),
        "seconds": round(time.monotonic() - started, 2),
        "counts": dict(battery.counts),
        "violations": list(battery.violations),
        "daemon_stats": stats,
        "clean_sigterm_exit": clean_exit,
        "passed": not battery.violations,
    }


def _reconcile(stats: Dict[str, object], battery: _Battery, rounds: int) -> None:
    """The daemon's post-chaos counters must equal the client's tally."""
    sup = stats.get("supervisor")
    if not isinstance(sup, dict):
        battery.violations.append("stats carries no supervisor snapshot")
        return
    admission = sup.get("admission", {})
    checks = [
        ("shed_total", admission.get("shed_total"), battery.counts["overloaded"]),
        ("poisoned", sup.get("poisoned"), battery.counts["poisoned"]),
        ("memouts", sup.get("memouts"), battery.counts["memout"]),
        ("degraded_solves", sup.get("degraded_solves"), battery.counts["degraded"]),
    ]
    for name, daemon_side, client_side in checks:
        if daemon_side != client_side:
            battery.violations.append(
                "stats.%s=%r does not reconcile with the client's %d"
                % (name, daemon_side, client_side)
            )
    if battery.counts["stuck"] >= 1 and sup.get("family_restarts", 0) < 1:
        battery.violations.append(
            "family wedged (%d stuck) but stats shows no restart"
            % battery.counts["stuck"]
        )
    if rounds >= FAILURE_THRESHOLD and not sup.get("breakers", {}).get("trips"):
        battery.violations.append(
            "%d rounds of worker OOM tripped no circuit breaker" % rounds
        )
    if battery.counts["overloaded"] < 1:
        battery.violations.append(
            "burst of %d > budget %d shed nothing" % (BURST, MAX_INFLIGHT)
        )
    if battery.counts["memout"] + battery.counts["poisoned"] < rounds:
        battery.violations.append(
            "oom victim answered ok somewhere: %d memout + %d poisoned < %d rounds"
            % (battery.counts["memout"], battery.counts["poisoned"], rounds)
        )


def _audit_cache(cache_path: str, battery: _Battery) -> None:
    """The persisted cache must reload and contain only ok verdicts."""
    from repro.evalx.parallel import ResultsLog, STATUS_OK

    if not os.path.exists(cache_path):
        battery.violations.append("daemon left no cache file behind")
        return
    records = ResultsLog(cache_path).load()
    if not records:
        battery.violations.append("cache reloaded empty after the battery")
    for record in records.values():
        if record.status != STATUS_OK:
            battery.violations.append(
                "non-verdict record persisted to the cache: %s status=%s"
                % (record.instance, record.status)
            )


def render_report(report: Dict[str, object]) -> str:
    counts = report["counts"]
    lines = [
        "serve chaos (schema %s, seed %s, %s rounds, %.1fs)"
        % (report["schema"], report["seed"], report["rounds"], report["seconds"]),
        "  requests %d: ok %d (cached %d, degraded %d)"
        % (counts["requests"], counts["ok"], counts["cached"], counts["degraded"]),
        "  structured failures: memout %d, poisoned %d, overloaded %d, "
        "stuck %d, deadline %d"
        % (counts["memout"], counts["poisoned"], counts["overloaded"],
           counts["stuck"], counts["deadline"]),
        "  clean SIGTERM exit: %s" % report["clean_sigterm_exit"],
    ]
    for violation in report["violations"]:
        lines.append("  VIOLATION: %s" % violation)
    lines.append("  passed: %s" % report["passed"])
    return "\n".join(lines)
