"""Wire protocol of the serve daemon: newline-delimited JSON over a socket.

Requests are single JSON objects, one per line; every request gets exactly
one JSON response line. ``kind`` selects the handler:

``ping``
    liveness probe; responds ``{"ok": true, "pong": true}``.
``stats``
    daemon counters (requests, cache hits, incremental solves, uptime).
``solve``
    a one-shot solve of an inlined formula: ``formula`` (text) +
    ``format`` ("qdimacs" or "qtree"), optional ``mode`` ("po"/"to"),
    ``strategy``, ``budget`` ({"decisions", "seconds"}), ``certify``,
    ``engine``, ``paradigm`` ("search"/"expansion"/"qdll"; see
    :mod:`repro.core.paradigm`). A capability mismatch — e.g. ``certify``
    with the proof-incapable expansion paradigm — is a structured error,
    never an attempted solve. Dispatched to a fault-isolated worker shard.
``portfolio``
    race several paradigms on one inlined formula and keep the first
    determinate verdict (see :mod:`repro.portfolio`): ``formula`` +
    ``format`` like ``solve``, optional ``entrants`` (list of lane names
    or ``name:mode:paradigm`` triples), ``jobs``, ``strategy``,
    ``engine``, ``budget``, ``run_all``. Responses add ``winner``,
    ``cancelled`` and — on cross-paradigm disagreement — the
    certificate-triage record. ``certify`` is rejected here (the default
    field includes proof-incapable lanes); disagreements are certificate-
    triaged automatically instead.
``smv-diameter``
    one bound of a model family's diameter sweep: ``family``, ``size``,
    ``n``, optional ``budget``. Solved in-process on the family's
    persistent incremental solver.
``cube-solve``
    a cube-and-conquer solve of an inlined formula across worker
    processes: ``formula`` + ``format`` like ``solve``, plus optional
    ``jobs`` (default 2, capped at :data:`MAX_CUBE_JOBS`), ``certify``,
    ``share``, ``seed``, ``paradigm`` (must be checkpoint-capable — cube
    workers snapshot their leaves). Responses add the coordinator's work
    accounting
    (``leaves``, ``resplits``, ``escalations``, ``share``) and, when
    certifying, ``certificate_status``.

Every solve-lane request (``solve``, ``cube-solve``, ``smv-diameter``) may
carry a ``deadline`` — a positive number of wall-clock seconds for *this
request*. A request that exceeds it returns a structured
``{"ok": false, "status": ...}`` response instead of leaving the client
hanging until its socket times out; requests that don't set one get
:data:`DEFAULT_DEADLINE_SECONDS` (the daemon's ``--wall-timeout`` further
caps both). Inlined formulas are size-capped (:data:`MAX_FORMULA_BYTES`,
:data:`MAX_CLAUSES`, :data:`MAX_VARS`); an oversized request is a
structured protocol error, never an attempted solve.

Responses always carry ``ok``; successful solve responses add ``outcome``,
``decisions``, ``seconds``, ``cached`` (verdict served from the fingerprint
cache) and — for smv requests — ``incremental`` (the family solver had
prior state) and ``retained`` (constraints transferred into this solve).
A response solved on a degradation path (scratch solver while a family
restarts; one-shot fallback after a crash-degraded cube run) additionally
carries ``degraded: true``.

Failure responses are always structured — ``{"ok": false, "status": ...,
"error": ...}`` — and the supervision layer adds three statuses beyond
``deadline``:

``overloaded``
    the daemon's bounded in-flight budget (total or per-kind) was full;
    the request was shed at admission, nothing ran. Carries
    ``retry_after`` (seconds, a coarse hint) and ``dimension`` (``total``
    or the kind whose budget was full).
``poisoned``
    this request's task key or SMV family has failed repeatedly and its
    circuit breaker is open; refused without running. Carries
    ``retry_after`` (seconds until the next half-open probe window) and
    ``last_failure`` (``{"status", "error"}`` of the failure that tripped
    the breaker).
``memout`` / ``stuck``
    the worker breached its ``--mem-limit`` address-space ceiling, or an
    in-process family solve outlived its deadline and was abandoned (the
    family restarts with backoff; ``retry_after`` rides along).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.engine.config import PARADIGMS
from repro.core.formula import QBF
from repro.evalx.runner import Budget

#: bumped when a response field changes meaning; echoed on every response.
PROTOCOL_VERSION = 1

KINDS = (
    "ping", "stats", "solve", "smv-diameter", "cube-solve", "portfolio",
    "shutdown",
)

#: wall-clock cap applied to solve-lane requests that set no ``deadline``;
#: guarantees every request eventually gets a structured response.
DEFAULT_DEADLINE_SECONDS = 300.0

#: hard caps on inlined formulas — the daemon is a solving service, not a
#: bulk store; anything bigger should go through the batch harness.
MAX_FORMULA_BYTES = 4_000_000
MAX_CLAUSES = 100_000
MAX_VARS = 50_000

#: cap on ``cube-solve`` worker processes per request.
MAX_CUBE_JOBS = 8


class ProtocolError(ValueError):
    """Raised on malformed requests; reported to the client, never fatal."""


def parse_budget(payload: Optional[Dict[str, object]]) -> Budget:
    if payload is None:
        return Budget()
    if not isinstance(payload, dict):
        raise ProtocolError("budget must be an object")
    decisions = payload.get("decisions", 2000)
    seconds = payload.get("seconds")
    if decisions is not None and (not isinstance(decisions, int) or decisions <= 0):
        raise ProtocolError("budget.decisions must be a positive integer")
    if seconds is not None and not isinstance(seconds, (int, float)):
        raise ProtocolError("budget.seconds must be a number")
    return Budget(decisions=decisions, seconds=seconds)


def parse_paradigm(req: Dict[str, object]) -> str:
    """The request's solving paradigm; defaults to classic search."""
    paradigm = req.get("paradigm", "search")
    if not isinstance(paradigm, str) or paradigm not in PARADIGMS:
        raise ProtocolError(
            "unknown paradigm %r (choose from %s)" % (paradigm, list(PARADIGMS))
        )
    return paradigm


def parse_deadline(req: Dict[str, object]) -> float:
    """The request's effective per-request wall-clock cap, in seconds."""
    deadline = req.get("deadline")
    if deadline is None:
        return DEFAULT_DEADLINE_SECONDS
    if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
        raise ProtocolError("deadline must be a positive number of seconds")
    if deadline <= 0:
        raise ProtocolError("deadline must be a positive number of seconds")
    return float(deadline)


def check_formula_size(text: str) -> None:
    """Reject oversized formula *text* before it is even parsed."""
    if len(text) > MAX_FORMULA_BYTES:
        raise ProtocolError(
            "formula too large: %d bytes exceeds the %d-byte cap"
            % (len(text), MAX_FORMULA_BYTES)
        )


def check_formula_shape(formula: QBF) -> None:
    """Reject parsed formulas beyond the daemon's solving caps."""
    if formula.num_clauses > MAX_CLAUSES:
        raise ProtocolError(
            "formula too large: %d clauses exceeds the %d-clause cap"
            % (formula.num_clauses, MAX_CLAUSES)
        )
    if formula.num_vars > MAX_VARS:
        raise ProtocolError(
            "formula too large: %d variables exceeds the %d-variable cap"
            % (formula.num_vars, MAX_VARS)
        )


def error_response(message: str, request_id: Optional[object] = None) -> Dict[str, object]:
    out: Dict[str, object] = {
        "ok": False,
        "error": message,
        "protocol": PROTOCOL_VERSION,
    }
    if request_id is not None:
        out["id"] = request_id
    return out


def overloaded_response(exc) -> Dict[str, object]:
    """Structured shed: built from a :class:`repro.serve.supervisor.
    OverloadedError`; the client should back off ``retry_after`` seconds."""
    return {
        "ok": False,
        "status": "overloaded",
        "error": str(exc),
        "retry_after": exc.retry_after,
        "dimension": exc.dimension,
        "protocol": PROTOCOL_VERSION,
    }


def poisoned_response(exc) -> Dict[str, object]:
    """Structured breaker refusal: built from a :class:`repro.serve.
    supervisor.PoisonedError`, with the tripping failure attached."""
    return {
        "ok": False,
        "status": "poisoned",
        "error": str(exc),
        "retry_after": exc.retry_after,
        "last_failure": exc.last_failure,
        "protocol": PROTOCOL_VERSION,
    }


def validate_smv_request(req: Dict[str, object]) -> Tuple[str, int, int]:
    family = req.get("family")
    size = req.get("size")
    n = req.get("n")
    if not isinstance(family, str):
        raise ProtocolError("smv-diameter needs a string 'family'")
    if not isinstance(size, int) or size < 1:
        raise ProtocolError("smv-diameter needs a positive integer 'size'")
    if not isinstance(n, int) or n < 0:
        raise ProtocolError("smv-diameter needs a non-negative integer 'n'")
    return family, size, n
