"""Wire protocol of the serve daemon: newline-delimited JSON over a socket.

Requests are single JSON objects, one per line; every request gets exactly
one JSON response line. ``kind`` selects the handler:

``ping``
    liveness probe; responds ``{"ok": true, "pong": true}``.
``stats``
    daemon counters (requests, cache hits, incremental solves, uptime).
``solve``
    a one-shot solve of an inlined formula: ``formula`` (text) +
    ``format`` ("qdimacs" or "qtree"), optional ``mode`` ("po"/"to"),
    ``strategy``, ``budget`` ({"decisions", "seconds"}), ``certify``,
    ``engine``. Dispatched to a fault-isolated worker shard.
``smv-diameter``
    one bound of a model family's diameter sweep: ``family``, ``size``,
    ``n``, optional ``budget``. Solved in-process on the family's
    persistent incremental solver.

Responses always carry ``ok``; successful solve responses add ``outcome``,
``decisions``, ``seconds``, ``cached`` (verdict served from the fingerprint
cache) and — for smv requests — ``incremental`` (the family solver had
prior state) and ``retained`` (constraints transferred into this solve).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.evalx.runner import Budget

#: bumped when a response field changes meaning; echoed on every response.
PROTOCOL_VERSION = 1

KINDS = ("ping", "stats", "solve", "smv-diameter", "shutdown")


class ProtocolError(ValueError):
    """Raised on malformed requests; reported to the client, never fatal."""


def parse_budget(payload: Optional[Dict[str, object]]) -> Budget:
    if payload is None:
        return Budget()
    if not isinstance(payload, dict):
        raise ProtocolError("budget must be an object")
    decisions = payload.get("decisions", 2000)
    seconds = payload.get("seconds")
    if decisions is not None and (not isinstance(decisions, int) or decisions <= 0):
        raise ProtocolError("budget.decisions must be a positive integer")
    if seconds is not None and not isinstance(seconds, (int, float)):
        raise ProtocolError("budget.seconds must be a number")
    return Budget(decisions=decisions, seconds=seconds)


def error_response(message: str, request_id: Optional[object] = None) -> Dict[str, object]:
    out: Dict[str, object] = {
        "ok": False,
        "error": message,
        "protocol": PROTOCOL_VERSION,
    }
    if request_id is not None:
        out["id"] = request_id
    return out


def validate_smv_request(req: Dict[str, object]) -> Tuple[str, int, int]:
    family = req.get("family")
    size = req.get("size")
    n = req.get("n")
    if not isinstance(family, str):
        raise ProtocolError("smv-diameter needs a string 'family'")
    if not isinstance(size, int) or size < 1:
        raise ProtocolError("smv-diameter needs a positive integer 'size'")
    if not isinstance(n, int) or n < 0:
        raise ProtocolError("smv-diameter needs a non-negative integer 'n'")
    return family, size, n
