"""The long-lived solver front-end: a local-socket daemon + sync client.

``repro serve run`` starts an asyncio daemon on a unix socket that accepts
newline-delimited JSON solve requests (see :mod:`repro.serve.protocol`).
Generic QDIMACS/tree-prefix requests dispatch to :func:`repro.evalx.
parallel.run_tasks` worker shards — inheriting its fault isolation, wall
timeouts and checkpoint-based preemption — while SMV diameter-bound
requests run in-process on per-family :class:`repro.incremental.
IncrementalSolver` instances so learned constraints carry across bounds.
``cube-solve`` requests fan one instance out across a cube-and-conquer
worker pool (:func:`repro.cube.run_cube`). Verdicts (and certificate
statuses) are cached under the existing :meth:`repro.evalx.parallel.
Task.key` fingerprint and persisted through :class:`repro.evalx.parallel.
ResultsLog`. Every solve-lane request runs under a per-request wall-clock
``deadline`` (default :data:`repro.serve.protocol.
DEFAULT_DEADLINE_SECONDS`), so an unsolvable request comes back as a
structured error instead of a hung connection; oversized formulas are
rejected at the protocol layer.

The execution lanes run under the supervision layer in :mod:`repro.serve.
supervisor`: bounded admission (structured ``overloaded`` sheds with a
``retry_after`` hint), per-key circuit breakers (``poisoned`` refusals
after repeated crash/hang/memout outcomes), per-worker memory ceilings
(``--mem-limit`` → ``memout`` records), and graceful degradation to
scratch solves while a dead family solver or cube pool recovers.
"""

from repro.serve.client import request, request_with_retry, wait_ready
from repro.serve.daemon import ServeDaemon, claim_socket_path, run_daemon
from repro.serve.supervisor import Supervisor

__all__ = [
    "ServeDaemon",
    "Supervisor",
    "claim_socket_path",
    "request",
    "request_with_retry",
    "run_daemon",
    "wait_ready",
]
