"""The long-lived solver front-end: a local-socket daemon + sync client.

``repro serve run`` starts an asyncio daemon on a unix socket that accepts
newline-delimited JSON solve requests (see :mod:`repro.serve.protocol`).
Generic QDIMACS/tree-prefix requests dispatch to :func:`repro.evalx.
parallel.run_tasks` worker shards — inheriting its fault isolation, wall
timeouts and checkpoint-based preemption — while SMV diameter-bound
requests run in-process on per-family :class:`repro.incremental.
IncrementalSolver` instances so learned constraints carry across bounds.
Verdicts (and certificate statuses) are cached under the existing
:meth:`repro.evalx.parallel.Task.key` fingerprint and persisted through
:class:`repro.evalx.parallel.ResultsLog`.
"""

from repro.serve.client import request, wait_ready
from repro.serve.daemon import ServeDaemon, run_daemon

__all__ = ["ServeDaemon", "request", "run_daemon", "wait_ready"]
