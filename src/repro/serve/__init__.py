"""The long-lived solver front-end: a local-socket daemon + sync client.

``repro serve run`` starts an asyncio daemon on a unix socket that accepts
newline-delimited JSON solve requests (see :mod:`repro.serve.protocol`).
Generic QDIMACS/tree-prefix requests dispatch to :func:`repro.evalx.
parallel.run_tasks` worker shards — inheriting its fault isolation, wall
timeouts and checkpoint-based preemption — while SMV diameter-bound
requests run in-process on per-family :class:`repro.incremental.
IncrementalSolver` instances so learned constraints carry across bounds.
``cube-solve`` requests fan one instance out across a cube-and-conquer
worker pool (:func:`repro.cube.run_cube`). Verdicts (and certificate
statuses) are cached under the existing :meth:`repro.evalx.parallel.
Task.key` fingerprint and persisted through :class:`repro.evalx.parallel.
ResultsLog`. Every solve-lane request runs under a per-request wall-clock
``deadline`` (default :data:`repro.serve.protocol.
DEFAULT_DEADLINE_SECONDS`), so an unsolvable request comes back as a
structured error instead of a hung connection; oversized formulas are
rejected at the protocol layer.
"""

from repro.serve.client import request, wait_ready
from repro.serve.daemon import ServeDaemon, run_daemon

__all__ = ["ServeDaemon", "request", "run_daemon", "wait_ready"]
