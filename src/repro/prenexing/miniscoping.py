"""Scope minimization for prenex QBFs (Section VII-D).

The inverse direction of prenexing: given a QBF in prenex form, rebuild a
quantifier tree by shrinking every quantifier's scope. Only the two rules
the paper applies are used::

    Qz (ϕ ∧ ψ)  ↦  (Qz ϕ) ∧ ψ        when z does not occur in ψ
    Q1 z1 Q2 z2 ϕ  ↦  Q2 z2 Q1 z1 ϕ   when Q1 = Q2

applied from the innermost quantifiers outward. The variable-splitting rule
(20) (``∀y (ϕ∧ψ) ↦ ∀y1 ϕ[y1/y] ∧ ∀y2 ψ[y2/y]``) is deliberately **not**
applied: the paper reports that the variable duplication degrades solver
performance.

Additionally, when a variable's minimized scope is a single clause:

* an existential variable occurring in just that clause makes it satisfiable
  by choice of the variable — the clause is deleted;
* a universal variable is deleted from the clause (Lemma 3).

:func:`structure_ratio` implements footnote 9's "PO/TO" measure used to
select QBFEVAL'06 instances: the fraction of (existential, universal) pairs
that are ordered in the prenex prefix but incomparable in the tree.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple, Union

from repro.core.formula import QBF
from repro.core.literals import EXISTS, FORALL, Quant, var_of
from repro.core.prefix import Prefix, Spec


class _Item:
    """A work item during miniscoping: a clause or a built quantifier node."""

    __slots__ = ("clause", "quant", "bound", "children", "variables")

    def __init__(
        self,
        clause: Tuple[int, ...] = None,
        quant: Quant = None,
        bound: Tuple[int, ...] = (),
        children: Tuple["_Item", ...] = (),
    ):
        self.clause = clause
        self.quant = quant
        self.bound = bound
        self.children = children
        if clause is not None:
            self.variables: FrozenSet[int] = frozenset(var_of(l) for l in clause)
        else:
            free: Set[int] = set()
            for child in children:
                free |= child.variables
            self.variables = frozenset(free - set(bound))

    @property
    def is_clause(self) -> bool:
        return self.clause is not None


def miniscope(formula: QBF) -> QBF:
    """Minimize quantifier scopes of a prenex QBF; returns a tree QBF.

    The result has the same truth value; its prefix order is a (possibly
    strict) subset of the input's total order. Unused prefix variables are
    dropped (``∃z ϕ = ∀z ϕ = ϕ`` when ``z`` does not occur in ``ϕ``).
    """
    if not formula.is_prenex:
        raise ValueError("miniscope expects a prenex QBF")
    items: List[_Item] = [_Item(clause=c.lits) for c in formula.clauses]
    blocks = formula.prefix.linear_blocks()
    # Innermost block first; variables inside a block are processed one by
    # one, which realizes the same-quantifier swap rule for free.
    for quant, variables in reversed(blocks):
        for z in sorted(variables):
            relevant = [it for it in items if z in it.variables]
            if not relevant:
                continue
            if len(relevant) == 1 and relevant[0].is_clause:
                item = relevant[0]
                items.remove(item)
                if quant is EXISTS:
                    # ∃z scoping a single clause containing z: satisfiable by
                    # choosing z — the clause disappears.
                    continue
                # ∀z over a single clause: Lemma 3 deletes z from it.
                shrunk = tuple(l for l in item.clause if var_of(l) != z)
                items.append(_Item(clause=shrunk))
                continue
            for it in relevant:
                items.remove(it)
            items.append(_Item(quant=quant, bound=(z,), children=tuple(relevant)))

    clauses: List[Tuple[int, ...]] = []
    roots: List[Spec] = []

    def emit(item: _Item) -> List[Spec]:
        if item.is_clause:
            clauses.append(item.clause)
            return []
        specs: List[Spec] = []
        for child in item.children:
            specs.extend(emit(child))
        return [(item.quant, item.bound, tuple(specs))]

    for item in items:
        roots.extend(emit(item))
    # Every surviving clause variable is bound by the emitted tree; close()
    # is a safety net that would bind strays existentially on top.
    return QBF.close(Prefix.tree(roots), clauses)


def ordered_pairs(prefix) -> Set[Tuple[int, int]]:
    """All (existential x, universal y) variable pairs ordered either way."""
    out: Set[Tuple[int, int]] = set()
    variables = prefix.variables
    existentials = [v for v in variables if prefix.quant(v) is EXISTS]
    universals = [v for v in variables if prefix.quant(v) is FORALL]
    for x in existentials:
        for y in universals:
            if prefix.prec(x, y) or prefix.prec(y, x):
                out.add((x, y))
    return out


def structure_ratio(prenex_formula: QBF, tree_formula: QBF) -> float:
    """Footnote 9's "PO/TO" percentage, as a fraction in [0, 1].

    The fraction of (existential, universal) pairs that are ordered in the
    prenex prefix but unordered in the tree prefix. Instances enter the
    paper's Figure-7 test set when this exceeds 0.2.
    """
    prenex_pairs = ordered_pairs(prenex_formula.prefix)
    if not prenex_pairs:
        return 0.0
    tree_prefix = tree_formula.prefix
    freed = 0
    for x, y in prenex_pairs:
        if x not in tree_prefix or y not in tree_prefix:
            freed += 1
        elif not tree_prefix.prec(x, y) and not tree_prefix.prec(y, x):
            freed += 1
    return freed / len(prenex_pairs)
