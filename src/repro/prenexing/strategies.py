"""The four prenex-optimal strategies of Egly et al. [12] (Section V).

A non-prenex QBF is converted to prenex form by extending its partial order
``≺`` to a total order over an alternating sequence of *slots*. Each
strategy shifts existential/universal quantifiers as high (``↑``) or as low
(``↓``) as possible while staying compatible with ``≺``:

========  ==========================  ==========================
strategy  existential placement        universal placement
========  ==========================  ==========================
∃↑∀↑      as high as possible          as high as possible
∃↑∀↓      as high as possible          as low as possible
∃↓∀↑      as low as possible           as high as possible
∃↓∀↓      as low as possible           as low as possible
========  ==========================  ==========================

Implementation: the alternating slot pattern starts with ``∃`` when the
strategy says ``∃↑`` and with ``∀`` otherwise, and has two spare slots so
every placement window is non-empty; unused slots vanish during prefix
normalization, so the result has prefix level at most one above the
original (equal to it whenever the top blocks agree with the pattern start,
which is the paper's prenex-optimality condition).

For the mixed strategies the first-named kind (the existential one) is
placed from tree bounds alone, then the other kind is placed greedily
against the already-fixed slots — every ``≺`` pair between two like
quantifiers passes through a placed quantifier of the other kind, so the
greedy pass cannot violate the order (asserted defensively anyway).

The matrix is untouched, exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.formula import QBF
from repro.core.literals import EXISTS, FORALL, Quant
from repro.core.prefix import Block, Prefix

#: canonical strategy names, paper notation -> ascii.
STRATEGIES = ("eu_au", "eu_ad", "ed_au", "ed_ad")

_PRETTY = {
    "eu_au": "∃↑∀↑",
    "eu_ad": "∃↑∀↓",
    "ed_au": "∃↓∀↑",
    "ed_ad": "∃↓∀↓",
}


def strategy_symbol(name: str) -> str:
    """Paper notation for an ascii strategy name."""
    return _PRETTY[name]


def _parse(name: str) -> Tuple[bool, bool]:
    """Return (exists_up, forall_up)."""
    if name not in STRATEGIES:
        raise ValueError("unknown prenexing strategy %r (want one of %s)" % (name, STRATEGIES))
    return name[1] == "u", name[4] == "u"


def _slots_for(quant: Quant, first: Quant, num_slots: int) -> List[int]:
    """Slot indices (1-based) carrying ``quant`` in the alternating pattern."""
    offset = 1 if quant is first else 2
    return list(range(offset, num_slots + 1, 2))


def _smallest_above(slots: Sequence[int], bound: int) -> int:
    for s in slots:
        if s > bound:
            return s
    raise AssertionError("no slot above %d in %r" % (bound, slots))


def _largest_below(slots: Sequence[int], bound: int) -> int:
    for s in reversed(slots):
        if s < bound:
            return s
    raise AssertionError("no slot below %d in %r" % (bound, slots))


def prenex(formula: QBF, strategy: str = "eu_au") -> QBF:
    """Convert ``formula`` to prenex form using the named strategy.

    Returns a QBF with the same matrix and a total-order prefix extending
    the original partial order. Prenex inputs are returned unchanged (they
    are already their own prenex form under every strategy).
    """
    exists_up, forall_up = _parse(strategy)
    prefix = formula.prefix
    if prefix.is_prenex:
        return formula
    depth = prefix.prefix_level
    num_slots = depth + 2
    first = EXISTS if exists_up else FORALL
    blocks = list(prefix.blocks)

    def up_dependencies(block: Block) -> List[Block]:
        """Ancestor blocks of strictly lower level (the ≺ predecessors)."""
        return [a for a in block.ancestors() if a.level < block.level]

    def down_dependencies(block: Block) -> List[Block]:
        """Descendant blocks of strictly higher level (the ≺ successors)."""
        return [d for d in block.subtree() if d.level > block.level]

    slot: Dict[int, int] = {}
    depth_below: Dict[int, int] = {}
    for block in blocks:
        depth_below[block.index] = max(d.level for d in block.subtree()) - block.level

    def place_up(block: Block) -> None:
        # Structural bound: a chain of level-1 alternating ancestors must fit
        # above, whether or not those ancestors are placed yet.
        bound = block.level - 1
        for dep in up_dependencies(block):
            if dep.index in slot:
                bound = max(bound, slot[dep.index])
        slot[block.index] = _smallest_above(_slots_for(block.quant, first, num_slots), bound)

    def place_down(block: Block) -> None:
        # Structural bound: the deepest alternating chain below must fit.
        bound = num_slots - depth_below[block.index] + 1
        for dep in down_dependencies(block):
            if dep.index in slot:
                bound = min(bound, slot[dep.index])
        slot[block.index] = _largest_below(_slots_for(block.quant, first, num_slots), bound)

    def run_kind(quant: Quant, up: bool) -> None:
        kind_blocks = [b for b in blocks if b.quant is quant]
        if up:
            for block in kind_blocks:  # DFS order = ancestors first
                place_up(block)
        else:
            for block in reversed(kind_blocks):  # descendants first
                place_down(block)

    # Existentials are placed first (from pure tree bounds), universals
    # second (against the fixed existential slots).
    run_kind(EXISTS, exists_up)
    run_kind(FORALL, forall_up)

    # Defensive check: the total order must extend ≺.
    for block in blocks:
        for dep in up_dependencies(block):
            if slot[dep.index] >= slot[block.index]:
                raise AssertionError(
                    "strategy %s violated the prefix order (%r vs %r)"
                    % (strategy, dep, block)
                )

    grouped: List[List[int]] = [[] for _ in range(num_slots + 1)]
    for block in blocks:
        grouped[slot[block.index]].extend(block.variables)
    linear: List[Tuple[Quant, Tuple[int, ...]]] = []
    for s in range(1, num_slots + 1):
        if grouped[s]:
            quant = first if s % 2 == 1 else first.dual
            linear.append((quant, tuple(sorted(grouped[s]))))
    return QBF(Prefix.linear(linear), [c.lits for c in formula.clauses])


def prenex_all(formula: QBF) -> Dict[str, QBF]:
    """All four prenexings of ``formula`` keyed by strategy name."""
    return {name: prenex(formula, name) for name in STRATEGIES}
