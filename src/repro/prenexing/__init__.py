"""Prenexing strategies [12] and Section VII-D scope minimization."""

from repro.prenexing.miniscoping import miniscope, ordered_pairs, structure_ratio
from repro.prenexing.strategies import (
    STRATEGIES,
    prenex,
    prenex_all,
    strategy_symbol,
)

__all__ = [
    "STRATEGIES",
    "miniscope",
    "ordered_pairs",
    "prenex",
    "prenex_all",
    "strategy_symbol",
    "structure_ratio",
]
