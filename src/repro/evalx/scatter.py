"""Scatter and scaling series for Figures 3-7.

Figures 3, 4, 5 and 7 are log-log scatter plots of QUBE(TO) cost (y) vs
QUBE(PO) cost (x), one bullet per instance (Figure 3: per parameter
setting, using the *median* over instances and the virtual-best solver
QUBE(TO)* over the four strategies). Figure 6 plots cost against the
tested path length for the counter/semaphore scaling study.

This module produces the numeric series; :mod:`repro.evalx.report` renders
them as text (including a coarse ASCII scatter so the benchmark output is
self-contained).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.evalx.runner import Measurement


@dataclass
class ScatterPoint:
    """One bullet: PO cost on x, TO cost on y (censored at the budget)."""

    label: str
    po_cost: float
    to_cost: float
    po_timeout: bool = False
    to_timeout: bool = False

    @property
    def winner(self) -> str:
        if self.to_cost > self.po_cost:
            return "PO"
        if self.po_cost > self.to_cost:
            return "TO"
        return "tie"


def pair_point(label: str, to_run: Measurement, po_run: Measurement) -> ScatterPoint:
    return ScatterPoint(
        label=label,
        po_cost=max(po_run.cost, 1),
        to_cost=max(to_run.cost, 1),
        po_timeout=po_run.timed_out,
        to_timeout=to_run.timed_out,
    )


def pair_points(
    pairs: Iterable[Tuple[str, Measurement, Measurement]],
) -> List[ScatterPoint]:
    """Bulk :func:`pair_point` over (label, TO, PO) triples.

    The batch harness and the CLI reassemble measurement pairs from JSONL
    records; this is the one-stop conversion to figure-ready points.
    """
    return [pair_point(label, to_run, po_run) for label, to_run, po_run in pairs]


def median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence (paper: median solving time)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def virtual_best(per_strategy: Dict[str, Measurement]) -> Measurement:
    """QUBE(TO)*: the best (lowest-cost, completion-preferring) TO run."""
    completed = [m for m in per_strategy.values() if not m.timed_out]
    pool = completed or list(per_strategy.values())
    best = min(pool, key=lambda m: m.cost)
    return best


def setting_medians(
    runs: Iterable[Tuple[str, Measurement, Measurement]],
) -> List[ScatterPoint]:
    """Figure-3 style points: group runs by setting label, take medians."""
    grouped: Dict[str, List[Tuple[Measurement, Measurement]]] = {}
    for label, to_run, po_run in runs:
        grouped.setdefault(label, []).append((to_run, po_run))
    points = []
    for label, pairs in sorted(grouped.items()):
        to_med = median([max(t.cost, 1) for t, _ in pairs])
        po_med = median([max(p.cost, 1) for _, p in pairs])
        points.append(
            ScatterPoint(
                label=label,
                po_cost=po_med,
                to_cost=to_med,
                to_timeout=all(t.timed_out for t, _ in pairs),
                po_timeout=all(p.timed_out for _, p in pairs),
            )
        )
    return points


@dataclass
class ScalingSeries:
    """One Figure-6 line: cost per tested length for a model size."""

    model_name: str
    #: (tested length n, cost, timed_out) triples in order.
    points: List[Tuple[int, int, bool]] = field(default_factory=list)

    def add(self, n: int, cost: int, timed_out: bool) -> None:
        self.points.append((n, cost, timed_out))

    @property
    def largest_solved(self) -> Optional[int]:
        solved = [n for n, _, t in self.points if not t]
        return max(solved) if solved else None


def summarize_scatter(points: Sequence[ScatterPoint]) -> Dict[str, float]:
    """Aggregate statistics quoted alongside the paper's figures."""
    if not points:
        return {"points": 0}
    po_wins = sum(1 for p in points if p.winner == "PO")
    to_wins = sum(1 for p in points if p.winner == "TO")
    ratios = [
        p.to_cost / p.po_cost for p in points if not (p.to_timeout or p.po_timeout)
    ]
    geo = math.exp(sum(math.log(r) for r in ratios) / len(ratios)) if ratios else float("nan")
    return {
        "points": len(points),
        "po_wins": po_wins,
        "to_wins": to_wins,
        "ties": len(points) - po_wins - to_wins,
        "geomean_to_over_po": geo,
        "to_timeouts": sum(1 for p in points if p.to_timeout),
        "po_timeouts": sum(1 for p in points if p.po_timeout),
    }
