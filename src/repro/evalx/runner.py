"""Budgeted TO-vs-PO solver runs — the reproduction's measurement layer.

The paper measures CPU seconds on 3.2 GHz Pentium-IV machines with 600 s
(DIA: 3600 s) timeouts. A pure-Python solver is orders of magnitude slower
and noisier, so the harness measures *decisions* (branching literals
assigned), the platform-independent search-effort metric, with a per-run
decision budget standing in for the timeout. Wall-clock seconds are still
recorded for reference.

``solve_to`` prenexes with a chosen strategy before solving (QUBE(TO)'s
input pipeline), ``solve_po`` solves the quantifier tree directly
(QUBE(PO)). Both run the identical engine: the paper's point is precisely
that the prefix *representation* is the only difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.formula import QBF
from repro.core.result import Outcome, SolveResult, SolverStats
from repro.core.solver import SolverConfig, solve
from repro.prenexing.strategies import prenex


@dataclass(frozen=True)
class Budget:
    """Per-run cost limits; ``decisions`` plays the role of the timeout.

    The wall-clock cap defaults to *off*: with a decision budget in force a
    cooperative ``max_seconds`` only censors runs early on slow machines and
    makes recorded decision counts machine-dependent. Pass ``seconds``
    explicitly for interactive use; batch sweeps should prefer the parallel
    harness's *hard* per-run timeout (:mod:`repro.evalx.parallel`), which
    kills the worker without biasing completed measurements.
    """

    decisions: int = 2000
    seconds: Optional[float] = None

    def to_config(self, **overrides) -> SolverConfig:
        return SolverConfig(
            max_decisions=self.decisions, max_seconds=self.seconds, **overrides
        )


@dataclass
class Measurement:
    """One solver run on one instance."""

    instance: str
    solver: str
    outcome: Outcome
    decisions: int
    seconds: float
    learned_clauses: int = 0
    learned_cubes: int = 0
    #: full work counters of the run, for JSONL persistence and post-hoc
    #: analysis; None for hand-built or legacy measurements.
    stats: Optional[SolverStats] = None

    @property
    def timed_out(self) -> bool:
        return self.outcome is Outcome.UNKNOWN

    @property
    def cost(self) -> int:
        """Decisions spent; budget value when timed out (censored cost)."""
        return self.decisions


def _measure(instance: str, solver: str, formula: QBF, config: SolverConfig) -> Measurement:
    result = solve(formula, config)
    return Measurement(
        instance=instance,
        solver=solver,
        outcome=result.outcome,
        decisions=result.stats.decisions,
        seconds=result.seconds,
        learned_clauses=result.stats.learned_clauses,
        learned_cubes=result.stats.learned_cubes,
        stats=result.stats,
    )


def solve_po(
    formula: QBF, instance: str = "", budget: Budget = Budget(), **overrides
) -> Measurement:
    """QUBE(PO): solve the (possibly non-prenex) formula directly."""
    return _measure(instance, "PO", formula, budget.to_config(**overrides))


def solve_to(
    formula: QBF,
    instance: str = "",
    strategy: str = "eu_au",
    budget: Budget = Budget(),
    **overrides,
) -> Measurement:
    """QUBE(TO): prenex with ``strategy``, then solve the total order."""
    flat = prenex(formula, strategy)
    return _measure(instance, "TO(%s)" % strategy, flat, budget.to_config(**overrides))


class SolverDisagreement(AssertionError):
    """Two completed runs of the same instance returned different outcomes.

    Subclasses :class:`AssertionError` for backward compatibility with
    callers that guarded ``check_agreement`` with ``except AssertionError``.
    Carries both :class:`Measurement` objects so a batch harness can record
    the disagreement as data (a first-class failure row) instead of letting
    one bad instance crash a whole sweep.
    """

    def __init__(self, a: Measurement, b: Measurement):
        super().__init__(
            "solver disagreement on %s: %s=%s vs %s=%s"
            % (a.instance, a.solver, a.outcome, b.solver, b.outcome)
        )
        self.a = a
        self.b = b


def check_agreement(a: Measurement, b: Measurement) -> None:
    """Raise :class:`SolverDisagreement` if two completed runs disagree."""
    if a.timed_out or b.timed_out:
        return
    if a.outcome is not b.outcome:
        raise SolverDisagreement(a, b)
