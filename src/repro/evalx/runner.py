"""Budgeted TO-vs-PO solver runs — the reproduction's measurement layer.

The paper measures CPU seconds on 3.2 GHz Pentium-IV machines with 600 s
(DIA: 3600 s) timeouts. A pure-Python solver is orders of magnitude slower
and noisier, so the harness measures *decisions* (branching literals
assigned), the platform-independent search-effort metric, with a per-run
decision budget standing in for the timeout. Wall-clock seconds are still
recorded for reference.

``solve_to`` prenexes with a chosen strategy before solving (QUBE(TO)'s
input pipeline), ``solve_po`` solves the quantifier tree directly
(QUBE(PO)). Both run the identical engine: the paper's point is precisely
that the prefix *representation* is the only difference.

With ``certify=True`` both runners attach a :class:`repro.certify.proof.
ProofLogger` and self-check the recorded clause/term resolution proof with
the independent checker — always against the *original* formula, so a TO
certificate (produced on the prenex form) is validated under the tree's
``d(z)/f(z)`` partial order. Certified runs use ``pure_literals=False``
(the monotone rule has no resolution counterpart), so their decision counts
are comparable only with other certified runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.formula import QBF
from repro.core.result import Outcome, SolveResult, SolverStats
from repro.core.solver import SolverConfig, solve
from repro.prenexing.strategies import prenex


@dataclass(frozen=True)
class Budget:
    """Per-run cost limits; ``decisions`` plays the role of the timeout.

    The wall-clock cap defaults to *off*: with a decision budget in force a
    cooperative ``max_seconds`` only censors runs early on slow machines and
    makes recorded decision counts machine-dependent. Pass ``seconds``
    explicitly for interactive use; batch sweeps should prefer the parallel
    harness's *hard* per-run timeout (:mod:`repro.evalx.parallel`), which
    kills the worker without biasing completed measurements.
    """

    decisions: int = 2000
    seconds: Optional[float] = None

    def to_config(self, **overrides) -> SolverConfig:
        return SolverConfig(
            max_decisions=self.decisions, max_seconds=self.seconds, **overrides
        )


@dataclass
class Measurement:
    """One solver run on one instance."""

    instance: str
    solver: str
    outcome: Outcome
    decisions: int
    seconds: float
    learned_clauses: int = 0
    learned_cubes: int = 0
    #: full work counters of the run, for JSONL persistence and post-hoc
    #: analysis; None for hand-built or legacy measurements.
    stats: Optional[SolverStats] = None
    #: independent-checker verdict of the run's certificate: one of the
    #: :mod:`repro.certify.checker` statuses, or None when the run was not
    #: certified.
    certificate_status: Optional[str] = None
    #: True when the run was preempted (SIGTERM/SIGINT) rather than ending
    #: on a verdict or its own budget; the outcome is UNKNOWN and a
    #: checkpoint may exist to resume from.
    interrupted: bool = False

    @property
    def certificate_ok(self) -> Optional[bool]:
        """False iff the checker rejected the certificate; None when uncertified.

        An honest partial proof (status ``incomplete``, e.g. a verdict that
        was reached by chronological exhaustion) and a budget-exhausted run
        (status ``unknown``) are not failures — only ``invalid`` is: the
        certificate claimed a derivation the checker refuted.
        """
        if self.certificate_status is None:
            return None
        from repro.certify.checker import INVALID

        return self.certificate_status != INVALID

    @property
    def timed_out(self) -> bool:
        return self.outcome is Outcome.UNKNOWN

    @property
    def cost(self) -> int:
        """Decisions spent; budget value when timed out (censored cost)."""
        return self.decisions


def _measure(
    instance: str,
    solver: str,
    formula: QBF,
    config: SolverConfig,
    check_formula: Optional[QBF] = None,
    interrupt: Optional[object] = None,
    resume_from: Optional[object] = None,
    checkpoint_to: Optional[str] = None,
) -> Measurement:
    """Run once; with ``check_formula`` set, certify and self-check the run.

    ``check_formula`` is the formula the certificate is validated against —
    the *original* (possibly non-prenex) instance, which may differ from the
    ``formula`` actually solved (the TO pipeline solves the prenex form).

    ``interrupt``/``resume_from``/``checkpoint_to`` are the preemption hooks
    of :meth:`SearchEngine.solve`. A certified resume rebuilds the proof
    sink from the steps carried in the checkpoint, so the resumed run's
    certificate is one continuous derivation. A checkpoint that fails its
    digest or belongs to another formula/config is discarded and the run
    starts fresh — corrupt snapshots cost the saved work, never a sweep.
    """

    def run(resume: Optional[object]) -> Measurement:
        certificate_status: Optional[str] = None
        if check_formula is not None:
            from repro.certify import (
                MemorySink,
                ProofLogger,
                certifying_config,
                check_certificate,
            )

            sink = MemorySink()
            logger = None
            if resume is not None and getattr(resume, "proof", None) is not None:
                steps = resume.extra.get("proof_steps")
                if steps is not None:
                    sink.steps = [dict(step) for step in steps]
                    logger = ProofLogger.resumed(sink, resume.proof)
            if logger is None:
                logger = ProofLogger(sink)
            result = solve(
                formula,
                certifying_config(config),
                proof=logger,
                interrupt=interrupt,
                resume_from=resume,
                checkpoint_to=checkpoint_to,
            )
            certificate_status = check_certificate(check_formula, sink).status
        else:
            result = solve(
                formula,
                config,
                interrupt=interrupt,
                resume_from=resume,
                checkpoint_to=checkpoint_to,
            )
        return Measurement(
            instance=instance,
            solver=solver,
            outcome=result.outcome,
            decisions=result.stats.decisions,
            seconds=result.seconds,
            learned_clauses=result.stats.learned_clauses,
            learned_cubes=result.stats.learned_cubes,
            stats=result.stats,
            certificate_status=certificate_status,
            interrupted=result.interrupted,
        )

    if resume_from is not None:
        from repro.robustness.checkpoint import CheckpointError

        try:
            return run(resume_from)
        except CheckpointError:
            pass  # stale/corrupt/foreign checkpoint: fall back to fresh
    return run(None)


def solve_po(
    formula: QBF,
    instance: str = "",
    budget: Budget = Budget(),
    certify: bool = False,
    interrupt: Optional[object] = None,
    resume_from: Optional[object] = None,
    checkpoint_to: Optional[str] = None,
    **overrides,
) -> Measurement:
    """QUBE(PO): solve the (possibly non-prenex) formula directly."""
    return _measure(
        instance,
        "PO",
        formula,
        budget.to_config(**overrides),
        check_formula=formula if certify else None,
        interrupt=interrupt,
        resume_from=resume_from,
        checkpoint_to=checkpoint_to,
    )


def solve_to(
    formula: QBF,
    instance: str = "",
    strategy: str = "eu_au",
    budget: Budget = Budget(),
    certify: bool = False,
    interrupt: Optional[object] = None,
    resume_from: Optional[object] = None,
    checkpoint_to: Optional[str] = None,
    **overrides,
) -> Measurement:
    """QUBE(TO): prenex with ``strategy``, then solve the total order.

    A certified TO run is checked against the *original* formula: every
    reduction legal under the prenex total order is legal under the tree's
    partial order (prenexing only extends ``≺``), so the same certificate
    validates under the stricter tree conditions.
    """
    flat = prenex(formula, strategy)
    return _measure(
        instance,
        "TO(%s)" % strategy,
        flat,
        budget.to_config(**overrides),
        check_formula=formula if certify else None,
        interrupt=interrupt,
        resume_from=resume_from,
        checkpoint_to=checkpoint_to,
    )


class SolverDisagreement(AssertionError):
    """Two completed runs of the same instance returned different outcomes.

    Subclasses :class:`AssertionError` for backward compatibility with
    callers that guarded ``check_agreement`` with ``except AssertionError``.
    Carries both :class:`Measurement` objects so a batch harness can record
    the disagreement as data (a first-class failure row) instead of letting
    one bad instance crash a whole sweep.

    When the runs were certified, ``winner`` is the measurement whose
    outcome is backed by an independently verified proof (None when neither
    or both certificates verified — the latter would mean the checker is
    broken, which is worth the louder triage).
    """

    def __init__(self, a: Measurement, b: Measurement, winner: Optional[Measurement] = None):
        detail = ""
        if winner is not None:
            detail = " (certificate sides with %s=%s)" % (winner.solver, winner.outcome)
        super().__init__(
            "solver disagreement on %s: %s=%s vs %s=%s%s"
            % (a.instance, a.solver, a.outcome, b.solver, b.outcome, detail)
        )
        self.a = a
        self.b = b
        self.winner = winner


def _certified_winner(a: Measurement, b: Measurement) -> Optional[Measurement]:
    """The side whose outcome a verified certificate backs, if exactly one."""
    from repro.certify.checker import VERIFIED

    a_ok = a.certificate_status == VERIFIED
    b_ok = b.certificate_status == VERIFIED
    if a_ok and not b_ok:
        return a
    if b_ok and not a_ok:
        return b
    return None


def check_agreement(a: Measurement, b: Measurement) -> None:
    """Raise :class:`SolverDisagreement` if two completed runs disagree.

    When the measurements carry certificate verdicts, the exception names
    the run whose outcome is backed by the verified proof — the harness
    records it so a disagreement row triages itself.
    """
    if a.timed_out or b.timed_out:
        return
    if a.outcome is not b.outcome:
        raise SolverDisagreement(a, b, winner=_certified_winner(a, b))
