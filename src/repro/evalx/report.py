"""Plain-text rendering of the reproduction's tables and figures.

Every benchmark prints through this module so that the harness output is
self-contained: Table-I rows as aligned columns, scatter plots as coarse
log-log ASCII grids (bullets above the diagonal = QUBE(PO) wins, as in
Figures 3-5/7), and scaling studies as per-size series (Figure 6).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.evalx.scatter import ScalingSeries, ScatterPoint, summarize_scatter


def render_scatter(
    points: Sequence[ScatterPoint],
    width: int = 44,
    height: int = 18,
    title: str = "",
) -> str:
    """Log-log ASCII scatter: x = QUBE(PO) cost, y = QUBE(TO) cost.

    '*' marks bullets, '/' the diagonal; bullets above the diagonal are
    instances where QUBE(PO) beats QUBE(TO).
    """
    if not points:
        return "(no points)"
    lo = min(min(p.po_cost, p.to_cost) for p in points)
    hi = max(max(p.po_cost, p.to_cost) for p in points)
    lo = max(lo, 1.0)
    hi = max(hi, lo * 1.01)

    def scale(v: float, extent: int) -> int:
        frac = (math.log(max(v, 1.0)) - math.log(lo)) / (math.log(hi) - math.log(lo))
        return min(extent - 1, max(0, int(round(frac * (extent - 1)))))

    grid = [[" "] * width for _ in range(height)]
    for i in range(min(width, height)):
        grid[height - 1 - scale(lo * (hi / lo) ** (i / (width - 1)), height)][i] = "/"
    for p in points:
        x = scale(p.po_cost, width)
        y = scale(p.to_cost, height)
        grid[height - 1 - y][x] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append("TO cost ^  (log scale, range %.0f..%.0f decisions)" % (lo, hi))
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width + "> PO cost")
    stats = summarize_scatter(points)
    lines.append(
        "points=%d  PO-wins=%d  TO-wins=%d  ties=%d  TO/PO geomean=%.2fx  "
        "TO-timeouts=%d  PO-timeouts=%d"
        % (
            stats["points"],
            stats["po_wins"],
            stats["to_wins"],
            stats["ties"],
            stats["geomean_to_over_po"],
            stats["to_timeouts"],
            stats["po_timeouts"],
        )
    )
    return "\n".join(lines)


def render_scaling(series_list: Sequence[ScalingSeries], title: str = "") -> str:
    """Figure-6 style text rendering: one line per model size."""
    lines = []
    if title:
        lines.append(title)
    for series in series_list:
        cells = []
        for n, cost, timed_out in series.points:
            cells.append("n=%d:%s" % (n, "TIMEOUT" if timed_out else str(cost)))
        largest = series.largest_solved
        suffix = " (largest solved length: %s)" % (largest if largest is not None else "none")
        lines.append("%-14s %s%s" % (series.model_name, "  ".join(cells), suffix))
    return "\n".join(lines)


def render_kv(title: str, mapping: Dict[str, object]) -> str:
    lines = [title]
    for key in sorted(mapping):
        lines.append("  %-28s %s" % (key, mapping[key]))
    return "\n".join(lines)
