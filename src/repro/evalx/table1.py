"""Table I machinery: the paper's pairwise TO-vs-PO comparison counters.

Table I reports, per suite and prenexing strategy, how often QUBE(TO) is
slower (">") or faster ("<") than QUBE(PO) by more than 1 s, how often they
tie ("=±1s", including double timeouts in the paper's layout the ties and
double-timeouts are separate columns), the one-sided timeout counts, and
the ≥10x columns. The reproduction maps CPU seconds to decisions:

* "more than 1 second" → a difference of more than ``tie_margin`` decisions;
* "timeout"            → budget exhaustion (``Outcome.UNKNOWN``);
* "one order of magnitude" → a ≥10x decision ratio between completed runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from repro.evalx.runner import Measurement, SolverDisagreement, check_agreement


@dataclass
class Table1Row:
    """One row of Table I (a suite/strategy combination)."""

    suite: str
    strategy: str
    #: QUBE(TO) slower than QUBE(PO) by more than the tie margin.
    to_slower: int = 0
    #: QUBE(TO) faster by more than the tie margin.
    to_faster: int = 0
    #: within the margin, or both timed out? No: double timeouts are separate.
    ties: int = 0
    #: TO timed out, PO did not.
    to_timeout_only: int = 0
    #: PO timed out, TO did not.
    po_timeout_only: int = 0
    #: both exceeded the budget.
    both_timeout: int = 0
    #: both completed and TO spent ≥ 10x the PO decisions.
    to_slower_10x: int = 0
    #: both completed and PO spent ≥ 10x the TO decisions.
    po_slower_10x: int = 0
    #: completed runs whose outcomes disagreed — recorded as data (the
    #: batch harness's policy) rather than aborting the aggregation; such
    #: pairs are excluded from every cost column.
    disagreements: int = 0
    total: int = 0

    @property
    def columns(self) -> Tuple[int, ...]:
        """The eight Table I columns in paper order: > < =±1s ⊲ ⊳ ⊲⊳ >10x 10x<."""
        return (
            self.to_slower,
            self.to_faster,
            self.ties,
            self.to_timeout_only,
            self.po_timeout_only,
            self.both_timeout,
            self.to_slower_10x,
            self.po_slower_10x,
        )


def classify_pair(
    row: Table1Row,
    to_run: Measurement,
    po_run: Measurement,
    tie_margin: int,
) -> None:
    """Fold one instance's (TO, PO) measurement pair into a row.

    A pair whose completed outcomes disagree is counted in
    ``row.disagreements`` and otherwise skipped: its costs are meaningless
    (at least one side is wrong), but one bad instance must not abort a
    whole sweep's aggregation.
    """
    try:
        check_agreement(to_run, po_run)
    except SolverDisagreement:
        row.disagreements += 1
        row.total += 1
        return
    row.total += 1
    if to_run.timed_out and po_run.timed_out:
        row.both_timeout += 1
        row.ties += 1  # the paper counts double timeouts inside "=±1s"
        return
    if to_run.timed_out:
        row.to_timeout_only += 1
        row.to_slower += 1
        # A timeout against a completed run is at least 10x if the budget
        # dwarfs the winner's cost (the paper's note that the >10x column
        # "includes also the instances solved by only one system" applies
        # to its FPV discussion; we follow the same convention).
        if to_run.cost >= 10 * max(po_run.cost, 1):
            row.to_slower_10x += 1
        return
    if po_run.timed_out:
        row.po_timeout_only += 1
        row.to_faster += 1
        if po_run.cost >= 10 * max(to_run.cost, 1):
            row.po_slower_10x += 1
        return
    delta = to_run.cost - po_run.cost
    if delta > tie_margin:
        row.to_slower += 1
    elif -delta > tie_margin:
        row.to_faster += 1
    else:
        row.ties += 1
    if to_run.cost >= 10 * max(po_run.cost, 1):
        row.to_slower_10x += 1
    elif po_run.cost >= 10 * max(to_run.cost, 1):
        row.po_slower_10x += 1


def build_row(
    suite: str,
    strategy: str,
    pairs: Iterable[Tuple[Measurement, Measurement]],
    tie_margin: int = 50,
) -> Table1Row:
    """Aggregate (TO, PO) measurement pairs into one Table I row."""
    row = Table1Row(suite=suite, strategy=strategy)
    for to_run, po_run in pairs:
        classify_pair(row, to_run, po_run, tie_margin)
    return row


HEADER = ("suite", "strategy", ">", "<", "=", "TO-to", "TO-po", "TO-both", ">10x", "10x<")


def render_table(rows: Sequence[Table1Row]) -> str:
    """ASCII rendering in the paper's column order."""
    grid: List[Sequence[str]] = [HEADER]
    for row in rows:
        grid.append(
            (row.suite, row.strategy) + tuple(str(c) for c in row.columns)
        )
    widths = [max(len(line[i]) for line in grid) for i in range(len(HEADER))]
    out = []
    for line in grid:
        out.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(out)
