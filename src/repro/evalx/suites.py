"""The reproduction's benchmark suites, scaled for a pure-Python solver.

One function per Section VII suite. Each returns plain data (labels +
measurement pairs) that the Table-I builder and the figure renderers
consume; the benchmark files under ``benchmarks/`` drive these and write
the rendered outputs.

Scaling note (documented per suite): the paper runs hundreds to thousands
of instances with 600-3600 s timeouts on 3.2 GHz hardware and a C++ solver;
the defaults here keep the same *grid shape* with fewer instances per
setting and decision budgets standing in for timeouts, so a full run of
every suite finishes in minutes on a laptop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.formula import QBF
from repro.evalx.parallel import (
    ResultsLog,
    Task,
    measurements_by_key,
    note_disagreement,
    run_tasks,
)
from repro.robustness.faults import FaultPlan
from repro.evalx.runner import (
    Budget,
    Measurement,
    SolverDisagreement,
    check_agreement,
    solve_po,
)
from repro.evalx.scatter import ScalingSeries, virtual_best
from repro.generators.fixed import FixedParams, generate_fixed
from repro.generators.fpv import FpvParams, generate_fpv
from repro.generators.ncf import NcfParams, generate_ncf
from repro.generators.random_qbf import random_clustered_qbf
from repro.prenexing.miniscoping import miniscope, structure_ratio
from repro.prenexing.strategies import STRATEGIES
from repro.smv.diameter import diameter_qbf
from repro.smv.models import CounterModel, DmeModel, RingModel, SemaphoreModel

import random


@dataclass
class PairResult:
    """One instance's measurements: QUBE(TO) per strategy + QUBE(PO)."""

    instance: str
    setting: str
    to_runs: Dict[str, Measurement]
    po_run: Measurement

    def to_run(self, strategy: str) -> Measurement:
        return self.to_runs[strategy]

    @property
    def to_best(self) -> Measurement:
        """The paper's QUBE(TO)*: virtual best over the strategies run."""
        return virtual_best(self.to_runs)


# -- batch plumbing -----------------------------------------------------------
#
# Every suite builds a flat task list and hands it to the fault-isolated
# batch runner (repro.evalx.parallel). ``jobs=1`` runs serially in-process,
# which is the exact legacy execution model; ``jobs>1`` fans out over worker
# processes with hard per-run timeouts and crash isolation. ``results_path``
# makes the sweep resumable (already-recorded runs are skipped).


def _open_log(
    results_path: Optional[str],
    durable: bool = True,
    faults: Optional["FaultPlan"] = None,
) -> Optional[ResultsLog]:
    if not results_path:
        return None
    return ResultsLog(results_path, durable=durable, faults=faults)


def _engine_overrides(engine: str) -> Tuple[Tuple[str, object], ...]:
    """Task overrides for a propagation-backend choice.

    The default backend maps to *no* override so the task fingerprints —
    and therefore the resume keys of every pre-existing results file —
    stay byte-identical; a non-default backend lands in the fingerprint
    and keys its own rows.
    """
    return (("engine", engine),) if engine != "counters" else ()


def paradigm_overrides(paradigm: str) -> Tuple[Tuple[str, object], ...]:
    """Task overrides for a solver-paradigm choice, non-default-only.

    Same contract as :func:`_engine_overrides`: the default ``"search"``
    paradigm contributes *nothing* to the fingerprint, so every resume key
    recorded before paradigms existed still matches; ``"expansion"`` and
    ``"qdll"`` runs key their own rows.
    """
    return (("paradigm", paradigm),) if paradigm != "search" else ()


def _config_overrides(engine: str, paradigm: str) -> Tuple[Tuple[str, object], ...]:
    """Combined non-default-only overrides for a suite's config choices."""
    return _engine_overrides(engine) + paradigm_overrides(paradigm)


def _checked(to_run: Measurement, po_run: Measurement, log: Optional[ResultsLog]) -> None:
    """TO/PO agreement: raise when unlogged, record as data when logged."""
    try:
        check_agreement(to_run, po_run)
    except SolverDisagreement as exc:
        note_disagreement(exc, log)


def _run_batch(
    tasks: Sequence[Task],
    jobs: int,
    log: Optional[ResultsLog],
    wall_timeout: Optional[float],
    checkpoint_dir: Optional[str] = None,
    faults: Optional["FaultPlan"] = None,
    mem_limit_mb: Optional[float] = None,
) -> Dict[Tuple[str, str], Measurement]:
    records = run_tasks(
        tasks,
        jobs=jobs,
        results=log,
        wall_timeout=wall_timeout,
        checkpoint_dir=checkpoint_dir,
        faults=faults,
        mem_limit_mb=mem_limit_mb,
    )
    return measurements_by_key(records)


# -- NCF (Section VII-A / Table I rows 1-4 / Figure 3) -------------------------


def ncf_settings(instances: int = 4) -> List[Tuple[str, List[NcfParams]]]:
    """The scaled ⟨DEP, VAR, CLS, LPC⟩ grid.

    Paper: DEP=6, VAR ∈ {4,8,16}, CLS/VAR ∈ {1..5}, LPC ∈ {3..6}, 100
    instances per setting. Scaled: DEP ∈ {5,6}, VAR ∈ {3,4,5}, ratio ∈
    {3,4}, LPC ∈ {4,5} pruned to the settings that are non-trivial for the
    Python engine, ``instances`` seeds each.
    """
    grid = [
        (6, 3, 3, 5),
        (6, 4, 3, 5),
        (6, 4, 4, 5),
        (6, 5, 3, 5),
        (5, 4, 3, 5),
        (5, 5, 3, 5),
    ]
    out = []
    seed = 0
    for dep, var, ratio, lpc in grid:
        label = "d%d-v%d-r%d-l%d" % (dep, var, ratio, lpc)
        params = []
        for _ in range(instances):
            params.append(NcfParams(dep=dep, var=var, cls=ratio * var, lpc=lpc, seed=seed))
            seed += 1
        out.append((label, params))
    return out


def run_ncf(
    budget: Budget = Budget(decisions=3000),
    instances: int = 4,
    strategies: Sequence[str] = STRATEGIES,
    jobs: int = 1,
    results_path: Optional[str] = None,
    wall_timeout: Optional[float] = None,
    certify: bool = False,
    engine: str = "counters",
    paradigm: str = "search",
    checkpoint_dir: Optional[str] = None,
    faults: Optional["FaultPlan"] = None,
    durable: bool = True,
    mem_limit_mb: Optional[float] = None,
) -> List[PairResult]:
    """Run QUBE(TO) under each strategy and QUBE(PO) on the NCF sweep."""
    overrides = _config_overrides(engine, paradigm)
    tasks: List[Task] = []
    meta: List[Tuple[str, str]] = []
    for setting, params_list in ncf_settings(instances):
        for params in params_list:
            phi = generate_ncf(params)
            for s in strategies:
                tasks.append(
                    Task(params.label, "TO(%s)" % s, phi, "to", s, budget,
                         overrides=overrides, certify=certify)
                )
            tasks.append(Task(params.label, "PO", phi, "po", budget=budget,
                              overrides=overrides, certify=certify))
            meta.append((params.label, setting))
    with_log = _open_log(results_path, durable=durable, faults=faults)
    by_key = _run_batch(
        tasks, jobs, with_log, wall_timeout, checkpoint_dir, faults,
        mem_limit_mb,
    )
    results: List[PairResult] = []
    for label, setting in meta:
        to_runs = {s: by_key[(label, "TO(%s)" % s)] for s in strategies}
        po_run = by_key[(label, "PO")]
        for m in to_runs.values():
            _checked(m, po_run, with_log)
        results.append(PairResult(label, setting, to_runs, po_run))
    if with_log is not None:
        with_log.close()
    return results


# -- FPV (Section VII-B / Table I row 5 / Figure 4) -----------------------------


def fpv_instances(count: int = 24, seed_base: int = 0) -> List[FpvParams]:
    """Paper: 905 web-service QBFs; scaled: ``count`` synthetic encodings."""
    rng = random.Random(seed_base)
    out = []
    for i in range(count):
        out.append(
            FpvParams(
                config_bits=3,
                requirements=rng.randint(2, 3),
                levels=3,
                env_bits=2,
                run_bits=4,
                ratio=rng.choice((2.5, 3.0)),
                clause_len=4,
                seed=seed_base + i,
            )
        )
    return out


def run_fpv(
    budget: Budget = Budget(decisions=4000),
    count: int = 24,
    strategy: str = "eu_au",
    jobs: int = 1,
    results_path: Optional[str] = None,
    wall_timeout: Optional[float] = None,
    certify: bool = False,
    engine: str = "counters",
    paradigm: str = "search",
    checkpoint_dir: Optional[str] = None,
    faults: Optional["FaultPlan"] = None,
    durable: bool = True,
    mem_limit_mb: Optional[float] = None,
) -> List[PairResult]:
    """Run the FPV suite with the ∃↑∀↑ strategy (the paper's choice)."""
    overrides = _config_overrides(engine, paradigm)
    tasks: List[Task] = []
    labels: List[str] = []
    for params in fpv_instances(count):
        phi = generate_fpv(params)
        tasks.append(Task(params.label, "TO(%s)" % strategy, phi, "to", strategy,
                          budget, overrides=overrides, certify=certify))
        tasks.append(Task(params.label, "PO", phi, "po", budget=budget,
                          overrides=overrides, certify=certify))
        labels.append(params.label)
    with_log = _open_log(results_path, durable=durable, faults=faults)
    by_key = _run_batch(
        tasks, jobs, with_log, wall_timeout, checkpoint_dir, faults,
        mem_limit_mb,
    )
    results: List[PairResult] = []
    for label in labels:
        to_run = by_key[(label, "TO(%s)" % strategy)]
        po_run = by_key[(label, "PO")]
        _checked(to_run, po_run, with_log)
        results.append(PairResult(label, "fpv", {strategy: to_run}, po_run))
    if with_log is not None:
        with_log.close()
    return results


# -- DIA (Section VII-C / Table I row 6 / Figures 5-6) ---------------------------


def dia_models() -> List[object]:
    """Scaled model pool (paper: counter 4-8, ring, dme, semaphore models)."""
    return [
        CounterModel(2),
        CounterModel(3),
        RingModel(2),
        RingModel(3),
        DmeModel(3),
        DmeModel(4),
        DmeModel(5),
        SemaphoreModel(1),
        SemaphoreModel(2),
        SemaphoreModel(3),
    ]


def dia_instances(max_n_cap: int = 8) -> List[Tuple[str, QBF, QBF]]:
    """(label, tree φ_n, prenex φ_n) triples over the model pool.

    Instead of the full diameter loop, Table I treats every φ_n (for n up to
    the diameter + 1, capped) as one instance — this matches the paper's "91
    QBFs that compute the state space diameter".
    """
    from repro.smv.reachability import eccentricity

    out: List[Tuple[str, QBF, QBF]] = []
    for model in dia_models():
        d = eccentricity(model)
        for n in range(min(d + 1, max_n_cap) + 1):
            label = "%s-n%d" % (model.name, n)
            out.append(
                (label, diameter_qbf(model, n, "tree"), diameter_qbf(model, n, "prenex"))
            )
    return out


def run_dia(
    budget: Budget = Budget(decisions=6000),
    max_n_cap: int = 8,
    jobs: int = 1,
    results_path: Optional[str] = None,
    wall_timeout: Optional[float] = None,
    certify: bool = False,
    engine: str = "counters",
    paradigm: str = "search",
    checkpoint_dir: Optional[str] = None,
    faults: Optional["FaultPlan"] = None,
    durable: bool = True,
    mem_limit_mb: Optional[float] = None,
) -> List[PairResult]:
    """Run TO/PO on every DIA instance (prenex form == equation (16))."""
    overrides = _config_overrides(engine, paradigm)
    tasks: List[Task] = []
    labels: List[str] = []
    for label, tree, flat in dia_instances(max_n_cap):
        # The prenex form is built directly by the encoder (equation (16)),
        # so measure it as-is ("po" mode) rather than re-prenexing the tree;
        # the task's solver label records it as the TO side.
        tasks.append(Task(label, "PO", tree, "po", budget=budget,
                          overrides=overrides, certify=certify))
        tasks.append(Task(label, "TO(eq16)", flat, "po", budget=budget,
                          overrides=overrides, certify=certify))
        labels.append(label)
    with_log = _open_log(results_path, durable=durable, faults=faults)
    by_key = _run_batch(
        tasks, jobs, with_log, wall_timeout, checkpoint_dir, faults,
        mem_limit_mb,
    )
    results: List[PairResult] = []
    for label in labels:
        po_run = by_key[(label, "PO")]
        to_run = by_key[(label, "TO(eq16)")]
        _checked(to_run, po_run, with_log)
        results.append(PairResult(label, label.rsplit("-", 1)[0], {"eu_au": to_run}, po_run))
    if with_log is not None:
        with_log.close()
    return results


def run_dia_scaling(
    family: str = "counter",
    sizes: Sequence[int] = (2, 3),
    budget: Budget = Budget(decisions=8000),
    max_n_cap: int = 10,
    engine: str = "counters",
    **overrides,
) -> Tuple[List[ScalingSeries], List[ScalingSeries]]:
    """Figure 6: cost vs tested length per model size, PO and TO series.

    Stays serial on purpose: each length's run decides whether the series
    stops (double timeout), so the work items are not independent.
    """
    from repro.smv.models import model_by_name
    from repro.smv.reachability import eccentricity

    po_series: List[ScalingSeries] = []
    to_series: List[ScalingSeries] = []
    for size in sizes:
        model = model_by_name(family, size)
        d = eccentricity(model)
        po_s = ScalingSeries("%s (PO)" % model.name)
        to_s = ScalingSeries("%s (TO)" % model.name)
        for n in range(min(d, max_n_cap) + 1):
            po = solve_po(
                diameter_qbf(model, n, "tree"),
                budget=budget,
                engine=engine,
                **overrides,
            )
            to = solve_po(
                diameter_qbf(model, n, "prenex"),
                budget=budget,
                engine=engine,
                **overrides,
            )
            po_s.add(n, po.cost, po.timed_out)
            to_s.add(n, to.cost, to.timed_out)
            if po.timed_out and to.timed_out:
                break
        po_series.append(po_s)
        to_series.append(to_s)
    return po_series, to_series


# -- QBFEVAL'06-style suites (Section VII-D / Table I rows 7-8 / Figure 7) -------


def eval06_instances(
    kind: str, count: int = 30, seed_base: int = 0
) -> List[Tuple[str, QBF]]:
    """Prenex instances of the probabilistic or fixed class."""
    out: List[Tuple[str, QBF]] = []
    if kind == "prob":
        # "Probabilistic" per the paper's definition: a class parameter is a
        # random variable. Instances are NCF games with randomly drawn
        # ⟨VAR, CLS⟩ plus loosely-coupled random cluster games; a sizable
        # share shows no recoverable structure and is filtered out.
        rng = random.Random(seed_base)
        from repro.prenexing.strategies import prenex as _prenex

        for i in range(count):
            if i % 2 == 0:
                var = rng.randint(4, 5)
                params = NcfParams(
                    dep=5, var=var, cls=3 * var, lpc=5, seed=seed_base + 1000 + i
                )
                out.append(("prob-ncf-%02d" % i, _prenex(generate_ncf(params), "eu_au")))
            else:
                coupling = rng.choice((0.0, 0.2, 0.6, 0.9))
                phi = random_clustered_qbf(
                    rng,
                    clusters=rng.randint(2, 3),
                    num_blocks=3,
                    block_size=rng.randint(1, 2),
                    clauses_per_cluster=rng.randint(6, 12),
                    clause_len=3,
                    coupling=coupling,
                )
                out.append(("prob-rnd-%02d-c%.1f" % (i, coupling), phi))
    elif kind == "fixed":
        # "Fixed": fully structured families — prenexings of fixed-parameter
        # NCF games plus interleaved/chained block games.
        from repro.prenexing.strategies import prenex as _prenex

        for i in range(count):
            if i % 2 == 0:
                params = NcfParams(dep=6, var=4, cls=12, lpc=5, seed=seed_base + 2000 + i)
                out.append(("fixed-ncf-%02d" % i, _prenex(generate_ncf(params), "eu_au")))
            else:
                fp = _fixed_pool(1, seed_base + 3000 + i)[0]
                out.append((fp.label, generate_fixed(fp)))
    else:
        raise ValueError("kind must be 'prob' or 'fixed'")
    return out


def _fixed_pool(count: int, seed_base: int) -> List[FixedParams]:
    rng = random.Random(seed_base)
    out = []
    for i in range(count):
        family = "interleaved" if i % 3 != 2 else "chained"
        out.append(
            FixedParams(
                family=family,
                groups=rng.randint(2, 3),
                blocks_per_group=3,
                block_size=rng.randint(1, 2),
                clauses_per_group=rng.randint(6, 12),
                clause_len=3,
                seed=seed_base + i,
            )
        )
    return out


def run_eval06(
    kind: str,
    budget: Budget = Budget(decisions=4000),
    count: int = 30,
    min_ratio: float = 0.2,
    jobs: int = 1,
    results_path: Optional[str] = None,
    wall_timeout: Optional[float] = None,
    certify: bool = False,
    engine: str = "counters",
    paradigm: str = "search",
    checkpoint_dir: Optional[str] = None,
    faults: Optional["FaultPlan"] = None,
    durable: bool = True,
    mem_limit_mb: Optional[float] = None,
) -> Tuple[List[PairResult], int]:
    """The Figure-7 pipeline: miniscope, filter by PO/TO ratio, compare.

    Returns the pair results for instances that pass the footnote-9 filter
    plus the number of instances filtered out (the paper reports that the
    vast majority of evaluation instances show no tangible structure). The
    (cheap) miniscoping filter runs in-process; only the solver runs are
    fanned out.
    """
    overrides = _config_overrides(engine, paradigm)
    tasks: List[Task] = []
    labels: List[str] = []
    filtered_out = 0
    for label, phi in eval06_instances(kind, count):
        tree = miniscope(phi)
        if structure_ratio(phi, tree) <= min_ratio:
            filtered_out += 1
            continue
        tasks.append(Task(label, "TO(eu_au)", phi, "to", "eu_au", budget,
                          overrides=overrides, certify=certify))
        tasks.append(Task(label, "PO", tree, "po", budget=budget,
                          overrides=overrides, certify=certify))
        labels.append(label)
    with_log = _open_log(results_path, durable=durable, faults=faults)
    by_key = _run_batch(
        tasks, jobs, with_log, wall_timeout, checkpoint_dir, faults,
        mem_limit_mb,
    )
    results: List[PairResult] = []
    for label in labels:
        to_run = by_key[(label, "TO(eu_au)")]
        po_run = by_key[(label, "PO")]
        _checked(to_run, po_run, with_log)
        results.append(PairResult(label, kind, {"eu_au": to_run}, po_run))
    if with_log is not None:
        with_log.close()
    return results, filtered_out
