"""Fault-isolated multiprocess batch runner for TO-vs-PO sweeps.

The paper's Section VII experiments are embarrassingly parallel: hundreds of
independent QUBE(TO)/QUBE(PO) runs per suite. This module fans those runs
out over a ``multiprocessing`` worker pool with the three properties a
trustworthy batch harness needs:

* **hard wall-clock timeouts** — a run that exceeds ``wall_timeout`` has
  its worker killed, not merely asked to stop via the solver's cooperative
  ``max_seconds`` check (which a pathological propagation loop may never
  reach). Killing escalates: SIGTERM first (the worker's handler flips the
  solver's interrupt flag, letting it flush a checkpoint and report a
  partial measurement), SIGKILL after a grace period;
* **crash isolation** — a worker that dies (OOM kill, ``RecursionError``, a
  solver bug) produces a structured failure :class:`Record` for that one
  instance, with a bounded number of retries, instead of aborting the sweep;
* **resumable JSONL persistence** — every completed run is appended to a
  results file as one JSON line carrying the :class:`Measurement`, the full
  :class:`SolverStats` and a config fingerprint; re-running the same sweep
  against the same file skips every (instance, solver, config) key already
  recorded, so an interrupted sweep continues where it left off.

``jobs=1`` is the serial degenerate case: tasks run in-process, in order,
with no worker processes involved, so existing single-process results stay
bit-for-bit reproducible (crashes are still captured as failure records).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import signal
import time
import traceback
from dataclasses import dataclass, fields, replace
from typing import Callable, Dict, IO, Iterable, List, Optional, Sequence, Tuple

from repro.core.formula import QBF
from repro.core.result import Outcome, SolverStats
from repro.core.solver import SolverConfig
from repro.evalx.runner import (
    Budget,
    Measurement,
    SolverDisagreement,
    solve_po,
    solve_to,
)
from repro.robustness.checkpoint import CheckpointError, load_checkpoint
from repro.robustness.faults import FaultPlan
from repro.robustness.interrupt import global_flag

#: record statuses, in the JSONL ``status`` field.
STATUS_OK = "ok"
STATUS_CRASH = "crash"
STATUS_HARD_TIMEOUT = "hard-timeout"
STATUS_DISAGREEMENT = "disagreement"
#: the worker breached its address-space ceiling (``mem_limit_mb``). Never
#: retried: an allocation that failed at this ceiling fails again at this
#: ceiling, so the record is written immediately (any checkpoint an earlier
#: attempt salvaged stays on disk for a future run at a higher ceiling).
STATUS_MEMOUT = "memout"

#: results JSONL schema, in the ``schema`` field of every row. Version 1
#: rows (no ``schema`` field) predate certification and still load; rows
#: written by a *newer* schema than this module understands are skipped on
#: load (the sweep simply re-runs those tasks) instead of crashing a resume.
SCHEMA_VERSION = 2


# -- serialization ------------------------------------------------------------
#
# Hand-rolled (rather than pickle) so the JSONL results are stable,
# greppable, diffable artefacts that other tooling can consume.


def stats_to_dict(stats: SolverStats) -> Dict[str, int]:
    return {f.name: getattr(stats, f.name) for f in fields(SolverStats)}


def stats_from_dict(data: Dict[str, int]) -> SolverStats:
    known = {f.name for f in fields(SolverStats)}
    return SolverStats(**{k: v for k, v in data.items() if k in known})


def config_to_dict(config: SolverConfig) -> Dict[str, object]:
    return {f.name: getattr(config, f.name) for f in fields(SolverConfig)}


def config_from_dict(data: Dict[str, object]) -> SolverConfig:
    known = {f.name for f in fields(SolverConfig)}
    return SolverConfig(**{k: v for k, v in data.items() if k in known})


def measurement_to_dict(m: Measurement) -> Dict[str, object]:
    out: Dict[str, object] = {
        "instance": m.instance,
        "solver": m.solver,
        "outcome": m.outcome.value,
        "decisions": m.decisions,
        "seconds": m.seconds,
        "learned_clauses": m.learned_clauses,
        "learned_cubes": m.learned_cubes,
    }
    if m.stats is not None:
        out["stats"] = stats_to_dict(m.stats)
    if m.certificate_status is not None:
        out["certificate_status"] = m.certificate_status
        out["certificate_ok"] = m.certificate_ok
    if m.interrupted:
        out["interrupted"] = True
    return out


def measurement_from_dict(data: Dict[str, object]) -> Measurement:
    stats = data.get("stats")
    return Measurement(
        instance=data["instance"],
        solver=data["solver"],
        outcome=Outcome(data["outcome"]),
        decisions=data["decisions"],
        seconds=data["seconds"],
        learned_clauses=data.get("learned_clauses", 0),
        learned_cubes=data.get("learned_cubes", 0),
        stats=stats_from_dict(stats) if stats is not None else None,
        certificate_status=data.get("certificate_status"),
        interrupted=bool(data.get("interrupted", False)),
    )


# -- tasks and records --------------------------------------------------------


@dataclass(frozen=True)
class Task:
    """One solver run to schedule: which formula, which pipeline, which label.

    ``solver`` is the label recorded on the resulting measurement (e.g.
    ``"PO"``, ``"TO(eu_au)"``, or DIA's ``"TO(eq16)"`` where the prenex
    form is built by the encoder and solved directly). ``mode`` selects the
    pipeline: ``"po"`` solves ``formula`` as-is, ``"to"`` prenexes with
    ``strategy`` first. ``overrides`` are extra :class:`SolverConfig` fields
    as a sorted tuple of pairs (kept hashable so tasks can key dicts).
    """

    instance: str
    solver: str
    formula: QBF
    mode: str = "po"  # "po" | "to"
    strategy: str = "eu_au"
    budget: Budget = Budget()
    overrides: Tuple[Tuple[str, object], ...] = ()
    #: self-check the run: log the resolution proof and verify it against
    #: the original formula (see :mod:`repro.certify`). Certified runs use
    #: the certifying config (pure literals off), so their keys must not
    #: collide with uncertified runs of the same instance.
    certify: bool = False
    #: directory for solver checkpoints. When set, a preempted or
    #: hard-timed-out run flushes its search frontier there and a retry (or
    #: a whole re-invoked sweep) resumes instead of restarting. Excluded
    #: from the fingerprint: checkpoints are an execution detail, not part
    #: of what the run measures.
    checkpoint_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in ("po", "to"):
            raise ValueError("unknown task mode %r" % (self.mode,))

    def checkpoint_path(self) -> Optional[str]:
        """Per-key snapshot file under ``checkpoint_dir`` (None when off)."""
        if self.checkpoint_dir is None:
            return None
        digest = hashlib.sha256("|".join(self.key).encode("utf-8")).hexdigest()[:16]
        return os.path.join(self.checkpoint_dir, digest + ".ckpt")

    def fingerprint(self) -> str:
        """Stable digest of everything that shapes the run besides the formula.

        ``certify`` enters the payload only when set, so fingerprints of
        uncertified tasks — and therefore resume keys of every pre-existing
        results file — are byte-identical to what older versions computed.
        """
        payload = {
            "mode": self.mode,
            "strategy": self.strategy if self.mode == "to" else None,
            "decisions": self.budget.decisions,
            "seconds": self.budget.seconds,
            "overrides": sorted(self.overrides),
        }
        if self.certify:
            payload["certify"] = True
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.instance, self.solver, self.fingerprint())


@dataclass
class Record:
    """One JSONL row: the outcome of attempting one :class:`Task`.

    Failures (worker crash, hard timeout, solver disagreement) carry a
    synthesized ``Outcome.UNKNOWN`` measurement so downstream aggregation
    treats them like the paper treats timeouts — censored, not fatal.
    """

    instance: str
    solver: str
    fingerprint: str
    status: str
    measurement: Optional[Measurement] = None
    attempts: int = 1
    error: Optional[str] = None
    #: cumulative seconds of deliberate retry backoff that preceded this
    #: record (0.0 on first-attempt successes; serialized only when spent).
    backoff: float = 0.0

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.instance, self.solver, self.fingerprint)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "instance": self.instance,
            "solver": self.solver,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "attempts": self.attempts,
        }
        if self.measurement is not None:
            out["measurement"] = measurement_to_dict(self.measurement)
        if self.error is not None:
            out["error"] = self.error
        if self.backoff:
            out["backoff"] = round(self.backoff, 3)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Record":
        schema = data.get("schema", 1)
        if not isinstance(schema, int) or schema > SCHEMA_VERSION:
            # A newer writer knows fields this reader does not; pretending to
            # understand the row could resurrect it with meaning stripped.
            raise ValueError("unsupported results schema %r" % (schema,))
        m = data.get("measurement")
        return cls(
            instance=data["instance"],
            solver=data["solver"],
            fingerprint=data.get("fingerprint", ""),
            status=data.get("status", STATUS_OK),
            measurement=measurement_from_dict(m) if m is not None else None,
            attempts=data.get("attempts", 1),
            error=data.get("error"),
            backoff=data.get("backoff", 0.0),
        )


def _failure_measurement(task: Task, seconds: float) -> Measurement:
    """Outcome-style failure stand-in: censored like a timeout."""
    return Measurement(
        instance=task.instance,
        solver=task.solver,
        outcome=Outcome.UNKNOWN,
        decisions=task.budget.decisions,
        seconds=seconds,
    )


def execute_task(task: Task) -> Measurement:
    """Run one task in the current process (the default worker body).

    With ``task.checkpoint_dir`` set, a valid snapshot from an earlier
    preempted attempt is resumed (a torn or foreign one is ignored — the
    run simply restarts), and the solver flushes a fresh snapshot if this
    attempt is preempted in turn. The solver polls the process-global
    interrupt flag, which :func:`_worker_main` wires to SIGTERM.
    """
    overrides = dict(task.overrides)
    ckpt_path = task.checkpoint_path()
    resume = None
    if ckpt_path is not None and os.path.exists(ckpt_path):
        try:
            resume = load_checkpoint(ckpt_path)
        except CheckpointError:
            resume = None  # detected by version/digest: fall back to fresh
    common = dict(
        budget=task.budget,
        certify=task.certify,
        interrupt=global_flag(),
        resume_from=resume,
        checkpoint_to=ckpt_path,
    )
    if task.mode == "to":
        m = solve_to(
            task.formula, task.instance, strategy=task.strategy, **dict(common, **overrides)
        )
    else:
        m = solve_po(task.formula, task.instance, **dict(common, **overrides))
    # The label is the task's business (DIA solves a pre-built prenex form in
    # "po" mode but records it as TO), so stamp it unconditionally.
    m.solver = task.solver
    m.instance = task.instance
    return m


# -- JSONL persistence --------------------------------------------------------


class ResultsLog:
    """Append-only JSONL store of :class:`Record` rows keyed for resume.

    ``durable`` (the default) fsyncs after every append: an acknowledged
    record must survive a machine crash, or the resume logic re-runs the
    task against a results file that silently lost its history. ``faults``
    optionally injects torn appends (tests/CI only).
    """

    def __init__(self, path: str, durable: bool = True, faults: Optional[FaultPlan] = None):
        self.path = path
        self.durable = durable
        self._faults = faults
        self._handle: Optional[IO[str]] = None

    def load(self) -> Dict[Tuple[str, str, str], Record]:
        """Read every well-formed row; tolerate a torn final line."""
        records: Dict[Tuple[str, str, str], Record] = {}
        if not os.path.exists(self.path):
            return records
        with open(self.path, "r") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = Record.from_dict(json.loads(line))
                except (ValueError, KeyError, TypeError):
                    # A crash mid-append can tear the last line, and a newer
                    # tool may have written rows in a schema this reader does
                    # not understand; skip such rows and let the sweep re-run
                    # those tasks.
                    continue
                records[rec.key] = rec
        return records

    def append(self, record: Record) -> None:
        if self._handle is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a")
            # A crash mid-append can leave a torn final line with no trailing
            # newline; terminate it so the first new row is not glued onto
            # (and lost inside) the unparseable fragment.
            if self._handle.tell() > 0:
                with open(self.path, "rb") as check:
                    check.seek(-1, os.SEEK_END)
                    if check.read(1) != b"\n":
                        self._handle.write("\n")
        line = json.dumps(record.to_dict(), sort_keys=True) + "\n"
        if self._faults is not None and self._faults.torn_append(
            "%s|%s" % (record.instance, record.solver)
        ):
            # Injected torn append: write half the line, no newline — what a
            # crash mid-append leaves behind. load() skips the fragment and
            # the next sweep re-runs the task.
            line = line[: max(1, len(line) // 2)]
        self._handle.write(line)
        self._handle.flush()
        if self.durable:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultsLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- the pool -----------------------------------------------------------------


def _apply_worker_rlimits(
    mem_limit_mb: Optional[float], cpu_limit: Optional[float], flag
) -> None:
    """Install per-worker resource ceilings (POSIX; silently off elsewhere).

    ``mem_limit_mb`` caps the address space (``RLIMIT_AS``): an allocation
    beyond it raises :class:`MemoryError` inside the worker, which
    :func:`_worker_main` reports as a structured ``memout`` — instead of
    the kernel OOM-killing the host (or the whole pool's parent).

    ``cpu_limit`` is a *soft* CPU-seconds ceiling: ``SIGXCPU`` is routed to
    the interrupt flag, so a cooperative solver checkpoints and reports a
    partial measurement; the hard ceiling a few seconds later is the
    kernel's non-negotiable SIGKILL backstop for a wedged loop.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return
    if mem_limit_mb is not None and mem_limit_mb > 0:
        limit = int(mem_limit_mb * 1024 * 1024)
        _, hard = resource.getrlimit(resource.RLIMIT_AS)
        if hard != resource.RLIM_INFINITY:
            limit = min(limit, hard)
        try:
            resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
        except (ValueError, OSError):  # pragma: no cover - exotic rlimits
            pass
    if cpu_limit is not None and cpu_limit > 0:
        soft = max(1, int(cpu_limit))
        hard_cap = soft + 5
        _, hard = resource.getrlimit(resource.RLIMIT_CPU)
        if hard != resource.RLIM_INFINITY:
            soft = min(soft, hard)
            hard_cap = min(hard_cap, hard)
        try:
            signal.signal(signal.SIGXCPU, flag.set)
            resource.setrlimit(resource.RLIMIT_CPU, (soft, hard_cap))
        except (ValueError, OSError):  # pragma: no cover - exotic rlimits
            pass


def _worker_main(
    task: Task,
    executor: Callable[[Task], Measurement],
    conn,
    attempt: int = 1,
    faults: Optional[FaultPlan] = None,
    mem_limit_mb: Optional[float] = None,
    cpu_limit: Optional[float] = None,
) -> None:
    """Worker body: run the task, ship the result (or the traceback) back.

    SIGTERM is routed to the process-global interrupt flag, so a graceful
    parent-side preemption lets the solver flush a checkpoint and report a
    partial measurement instead of dying mid-search; an executor that never
    polls the flag is covered by the parent's SIGKILL escalation.

    With ``mem_limit_mb`` set, the worker's address space is capped before
    the task runs; a :class:`MemoryError` (from the ceiling or from the
    solver itself) is reported as a ``memout`` — a structured failure the
    parent records without retrying — rather than a generic crash. The
    report message is built without ``traceback.format_exc()``: under
    genuine memory pressure the formatting allocation itself can die.

    ``KeyboardInterrupt``/``SystemExit`` are reported as a crash record but
    then *re-raised*: swallowing them would leave the worker running after
    the user (or the interpreter) asked it to stop.
    """
    flag = global_flag()
    flag.clear()  # fork inherits the parent's flag state; start clean
    try:
        # A forked child inherits the parent's signal wakeup fd (asyncio
        # event loops set one). Left in place, *this worker's* SIGTERM
        # would be written into the parent loop's self-pipe and read back
        # as a shutdown of the parent — reset it before installing ours.
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    signal.signal(signal.SIGTERM, flag.set)
    _apply_worker_rlimits(mem_limit_mb, cpu_limit, flag)
    try:
        if faults is not None:
            faults.on_worker_start(task, attempt)
        measurement = executor(task)
        conn.send((STATUS_OK, measurement_to_dict(measurement)))
    except MemoryError as exc:
        try:
            conn.send((
                STATUS_MEMOUT,
                "worker exceeded its memory ceiling%s: %s"
                % (
                    " (%.0f MiB)" % mem_limit_mb if mem_limit_mb else "",
                    exc,
                ),
            ))
        except Exception:
            pass  # parent sees the dead process and records a crash
    except BaseException as exc:
        try:
            conn.send((STATUS_CRASH, traceback.format_exc()))
        except Exception:
            pass  # parent will see the dead process and record a crash
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
    finally:
        conn.close()


@dataclass
class _Slot:
    """One live worker process and its bookkeeping."""

    process: multiprocessing.process.BaseProcess
    conn: object
    index: int
    task: Task
    attempt: int
    started: float
    deadline: Optional[float]
    #: when the parent sent SIGTERM (graceful preemption); None before.
    termed_at: Optional[float] = None
    #: backoff seconds accumulated by this task's earlier retries.
    backoff: float = 0.0


@dataclass
class _Pending:
    """One queued (re)attempt, possibly delayed by retry backoff."""

    index: int
    task: Task
    attempt: int
    not_before: float = 0.0
    backoff: float = 0.0


def _retry_jitter(key: Tuple[str, str, str], attempt: int) -> float:
    """Deterministic jitter fraction in [0, 1): hash of (key, attempt).

    Deterministic so sweeps stay reproducible (and testable) while distinct
    tasks still spread their retries instead of stampeding in lockstep.
    """
    seed = "%s|%s|%s|%d" % (key[0], key[1], key[2], attempt)
    return int(hashlib.sha256(seed.encode("utf-8")).hexdigest()[:8], 16) / float(1 << 32)


def _backoff_delay(base: float, key: Tuple[str, str, str], attempt: int) -> float:
    """Exponential backoff before retrying ``attempt + 1``: the classic
    ``base * 2^(attempt-1)``, scaled into [0.5, 1.0) by the jitter."""
    if base <= 0:
        return 0.0
    return base * (2.0 ** (attempt - 1)) * (0.5 + 0.5 * _retry_jitter(key, attempt))


def _mp_context():
    """Prefer fork (fast, no re-import requirements for test executors)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def run_tasks(
    tasks: Sequence[Task],
    jobs: int = 1,
    results: Optional[object] = None,
    wall_timeout: Optional[float] = None,
    max_retries: int = 1,
    executor: Optional[Callable[[Task], Measurement]] = None,
    poll_interval: float = 0.01,
    term_grace: float = 2.0,
    retry_backoff: float = 0.5,
    faults: Optional[FaultPlan] = None,
    checkpoint_dir: Optional[str] = None,
    durable: bool = True,
    mem_limit_mb: Optional[float] = None,
    cpu_limit: Optional[float] = None,
) -> List[Record]:
    """Run ``tasks`` and return one :class:`Record` per task, in task order.

    Args:
        tasks: the runs to schedule. Keys (instance, solver, fingerprint)
            should be unique; duplicate keys share one record.
        jobs: worker processes. ``1`` runs serially in-process (the exact
            legacy execution model); ``>1`` uses the fault-isolated pool.
        results: a :class:`ResultsLog`, a path string, or None. When given,
            already-recorded keys are skipped (resume) and every new record
            is appended as it completes.
        wall_timeout: hard per-run seconds; an exceeded run's worker gets
            SIGTERM (a chance to checkpoint), then SIGKILL after
            ``term_grace`` seconds. Only enforced with ``jobs > 1`` (a
            single process cannot kill itself safely); serial runs still
            honor the budget's cooperative limits.
        max_retries: how many times a crashed or hard-timed-out task is
            re-queued before its failure record is written. With
            ``checkpoint_dir`` set, a hard-timeout retry resumes from the
            checkpoint the SIGTERM salvaged, so the wall clock resets but
            the search doesn't.
        executor: the task body, a picklable module-level callable mapping
            Task -> Measurement. Defaults to :func:`execute_task`; tests
            substitute crashing/hanging bodies to exercise fault isolation.
        term_grace: seconds between SIGTERM and SIGKILL on a wall timeout.
        retry_backoff: base seconds of the exponential crash-retry backoff
            (deterministically jittered per task); 0 disables the delay.
        faults: a :class:`repro.robustness.faults.FaultPlan` injecting
            deterministic failures (tests/CI chaos legs).
        checkpoint_dir: directory for per-task solver snapshots; stamped
            onto every task (see :attr:`Task.checkpoint_dir`).
        durable: fsync the results log after each append (see
            :class:`ResultsLog`).
        mem_limit_mb: per-worker address-space ceiling in MiB (POSIX,
            ``jobs > 1`` only — a process cannot safely cap itself while
            holding the whole sweep's state). A worker that breaches it
            produces a ``memout`` record instead of a host-level OOM kill;
            memouts are never retried.
        cpu_limit: soft per-worker CPU-seconds ceiling (POSIX, ``jobs > 1``
            only); SIGXCPU flips the worker's interrupt flag so a
            cooperative solver checkpoints, with a kernel SIGKILL backstop
            a few seconds later.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if executor is None:
        executor = execute_task
    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)
        tasks = [replace(task, checkpoint_dir=checkpoint_dir) for task in tasks]

    log: Optional[ResultsLog]
    if results is None:
        log = None
    elif isinstance(results, ResultsLog):
        log = results
    else:
        log = ResultsLog(results, durable=durable, faults=faults)
    done: Dict[Tuple[str, str, str], Record] = log.load() if log is not None else {}

    out: List[Optional[Record]] = [None] * len(tasks)
    pending: List[_Pending] = []
    for i, task in enumerate(tasks):
        cached = done.get(task.key)
        if cached is not None:
            out[i] = cached
        else:
            pending.append(_Pending(i, task, 1))
    if faults is not None:
        # Bind fault victims before any worker forks, so every process
        # (and a rerun with the same seed) sees the same assignments.
        faults.bind(FaultPlan.label(p.task) for p in pending)

    def finish(index: int, task: Task, record: Record) -> None:
        out[index] = record
        done[task.key] = record
        if log is not None:
            log.append(record)

    if jobs == 1:
        for p in pending:
            record = _run_serial(p.task, executor, max_retries, retry_backoff, faults)
            finish(p.index, p.task, record)
    else:
        _run_pool(
            pending,
            jobs,
            executor,
            wall_timeout,
            max_retries,
            finish,
            poll_interval,
            term_grace,
            retry_backoff,
            faults,
            mem_limit_mb,
            cpu_limit,
        )

    if log is not None and not isinstance(results, ResultsLog):
        log.close()
    assert all(r is not None for r in out)
    return out  # type: ignore[return-value]


def _run_serial(
    task: Task,
    executor: Callable[[Task], Measurement],
    max_retries: int,
    retry_backoff: float = 0.0,
    faults: Optional[FaultPlan] = None,
) -> Record:
    """In-process execution: crash-as-record with retries, like the pool.

    ``KeyboardInterrupt``/``SystemExit`` propagate — a serial sweep must
    stop promptly on Ctrl-C, not convert the interrupt into a crash row and
    march on.
    """
    attempts = 0
    backoff_spent = 0.0
    while True:
        attempts += 1
        start = time.monotonic()
        try:
            if faults is not None:
                faults.on_worker_start(task, attempts)
            measurement = executor(task)
        except MemoryError as exc:
            # Deterministic failure: the same allocation fails the same way
            # on a retry, so record the memout immediately.
            return Record(
                instance=task.instance,
                solver=task.solver,
                fingerprint=task.fingerprint(),
                status=STATUS_MEMOUT,
                measurement=_failure_measurement(task, time.monotonic() - start),
                attempts=attempts,
                error="solver ran out of memory: %s" % exc,
                backoff=backoff_spent,
            )
        except Exception:
            if attempts <= max_retries:
                delay = _backoff_delay(retry_backoff, task.key, attempts)
                if delay > 0:
                    time.sleep(delay)
                    backoff_spent += delay
                continue
            return Record(
                instance=task.instance,
                solver=task.solver,
                fingerprint=task.fingerprint(),
                status=STATUS_CRASH,
                measurement=_failure_measurement(task, time.monotonic() - start),
                attempts=attempts,
                error=traceback.format_exc(),
                backoff=backoff_spent,
            )
        return Record(
            instance=task.instance,
            solver=task.solver,
            fingerprint=task.fingerprint(),
            status=STATUS_OK,
            measurement=measurement,
            attempts=attempts,
            backoff=backoff_spent,
        )


def _run_pool(
    pending: List[_Pending],
    jobs: int,
    executor: Callable[[Task], Measurement],
    wall_timeout: Optional[float],
    max_retries: int,
    finish: Callable[[int, Task, Record], None],
    poll_interval: float,
    term_grace: float = 2.0,
    retry_backoff: float = 0.5,
    faults: Optional[FaultPlan] = None,
    mem_limit_mb: Optional[float] = None,
    cpu_limit: Optional[float] = None,
) -> None:
    ctx = _mp_context()
    queue: List[_Pending] = list(pending)
    running: List[_Slot] = []

    def spawn(entry: _Pending) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker_main,
            args=(
                entry.task, executor, child_conn, entry.attempt, faults,
                mem_limit_mb, cpu_limit,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps only the read end
        now = time.monotonic()
        running.append(
            _Slot(
                process=process,
                conn=parent_conn,
                index=entry.index,
                task=entry.task,
                attempt=entry.attempt,
                started=now,
                deadline=(now + wall_timeout) if wall_timeout is not None else None,
                backoff=entry.backoff,
            )
        )

    def reap(slot: _Slot) -> None:
        running.remove(slot)
        slot.conn.close()
        slot.process.join(timeout=5.0)
        if slot.process.is_alive():  # pragma: no cover - stuck worker
            slot.process.kill()
            slot.process.join()

    def settle(slot: _Slot, status: str, payload: object) -> None:
        """Turn a worker's exit into a record or a retry."""
        task, attempt = slot.task, slot.attempt
        elapsed = time.monotonic() - slot.started
        measurement: Optional[Measurement] = None
        if status == STATUS_OK and isinstance(payload, dict):
            measurement = measurement_from_dict(payload)
        if (
            status == STATUS_OK
            and slot.termed_at is not None
            and measurement is not None
            and measurement.interrupted
        ):
            # Our SIGTERM preempted it: the worker reported gracefully (its
            # checkpoint is on disk), but the *task* still overran the wall
            # clock — classify as a hard timeout so a retry can resume.
            status = STATUS_HARD_TIMEOUT
            payload = "hard wall-clock timeout after %.1fs (checkpoint salvaged)" % elapsed
        if status == STATUS_OK:
            finish(
                slot.index,
                task,
                Record(
                    instance=task.instance,
                    solver=task.solver,
                    fingerprint=task.fingerprint(),
                    status=STATUS_OK,
                    measurement=measurement,
                    attempts=attempt,
                    backoff=slot.backoff,
                ),
            )
            return
        if attempt <= max_retries:
            if status == STATUS_CRASH:
                # Exponential backoff with deterministic jitter: don't
                # hammer a transiently failing (e.g. OOMing) box.
                delay = _backoff_delay(retry_backoff, task.key, attempt)
                queue.append(
                    _Pending(
                        slot.index,
                        task,
                        attempt + 1,
                        not_before=time.monotonic() + delay,
                        backoff=slot.backoff + delay,
                    )
                )
                return
            if status == STATUS_HARD_TIMEOUT:
                # Immediate requeue: time was the failure, not the machine.
                # With checkpointing on, the retry resumes the salvaged
                # frontier instead of re-spending the whole wall budget.
                queue.append(
                    _Pending(slot.index, task, attempt + 1, backoff=slot.backoff)
                )
                return
        finish(
            slot.index,
            task,
            Record(
                instance=task.instance,
                solver=task.solver,
                fingerprint=task.fingerprint(),
                status=status,
                measurement=measurement or _failure_measurement(task, elapsed),
                attempts=attempt,
                error=payload if isinstance(payload, str) else None,
                backoff=slot.backoff,
            ),
        )

    try:
        while queue or running:
            while len(running) < jobs:
                now = time.monotonic()
                ready = next(
                    (i for i, p in enumerate(queue) if p.not_before <= now), None
                )
                if ready is None:
                    break
                spawn(queue.pop(ready))
            progressed = False
            now = time.monotonic()
            for slot in list(running):
                result = None
                try:
                    if slot.conn.poll():
                        result = slot.conn.recv()
                except (EOFError, OSError):
                    result = None  # died without sending: handled below
                if result is not None:
                    reap(slot)
                    settle(slot, result[0], result[1])
                    progressed = True
                elif not slot.process.is_alive():
                    exitcode = slot.process.exitcode
                    reap(slot)
                    if slot.termed_at is not None:
                        # Died after our SIGTERM without reporting: a hard
                        # timeout that didn't manage to checkpoint.
                        settle(
                            slot,
                            STATUS_HARD_TIMEOUT,
                            "hard wall-clock timeout after %.1fs (exitcode %s)"
                            % (now - slot.started, exitcode),
                        )
                    else:
                        # Dead without a message: hard crash (OOM, segfault).
                        settle(
                            slot,
                            STATUS_CRASH,
                            "worker died without reporting (exitcode %s)" % (exitcode,),
                        )
                    progressed = True
                elif slot.deadline is not None and now > slot.deadline:
                    if slot.termed_at is None:
                        # Kill escalation, step 1: SIGTERM. The worker's
                        # handler flips the interrupt flag; a cooperative
                        # solver checkpoints and reports within the grace.
                        slot.process.terminate()
                        slot.termed_at = now
                    elif now - slot.termed_at > term_grace:
                        # Step 2: the grace expired without a report — the
                        # worker is wedged (or the executor never polls the
                        # flag); SIGKILL cannot be ignored.
                        slot.process.kill()
                        reap(slot)
                        settle(
                            slot,
                            STATUS_HARD_TIMEOUT,
                            "hard wall-clock timeout after %.1fs (SIGKILL after %.1fs grace)"
                            % (now - slot.started, term_grace),
                        )
                        progressed = True
            if not progressed:
                time.sleep(poll_interval)
    finally:
        for slot in list(running):  # interrupted: leave no orphans behind
            slot.process.terminate()
            reap(slot)


# -- pair plumbing on top of records ------------------------------------------


def measurements_by_key(records: Iterable[Record]) -> Dict[Tuple[str, str], Measurement]:
    """Index usable measurements by (instance, solver) for pair reassembly."""
    out: Dict[Tuple[str, str], Measurement] = {}
    for rec in records:
        if rec.status == STATUS_DISAGREEMENT or rec.measurement is None:
            continue
        out[(rec.instance, rec.solver)] = rec.measurement
    return out


def disagreement_record(exc: SolverDisagreement) -> Record:
    """A first-class failure row for a TO/PO outcome mismatch.

    When certification has already decided which side holds the valid proof
    (:attr:`SolverDisagreement.winner`), that measurement rides along on the
    row, so the disagreement arrives pre-triaged in the results file.
    """
    return Record(
        instance=exc.a.instance or exc.b.instance,
        solver="%s|%s" % (exc.a.solver, exc.b.solver),
        fingerprint="",
        status=STATUS_DISAGREEMENT,
        measurement=exc.winner,
        error=str(exc),
    )


def note_disagreement(exc: SolverDisagreement, log: Optional[ResultsLog]) -> Record:
    """Record a disagreement as data; re-raise only when nothing records it."""
    record = disagreement_record(exc)
    if log is None:
        raise exc
    log.append(record)
    return record
