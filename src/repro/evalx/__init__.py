"""Experiment harness: budgeted runs, Table-I counters, figure series."""

from repro.evalx.runner import (
    Budget,
    Measurement,
    check_agreement,
    solve_po,
    solve_to,
)
from repro.evalx.scatter import (
    ScalingSeries,
    ScatterPoint,
    median,
    pair_point,
    setting_medians,
    summarize_scatter,
    virtual_best,
)
from repro.evalx.table1 import Table1Row, build_row, classify_pair, render_table
from repro.evalx.report import render_kv, render_scaling, render_scatter

__all__ = [
    "Budget",
    "Measurement",
    "ScalingSeries",
    "ScatterPoint",
    "Table1Row",
    "build_row",
    "check_agreement",
    "classify_pair",
    "median",
    "pair_point",
    "render_kv",
    "render_scaling",
    "render_scatter",
    "render_table",
    "setting_medians",
    "solve_po",
    "solve_to",
    "summarize_scatter",
    "virtual_best",
]
