"""Boolean formula ASTs with quantifiers (non-CNF, non-prenex).

The QBFs "deriving from applications" that motivate the paper — diameter
calculation, equivalence checking, early-requirements model checking — start
life as circuits: arbitrary combinations of ``∧``, ``∨``, ``¬``, ``→``,
``≡`` and quantifiers (Section VII-C allows exactly this for equation (14)).
This module provides that representation; :mod:`repro.formulas.cnf` converts
it to the library's ``⟨tree prefix, CNF matrix⟩`` form.

Variables are positive integers, matching :mod:`repro.core`. Formulas are
immutable and hashable; Python operators build connectives::

    x, y = Var(1), Var(2)
    f = Forall([2], (x | y) & ~(x & y))
    g = Exists([1], f)

Design notes:

* ``Implies``/``Iff``/``Xor`` are first-class nodes (the generators read
  better with them) and are expanded during NNF conversion.
* ``nnf`` pushes negations through quantifiers (``¬∀y ψ ↦ ∃y ¬ψ``), which is
  what lets :func:`repro.formulas.cnf.to_qbf` keep every matrix literal
  positive-polarity-definable.
* :func:`evaluate_closed` is an independent semantic oracle used to validate
  the CNF conversion end to end.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple


class Formula:
    """Base class of all AST nodes; provides operator sugar."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        """``a >> b`` is ``a → b``."""
        return Implies(self, other)

    def iff(self, other: "Formula") -> "Formula":
        return Iff(self, other)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        raise NotImplementedError

    def __repr__(self) -> str:
        raise NotImplementedError


class Const(Formula):
    """Boolean constant."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = bool(value)

    def _key(self) -> tuple:
        return (self.value,)

    def __repr__(self) -> str:
        return "⊤" if self.value else "⊥"


TRUE = Const(True)
FALSE = Const(False)


class Var(Formula):
    """A propositional variable (positive integer index)."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        if index <= 0:
            raise ValueError("variable index must be positive, got %d" % index)
        self.index = index

    def _key(self) -> tuple:
        return (self.index,)

    def __repr__(self) -> str:
        return "v%d" % self.index


class Not(Formula):
    __slots__ = ("arg",)

    def __init__(self, arg: Formula):
        self.arg = arg

    def _key(self) -> tuple:
        return (self.arg,)

    def __repr__(self) -> str:
        return "¬%r" % (self.arg,)


class _Nary(Formula):
    __slots__ = ("args",)
    _symbol = "?"

    def __init__(self, args: Iterable[Formula]):
        self.args = tuple(args)

    def _key(self) -> tuple:
        return self.args

    def __repr__(self) -> str:
        if not self.args:
            return "(%s)" % self._symbol
        return "(" + (" %s " % self._symbol).join(map(repr, self.args)) + ")"


class And(_Nary):
    """N-ary conjunction; ``And(())`` is ⊤."""

    __slots__ = ()
    _symbol = "∧"


class Or(_Nary):
    """N-ary disjunction; ``Or(())`` is ⊥."""

    __slots__ = ()
    _symbol = "∨"


class _Binary(Formula):
    __slots__ = ("left", "right")
    _symbol = "?"

    def __init__(self, left: Formula, right: Formula):
        self.left = left
        self.right = right

    def _key(self) -> tuple:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return "(%r %s %r)" % (self.left, self._symbol, self.right)


class Implies(_Binary):
    __slots__ = ()
    _symbol = "→"


class Iff(_Binary):
    __slots__ = ()
    _symbol = "≡"


class Xor(_Binary):
    __slots__ = ()
    _symbol = "⊕"


class _Quant(Formula):
    __slots__ = ("variables", "body")
    _symbol = "?"

    def __init__(self, variables: Sequence[int], body: Formula):
        self.variables = tuple(variables)
        for v in self.variables:
            if v <= 0:
                raise ValueError("quantified variable must be positive")
        self.body = body

    def _key(self) -> tuple:
        return (self.variables, self.body)

    def __repr__(self) -> str:
        return "%s%s.%r" % (self._symbol, list(self.variables), self.body)


class Exists(_Quant):
    __slots__ = ()
    _symbol = "∃"


class Forall(_Quant):
    __slots__ = ()
    _symbol = "∀"


# -- structural helpers --------------------------------------------------------


def conj(parts: Iterable[Formula]) -> Formula:
    """Flattened conjunction with constant folding."""
    flat = []
    for part in parts:
        if isinstance(part, Const):
            if not part.value:
                return FALSE
            continue
        if isinstance(part, And):
            flat.extend(part.args)
        else:
            flat.append(part)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(flat)


def disj(parts: Iterable[Formula]) -> Formula:
    """Flattened disjunction with constant folding."""
    flat = []
    for part in parts:
        if isinstance(part, Const):
            if part.value:
                return TRUE
            continue
        if isinstance(part, Or):
            flat.extend(part.args)
        else:
            flat.append(part)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(flat)


def lit(var: int, positive: bool) -> Formula:
    """``Var(var)`` or its negation, as an AST node."""
    v = Var(var)
    return v if positive else Not(v)


def free_vars(formula: Formula) -> FrozenSet[int]:
    """Free variables of the formula."""
    if isinstance(formula, Const):
        return frozenset()
    if isinstance(formula, Var):
        return frozenset((formula.index,))
    if isinstance(formula, Not):
        return free_vars(formula.arg)
    if isinstance(formula, _Nary):
        out: FrozenSet[int] = frozenset()
        for arg in formula.args:
            out |= free_vars(arg)
        return out
    if isinstance(formula, _Binary):
        return free_vars(formula.left) | free_vars(formula.right)
    if isinstance(formula, _Quant):
        return free_vars(formula.body) - frozenset(formula.variables)
    raise TypeError("unknown node %r" % (formula,))


def all_vars(formula: Formula) -> FrozenSet[int]:
    """Every variable occurring (free or bound) in the formula."""
    if isinstance(formula, Const):
        return frozenset()
    if isinstance(formula, Var):
        return frozenset((formula.index,))
    if isinstance(formula, Not):
        return all_vars(formula.arg)
    if isinstance(formula, _Nary):
        out: FrozenSet[int] = frozenset()
        for arg in formula.args:
            out |= all_vars(arg)
        return out
    if isinstance(formula, _Binary):
        return all_vars(formula.left) | all_vars(formula.right)
    if isinstance(formula, _Quant):
        return all_vars(formula.body) | frozenset(formula.variables)
    raise TypeError("unknown node %r" % (formula,))


def is_quantifier_free(formula: Formula) -> bool:
    """True when the formula contains no quantifier node."""
    if isinstance(formula, (Const, Var)):
        return True
    if isinstance(formula, Not):
        return is_quantifier_free(formula.arg)
    if isinstance(formula, _Nary):
        return all(is_quantifier_free(a) for a in formula.args)
    if isinstance(formula, _Binary):
        return is_quantifier_free(formula.left) and is_quantifier_free(formula.right)
    if isinstance(formula, _Quant):
        return False
    raise TypeError("unknown node %r" % (formula,))


def rename(formula: Formula, mapping: Mapping[int, int]) -> Formula:
    """Apply a variable renaming to free *and* bound occurrences."""
    if isinstance(formula, Const):
        return formula
    if isinstance(formula, Var):
        return Var(mapping.get(formula.index, formula.index))
    if isinstance(formula, Not):
        return Not(rename(formula.arg, mapping))
    if isinstance(formula, And):
        return And(tuple(rename(a, mapping) for a in formula.args))
    if isinstance(formula, Or):
        return Or(tuple(rename(a, mapping) for a in formula.args))
    if isinstance(formula, _Binary):
        return type(formula)(rename(formula.left, mapping), rename(formula.right, mapping))
    if isinstance(formula, _Quant):
        return type(formula)(
            tuple(mapping.get(v, v) for v in formula.variables),
            rename(formula.body, mapping),
        )
    raise TypeError("unknown node %r" % (formula,))


def substitute(formula: Formula, mapping: Mapping[int, bool]) -> Formula:
    """Replace free variables by constants and fold."""
    if isinstance(formula, Const):
        return formula
    if isinstance(formula, Var):
        if formula.index in mapping:
            return TRUE if mapping[formula.index] else FALSE
        return formula
    if isinstance(formula, Not):
        inner = substitute(formula.arg, mapping)
        if isinstance(inner, Const):
            return FALSE if inner.value else TRUE
        return Not(inner)
    if isinstance(formula, And):
        return conj(substitute(a, mapping) for a in formula.args)
    if isinstance(formula, Or):
        return disj(substitute(a, mapping) for a in formula.args)
    if isinstance(formula, Implies):
        return substitute(disj((Not(formula.left), formula.right)), mapping)
    if isinstance(formula, Iff):
        left = substitute(formula.left, mapping)
        right = substitute(formula.right, mapping)
        if isinstance(left, Const) and isinstance(right, Const):
            return TRUE if left.value == right.value else FALSE
        return Iff(left, right)
    if isinstance(formula, Xor):
        left = substitute(formula.left, mapping)
        right = substitute(formula.right, mapping)
        if isinstance(left, Const) and isinstance(right, Const):
            return TRUE if left.value != right.value else FALSE
        return Xor(left, right)
    if isinstance(formula, _Quant):
        shadowed = {k: v for k, v in mapping.items() if k not in formula.variables}
        return type(formula)(formula.variables, substitute(formula.body, shadowed))
    raise TypeError("unknown node %r" % (formula,))


def nnf(formula: Formula, negate: bool = False) -> Formula:
    """Negation normal form; expands →, ≡, ⊕ and pushes ¬ through quantifiers."""
    if isinstance(formula, Const):
        return Const(formula.value != negate)
    if isinstance(formula, Var):
        return Not(formula) if negate else formula
    if isinstance(formula, Not):
        return nnf(formula.arg, not negate)
    if isinstance(formula, And):
        parts = tuple(nnf(a, negate) for a in formula.args)
        return disj(parts) if negate else conj(parts)
    if isinstance(formula, Or):
        parts = tuple(nnf(a, negate) for a in formula.args)
        return conj(parts) if negate else disj(parts)
    if isinstance(formula, Implies):
        return nnf(disj((Not(formula.left), formula.right)), negate)
    if isinstance(formula, Iff):
        both = conj((formula.left, formula.right))
        neither = conj((Not(formula.left), Not(formula.right)))
        return nnf(disj((both, neither)), negate)
    if isinstance(formula, Xor):
        return nnf(Iff(formula.left, formula.right), not negate)
    if isinstance(formula, Exists):
        body = nnf(formula.body, negate)
        return Forall(formula.variables, body) if negate else Exists(formula.variables, body)
    if isinstance(formula, Forall):
        body = nnf(formula.body, negate)
        return Exists(formula.variables, body) if negate else Forall(formula.variables, body)
    raise TypeError("unknown node %r" % (formula,))


def evaluate_closed(formula: Formula, assignment: Optional[Dict[int, bool]] = None) -> bool:
    """Semantic truth value of a closed formula, by direct expansion.

    An independent (exponential) oracle used to validate the CNF/QBF
    conversion pipeline. ``assignment`` supplies values for free variables.
    """
    env = dict(assignment or {})

    def walk(node: Formula) -> bool:
        if isinstance(node, Const):
            return node.value
        if isinstance(node, Var):
            return env[node.index]
        if isinstance(node, Not):
            return not walk(node.arg)
        if isinstance(node, And):
            return all(walk(a) for a in node.args)
        if isinstance(node, Or):
            return any(walk(a) for a in node.args)
        if isinstance(node, Implies):
            return (not walk(node.left)) or walk(node.right)
        if isinstance(node, Iff):
            return walk(node.left) == walk(node.right)
        if isinstance(node, Xor):
            return walk(node.left) != walk(node.right)
        if isinstance(node, (Exists, Forall)):
            if not node.variables:
                return walk(node.body)
            v, rest = node.variables[0], node.variables[1:]
            sub = type(node)(rest, node.body)
            saved = env.get(v)
            results = []
            for val in (False, True):
                env[v] = val
                results.append(walk(sub))
            if saved is None:
                env.pop(v, None)
            else:
                env[v] = saved
            return any(results) if isinstance(node, Exists) else all(results)
        raise TypeError("unknown node %r" % (node,))

    return walk(formula)
