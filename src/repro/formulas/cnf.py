"""Conversion of quantified circuit formulas to ⟨tree prefix, CNF matrix⟩.

Implements the clause-form conversion the paper relies on (it cites Jackson
and Sheridan [10] for the DIA encodings): negation normal form followed by
polarity-aware (Plaisted-Greenbaum) definitional clausification. Auxiliary
definition variables are existentially quantified *innermost in the scope
where the defined subformula occurs* — exactly the placement in the paper's
Section VII-C worked example, where the single CNF variable ``x`` lands in
the block after the universals.

The quantifier *tree* of the input is preserved: quantifiers nested under
conjunctions become sibling subtrees of the prefix. Disjunctions over
quantified subformulas carry no parallel structure in a CNF matrix, so they
are prenexed locally (``Qx φ ∨ ψ ↦ Qx (φ ∨ ψ)`` after alpha-renaming, sound
because every binding is made unique first).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.formula import QBF
from repro.core.literals import EXISTS, FORALL, Quant
from repro.core.prefix import Prefix, Spec
from repro.formulas.ast import (
    And,
    Const,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Var,
    _Quant,
    all_vars,
    free_vars,
    is_quantifier_free,
    nnf,
    rename,
)


class _VarAllocator:
    """Fresh-variable source starting above every variable in use."""

    def __init__(self, start_above: int):
        self._next = start_above + 1

    def fresh(self) -> int:
        v = self._next
        self._next += 1
        return v


def _alpha_rename(formula: Formula, alloc: _VarAllocator) -> Formula:
    """Make every binding unique and distinct from every free variable."""
    used: Set[int] = set(free_vars(formula))

    def walk(node: Formula, env: Dict[int, int]) -> Formula:
        if isinstance(node, Const):
            return node
        if isinstance(node, Var):
            return Var(env.get(node.index, node.index))
        if isinstance(node, Not):
            return Not(walk(node.arg, env))
        if isinstance(node, And):
            return And(tuple(walk(a, env) for a in node.args))
        if isinstance(node, Or):
            return Or(tuple(walk(a, env) for a in node.args))
        if isinstance(node, _Quant):
            inner_env = dict(env)
            fresh_vars = []
            for v in node.variables:
                if v in used:
                    nv = alloc.fresh()
                else:
                    nv = v
                used.add(nv)
                inner_env[v] = nv
                fresh_vars.append(nv)
            return type(node)(tuple(fresh_vars), walk(node.body, inner_env))
        raise TypeError("unexpected node in NNF: %r" % (node,))

    return walk(formula, {})


class _Clausifier:
    """Plaisted-Greenbaum clausification of NNF propositional formulas."""

    def __init__(self, alloc: _VarAllocator):
        self.alloc = alloc
        self.clauses: List[Tuple[int, ...]] = []

    def emit(self, lits: Sequence[int]) -> None:
        """Add a clause, deduplicating literals and dropping tautologies."""
        seen: Dict[int, int] = {}
        for l in lits:
            if -l in seen:
                return  # tautological clause: always satisfied
            seen[l] = l
        self.clauses.append(tuple(seen))

    def assert_true(self, node: Formula) -> List[int]:
        """Emit clauses forcing ``node``; returns fresh aux variables used."""
        aux: List[int] = []
        self._assert(node, aux)
        return aux

    def _literal_of(self, node: Formula) -> Optional[int]:
        if isinstance(node, Var):
            return node.index
        if isinstance(node, Not) and isinstance(node.arg, Var):
            return -node.arg.index
        return None

    def _assert(self, node: Formula, aux: List[int]) -> None:
        if isinstance(node, Const):
            if not node.value:
                self.emit(())
            return
        direct = self._literal_of(node)
        if direct is not None:
            self.emit((direct,))
            return
        if isinstance(node, And):
            for arg in node.args:
                self._assert(arg, aux)
            return
        if isinstance(node, Or):
            lits = [self._encode(arg, aux) for arg in node.args]
            self.emit([l for l in lits if l is not None])
            return
        raise TypeError("unexpected node in NNF clausifier: %r" % (node,))

    def _encode(self, node: Formula, aux: List[int]) -> Optional[int]:
        """Return a literal l with l → node (positive polarity only).

        Returns None for the constant ⊥ (drops out of its clause); the
        constant ⊤ satisfies the enclosing clause, which the caller's
        tautology handling covers by emitting a fresh always-true aux — we
        avoid that by short-circuiting in _assert via disj folding upstream;
        defensively, ⊤ gets a fresh unconstrained variable here.
        """
        if isinstance(node, Const):
            if not node.value:
                return None
            g = self.alloc.fresh()
            aux.append(g)
            self.emit((g,))
            return g
        direct = self._literal_of(node)
        if direct is not None:
            return direct
        if isinstance(node, And):
            g = self.alloc.fresh()
            aux.append(g)
            for arg in node.args:
                la = self._encode(arg, aux)
                if la is None:
                    # g → ⊥: g can never be used positively.
                    self.emit((-g,))
                else:
                    self.emit((-g, la))
            return g
        if isinstance(node, Or):
            g = self.alloc.fresh()
            aux.append(g)
            lits = [self._encode(arg, aux) for arg in node.args]
            self.emit([-g] + [l for l in lits if l is not None])
            return g
        raise TypeError("unexpected node in NNF clausifier: %r" % (node,))


def _pull_prenex(node: Formula) -> Tuple[List[Tuple[Quant, Tuple[int, ...]]], Formula]:
    """Locally prenex a subformula: quantifier chain plus propositional body.

    Sound without renaming because _alpha_rename made every binding unique.
    """
    if isinstance(node, Exists):
        chain, body = _pull_prenex(node.body)
        return [(EXISTS, node.variables)] + chain, body
    if isinstance(node, Forall):
        chain, body = _pull_prenex(node.body)
        return [(FORALL, node.variables)] + chain, body
    if isinstance(node, And):
        chain: List[Tuple[Quant, Tuple[int, ...]]] = []
        bodies = []
        for arg in node.args:
            sub_chain, sub_body = _pull_prenex(arg)
            chain.extend(sub_chain)
            bodies.append(sub_body)
        return chain, And(tuple(bodies))
    if isinstance(node, Or):
        chain = []
        bodies = []
        for arg in node.args:
            sub_chain, sub_body = _pull_prenex(arg)
            chain.extend(sub_chain)
            bodies.append(sub_body)
        return chain, Or(tuple(bodies))
    return [], node


def to_qbf(formula: Formula) -> QBF:
    """Convert a quantified circuit formula to the library's QBF form.

    Free variables are bound existentially at the top (the paper's
    convention). The quantifier structure under conjunctions is preserved as
    a tree; everything else is handled as documented in the module
    docstring.
    """
    f = nnf(formula)
    top_free = tuple(sorted(free_vars(f)))
    if top_free:
        f = Exists(top_free, f)
    alloc = _VarAllocator(max(all_vars(f), default=0))
    f = _alpha_rename(f, alloc)
    clausifier = _Clausifier(alloc)

    def walk(node: Formula) -> List[Spec]:
        if isinstance(node, Exists) or isinstance(node, Forall):
            quant = EXISTS if isinstance(node, Exists) else FORALL
            return [(quant, node.variables, tuple(walk(node.body)))]
        if isinstance(node, And) and not is_quantifier_free(node):
            specs: List[Spec] = []
            for arg in node.args:
                specs.extend(walk(arg))
            return specs
        if is_quantifier_free(node):
            aux = clausifier.assert_true(node)
            if aux:
                return [(EXISTS, tuple(aux), ())]
            return []
        # Or (or a mix) containing quantifiers: prenex this subformula.
        chain, prop = _pull_prenex(node)
        aux = clausifier.assert_true(prop)
        inner: Tuple[Spec, ...] = ((EXISTS, tuple(aux), ()),) if aux else ()
        for quant, variables in reversed(chain):
            inner = ((quant, variables, inner),)
        return list(inner)

    roots = walk(f)
    prefix = Prefix.tree(roots)
    matrix = clausifier.clauses
    # Clauses may mention variables of sibling scopes only through shared
    # ancestors, which the walk guarantees; any constant-folding edge case
    # that dropped a bound variable entirely is harmless: the prefix simply
    # keeps it as an unconstrained variable.
    used = {abs(l) for c in matrix for l in c}
    missing = used - set(prefix.variables)
    if missing:
        raise AssertionError("clausifier produced unbound variables: %r" % missing)
    return QBF(prefix, matrix)
