"""Tests for the QDIMACS reader/writer."""

import random
import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.formula import QBF, paper_example
from repro.core.literals import EXISTS, FORALL
from repro.core.solver import solve
from repro.generators.random_qbf import random_prenex_qbf, random_tree_qbf
from repro.io import qdimacs
from repro.io.qdimacs import QdimacsError, QdimacsWarning
from repro.prenexing.strategies import prenex


SAMPLE = """c a sample instance
p cnf 4 2
e 1 2 0
a 3 0
e 4 0
1 -3 4 0
-1 2 0
"""


class TestLoads:
    def test_parses_sample(self):
        phi = qdimacs.loads(SAMPLE)
        assert phi.is_prenex
        assert phi.num_clauses == 2
        assert phi.prefix.quant(3) is FORALL
        assert phi.prefix.prec(1, 3) and phi.prefix.prec(3, 4)

    def test_free_variables_bound_existentially(self):
        phi = qdimacs.loads("p cnf 2 1\na 1 0\n1 2 0\n")
        assert phi.prefix.quant(2) is EXISTS
        assert phi.prefix.prec(2, 1)

    def test_adjacent_same_quant_lines_merge(self):
        phi = qdimacs.loads("p cnf 3 1\ne 1 0\ne 2 0\na 3 0\n1 2 3 0\n")
        assert not phi.prefix.prec(1, 2)

    def test_rejects_double_binding(self):
        with pytest.raises(QdimacsError):
            qdimacs.loads("p cnf 1 0\ne 1 0\na 1 0\n")

    def test_rejects_quantifier_after_clause(self):
        with pytest.raises(QdimacsError):
            qdimacs.loads("p cnf 2 1\ne 1 0\n1 0\na 2 0\n")

    def test_rejects_missing_terminator(self):
        with pytest.raises(QdimacsError):
            qdimacs.loads("p cnf 1 1\ne 1 0\n1\n")

    def test_rejects_bad_header(self):
        with pytest.raises(QdimacsError):
            qdimacs.loads("p wcnf 1 1\n")

    def test_rejects_empty(self):
        with pytest.raises(QdimacsError):
            qdimacs.loads("")

    def test_rejects_non_integer_header_counts(self):
        with pytest.raises(QdimacsError):
            qdimacs.loads("p cnf foo bar\ne 1 0\n1 0\n")

    def test_rejects_negative_header_counts(self):
        with pytest.raises(QdimacsError):
            qdimacs.loads("p cnf -1 2\ne 1 0\n1 0\n")
        with pytest.raises(QdimacsError):
            qdimacs.loads("p cnf 1 -2\ne 1 0\n1 0\n")

    def test_rejects_duplicate_header(self):
        with pytest.raises(QdimacsError):
            qdimacs.loads("p cnf 1 1\np cnf 1 1\ne 1 0\n1 0\n")

    def test_rejects_clause_without_header(self):
        # Propositional DIMACS with no 'p' line used to parse silently.
        with pytest.raises(QdimacsError):
            qdimacs.loads("1 2 0\n-1 0\n")
        with pytest.raises(QdimacsError):
            qdimacs.loads("e 1 0\n1 0\n")

    def test_warns_on_clause_count_mismatch(self):
        with pytest.warns(QdimacsWarning):
            phi = qdimacs.loads("p cnf 2 5\ne 1 2 0\n1 2 0\n")
        assert phi.num_clauses == 1

    def test_mismatch_counts_raw_lines_not_sanitized_clauses(self):
        # The declared count refers to clause *lines*; a dropped tautology
        # must not trigger the warning when the line count matches.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            phi = qdimacs.loads("p cnf 2 2\ne 1 2 0\n1 -1 2 0\n2 0\n")
        assert phi.num_clauses == 1

    def test_exact_count_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            qdimacs.loads(SAMPLE)

    def test_duplicate_literals_deduplicated(self):
        phi = qdimacs.loads("p cnf 2 1\ne 1 2 0\n1 1 2 0\n")
        assert phi.clauses[0].lits == (1, 2)

    def test_tautological_clause_dropped(self):
        # (1 ∨ ¬1 ∨ 2) is true under every assignment; real benchmark sets
        # contain such clauses and the loader must not choke on them.
        phi = qdimacs.loads("p cnf 2 2\ne 1 2 0\n1 -1 2 0\n2 0\n")
        assert phi.num_clauses == 1
        assert phi.clauses[0].lits == (2,)
        assert solve(phi).outcome.value == "true"


class TestDumps:
    def test_rejects_non_prenex(self):
        with pytest.raises(ValueError):
            qdimacs.dumps(paper_example())

    def test_includes_comments(self):
        phi = QBF.prenex([(EXISTS, [1])], [(1,)])
        text = qdimacs.dumps(phi, comments=["hello"])
        assert text.startswith("c hello\n")

    def test_file_roundtrip(self, tmp_path):
        phi = prenex(paper_example(), "eu_au")
        path = str(tmp_path / "f.qdimacs")
        qdimacs.dump(phi, path)
        again = qdimacs.load(path)
        assert again == phi


@pytest.mark.parametrize("seed", range(15))
def test_roundtrip_random(seed):
    rng = random.Random(seed)
    phi = random_prenex_qbf(
        rng,
        num_blocks=rng.randint(1, 4),
        block_size=rng.randint(1, 3),
        num_clauses=rng.randint(1, 12),
    )
    again = qdimacs.loads(qdimacs.dumps(phi))
    assert again == phi
    assert solve(again).value == solve(phi).value


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_blocks=st.integers(min_value=1, max_value=5),
    block_size=st.integers(min_value=1, max_value=4),
    num_clauses=st.integers(min_value=0, max_value=16),
    from_tree=st.booleans(),
)
@settings(max_examples=120, deadline=None)
def test_roundtrip_property(seed, num_blocks, block_size, num_clauses, from_tree):
    """load(dumps(f)) is the identity on prenex generator formulas.

    Covers prefixes the seeded test never reaches: zero clauses, prenexed
    tree formulas (whose block merge order is decided by the prenexing
    strategy, not the generator), and wide blocks."""
    rng = random.Random(seed)
    if from_tree:
        phi = prenex(
            random_tree_qbf(
                rng,
                depth=min(num_blocks, 3),
                block_size=block_size,
                clauses_per_scope=max(1, num_clauses // 4),
            ),
            "eu_au",
        )
    else:
        phi = random_prenex_qbf(
            rng,
            num_blocks=num_blocks,
            block_size=block_size,
            num_clauses=num_clauses,
        )
    text = qdimacs.dumps(phi)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # round trips must not warn either
        again = qdimacs.loads(text)
    assert again == phi
