"""Tests for the QTREE non-prenex format."""

import random

import pytest

from repro.core.formula import QBF, paper_example
from repro.core.literals import EXISTS, FORALL
from repro.core.solver import solve
from repro.generators.random_qbf import random_qbf
from repro.io import qtree
from repro.io.qtree import QtreeError


class TestRoundtrip:
    def test_paper_example(self):
        text = qtree.dumps(paper_example(), comments=["equation (1)"])
        assert text.startswith("c equation (1)\n")
        again = qtree.loads(text)
        assert again == paper_example()

    def test_prenex_also_works(self):
        phi = QBF.prenex([(EXISTS, [1]), (FORALL, [2])], [(1, 2)])
        assert qtree.loads(qtree.dumps(phi)) == phi

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "f.qtree")
        qtree.dump(paper_example(), path)
        assert qtree.load(path) == paper_example()

    @pytest.mark.parametrize("seed", range(20))
    def test_random_roundtrip(self, seed):
        rng = random.Random(seed)
        phi = random_qbf(rng)
        again = qtree.loads(qtree.dumps(phi))
        assert again == phi
        assert solve(again).value == solve(phi).value


class TestParsing:
    def test_forest(self):
        phi = qtree.loads("p qtree 2 1\nt (e 1) (a 2)\n1 -2 0\n")
        assert not phi.prefix.prec(1, 2)
        assert phi.prefix.quant(2) is FORALL

    def test_free_vars_closed(self):
        phi = qtree.loads("t (a 1)\n1 2 0\n")
        assert phi.prefix.quant(2) is EXISTS
        assert phi.prefix.prec(2, 1)

    def test_missing_tree_line_means_all_existential(self):
        phi = qtree.loads("1 -2 0\n")
        assert phi.prefix.quant(1) is EXISTS
        assert phi.prefix.quant(2) is EXISTS

    def test_rejects_two_tree_lines(self):
        with pytest.raises(QtreeError):
            qtree.loads("t (e 1)\nt (e 2)\n1 0\n")

    def test_rejects_unbalanced(self):
        with pytest.raises(QtreeError):
            qtree.loads("t (e 1 (a 2)\n1 0\n")

    def test_rejects_bad_tag(self):
        with pytest.raises(QtreeError):
            qtree.loads("t (x 1)\n1 0\n")

    def test_rejects_bad_clause(self):
        with pytest.raises(QtreeError):
            qtree.loads("t (e 1)\n1\n")
