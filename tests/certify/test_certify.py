"""Certificate subsystem: logging, serialization, independent checking."""

import copy
import json

import pytest

from repro.certify import (
    INCOMPLETE,
    INVALID,
    UNKNOWN,
    VERIFIED,
    JsonlSink,
    MemorySink,
    ProofLogger,
    certificate_stats,
    certifying_config,
    check_certificate,
    read_certificate,
    solve_certified,
)
from repro.certify.store import CONCLUSION, INPUT_CLAUSE, REDUCTION, RESOLUTION
from repro.core.formula import QBF, paper_example
from repro.core.literals import EXISTS, FORALL
from repro.core.prefix import Prefix
from repro.core.result import Outcome
from repro.core.solver import QdpllSolver, SolverConfig
from repro.prenexing.strategies import prenex


def _true_formula() -> QBF:
    """∀y ∃x . (y ∨ x)(¬y ∨ ¬x) — TRUE, needs both branches of y."""
    prefix = Prefix.linear([(FORALL, (1,)), (EXISTS, (2,))])
    return QBF(prefix, [(1, 2), (-1, -2)])


def _steps(cert):
    """Deep-copied step list, safe to corrupt."""
    return [copy.deepcopy(s) for s in cert]


class TestEndToEnd:
    def test_false_formula_verifies(self):
        result, cert, report = solve_certified(paper_example())
        assert result.outcome is Outcome.FALSE
        assert report.status == VERIFIED
        assert report.outcome == "false"

    def test_true_formula_verifies(self):
        result, cert, report = solve_certified(_true_formula())
        assert result.outcome is Outcome.TRUE
        assert report.status == VERIFIED
        assert report.outcome == "true"

    def test_prenex_certificate_checks_against_original_tree(self):
        # The TO pipeline solves the prenex form; its proof must validate
        # under the original tree's (stricter) d/f partial order too.
        phi = paper_example()
        flat = prenex(phi)
        _, cert, report = solve_certified(flat)
        assert report.status == VERIFIED
        assert check_certificate(phi, cert).status == VERIFIED

    def test_budget_exhausted_run_is_unknown(self):
        sink = MemorySink()
        cfg = certifying_config(SolverConfig(max_decisions=1))
        result = QdpllSolver(paper_example(), cfg, proof=ProofLogger(sink)).solve()
        assert result.outcome is Outcome.UNKNOWN
        assert check_certificate(paper_example(), sink).status == UNKNOWN

    def test_logging_is_passive(self):
        # A run with a logger attached must be decision-for-decision
        # identical to the same run without one.
        cfg = certifying_config(SolverConfig())
        for phi in (paper_example(), _true_formula(), prenex(paper_example())):
            bare = QdpllSolver(phi, cfg).solve()
            logged = QdpllSolver(phi, cfg, proof=ProofLogger(MemorySink())).solve()
            assert logged.outcome is bare.outcome
            assert logged.stats == bare.stats


class TestSerialization:
    def test_jsonl_roundtrip(self, tmp_path):
        path = str(tmp_path / "proof.jsonl")
        with JsonlSink(path) as sink:
            QdpllSolver(
                paper_example(), certifying_config(), proof=ProofLogger(sink)
            ).solve()
        # Every line is standalone JSON; the stream replays identically.
        steps = list(read_certificate(path))
        assert steps[0]["type"] == "header"
        assert steps[-1]["type"] == CONCLUSION
        assert check_certificate(paper_example(), path).status == VERIFIED
        assert check_certificate(paper_example(), steps).status == VERIFIED

    def test_stats(self):
        _, cert, _ = solve_certified(paper_example())
        stats = certificate_stats(cert)
        assert stats.outcome == "false"
        assert stats.complete is True
        assert stats.inputs > 0
        assert stats.resolutions > 0
        assert stats.steps == len(cert.steps)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "gaps.jsonl")
        _, cert, _ = solve_certified(paper_example())
        with open(path, "w") as fh:
            for step in cert:
                fh.write(json.dumps(step) + "\n\n")
        assert check_certificate(paper_example(), path).status == VERIFIED


class TestCorruption:
    """The checker must reject every tampered derivation."""

    def _verified_cert(self):
        result, cert, report = solve_certified(paper_example())
        assert report.status == VERIFIED
        return _steps(cert)

    def test_bad_resolvent_rejected(self):
        # Claim a resolvent that drops an existential literal: resolution
        # only removes the pivot, and no reduction may delete an existential
        # from a clause.
        steps = self._verified_cert()
        prefix = paper_example().prefix
        tampered = False
        for step in steps:
            if step["type"] != RESOLUTION or step.get("kind") != "clause":
                continue
            keep = [l for l in step["lits"] if prefix.is_existential(l)]
            if keep:
                step["lits"] = [l for l in step["lits"] if l != keep[0]]
                tampered = True
                break
        assert tampered
        report = check_certificate(paper_example(), steps)
        assert report.status == INVALID

    def test_invented_literal_rejected(self):
        steps = self._verified_cert()
        for step in steps:
            if step["type"] == RESOLUTION:
                step["lits"] = list(step["lits"]) + [999]
                break
        report = check_certificate(paper_example(), steps)
        assert report.status == INVALID

    def test_wrong_pivot_rejected(self):
        steps = self._verified_cert()
        for step in steps:
            if step["type"] == RESOLUTION:
                step["pivot"] = step["pivot"] + 1000
                break
        assert check_certificate(paper_example(), steps).status == INVALID

    def test_illegal_reduction_rejected(self):
        # ∀y ∃x with clause (y ∨ x): y ≺ x, so Lemma 3 forbids deleting the
        # universal y — a step claiming that reduction must be rejected.
        prefix = Prefix.linear([(FORALL, (1,)), (EXISTS, (2,))])
        phi = QBF(prefix, [(1, 2), (-1, -2)])
        steps = [
            {"type": "header", "format": "repro-cert", "version": 1},
            # claims clause 0 reduces to (2) by deleting universal 1 — but
            # 1 ≺ 2, so Lemma 3 forbids the deletion.
            {"type": INPUT_CLAUSE, "id": 1, "clause": 0, "lits": [2]},
        ]
        report = check_certificate(phi, steps)
        assert report.status == INVALID
        assert "blocked" in report.error

    def test_tree_reduction_invalid_under_total_order(self):
        # The converse of the TO-vs-tree compatibility: a derivation may use
        # a reduction that is legal under the tree's partial order but not
        # under any prenex linearization. φ = ∃x(∀y ∃a | ∀z ∃b) with matrix
        # (x∨y∨a)(¬x∨z∨b)(¬a)(¬b). The resolvent (y,z,b) reduces to (z,b)
        # under the tree (y ⊀ b: different branches) — but every prenexing
        # puts y's block before b's, making the deletion illegal.
        x, y, a, z, b = 1, 2, 3, 4, 5
        prefix = Prefix.tree(
            [
                (
                    EXISTS,
                    (x,),
                    (
                        (FORALL, (y,), ((EXISTS, (a,), ()),)),
                        (FORALL, (z,), ((EXISTS, (b,), ()),)),
                    ),
                )
            ]
        )
        phi = QBF(prefix, [(x, y, a), (-x, z, b), (-a,), (-b,)])
        steps = [
            {"type": "header", "format": "repro-cert", "version": 1},
            {"type": INPUT_CLAUSE, "id": 1, "clause": 0, "lits": [x, y, a]},
            {"type": INPUT_CLAUSE, "id": 2, "clause": 1, "lits": [-x, z, b]},
            {"type": INPUT_CLAUSE, "id": 3, "clause": 2, "lits": [-a]},
            {"type": INPUT_CLAUSE, "id": 4, "clause": 3, "lits": [-b]},
            {"type": RESOLUTION, "id": 5, "kind": "clause", "ant": [1, 2],
             "pivot": x, "lits": [y, a, z, b]},
            # resolvent (y, z, b); the tree deletes y, any prenexing forbids it
            {"type": RESOLUTION, "id": 6, "kind": "clause", "ant": [5, 3],
             "pivot": a, "lits": [z, b]},
            {"type": RESOLUTION, "id": 7, "kind": "clause", "ant": [6, 4],
             "pivot": b, "lits": []},
            {"type": CONCLUSION, "outcome": "false", "final": 7, "complete": True},
        ]
        assert check_certificate(phi, steps).status == VERIFIED
        from repro.prenexing.strategies import STRATEGIES

        for strategy in STRATEGIES:
            report = check_certificate(prenex(phi, strategy), steps)
            assert report.status == INVALID
            assert "blocked" in report.error

    def test_non_empty_final_constraint_rejected(self):
        steps = self._verified_cert()
        conclusion = steps[-1]
        assert conclusion["type"] == CONCLUSION
        # Point the conclusion at a non-empty derived constraint.
        non_empty = next(
            s["id"]
            for s in steps
            if s.get("type") in (RESOLUTION, REDUCTION, INPUT_CLAUSE) and s["lits"]
        )
        conclusion["final"] = non_empty
        report = check_certificate(paper_example(), steps)
        assert report.status == INVALID
        assert "not empty" in report.error

    def test_unknown_antecedent_rejected(self):
        steps = self._verified_cert()
        for step in steps:
            if step["type"] == RESOLUTION:
                step["ant"] = [98765, step["ant"][1]]
                break
        assert check_certificate(paper_example(), steps).status == INVALID

    def test_missing_header_rejected(self):
        steps = self._verified_cert()
        assert check_certificate(paper_example(), steps[1:]).status == INVALID

    def test_future_version_rejected(self):
        steps = self._verified_cert()
        steps[0]["version"] = 999
        assert check_certificate(paper_example(), steps).status == INVALID

    def test_step_after_conclusion_rejected(self):
        steps = self._verified_cert()
        steps.append(dict(steps[1], id=99991))
        assert check_certificate(paper_example(), steps).status == INVALID

    def test_malformed_json_line_rejected(self, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        _, cert, _ = solve_certified(paper_example())
        with open(path, "w") as fh:
            for step in cert:
                fh.write(json.dumps(step) + "\n")
            fh.write('{"type": "res", "id":')
        assert check_certificate(paper_example(), path).status == INVALID


class TestIncomplete:
    def test_conclusion_without_derivation_is_incomplete(self):
        sink = MemorySink()
        logger = ProofLogger(sink)
        logger.register_formula(paper_example())
        logger.conclude("false", None, reason="verdict reached by chronological exhaustion")
        report = check_certificate(paper_example(), sink)
        assert report.status == INCOMPLETE
        assert report.outcome == "false"
        assert "chronological" in report.error

    def test_no_conclusion_is_incomplete(self):
        sink = MemorySink()
        logger = ProofLogger(sink)
        logger.register_formula(paper_example())
        report = check_certificate(paper_example(), sink)
        assert report.status == INCOMPLETE


class TestCertifyingConfig:
    def test_disables_pure_literals_and_enables_learning(self):
        cfg = certifying_config(
            SolverConfig(pure_literals=True, learn_clauses=False, max_decisions=7)
        )
        assert cfg.pure_literals is False
        assert cfg.learn_clauses is True
        assert cfg.learn_cubes is True
        assert cfg.max_decisions == 7  # other knobs untouched
