"""Property tests: the incremental solver agrees with from-scratch solves.

The contract under test (ISSUE 6): across any push/pop sequence, on both
engines, in both pipelines (PO = solve the tree as-is, TO = prenex first),
with certification on, :class:`repro.incremental.IncrementalSolver` returns
outcomes identical to a fresh solve of the same effective formula.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.certify import INVALID, certifying_config
from repro.core.literals import EXISTS
from repro.core.solver import SolverConfig, solve
from repro.generators.random_qbf import random_prenex_qbf, random_tree_qbf
from repro.incremental import IncrementalSolver
from repro.prenexing.strategies import prenex


def _formula(rng, mode):
    if mode == "to":
        return prenex(
            random_tree_qbf(rng, depth=rng.randint(1, 3), clauses_per_scope=2),
            "eu_au",
        )
    return random_prenex_qbf(
        rng,
        num_blocks=rng.randint(1, 4),
        block_size=rng.randint(1, 3),
        num_clauses=rng.randint(2, 14),
    )


def _outer_exists(prefix):
    return [
        v
        for v in prefix.variables
        if prefix.quant(v) is EXISTS
        and not any(prefix.prec(u, v) for u in prefix.variables)
    ]


def _random_script(rng, prefix, steps=4):
    """A random push/pop script over the outermost existential variables."""
    available = _outer_exists(prefix)
    rng.shuffle(available)
    script = []
    pushed = 0
    for _ in range(steps):
        if available and (pushed == 0 or rng.random() < 0.6):
            var = available.pop()
            script.append(("push", var if rng.random() < 0.5 else -var))
            pushed += 1
        elif pushed:
            script.append(("pop", None))
            pushed -= 1
    return script


@pytest.mark.parametrize("engine", ["counters", "watched"])
@pytest.mark.parametrize("mode", ["po", "to"])
def test_push_pop_matches_fresh_solves(engine, mode):
    config = SolverConfig(engine=engine)
    for seed in range(12):
        rng = random.Random(1000 * (mode == "to") + seed)
        phi = _formula(rng, mode)
        inc = IncrementalSolver(config)
        inc.load(phi)
        assert inc.solve().outcome is solve(phi, config).outcome
        for op, lit in _random_script(rng, phi.prefix):
            if op == "push":
                inc.push(lit)
            else:
                inc.pop()
            effective = inc.effective_formula()
            assert inc.solve().outcome is solve(effective, config).outcome


@pytest.mark.parametrize("engine", ["counters", "watched"])
def test_certified_incremental_matches_and_stays_valid(engine):
    """With certification on: outcomes agree and no certificate is INVALID.

    Certificates of solves that touched retained constraints are honest-
    incomplete, never fabricated — INVALID is the only forbidden status."""
    config = SolverConfig(engine=engine)
    for seed in range(8):
        rng = random.Random(seed)
        phi = _formula(rng, "po")
        inc = IncrementalSolver(config, certify=True)
        inc.load(phi)
        free = _outer_exists(phi.prefix)
        rng.shuffle(free)
        for step in range(3):
            result = inc.solve()
            fresh = solve(inc.effective_formula(), certifying_config(config))
            assert result.outcome is fresh.outcome
            assert inc.check_last_certificate().status != INVALID
            if free and (inc.depth == 0 or rng.random() < 0.6):
                var = free.pop()
                inc.push(var if rng.random() < 0.5 else -var)
            elif inc.depth:
                inc.pop()


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_growing_formula_chain_property(seed):
    """Reload with a grown matrix: retention must never flip an outcome."""
    rng = random.Random(seed)
    phi = random_prenex_qbf(
        rng,
        num_blocks=rng.randint(1, 3),
        block_size=rng.randint(1, 3),
        num_clauses=rng.randint(2, 8),
    )
    inc = IncrementalSolver()
    inc.load(phi)
    assert inc.solve().outcome is solve(phi).outcome
    # Grow the matrix by re-deriving a formula with extra random clauses
    # over the same prefix; prefix positions unchanged, clause set grown.
    pool = list(phi.prefix.variables)
    extra = []
    for _ in range(rng.randint(1, 4)):
        size = rng.randint(1, min(3, len(pool)))
        chosen = rng.sample(pool, size)
        extra.append(tuple(v if rng.random() < 0.5 else -v for v in chosen))
    from repro.core.formula import QBF

    grown = QBF(phi.prefix, [c.lits for c in phi.clauses] + extra)
    inc.load(grown)
    assert inc.solve().outcome is solve(grown).outcome
    # And back to the original: constraints learned from the extra clauses
    # must have been dropped, not silently kept.
    inc.load(phi)
    assert inc.solve().outcome is solve(phi).outcome


def test_identical_resolve_retains_database():
    rng = random.Random(7)
    phi = random_prenex_qbf(rng, num_blocks=3, block_size=3, num_clauses=16)
    inc = IncrementalSolver()
    inc.load(phi)
    first = inc.solve()
    learned = first.stats.learned_clauses + first.stats.learned_cubes
    second = inc.solve()
    if learned:
        assert inc.last_retained_clauses + inc.last_retained_cubes > 0
    assert second.outcome is first.outcome


def test_push_rejects_bad_assumptions():
    from repro.core.formula import QBF
    from repro.core.literals import FORALL
    from repro.core.prefix import Prefix

    phi = QBF.prenex([(EXISTS, [1]), (FORALL, [2]), (EXISTS, [3])], [(1, 2, 3)])
    inc = IncrementalSolver()
    with pytest.raises(ValueError):
        inc.push(1)  # before load
    inc.load(phi)
    with pytest.raises(ValueError):
        inc.push(2)  # universal
    with pytest.raises(ValueError):
        inc.push(-3)  # not outermost
    with pytest.raises(ValueError):
        inc.push(99)  # unbound
    inc.push(1)
    with pytest.raises(ValueError):
        inc.push(-1)  # already assumed
    with pytest.raises(ValueError):
        inc.push(1)  # already assumed, same polarity
    inc.pop()
    with pytest.raises(ValueError):
        inc.pop()  # no open scope


def test_assumption_scopes_stack():
    from repro.core.formula import QBF

    phi = QBF.prenex([(EXISTS, [1, 2, 3])], [(1, 2, 3)])
    inc = IncrementalSolver()
    inc.load(phi)
    inc.push(1, 2)
    inc.push(-3)
    assert inc.depth == 2
    assert inc.assumptions == (1, 2, -3)
    assert inc.solve().outcome.value == "true"
    inc.pop()
    assert inc.assumptions == (1, 2)
    # assuming all literals false forces the single clause unsatisfied
    inc.pop()
    inc.push(-1, -2, -3)
    assert inc.solve().outcome.value == "false"
