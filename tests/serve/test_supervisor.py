"""Unit tests for the supervision layer: admission, breakers, restart
backoff, socket claiming, and the cache's ok-only gate.

Every state machine takes an injectable clock, so nothing here sleeps.
"""

import asyncio
import os
import socket

import pytest

from repro.core.result import Outcome
from repro.evalx.parallel import Record, ResultsLog, STATUS_OK
from repro.evalx.runner import Measurement
from repro.serve.daemon import ServeDaemon, claim_socket_path
from repro.serve.supervisor import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdmissionController,
    BreakerBoard,
    CircuitBreaker,
    OverloadedError,
    PoisonedError,
    RestartPolicy,
    Supervisor,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# -- admission ---------------------------------------------------------------


class TestAdmissionController:
    def test_grants_until_total_budget_then_sheds(self):
        adm = AdmissionController(total_limit=2, clock=FakeClock())
        r1 = adm.admit("solve")
        r2 = adm.admit("solve")
        with pytest.raises(OverloadedError) as exc:
            adm.admit("solve")
        assert exc.value.dimension == "total"
        assert exc.value.retry_after > 0
        r1()
        r2()
        adm.admit("solve")  # budget freed: grants again

    def test_per_kind_budget_sheds_before_total(self):
        adm = AdmissionController(
            total_limit=10, kind_limits={"cube-solve": 1}, clock=FakeClock()
        )
        adm.admit("cube-solve")
        with pytest.raises(OverloadedError) as exc:
            adm.admit("cube-solve")
        assert exc.value.dimension == "cube-solve"
        # Other kinds are unaffected by the full cube lane.
        adm.admit("solve")

    def test_release_is_idempotent(self):
        adm = AdmissionController(total_limit=1, clock=FakeClock())
        release = adm.admit("solve")
        release()
        release()  # double-release must not free a phantom slot
        assert adm.inflight_total == 0
        adm.admit("solve")
        with pytest.raises(OverloadedError):
            adm.admit("solve")

    def test_snapshot_reconciles_with_traffic(self):
        adm = AdmissionController(
            total_limit=2, kind_limits={"solve": 2}, clock=FakeClock()
        )
        release = adm.admit("solve")
        adm.admit("smv-diameter")
        for _ in range(3):
            with pytest.raises(OverloadedError):
                adm.admit("solve")
        release()
        snap = adm.snapshot()
        assert snap["admitted"] == 2
        assert snap["shed_total"] == 3
        assert snap["shed"] == {"solve": 3}
        assert snap["inflight"] == 1
        assert snap["inflight_by_kind"] == {"smv-diameter": 1}


# -- circuit breakers --------------------------------------------------------


class TestCircuitBreaker:
    def make(self, clock, threshold=3, cooldown=30.0):
        return CircuitBreaker(
            "task:x", failure_threshold=threshold, cooldown=cooldown, clock=clock
        )

    def test_trips_open_at_threshold(self):
        b = self.make(FakeClock())
        b.record_failure("crash", "boom 1")
        b.record_failure("crash", "boom 2")
        assert b.state == CLOSED
        b.record_failure("memout", "boom 3")
        assert b.state == OPEN
        assert b.trips == 1

    def test_open_breaker_refuses_with_last_failure(self):
        clock = FakeClock()
        b = self.make(clock)
        for i in range(3):
            b.record_failure("crash", "boom %d" % i)
        with pytest.raises(PoisonedError) as exc:
            b.check()
        assert exc.value.last_failure == {"status": "crash", "error": "boom 2"}
        assert 0 < exc.value.retry_after <= 30.0

    def test_success_resets_consecutive_count(self):
        b = self.make(FakeClock())
        b.record_failure("crash")
        b.record_failure("crash")
        b.record_success()
        b.record_failure("crash")
        b.record_failure("crash")
        assert b.state == CLOSED  # never 3 *consecutive* failures

    def test_half_open_allows_exactly_one_probe(self):
        clock = FakeClock()
        b = self.make(clock, cooldown=10.0)
        for _ in range(3):
            b.record_failure("crash")
        clock.advance(10.0)
        b.check()  # the probe: admitted silently
        assert b.state == HALF_OPEN
        with pytest.raises(PoisonedError):
            b.check()  # second request while the probe is out

    def test_probe_success_closes(self):
        clock = FakeClock()
        b = self.make(clock, cooldown=10.0)
        for _ in range(3):
            b.record_failure("crash")
        clock.advance(10.0)
        b.check()
        b.record_success()
        assert b.state == CLOSED
        b.check()  # closed again: no exception

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        b = self.make(clock, cooldown=10.0)
        for _ in range(3):
            b.record_failure("crash")
        clock.advance(10.0)
        b.check()
        b.record_failure("hard-timeout", "wedged again")
        assert b.state == OPEN
        assert b.trips == 2
        clock.advance(5.0)  # cooldown restarted: 5s is not enough
        with pytest.raises(PoisonedError) as exc:
            b.check()
        assert exc.value.last_failure["status"] == "hard-timeout"

    def test_board_snapshot(self):
        clock = FakeClock()
        board = BreakerBoard(failure_threshold=1, cooldown=30.0, clock=clock)
        board.breaker("task:good").record_success()
        board.breaker("task:bad").record_failure("crash")
        snap = board.snapshot()
        assert snap["tracked"] == 2
        assert snap["open"] == 1
        assert snap["trips"] == 1
        assert snap["open_keys"] == ["task:bad"]


# -- restart backoff ---------------------------------------------------------


class TestRestartPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RestartPolicy(base=0.5, cap=4.0, clock=FakeClock())
        delays = [policy.record_death() for _ in range(5)]
        assert delays == [0.5, 1.0, 2.0, 4.0, 4.0]

    def test_in_backoff_follows_the_clock(self):
        clock = FakeClock()
        policy = RestartPolicy(base=2.0, clock=clock)
        policy.record_death()
        assert policy.in_backoff()
        assert policy.backoff_remaining() == pytest.approx(2.0)
        clock.advance(2.0)
        assert not policy.in_backoff()

    def test_recovery_resets_the_ladder(self):
        clock = FakeClock()
        policy = RestartPolicy(base=0.5, clock=clock)
        policy.record_death()
        policy.record_death()
        policy.record_recovery()
        assert not policy.in_backoff()
        assert policy.record_death() == 0.5  # back to the base delay


# -- supervisor bundle -------------------------------------------------------


class TestSupervisor:
    def test_deadline_and_interrupted_are_not_breaker_failures(self):
        sup = Supervisor(total_limit=4, failure_threshold=1, clock=FakeClock())
        breaker = sup.check("task:t")
        sup.record_outcome(breaker, "deadline")
        sup.record_outcome(breaker, "interrupted")
        assert breaker.state == CLOSED
        sup.record_outcome(breaker, "crash", "boom")
        assert breaker.state == OPEN

    def test_poisoned_and_memout_counters(self):
        sup = Supervisor(total_limit=4, failure_threshold=1, clock=FakeClock())
        breaker = sup.check("task:t")
        sup.record_outcome(breaker, "memout", "oom")
        assert sup.memouts == 1
        with pytest.raises(PoisonedError):
            sup.check("task:t")
        assert sup.poisoned == 1
        snap = sup.snapshot()
        assert snap["memouts"] == 1
        assert snap["poisoned"] == 1
        assert snap["breakers"]["open"] == 1

    def test_restart_policies_feed_snapshot(self):
        sup = Supervisor(total_limit=4, clock=FakeClock())
        policy = sup.restart_policy("counter")
        policy.record_death()
        policy.record_restart()
        assert sup.restart_policy("counter") is policy
        snap = sup.snapshot()
        assert snap["family_restarts"] == 1
        assert snap["family_deaths_pending"] == 1


# -- stale socket claiming ---------------------------------------------------


class TestClaimSocketPath:
    def test_missing_path_is_fine(self, tmp_path):
        claim_socket_path(str(tmp_path / "absent.sock"))

    def test_stale_socket_is_unlinked(self, tmp_path):
        # Simulate a SIGKILLed daemon: a bound-then-dead socket file.
        path = str(tmp_path / "stale.sock")
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.bind(path)
        s.close()  # no listener behind the file any more
        assert os.path.exists(path)
        claim_socket_path(path)
        assert not os.path.exists(path)

    def test_live_daemon_is_refused(self, tmp_path):
        path = str(tmp_path / "live.sock")
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.bind(path)
        s.listen(1)
        try:
            with pytest.raises(RuntimeError, match="already listening"):
                claim_socket_path(path)
            assert os.path.exists(path)  # never unlinked from under a live one
        finally:
            s.close()

    def test_non_socket_file_is_refused(self, tmp_path):
        path = tmp_path / "not-a-socket"
        path.write_text("precious data\n")
        with pytest.raises(RuntimeError, match="non-socket"):
            claim_socket_path(str(path))
        assert path.read_text() == "precious data\n"


# -- cache gate: only settled ok verdicts persist ----------------------------


def _measurement(interrupted=False):
    return Measurement(
        instance="i",
        solver="PO",
        outcome=Outcome.TRUE,
        decisions=3,
        seconds=0.01,
        interrupted=interrupted,
    )


def _record(status, measurement, instance="i"):
    return Record(
        instance=instance,
        solver="PO",
        fingerprint="fp",
        status=status,
        measurement=measurement,
    )


class TestCachePutGate:
    def put(self, daemon, record):
        asyncio.run(daemon._cache_put(record))

    def make_daemon(self, tmp_path):
        daemon = ServeDaemon(
            socket_path=str(tmp_path / "d.sock"),
            cache_path=str(tmp_path / "cache.jsonl"),
        )
        daemon._pool.shutdown(wait=False)
        return daemon

    def test_only_ok_records_enter_the_cache(self, tmp_path):
        daemon = self.make_daemon(tmp_path)
        self.put(daemon, _record(STATUS_OK, _measurement(), instance="good"))
        self.put(daemon, _record("crash", None, instance="crashed"))
        self.put(daemon, _record("hard-timeout", _measurement(), instance="late"))
        self.put(daemon, _record("memout", _measurement(), instance="fat"))
        self.put(
            daemon,
            _record(STATUS_OK, _measurement(interrupted=True), instance="preempted"),
        )
        self.put(daemon, _record(STATUS_OK, None, instance="measureless"))
        assert [k[0] for k in daemon._cache] == ["good"]
        # The persisted log agrees: one row, and it is the ok one.
        loaded = ResultsLog(str(tmp_path / "cache.jsonl")).load()
        assert len(loaded) == 1
        (record,) = loaded.values()
        assert record.instance == "good"
        assert record.status == STATUS_OK
