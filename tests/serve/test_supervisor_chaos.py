"""Chaos property suite for the supervised daemon, in-process.

The daemon object is driven directly through ``dispatch()`` — no
subprocess, no socket — with deterministic fault assignments. The
properties under test:

* every request returns a correct verdict or a *structured* error
  (``overloaded`` / ``poisoned`` / ``memout`` / ``stuck`` / ``deadline``
  / a failure status with an ``error`` string) — never a hang, never a
  wrong verdict;
* supervisor stats reconcile with what the client observed;
* the verdict cache never absorbs a failure record.

Every dispatch is wrapped in ``asyncio.wait_for`` so a supervision bug
shows up as a test failure, not a wedged test run.
"""

import asyncio

import pytest

from repro.robustness.faults import FaultPlan
from repro.robustness.interrupt import InterruptFlag
from repro.serve.daemon import ServeDaemon

# Verdicts known by construction (same instances the serve tests use).
TRUE_QD = "p cnf 2 2\ne 1 0\na 2 0\n1 2 0\n1 -2 0\n"
FALSE_QD = "p cnf 1 1\na 1 0\n1 0\n"

#: statuses that count as structured (deliberate) failures.
STRUCTURED = ("overloaded", "poisoned", "memout", "stuck", "deadline",
              "crash", "hard-timeout")

#: generous guard on every dispatch: a request that takes this long has
#: violated the no-hang property.
GUARD_SECONDS = 30.0


def make_daemon(tmp_path, faults=None, **kwargs):
    kwargs.setdefault("max_inflight", 4)
    kwargs.setdefault("failure_threshold", 2)
    kwargs.setdefault("breaker_cooldown", 300.0)
    kwargs.setdefault("restart_backoff", 60.0)
    kwargs.setdefault("stuck_grace", 0.2)
    kwargs.setdefault("interrupt", InterruptFlag())
    return ServeDaemon(
        socket_path=str(tmp_path / "chaos.sock"),
        cache_path=str(tmp_path / "cache.jsonl"),
        faults=faults,
        **kwargs,
    )


def ask(daemon, *requests):
    """Dispatch requests sequentially inside one event loop, guarded."""

    async def drive():
        out = []
        for req in requests:
            out.append(
                await asyncio.wait_for(daemon.dispatch(dict(req)), GUARD_SECONDS)
            )
        return out

    try:
        return asyncio.run(drive())
    finally:
        daemon._interrupt.set()  # release any abandoned family thread
        daemon._pool.shutdown(wait=False)


def check_structured(resp):
    """The core property: a response is an answer or a structured refusal."""
    assert isinstance(resp, dict)
    assert "ok" in resp
    if not resp["ok"]:
        assert resp.get("status") in STRUCTURED, resp
        assert isinstance(resp.get("error"), str) and resp["error"], resp
    return resp


def solve_req(instance, formula=TRUE_QD, **extra):
    req = {"kind": "solve", "instance": instance, "formula": formula,
           "deadline": 20.0}
    req.update(extra)
    return req


def smv_req(n=0, deadline=20.0):
    return {"kind": "smv-diameter", "family": "counter", "size": 2, "n": n,
            "deadline": deadline}


class TestVerdictsSurviveFaults:
    def test_clean_requests_get_correct_verdicts(self, tmp_path):
        daemon = make_daemon(tmp_path)
        true_resp, false_resp = ask(
            daemon, solve_req("t"), solve_req("f", FALSE_QD)
        )
        assert check_structured(true_resp)["outcome"] == "true"
        assert check_structured(false_resp)["outcome"] == "false"

    def test_crash_fault_is_masked_by_retry(self, tmp_path):
        plan = FaultPlan(assignments={"crashy|PO": "crash"})
        daemon = make_daemon(tmp_path, faults=plan)
        (resp,) = ask(daemon, solve_req("crashy"))
        # A first-attempt crash is retried; the verdict is still correct.
        assert check_structured(resp)["ok"]
        assert resp["outcome"] == "true"

    def test_flip_verdict_is_caught_not_served(self, tmp_path):
        # A flipped verdict must never reach the client as a confident
        # wrong answer: the redundancy check downgrades it.
        plan = FaultPlan(assignments={"liar|PO": "flip-verdict"})
        daemon = make_daemon(tmp_path, faults=plan)
        (resp,) = ask(daemon, solve_req("liar"))
        check_structured(resp)
        if resp["ok"]:
            assert resp["outcome"] in ("true", "unknown")
        assert resp.get("outcome") != "false"


class TestMemoutAndPoisoning:
    def test_oom_becomes_memout_then_poisoned(self, tmp_path):
        plan = FaultPlan(assignments={"fat|PO": "worker-oom"})
        daemon = make_daemon(tmp_path, faults=plan, failure_threshold=2)
        r1, r2, r3 = ask(
            daemon, solve_req("fat"), solve_req("fat"), solve_req("fat")
        )
        for resp in (r1, r2):
            check_structured(resp)
            assert resp["status"] == "memout"
        # Two consecutive memouts trip the key's breaker: the third
        # request is refused without spawning a worker.
        check_structured(r3)
        assert r3["status"] == "poisoned"
        assert r3["last_failure"]["status"] == "memout"
        assert r3["retry_after"] > 0
        snap = daemon.supervisor.snapshot()
        assert snap["memouts"] == 2
        assert snap["poisoned"] == 1
        assert snap["breakers"]["open"] == 1

    def test_failures_never_enter_the_cache(self, tmp_path):
        plan = FaultPlan(assignments={"fat|PO": "worker-oom"})
        daemon = make_daemon(tmp_path, faults=plan)
        r1, r2 = ask(daemon, solve_req("fat"), solve_req("ok-too"))
        assert r1["status"] == "memout"
        assert r2["ok"]
        cached = list(daemon._cache)
        assert [k[0] for k in cached] == ["ok-too"]

    def test_other_keys_are_unaffected_by_an_open_breaker(self, tmp_path):
        plan = FaultPlan(assignments={"fat|PO": "worker-oom"})
        daemon = make_daemon(tmp_path, faults=plan, failure_threshold=1)
        r1, r2, r3 = ask(
            daemon, solve_req("fat"), solve_req("fat"), solve_req("healthy")
        )
        assert r1["status"] == "memout"
        assert r2["status"] == "poisoned"
        assert check_structured(r3)["outcome"] == "true"


class TestOverload:
    def test_burst_beyond_budget_sheds_with_retry_after(self, tmp_path):
        daemon = make_daemon(tmp_path, max_inflight=1)

        async def burst():
            reqs = [solve_req("burst-%d" % i) for i in range(4)]
            return await asyncio.wait_for(
                asyncio.gather(*[daemon.dispatch(r) for r in reqs]),
                GUARD_SECONDS,
            )

        try:
            responses = asyncio.run(burst())
        finally:
            daemon._pool.shutdown(wait=False)
        for resp in responses:
            check_structured(resp)
        shed = [r for r in responses if r.get("status") == "overloaded"]
        served = [r for r in responses if r["ok"]]
        assert served, "at least one request must be admitted"
        assert shed, "a 4-deep burst against a budget of 1 must shed"
        for resp in shed:
            assert resp["retry_after"] > 0
            assert resp["dimension"] in ("total", "solve")
        snap = daemon.supervisor.snapshot()
        assert snap["admission"]["shed_total"] == len(shed)
        assert snap["admission"]["inflight"] == 0  # all slots released

    def test_control_requests_bypass_admission(self, tmp_path):
        daemon = make_daemon(tmp_path, max_inflight=1)
        ping, stats = ask(daemon, {"kind": "ping"}, {"kind": "stats"})
        assert ping["ok"] and ping["pong"]
        assert stats["ok"] and "supervisor" in stats


class TestStuckFamily:
    def test_wedged_family_is_abandoned_then_served_degraded(self, tmp_path):
        plan = FaultPlan(
            assignments={"family:counter2": "stuck-family"}, hang_seconds=5.0
        )
        daemon = make_daemon(tmp_path, faults=plan, restart_backoff=60.0)
        stuck, degraded = ask(
            daemon, smv_req(n=0, deadline=0.5), smv_req(n=0, deadline=20.0)
        )
        check_structured(stuck)
        assert stuck["status"] == "stuck"
        assert stuck["retry_after"] > 0
        assert "counter2" not in daemon._families  # family was dropped
        # Second request lands in the restart backoff window: degraded
        # scratch solve, correct verdict, no family rebuilt.
        assert check_structured(degraded)["ok"]
        assert degraded["outcome"] == "true"
        assert degraded.get("degraded") is True
        assert "counter2" not in daemon._families
        snap = daemon.supervisor.snapshot()
        assert snap["degraded_solves"] == 1
        assert snap["family_deaths_pending"] == 1


class TestStatsReconcile:
    def test_counters_match_observed_responses(self, tmp_path):
        plan = FaultPlan(assignments={"fat|PO": "worker-oom"})
        daemon = make_daemon(tmp_path, faults=plan, failure_threshold=1)
        responses = ask(
            daemon,
            solve_req("a"),
            solve_req("fat"),
            solve_req("fat"),
            solve_req("a"),  # cache hit
            solve_req("b", FALSE_QD),
        )
        seen = {"memout": 0, "poisoned": 0, "ok": 0, "cached": 0}
        for resp in responses:
            check_structured(resp)
            status = resp.get("status")
            if status in ("memout", "poisoned"):
                seen[status] += 1
            if resp["ok"]:
                seen["ok"] += 1
            if resp.get("cached"):
                seen["cached"] += 1
        assert seen == {"memout": 1, "poisoned": 1, "ok": 3, "cached": 1}
        snap = daemon.supervisor.snapshot()
        assert snap["memouts"] == seen["memout"]
        assert snap["poisoned"] == seen["poisoned"]
        assert snap["admission"]["shed_total"] == 0
        assert snap["admission"]["inflight"] == 0
        assert daemon.stats["cache_hits"] == seen["cached"]
