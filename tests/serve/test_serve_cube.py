"""Serve daemon: cube-solve lane, deadlines, and oversize rejection.

Covers ISSUE 7 satellite 1 (structured errors instead of connection
timeouts for unsolvable/oversized requests; per-request ``deadline``)
and the new ``cube-solve`` request kind.
"""

import os
import signal
import subprocess
import sys

import pytest

from repro.core.formula import QBF
from repro.core.literals import EXISTS, FORALL
from repro.core.prefix import Prefix
from repro.serve.client import request, wait_ready
from repro.serve.protocol import (
    DEFAULT_DEADLINE_SECONDS,
    MAX_CLAUSES,
    MAX_FORMULA_BYTES,
    ProtocolError,
    check_formula_shape,
    check_formula_size,
    parse_deadline,
)


@pytest.fixture
def daemon(tmp_path):
    socket_path = str(tmp_path / "serve.sock")
    cache_path = str(tmp_path / "cache.jsonl")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [env.get("PYTHONPATH"), os.path.join(os.getcwd(), "src")] if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "run",
         "--socket", socket_path, "--cache", cache_path],
        env=env,
    )
    try:
        wait_ready(socket_path, timeout=60.0)
        yield proc, socket_path
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30.0)


QD_TRUE = "p cnf 2 2\ne 1 0\na 2 0\n1 2 0\n1 -2 0\n"
QD_FALSE = "p cnf 2 4\na 1 0\ne 2 0\n1 2 0\n-1 -2 0\n1 -2 0\n-1 2 0\n"


def test_parse_deadline_validation():
    assert parse_deadline({}) == DEFAULT_DEADLINE_SECONDS
    assert parse_deadline({"deadline": 2}) == 2.0
    assert parse_deadline({"deadline": 0.5}) == 0.5
    for bad in (0, -3, "soon", True, [1]):
        with pytest.raises(ProtocolError):
            parse_deadline({"deadline": bad})


def test_formula_caps():
    with pytest.raises(ProtocolError):
        check_formula_size("x" * (MAX_FORMULA_BYTES + 1))
    check_formula_size(QD_TRUE)
    big = QBF(
        Prefix.linear([(EXISTS, (1,)), (FORALL, (2,))]),
        [(1, 2)] * (MAX_CLAUSES + 1),
    )
    with pytest.raises(ProtocolError):
        check_formula_shape(big)


def test_cube_solve_roundtrip_and_certify(daemon):
    _, socket_path = daemon
    out = request(
        socket_path,
        {"kind": "cube-solve", "formula": QD_FALSE, "format": "qdimacs", "jobs": 2},
    )
    assert out["ok"] and out["outcome"] == "false"
    assert out["jobs"] == 2 and out["leaves"] >= 1

    certified = request(
        socket_path,
        {"kind": "cube-solve", "formula": QD_FALSE, "format": "qdimacs",
         "jobs": 2, "certify": True},
    )
    assert certified["ok"] and certified["outcome"] == "false"
    assert certified["certificate_status"] == "verified"
    assert certified["certificate_complete"]


def test_cube_solve_rejects_bad_jobs(daemon):
    _, socket_path = daemon
    out = request(
        socket_path,
        {"kind": "cube-solve", "formula": QD_TRUE, "format": "qdimacs",
         "jobs": 10_000},
    )
    assert not out["ok"] and "jobs" in out["error"]


def test_oversized_request_gets_structured_error(daemon):
    _, socket_path = daemon
    # over the formula byte cap, but under the daemon's stream limit so the
    # request parses and the rejection arrives as a structured reply
    huge = QD_TRUE + "c pad\n" * 900_000
    out = request(
        socket_path,
        {"kind": "solve", "formula": huge, "format": "qdimacs"},
    )
    assert not out["ok"]
    assert "large" in out["error"] or "exceeds" in out["error"]


def test_bad_deadline_and_expired_deadline_are_structured(daemon):
    proc, socket_path = daemon
    bad = request(
        socket_path,
        {"kind": "solve", "formula": QD_TRUE, "format": "qdimacs",
         "deadline": "soon"},
    )
    assert not bad["ok"] and "deadline" in bad["error"]

    # a deadline too short for a real solve (ample decisions budget so the
    # wall clock is the binding constraint): structured error, daemon alive
    hopeless = request(
        socket_path,
        {"kind": "smv-diameter", "family": "counter", "size": 3, "n": 6,
         "budget": {"decisions": 10_000_000}, "deadline": 0.05},
        timeout=60.0,
    )
    assert not hopeless["ok"] and "deadline" in hopeless["error"]
    assert hopeless["status"] == "deadline"
    assert proc.poll() is None
    alive = request(socket_path, {"kind": "ping"})
    assert alive["ok"]
