"""Serve daemon smoke tests: the CI leg of ISSUE 6.

Starts a real daemon subprocess on a unix socket, submits two related SMV
bound requests, asserts the second is an incremental hit (the family's
persistent solver had prior state) and that a repeat is a fingerprint-cache
hit, then shuts the daemon down via the SIGTERM preemption path and checks
the exit is clean.
"""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.serve.client import request, wait_ready
from repro.serve.protocol import parse_budget, ProtocolError


@pytest.fixture
def daemon(tmp_path):
    socket_path = str(tmp_path / "serve.sock")
    cache_path = str(tmp_path / "cache.jsonl")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [env.get("PYTHONPATH"), os.path.join(os.getcwd(), "src")] if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "run",
         "--socket", socket_path, "--cache", cache_path],
        env=env,
    )
    try:
        wait_ready(socket_path, timeout=60.0)
        yield proc, socket_path, cache_path
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30.0)


def test_serve_smoke_incremental_cache_and_sigterm(daemon):
    proc, socket_path, cache_path = daemon

    first = request(
        socket_path,
        {"kind": "smv-diameter", "family": "counter", "size": 2, "n": 0},
    )
    assert first["ok"] and first["outcome"] == "true"
    assert not first["cached"] and not first["incremental"]

    second = request(
        socket_path,
        {"kind": "smv-diameter", "family": "counter", "size": 2, "n": 1},
    )
    assert second["ok"] and second["outcome"] == "true"
    # related bound on the same family: served by the persistent
    # incremental solver (or, on a re-run against a warm cache, the cache)
    assert second["incremental"] or second["cached"]

    repeat = request(
        socket_path,
        {"kind": "smv-diameter", "family": "counter", "size": 2, "n": 1},
    )
    assert repeat["ok"] and repeat["cached"]
    assert repeat["outcome"] == second["outcome"]

    stats = request(socket_path, {"kind": "stats"})
    assert stats["cache_hits"] >= 1 and stats["solves"] >= 2

    # clean shutdown through the SIGTERM path
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=30.0) == 0

    # the verdict cache was persisted
    with open(cache_path) as handle:
        rows = [json.loads(line) for line in handle if line.strip()]
    assert any(r["instance"].startswith("smv:counter2") for r in rows)


def test_serve_generic_solve_and_error_paths(daemon):
    proc, socket_path, _ = daemon
    qd = "p cnf 2 2\ne 1 0\na 2 0\n1 2 0\n1 -2 0\n"
    first = request(
        socket_path,
        {"kind": "solve", "formula": qd, "format": "qdimacs", "instance": "smoke"},
    )
    assert first["ok"] and first["outcome"] == "true" and not first["cached"]
    again = request(
        socket_path,
        {"kind": "solve", "formula": qd, "format": "qdimacs", "instance": "smoke"},
    )
    assert again["ok"] and again["cached"] and again["outcome"] == "true"

    bad = request(socket_path, {"kind": "no-such-kind"})
    assert not bad["ok"] and "kind" in bad["error"]
    malformed = request(
        socket_path, {"kind": "solve", "formula": "p cnf oops\n", "id": 7}
    )
    assert not malformed["ok"] and malformed["id"] == 7


def test_parse_budget_validation():
    assert parse_budget(None).decisions == 2000
    assert parse_budget({"decisions": 10, "seconds": 1.5}).seconds == 1.5
    with pytest.raises(ProtocolError):
        parse_budget({"decisions": -1})
    with pytest.raises(ProtocolError):
        parse_budget({"seconds": "soon"})
    with pytest.raises(ProtocolError):
        parse_budget("fast")
