"""Serve daemon paradigm/portfolio request fields and capability errors."""

import os
import signal
import subprocess
import sys

import pytest

from repro.serve.client import request, wait_ready
from repro.serve.protocol import ProtocolError, parse_paradigm

QD = "p cnf 2 2\ne 1 0\na 2 0\n1 2 0\n1 -2 0\n"


@pytest.fixture
def daemon(tmp_path):
    socket_path = str(tmp_path / "serve.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [env.get("PYTHONPATH"), os.path.join(os.getcwd(), "src")] if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "run",
         "--socket", socket_path],
        env=env,
    )
    try:
        wait_ready(socket_path, timeout=60.0)
        yield proc, socket_path
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30.0)


def test_parse_paradigm_validation():
    assert parse_paradigm({}) == "search"
    assert parse_paradigm({"paradigm": "expansion"}) == "expansion"
    with pytest.raises(ProtocolError):
        parse_paradigm({"paradigm": "magic"})
    with pytest.raises(ProtocolError):
        parse_paradigm({"paradigm": 7})


def test_solve_with_paradigm_and_capability_errors(daemon):
    _, socket_path = daemon
    good = request(
        socket_path,
        {"kind": "solve", "formula": QD, "paradigm": "expansion",
         "instance": "exp"},
    )
    assert good["ok"] and good["outcome"] == "true"

    # certify + a proof-incapable paradigm: structured error, no solve
    mismatch = request(
        socket_path,
        {"kind": "solve", "formula": QD, "paradigm": "expansion",
         "certify": True, "id": 3},
    )
    assert not mismatch["ok"] and mismatch["id"] == 3
    assert "proof" in mismatch["error"]

    unknown = request(
        socket_path, {"kind": "solve", "formula": QD, "paradigm": "magic"}
    )
    assert not unknown["ok"] and "unknown paradigm" in unknown["error"]


def test_portfolio_request(daemon):
    _, socket_path = daemon
    result = request(
        socket_path,
        {"kind": "portfolio", "formula": QD, "jobs": 1,
         "budget": {"decisions": 2000}},
    )
    assert result["ok"] and result["outcome"] == "true"
    assert result["winner"] in ("PO", "TO", "EXP")
    assert "reported" in result

    refused = request(
        socket_path, {"kind": "portfolio", "formula": QD, "certify": True}
    )
    assert not refused["ok"] and "certify" in refused["error"]

    bad_jobs = request(
        socket_path, {"kind": "portfolio", "formula": QD, "jobs": 0}
    )
    assert not bad_jobs["ok"]


def test_cube_solve_refuses_checkpoint_incapable_paradigm(daemon):
    _, socket_path = daemon
    refused = request(
        socket_path,
        {"kind": "cube-solve", "formula": QD, "paradigm": "expansion"},
    )
    assert not refused["ok"] and "checkpoint" in refused["error"]

    ok = request(
        socket_path,
        {"kind": "cube-solve", "formula": QD, "paradigm": "search",
         "jobs": 1},
    )
    assert ok["ok"] and ok["outcome"] == "true"
