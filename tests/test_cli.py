"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.core.formula import paper_example
from repro.io import qdimacs, qtree
from repro.prenexing.strategies import prenex


@pytest.fixture
def tree_file(tmp_path):
    path = str(tmp_path / "eq1.qtree")
    qtree.dump(paper_example(), path)
    return path


@pytest.fixture
def prenex_file(tmp_path):
    path = str(tmp_path / "eq1.qdimacs")
    qdimacs.dump(prenex(paper_example(), "eu_au"), path)
    return path


class TestSolve:
    def test_solve_tree_false_exit_code(self, tree_file, capsys):
        assert main(["solve", tree_file]) == 20
        out = capsys.readouterr().out
        assert "FALSE" in out
        assert "decisions" in out

    def test_solve_qdimacs(self, prenex_file):
        assert main(["solve", prenex_file]) == 20

    def test_solve_with_to_pipeline(self, tree_file):
        assert main(["solve", tree_file, "--to", "--strategy", "ed_ad"]) == 20

    def test_solve_unknown_on_zero_budget(self, tree_file):
        assert main(["solve", tree_file, "--max-decisions", "0"]) == 2

    def test_solve_true_instance(self, tmp_path):
        path = str(tmp_path / "t.qtree")
        with open(path, "w") as f:
            f.write("t (a 1 (e 2))\n1 2 0\n-1 -2 0\n")
        assert main(["solve", path]) == 10

    def test_feature_flags(self, tree_file):
        assert main(["solve", tree_file, "--no-learning", "--no-pure",
                     "--policy", "naive"]) == 20


class TestTransforms:
    def test_prenex_writes_qdimacs(self, tree_file, tmp_path):
        out = str(tmp_path / "flat.qdimacs")
        assert main(["prenex", tree_file, "-o", out]) == 0
        assert qdimacs.load(out).is_prenex

    def test_miniscope_recovers_tree(self, prenex_file, tmp_path, capsys):
        out = str(tmp_path / "tree.qtree")
        assert main(["miniscope", prenex_file, "-o", out]) == 0
        assert not qtree.load(out).is_prenex
        assert "structure ratio" in capsys.readouterr().err

    def test_prenex_to_stdout(self, tree_file, capsys):
        assert main(["prenex", tree_file]) == 0
        assert "p qtree" in capsys.readouterr().out


class TestGenerateAndStats:
    def test_generate_ncf(self, tmp_path):
        out = str(tmp_path / "g.qtree")
        assert main(["generate", "ncf", "--dep", "3", "--var", "2",
                     "--cls", "4", "--lpc", "3", "--seed", "7", "-o", out]) == 0
        phi = qtree.load(out)
        assert not phi.is_prenex

    def test_generate_fpv(self, tmp_path):
        out = str(tmp_path / "g.qtree")
        assert main(["generate", "fpv", "-o", out]) == 0
        assert qtree.load(out).num_clauses > 0

    def test_stats(self, tree_file, capsys):
        assert main(["stats", tree_file]) == 0
        out = capsys.readouterr().out
        assert "variables     7" in out
        assert "prenex        no" in out
        assert "prefix level  3" in out


class TestCertify:
    def test_emit_and_check_roundtrip(self, tree_file, tmp_path, capsys):
        cert = str(tmp_path / "proof.jsonl")
        assert main(["certify", "emit", tree_file, "-o", cert]) == 0
        out = capsys.readouterr().out
        assert "FALSE" in out
        assert "verified" in out
        assert main(["certify", "check", tree_file, cert]) == 0
        assert "verified" in capsys.readouterr().out

    def test_emit_to_pipeline_checks_against_tree(self, tree_file, tmp_path):
        cert = str(tmp_path / "proof.jsonl")
        # --to solves the prenex form; the self-check replays the proof
        # against the original tree formula and must still verify.
        assert main(["certify", "emit", tree_file, "--to", "-o", cert]) == 0
        assert main(["certify", "check", tree_file, cert]) == 0

    def test_check_rejects_tampered_certificate(self, tree_file, tmp_path, capsys):
        import json

        cert = str(tmp_path / "proof.jsonl")
        assert main(["certify", "emit", tree_file, "-o", cert, "--no-check"]) == 0
        rows = [json.loads(l) for l in open(cert)]
        for row in rows:
            if row.get("type") == "res":
                row["lits"] = list(row["lits"]) + [999]
                break
        with open(cert, "w") as fh:
            for row in rows:
                fh.write(json.dumps(row) + "\n")
        assert main(["certify", "check", tree_file, cert]) == 1
        assert "invalid" in capsys.readouterr().out

    def test_stats_subcommand(self, tree_file, tmp_path, capsys):
        cert = str(tmp_path / "proof.jsonl")
        assert main(["certify", "emit", tree_file, "-o", cert]) == 0
        capsys.readouterr()
        assert main(["certify", "stats", cert]) == 0
        out = capsys.readouterr().out
        assert "resolutions" in out
        assert "outcome" in out

    def test_evalx_run_certify_smoke(self, capsys):
        assert main(["evalx", "run", "ncf", "--instances", "1",
                     "--decisions", "2000", "--certify"]) == 0
        out = capsys.readouterr().out
        assert "certificates:" in out
        assert "0 invalid" in out
