"""Smoke tests keeping the example scripts runnable."""

import os
import runpy
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name, capsys):
    path = os.path.join(EXAMPLES, name)
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "Outcome.TRUE" in out
    assert "QTREE serialization" in out


def test_paper_example(capsys):
    out = run_example("paper_example.py", capsys)
    assert "d=1 f=5" in out  # x0's stamps
    assert "branches=8" in out  # the optimal Figure 2 tree
    assert "['y0_1']" in out  # the Section VII-C good under the tree


@pytest.mark.slow
def test_prenexing_study(capsys):
    out = run_example("prenexing_study.py", capsys)
    assert "QUBE(PO) vs QUBE(TO)" in out
    assert "Scope minimization" in out
