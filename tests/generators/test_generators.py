"""Tests for the NCF / FPV / fixed / random instance generators."""

import random

import pytest

from repro.core.expansion import evaluate
from repro.core.literals import EXISTS, FORALL
from repro.core.solver import SolverConfig, solve
from repro.generators.fixed import FixedParams, fixed_sweep, generate_fixed
from repro.generators.fpv import FpvParams, fpv_sweep, generate_fpv
from repro.generators.ncf import NcfParams, generate_ncf, ncf_sweep, scope_clauses_check
from repro.generators.random_qbf import random_prenex_qbf, random_tree_qbf
from repro.prenexing.miniscoping import miniscope, structure_ratio
from repro.prenexing.strategies import STRATEGIES, prenex


class TestNcf:
    def test_deterministic(self):
        a = generate_ncf(NcfParams(seed=5))
        b = generate_ncf(NcfParams(seed=5))
        assert a == b

    def test_different_seeds_differ(self):
        assert generate_ncf(NcfParams(seed=1)) != generate_ncf(NcfParams(seed=2))

    def test_is_non_prenex_tree(self):
        phi = generate_ncf(NcfParams(dep=3, var=2, cls=4, lpc=3, seed=0))
        assert not phi.is_prenex
        assert phi.prefix.prefix_level == 3

    def test_alternation_starts_existential(self):
        phi = generate_ncf(NcfParams(seed=0))
        tops = phi.prefix.top_variables()
        assert all(phi.prefix.quant(v) is EXISTS for v in tops)

    def test_clauses_are_path_realizable(self):
        for seed in range(5):
            phi = generate_ncf(NcfParams(dep=3, var=3, cls=6, lpc=3, seed=seed))
            assert scope_clauses_check(phi)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            NcfParams(dep=0)

    def test_sweep_covers_grid(self):
        settings = list(ncf_sweep(deps=(2,), vars_=(2, 3), ratios=(1, 2), lpcs=(2,), instances=2))
        assert len(settings) == 2 * 2 * 1 * 2
        assert len({p.seed for p in settings}) == len(settings)

    @pytest.mark.parametrize("seed", range(5))
    def test_prenexings_preserve_value(self, seed):
        phi = generate_ncf(NcfParams(dep=2, var=2, cls=4, lpc=2, seed=seed))
        base = solve(phi).value
        for name in STRATEGIES:
            assert solve(prenex(phi, name)).value == base

    @pytest.mark.parametrize("seed", range(5))
    def test_small_instances_match_oracle(self, seed):
        phi = generate_ncf(NcfParams(dep=2, var=2, cls=4, lpc=2, seed=100 + seed))
        if phi.num_vars <= 20:
            assert solve(phi).value == evaluate(phi, max_vars=None)


class TestFpv:
    def test_deterministic(self):
        assert generate_fpv(FpvParams(seed=3)) == generate_fpv(FpvParams(seed=3))

    def test_tree_shape(self):
        phi = generate_fpv(FpvParams(config_bits=2, requirements=3, seed=0))
        assert not phi.is_prenex
        # One top existential block with `requirements` universal children.
        roots = phi.prefix.root.children
        assert len(roots) == 1
        assert roots[0].quant is EXISTS
        assert len(roots[0].children) == 3
        assert all(c.quant is FORALL for c in roots[0].children)

    def test_branches_share_only_config(self):
        phi = generate_fpv(FpvParams(seed=1))
        branch_vars = [set(b.variables) | {v for d in b.subtree() for v in d.variables}
                       for b in phi.prefix.root.children[0].children]
        for i in range(len(branch_vars)):
            for j in range(i + 1, len(branch_vars)):
                assert not (branch_vars[i] & branch_vars[j])

    def test_sweep(self):
        pool = fpv_sweep(count=10, seed_base=7)
        assert len(pool) == 10
        assert len({p.label for p in pool}) == 10

    @pytest.mark.parametrize("seed", range(4))
    def test_value_matches_oracle_when_small(self, seed):
        phi = generate_fpv(
            FpvParams(config_bits=2, requirements=2, levels=2, env_bits=1,
                      run_bits=2, ratio=2.0, clause_len=3, seed=seed)
        )
        if phi.num_vars <= 20:
            assert solve(phi).value == evaluate(phi, max_vars=None)


class TestFixed:
    def test_interleaved_is_prenex_with_hidden_structure(self):
        phi = generate_fixed(FixedParams(family="interleaved", seed=0))
        assert phi.is_prenex
        tree = miniscope(phi)
        assert structure_ratio(phi, tree) > 0.0

    def test_chained_control_family(self):
        phi = generate_fixed(FixedParams(family="chained", seed=0))
        assert phi.is_prenex

    def test_interleaved_value_equals_conjunction(self):
        phi = generate_fixed(
            FixedParams(family="interleaved", groups=2, blocks_per_group=2,
                        block_size=1, clauses_per_group=4, seed=2)
        )
        tree = miniscope(phi)
        assert solve(phi).value == solve(tree).value

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            generate_fixed(FixedParams(family="wavy"))

    def test_sweep_mixes_families(self):
        pool = fixed_sweep(count=12, seed_base=0)
        families = {p.family for p in pool}
        assert families == {"interleaved", "chained"}


class TestRandomGenerators:
    def test_prenex_shape(self):
        rng = random.Random(0)
        phi = random_prenex_qbf(rng, num_blocks=3, block_size=2, num_clauses=8)
        assert phi.is_prenex
        assert phi.num_vars == 6
        assert phi.num_clauses == 8

    def test_every_clause_has_existential(self):
        rng = random.Random(1)
        phi = random_prenex_qbf(rng, num_blocks=4, block_size=2, num_clauses=20, first=FORALL)
        for clause in phi.clauses:
            assert any(phi.prefix.quant(l) is EXISTS for l in clause.lits)

    def test_tree_clauses_realizable(self):
        rng = random.Random(2)
        phi = random_tree_qbf(rng, depth=3, branching=2, block_size=2)
        assert scope_clauses_check(phi)
