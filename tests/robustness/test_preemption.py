"""Graceful preemption: interrupt flags, signal handling, CLI exit codes.

Covers the cooperative interrupt path (flag polled next to the budget
checks, checkpoint flushed on the way out), the ``handling_signals``
context manager, and the ``repro solve`` exit-code contract — the latter
through real subprocesses, signals included, because that is the only way
the contract is actually consumed.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.result import Outcome
from repro.core.solver import QdpllSolver, SolverConfig
from repro.generators.ncf import NcfParams, generate_ncf
from repro.robustness import (
    InterruptFlag,
    global_flag,
    handling_signals,
    load_checkpoint,
)

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def small_ncf(seed=0):
    return generate_ncf(NcfParams(dep=6, var=3, cls=9, lpc=5, seed=seed))


#: an instance the Python engine chews on for tens of seconds — long enough
#: that a signal sent after startup reliably lands mid-search.
SLOW_NCF = dict(dep=6, var=8, cls=24, lpc=5, seed=0)


class TestInterruptFlag:
    def test_flag_lifecycle(self):
        flag = InterruptFlag()
        assert not flag and not flag.is_set()
        flag.set()
        assert flag and flag.is_set() and flag.last_signal is None
        flag.clear()
        assert not flag.is_set()
        flag.set(signal.SIGTERM, None)  # signal-handler calling convention
        assert flag.is_set() and flag.last_signal == signal.SIGTERM

    def test_preset_flag_interrupts_immediately(self, tmp_path):
        path = str(tmp_path / "x.ckpt")
        flag = InterruptFlag()
        flag.set()
        result = QdpllSolver(
            small_ncf(), SolverConfig(), interrupt=flag
        ).solve(checkpoint_to=path)
        assert result.outcome is Outcome.UNKNOWN
        assert result.interrupted
        assert load_checkpoint(path).stats["decisions"] == result.stats.decisions

    def test_callable_interrupt_mid_search(self, tmp_path):
        # Interrupt via a plain callable after a few polls; the resumed run
        # must land on the uninterrupted verdict.
        phi = small_ncf()
        baseline = QdpllSolver(phi, SolverConfig(max_decisions=100000)).solve()
        polls = [0]

        def tripwire():
            polls[0] += 1
            return polls[0] > 40

        path = str(tmp_path / "mid.ckpt")
        cut = QdpllSolver(
            phi, SolverConfig(max_decisions=100000), interrupt=tripwire
        ).solve(checkpoint_to=path)
        assert cut.interrupted and cut.outcome is Outcome.UNKNOWN
        assert 0 < cut.stats.decisions < baseline.stats.decisions
        resumed = QdpllSolver(
            phi, SolverConfig(max_decisions=100000)
        ).solve(resume_from=path)
        assert resumed.outcome is baseline.outcome
        assert resumed.stats.decisions == baseline.stats.decisions
        assert not resumed.interrupted

    def test_determinate_run_ignores_late_flag(self):
        # A flag that never trips must not perturb the run.
        flag = InterruptFlag()
        plain = QdpllSolver(small_ncf(), SolverConfig()).solve()
        flagged = QdpllSolver(small_ncf(), SolverConfig(), interrupt=flag).solve()
        assert flagged.outcome is plain.outcome
        assert flagged.stats.decisions == plain.stats.decisions
        assert not flagged.interrupted


class TestHandlingSignals:
    def test_installs_and_restores_handlers(self):
        flag = InterruptFlag()
        before = signal.getsignal(signal.SIGTERM)
        with handling_signals(flag):
            assert signal.getsignal(signal.SIGTERM) == flag.set
            os.kill(os.getpid(), signal.SIGTERM)
            assert flag.is_set() and flag.last_signal == signal.SIGTERM
        assert signal.getsignal(signal.SIGTERM) == before

    def test_defaults_to_global_flag(self):
        global_flag().clear()
        with handling_signals():
            os.kill(os.getpid(), signal.SIGTERM)
            assert global_flag().is_set()
        global_flag().clear()


def run_cli(*argv, **kwargs):
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro.cli"] + list(argv),
        env=env, capture_output=True, text=True, cwd=REPO, **kwargs
    )


@pytest.fixture(scope="module")
def qtree_file(tmp_path_factory):
    from repro.io import qtree

    path = str(tmp_path_factory.mktemp("cli") / "inst.qtree")
    qtree.dump(small_ncf(), path)
    return path


class TestCliExitCodes:
    """The stable contract: 10 TRUE, 20 FALSE, 2 budget-unknown, 3 preempted."""

    def test_true_is_10(self, qtree_file):
        proc = run_cli("solve", qtree_file)
        assert proc.returncode == 10, proc.stdout + proc.stderr
        assert "result      TRUE" in proc.stdout

    def test_false_is_20(self, tmp_path):
        from repro.io import qtree

        path = str(tmp_path / "false.qtree")
        qtree.dump(
            generate_ncf(NcfParams(dep=5, var=4, cls=12, lpc=4, seed=7)), path
        )
        proc = run_cli("solve", path)
        assert proc.returncode == 20, proc.stdout + proc.stderr
        assert "result      FALSE" in proc.stdout

    def test_budget_unknown_is_2_and_resume_completes(self, qtree_file, tmp_path):
        ckpt = str(tmp_path / "cli.ckpt")
        cut = run_cli("solve", qtree_file, "--max-decisions", "3",
                      "--checkpoint", ckpt)
        assert cut.returncode == 2, cut.stdout + cut.stderr
        assert "budget exhausted" in cut.stdout
        assert os.path.exists(ckpt)

        full = run_cli("solve", qtree_file, "--checkpoint", ckpt)
        baseline = run_cli("solve", qtree_file)
        assert full.returncode == baseline.returncode
        # total decisions across interrupt + resume match the one-shot run
        pick = lambda out: [l for l in out.splitlines() if l.startswith("decisions")]
        assert pick(full.stdout) == pick(baseline.stdout)
        # the verdict retires the snapshot
        assert not os.path.exists(ckpt)

    def test_unusable_checkpoint_warns_and_runs_fresh(self, qtree_file, tmp_path):
        ckpt = str(tmp_path / "torn.ckpt")
        open(ckpt, "w").write('{"format": "repro-ckpt", "version": 1, "sha2')
        proc = run_cli("solve", qtree_file, "--checkpoint", ckpt)
        assert proc.returncode == 10, proc.stdout + proc.stderr
        assert "warning: ignoring unusable checkpoint" in proc.stderr

    def test_sigterm_is_3_with_loadable_checkpoint(self, tmp_path):
        from repro.io import qtree

        inst = str(tmp_path / "slow.qtree")
        ckpt = str(tmp_path / "slow.ckpt")
        qtree.dump(generate_ncf(NcfParams(**SLOW_NCF)), inst)
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "solve", inst,
             "--checkpoint", ckpt],
            env=env, cwd=REPO,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        time.sleep(2.5)  # past interpreter startup, well into the search
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 3, (proc.returncode, out, err)
        assert "interrupted" in out
        ck = load_checkpoint(ckpt)  # must parse: the snapshot is usable
        assert ck.stats["decisions"] > 0
        assert len(ck.trail_lits) > 0
